(* Benchmark and reproduction harness.

   Running this executable regenerates every table and figure of the
   paper (sections T1, T2, F1, F2, F3, F6, F7), runs the quantitative
   companion experiments of DESIGN.md §5 (Q1–Q6), and finishes with
   Bechamel micro-benchmarks of the protocol hot paths (section M).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --no-micro   # skip Bechamel section
     dune exec bench/main.exe -- --only T1,Q2 # selected sections *)

module Experiment = Dsm_runtime.Experiment
module Table_fmt = Dsm_stats.Table_fmt

let section name title body =
  Printf.printf "\n================================================\n";
  Printf.printf "%s — %s\n" name title;
  Printf.printf "================================================\n";
  body ();
  flush stdout

let print_table t = print_string (Table_fmt.render t)

(* ------------------------------------------------------------------ *)
(* Paper artifacts                                                     *)
(* ------------------------------------------------------------------ *)

let t1 () = print_table (Experiment.table1 ())
let t2 () = print_table (Experiment.table2 ())
let f1 () = print_string (Experiment.figure1 ())
let f2 () = print_string (Experiment.figure2 ())
let f3 () = print_string (Experiment.figure3 ())
let f6 () = print_string (Experiment.figure6 ())
let f7 () = print_string (Experiment.figure7 ())

(* ------------------------------------------------------------------ *)
(* Quantitative experiments                                            *)
(* ------------------------------------------------------------------ *)

let q1 () = print_table (Experiment.q1_sweep_processes ())
let q2 () = print_table (Experiment.q2_sweep_latency_variance ())
let q3 () = print_table (Experiment.q3_sweep_write_ratio ())
let q4 () = print_table (Experiment.q4_buffer_occupancy ())
let q5 () =
  print_table (Experiment.q5_apply_latency ());
  print_newline ();
  print_string (Experiment.q5_histogram ())
let q6 () = print_table (Experiment.q6_ws_skips ())
let q7 () = print_table (Experiment.q7_fifo_ablation ())
let q8 () = print_table (Experiment.q8_lossy_links ())
let q9 () = print_table (Experiment.q9_divergence ())
let q10 () = print_table (Experiment.q10_metadata_size ())
let q11 () = print_table (Experiment.q11_partial_replication ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel
  open Toolkit
  module V = Dsm_vclock.Vector_clock
  module Protocol = Dsm_core.Protocol

  let vclock_merge =
    let a = V.of_array (Array.init 32 (fun i -> i + 1))
    and b = V.of_array (Array.init 32 (fun i -> 32 - i)) in
    Test.make ~name:"M1 vclock.merge n=32"
      (Staged.stage (fun () -> ignore (V.merge a b)))

  let vclock_compare =
    let a = V.of_array (Array.init 32 (fun i -> i + 1))
    and b = V.of_array (Array.init 32 (fun i -> if i = 7 then 99 else i + 1)) in
    Test.make ~name:"M2 vclock.compare_partial n=32"
      (Staged.stage (fun () -> ignore (V.compare_partial a b)))

  (* one full write step (local apply + message build) of each protocol;
     state is rebuilt per batch through make_with_resource *)
  let protocol_write (module P : Protocol.S) label =
    Test.make_with_resource ~name:label Test.multiple
      ~allocate:(fun () -> P.create (Protocol.config ~n:8 ~m:16) ~me:0)
      ~free:(fun _ -> ())
      (Staged.stage (fun state -> ignore (P.write state ~var:3 ~value:1)))

  let optp_write =
    protocol_write (module Dsm_core.Opt_p) "M3a OptP write step n=8"

  let anbkh_write =
    protocol_write (module Dsm_core.Anbkh) "M3b ANBKH write step n=8"

  (* in-order receive: a sender state generates messages consumed by a
     fresh receiver *)
  let receive_step =
    Test.make_with_resource ~name:"M4 OptP receive step n=8" Test.multiple
      ~allocate:(fun () ->
        let cfg = Protocol.config ~n:8 ~m:16 in
        let sender = Dsm_core.Opt_p.create cfg ~me:1 in
        let receiver = Dsm_core.Opt_p.create cfg ~me:0 in
        (sender, receiver))
      ~free:(fun _ -> ())
      (Staged.stage (fun (sender, receiver) ->
           let _, eff = Dsm_core.Opt_p.write sender ~var:2 ~value:7 in
           match eff.Protocol.to_send with
           | [ Protocol.Broadcast m ] ->
               ignore (Dsm_core.Opt_p.receive receiver ~src:1 m)
           | _ -> assert false))

  let engine_event =
    Test.make ~name:"M5 engine schedule+run 1k events"
      (Staged.stage (fun () ->
           let e = Dsm_sim.Engine.create () in
           for i = 1 to 1000 do
             Dsm_sim.Engine.schedule_at e
               (Dsm_sim.Sim_time.of_float (float_of_int i))
               (fun () -> ())
           done;
           ignore (Dsm_sim.Engine.run e)))

  let end_to_end =
    let spec =
      Dsm_workload.Spec.make ~n:4 ~m:4 ~ops_per_process:50 ~write_ratio:0.5
        ~seed:7 ()
    in
    Test.make ~name:"M6 full OptP simulation (4 procs x 50 ops)"
      (Staged.stage (fun () ->
           ignore
             (Dsm_runtime.Sim_run.run
                (module Dsm_core.Opt_p)
                ~spec
                ~latency:(Dsm_sim.Latency.Exponential { mean = 10. })
                ())))

  let tests =
    Test.make_grouped ~name:"micro"
      [
        vclock_merge;
        vclock_compare;
        optp_write;
        anbkh_write;
        receive_step;
        engine_event;
        end_to_end;
      ]

  let run () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |]
    in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
    in
    let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let table =
      Table_fmt.create ~title:"Bechamel micro-benchmarks"
        ~header:[ "benchmark"; "time/run (ns)"; "r²" ]
        ()
    in
    Table_fmt.set_align table
      [ Table_fmt.Left; Table_fmt.Right; Table_fmt.Right ];
    let rows =
      Hashtbl.fold
        (fun name ols acc ->
          let time =
            match Analyze.OLS.estimates ols with
            | Some (t :: _) -> Printf.sprintf "%.1f" t
            | Some [] | None -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          (name, time, r2) :: acc)
        results []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    in
    List.iter (fun (n, t, r) -> Table_fmt.add_row table [ n; t; r ]) rows;
    print_table table
end

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("T1", "Table 1: X_co-safe over H1", t1);
    ("T2", "Table 2: X_ANBKH over the Figure 3 run", t2);
    ("F1", "Figure 1: two admissible runs at p3", f1);
    ("F2", "Figure 2: a non-optimal safe protocol", f2);
    ("F3", "Figure 3: ANBKH and false causality", f3);
    ("F6", "Figure 6: the OptP run", f6);
    ("F7", "Figure 7: write causality graph of H1", f7);
    ("Q1", "delays vs number of processes", q1);
    ("Q2", "false causality vs latency variance", q2);
    ("Q3", "delays vs write ratio", q3);
    ("Q4", "buffer occupancy", q4);
    ("Q5", "apply latency", q5);
    ("Q6", "writing-semantics skips", q6);
    ("Q7", "ablation: FIFO channels", q7);
    ("Q8", "lossy links + reliable channels", q8);
    ("Q9", "replica divergence at quiescence", q9);
    ("Q10", "metadata: vectors vs direct dependencies", q10);
    ("Q11", "partial replication", q11);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  let only =
    let with_eq =
      List.find_map
        (fun a ->
          if String.length a > 7 && String.sub a 0 7 = "--only=" then
            Some
              (String.split_on_char ','
                 (String.sub a 7 (String.length a - 7)))
          else None)
        args
    in
    match with_eq with
    | Some _ as o -> o
    | None ->
        let rec find = function
          | "--only" :: v :: _ -> Some (String.split_on_char ',' v)
          | _ :: rest -> find rest
          | [] -> None
        in
        find args
  in
  let wanted name =
    match only with None -> true | Some names -> List.mem name names
  in
  List.iter
    (fun (name, title, body) -> if wanted name then section name title body)
    sections;
  if (not no_micro) && wanted "M" then
    section "M" "Bechamel micro-benchmarks" Micro.run
