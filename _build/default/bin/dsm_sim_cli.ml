(* dsm-sim — command-line driver for the causal-DSM simulator.

   Subcommands:
     run     simulate a workload under one protocol and audit the run
     tables  regenerate the paper's tables and figures
     sweep   run a quantitative experiment (Q1..Q6)
     graph   emit the write causality graph of a run (Graphviz)

   Examples:
     dsm-sim run --protocol optp -n 6 -m 8 --ops 200 --write-ratio 0.6
     dsm-sim run --protocol anbkh --latency lognormal:2.3,1.0 --seed 3
     dsm-sim tables --section T1
     dsm-sim sweep --experiment q2   (q1..q11)
     dsm-sim graph -n 4 --ops 20 *)

open Cmdliner

module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Experiment = Dsm_runtime.Experiment
module Checker = Dsm_runtime.Checker
module Sim_run = Dsm_runtime.Sim_run

(* ---------------------------------------------------------------- *)
(* shared argument parsing                                           *)
(* ---------------------------------------------------------------- *)

let protocol_of_string = function
  | "optp" -> Ok (module Dsm_core.Opt_p : Dsm_core.Protocol.S)
  | "anbkh" -> Ok (module Dsm_core.Anbkh : Dsm_core.Protocol.S)
  | "ws-recv" -> Ok (module Dsm_core.Ws_receiver : Dsm_core.Protocol.S)
  | "optp-ws" -> Ok (module Dsm_core.Opt_p_ws : Dsm_core.Protocol.S)
  | "ws-token" -> Ok (module Dsm_core.Ws_token : Dsm_core.Protocol.S)
  | "optp-direct" -> Ok (module Dsm_core.Opt_p_direct : Dsm_core.Protocol.S)
  | s ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown protocol %S (expected optp | anbkh | ws-recv | \
              optp-ws | ws-token | optp-direct)"
             s))

let protocol_conv =
  Arg.conv
    ( protocol_of_string,
      fun ppf (module P : Dsm_core.Protocol.S) ->
        Format.pp_print_string ppf P.name )

(* latency syntax: const:C | uniform:LO,HI | exp:MEAN | lognormal:MU,SIGMA
   | pareto:SCALE,SHAPE *)
let latency_of_string s =
  let parse_floats part =
    String.split_on_char ',' part |> List.map float_of_string
  in
  match String.split_on_char ':' s with
  | [ "const"; p ] -> (
      match parse_floats p with
      | [ c ] -> Ok (Latency.Constant c)
      | _ -> Error (`Msg "const takes one parameter"))
  | [ "uniform"; p ] -> (
      match parse_floats p with
      | [ lo; hi ] -> Ok (Latency.Uniform { lo; hi })
      | _ -> Error (`Msg "uniform takes lo,hi"))
  | [ "exp"; p ] -> (
      match parse_floats p with
      | [ mean ] -> Ok (Latency.Exponential { mean })
      | _ -> Error (`Msg "exp takes one parameter"))
  | [ "lognormal"; p ] -> (
      match parse_floats p with
      | [ mu; sigma ] -> Ok (Latency.Lognormal { mu; sigma })
      | _ -> Error (`Msg "lognormal takes mu,sigma"))
  | [ "pareto"; p ] -> (
      match parse_floats p with
      | [ scale; shape ] -> Ok (Latency.Pareto { scale; shape })
      | _ -> Error (`Msg "pareto takes scale,shape"))
  | _ ->
      Error
        (`Msg
          "latency syntax: const:C | uniform:LO,HI | exp:MEAN | \
           lognormal:MU,SIGMA | pareto:SCALE,SHAPE")

let latency_of_string s =
  try latency_of_string s
  with Failure _ -> Error (`Msg "latency parameters must be numbers")

let latency_conv = Arg.conv (latency_of_string, Latency.pp)

let protocol =
  Arg.(
    value
    & opt protocol_conv (module Dsm_core.Opt_p : Dsm_core.Protocol.S)
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"Protocol: optp, anbkh, ws-recv, optp-ws, ws-token or optp-direct.")

let n_procs =
  Arg.(value & opt int 4 & info [ "n"; "processes" ] ~docv:"N"
         ~doc:"Number of processes.")

let m_vars =
  Arg.(value & opt int 8 & info [ "m"; "variables" ] ~docv:"M"
         ~doc:"Number of shared memory locations.")

let ops =
  Arg.(value & opt int 200 & info [ "ops" ] ~docv:"OPS"
         ~doc:"Operations per process.")

let write_ratio =
  Arg.(value & opt float 0.5 & info [ "write-ratio" ] ~docv:"R"
         ~doc:"Fraction of operations that are writes, in [0,1].")

let zipf =
  Arg.(value & opt (some float) None & info [ "zipf" ] ~docv:"S"
         ~doc:"Zipf exponent for variable choice (uniform if absent).")

let latency =
  Arg.(
    value
    & opt latency_conv
        (Latency.Lognormal { mu = log 10. -. 0.5; sigma = 1.0 })
    & info [ "latency" ] ~docv:"DIST" ~doc:"Channel latency distribution.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Seed for workload and network randomness.")

let fifo =
  Arg.(value & flag & info [ "fifo" ]
         ~doc:"Per-channel FIFO delivery (default: reordering allowed).")

let drop =
  Arg.(value & opt float 0. & info [ "drop" ] ~docv:"P"
         ~doc:"Frame drop probability; > 0 switches to the \
               reliable-channel substrate.")

let duplicate =
  Arg.(value & opt float 0. & info [ "duplicate" ] ~docv:"P"
         ~doc:"Frame duplication probability (with --drop, uses the \
               reliable-channel substrate).")

let repl_degree =
  Arg.(value & opt (some int) None
       & info [ "replication-degree" ] ~docv:"K"
           ~doc:"Replicate each location at K processes (ring layout) \
                 and run the partial-replication protocol instead.")

let spec_of ~n ~m ~ops ~write_ratio ~zipf ~seed =
  let var_dist =
    match zipf with None -> Spec.Uniform_vars | Some s -> Spec.Zipf_vars s
  in
  Spec.make ~n ~m ~ops_per_process:ops ~write_ratio ~var_dist ~seed ()

(* ---------------------------------------------------------------- *)
(* run                                                               *)
(* ---------------------------------------------------------------- *)

let run_cmd =
  let action (module P : Dsm_core.Protocol.S) n m ops write_ratio zipf
      latency seed fifo drop duplicate repl_degree =
    let spec = spec_of ~n ~m ~ops ~write_ratio ~zipf ~seed in
    Format.printf "workload: %a@.network:  %a@.@." Spec.pp spec Latency.pp
      latency;
    let finish report =
      Format.printf "audit: %a@." Checker.pp_report report;
      if Checker.is_clean report then `Ok ()
      else `Error (false, "run is not clean")
    in
    match repl_degree with
    | Some degree ->
        if drop > 0. || duplicate > 0. then
          `Error
            (false, "--replication-degree does not combine with --drop")
        else if degree < 1 || degree > n then
          `Error (false, "--replication-degree must be in 1..n")
        else begin
          let replication = Dsm_core.Replication.ring ~n ~m ~degree in
          Format.printf
            "protocol: OptP over partial replication (degree %d)@.%a@.@."
            degree Dsm_core.Replication.pp replication;
          let outcome =
            Dsm_runtime.Partial_run.run ~replication ~spec ~latency ~seed ()
          in
          Format.printf "messages: %d, t_end=%.1f@.@."
            outcome.Dsm_runtime.Partial_run.messages_sent
            outcome.Dsm_runtime.Partial_run.end_time;
          finish (Dsm_runtime.Partial_run.check outcome)
        end
    | None ->
        if drop > 0. || duplicate > 0. then begin
          Format.printf
            "protocol: %s over lossy links (drop=%g, dup=%g) healed by \
             reliable channels@.@."
            P.name drop duplicate;
          let outcome =
            Dsm_runtime.Reliable_run.run
              (module P)
              ~spec ~latency
              ~faults:{ Dsm_sim.Network.drop; duplicate }
              ~seed ()
          in
          Format.printf "%a@.@." Dsm_runtime.Reliable_run.pp_outcome
            outcome;
          finish (Checker.check outcome.Dsm_runtime.Reliable_run.execution)
        end
        else begin
          Format.printf "protocol: %s@.@." P.name;
          let outcome = Sim_run.run (module P) ~spec ~latency ~fifo ~seed () in
          Format.printf "%a@.@." Sim_run.pp_outcome outcome;
          finish (Checker.check outcome.execution)
        end
  in
  let term =
    Term.(
      ret
        (const action $ protocol $ n_procs $ m_vars $ ops $ write_ratio
       $ zipf $ latency $ seed $ fifo $ drop $ duplicate $ repl_degree))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Simulate a random workload under one protocol, audit the run \
          and print delay statistics. With --drop/--duplicate the links \
          are faulty and the reliable-channel substrate heals them; with \
          --replication-degree the partial-replication protocol runs on \
          a ring layout.")
    term

(* ---------------------------------------------------------------- *)
(* tables                                                            *)
(* ---------------------------------------------------------------- *)

let tables_cmd =
  let section =
    Arg.(
      value
      & opt (some string) None
      & info [ "section" ] ~docv:"ID"
          ~doc:"Only this section (T1, T2, F1, F2, F3, F6 or F7).")
  in
  let action section =
    let all =
      [
        ("T1", fun () -> print_string (Dsm_stats.Table_fmt.render (Experiment.table1 ())));
        ("T2", fun () -> print_string (Dsm_stats.Table_fmt.render (Experiment.table2 ())));
        ("F1", fun () -> print_string (Experiment.figure1 ()));
        ("F2", fun () -> print_string (Experiment.figure2 ()));
        ("F3", fun () -> print_string (Experiment.figure3 ()));
        ("F6", fun () -> print_string (Experiment.figure6 ()));
        ("F7", fun () -> print_string (Experiment.figure7 ()));
      ]
    in
    match section with
    | None ->
        List.iter
          (fun (id, f) ->
            Printf.printf "---- %s ----\n" id;
            f ();
            print_newline ())
          all;
        `Ok ()
    | Some id -> (
        match List.assoc_opt (String.uppercase_ascii id) all with
        | Some f ->
            f ();
            `Ok ()
        | None -> `Error (false, "unknown section " ^ id))
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Regenerate the paper's tables and figure runs.")
    Term.(ret (const action $ section))

(* ---------------------------------------------------------------- *)
(* sweep                                                             *)
(* ---------------------------------------------------------------- *)

let sweep_cmd =
  let experiment =
    Arg.(
      required
      & opt (some string) None
      & info [ "e"; "experiment" ] ~docv:"ID"
          ~doc:"Experiment id: q1 .. q11.")
  in
  let action experiment =
    let table =
      match String.lowercase_ascii experiment with
      | "q1" -> Some (Experiment.q1_sweep_processes ())
      | "q2" -> Some (Experiment.q2_sweep_latency_variance ())
      | "q3" -> Some (Experiment.q3_sweep_write_ratio ())
      | "q4" -> Some (Experiment.q4_buffer_occupancy ())
      | "q5" -> Some (Experiment.q5_apply_latency ())
      | "q6" -> Some (Experiment.q6_ws_skips ())
      | "q7" -> Some (Experiment.q7_fifo_ablation ())
      | "q8" -> Some (Experiment.q8_lossy_links ())
      | "q9" -> Some (Experiment.q9_divergence ())
      | "q10" -> Some (Experiment.q10_metadata_size ())
      | "q11" -> Some (Experiment.q11_partial_replication ())
      | _ -> None
    in
    match table with
    | Some t ->
        print_string (Dsm_stats.Table_fmt.render t);
        `Ok ()
    | None -> `Error (false, "unknown experiment " ^ experiment)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run one of the quantitative experiments.")
    Term.(ret (const action $ experiment))

(* ---------------------------------------------------------------- *)
(* graph                                                             *)
(* ---------------------------------------------------------------- *)

let graph_cmd =
  let action (module P : Dsm_core.Protocol.S) n m ops write_ratio zipf
      latency seed =
    let spec = spec_of ~n ~m ~ops ~write_ratio ~zipf ~seed in
    let outcome = Sim_run.run (module P) ~spec ~latency ~seed () in
    let co = Dsm_memory.Causal_order.compute outcome.history in
    let graph = Dsm_memory.Causality_graph.compute co in
    print_string (Dsm_memory.Causality_graph.to_graphviz graph);
    `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ protocol $ n_procs $ m_vars $ ops $ write_ratio
       $ zipf $ latency $ seed))
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Run a workload and emit the write causality graph of the \
          resulting history in Graphviz format.")
    term

let () =
  let default =
    Term.(ret (const (`Help (`Pager, None))))
  in
  let info =
    Cmd.info "dsm-sim" ~version:"1.0.0"
      ~doc:
        "Causally consistent distributed shared memory: OptP and its \
         baselines on a deterministic discrete-event simulator."
  in
  exit (Cmd.eval (Cmd.group ~default info [ run_cmd; tables_cmd; sweep_cmd; graph_cmd ]))
