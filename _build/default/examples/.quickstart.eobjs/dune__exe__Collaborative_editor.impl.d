examples/collaborative_editor.ml: Dsm_core Dsm_runtime Dsm_sim Dsm_stats Dsm_workload Format List Printf
