examples/false_causality.ml: Dsm_core Dsm_memory Dsm_runtime Dsm_sim Dsm_vclock Format Option Printf
