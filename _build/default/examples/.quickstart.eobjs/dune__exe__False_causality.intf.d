examples/false_causality.mli:
