examples/lossy_wan.ml: Dsm_core Dsm_runtime Dsm_sim Dsm_workload Format List
