examples/lossy_wan.mli:
