examples/quickstart.ml: Dsm_core Dsm_memory Dsm_runtime Dsm_vclock Format List
