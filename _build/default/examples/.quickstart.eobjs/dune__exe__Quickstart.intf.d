examples/quickstart.mli:
