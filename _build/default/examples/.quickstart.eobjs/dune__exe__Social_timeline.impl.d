examples/social_timeline.ml: Dsm_core Dsm_runtime Dsm_vclock Format Printf
