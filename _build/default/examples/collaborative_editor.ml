(* Collaborative editor: a workload study on the public API.

   Six authors edit a shared document of eight sections over a wide-area
   network with heavy-tailed latency. Each author alternates between
   reading sections and rewriting them (60% writes), with attention
   concentrated on a few hot sections (Zipf). We run the same workload
   under every protocol in the library and compare:

   - write delays (how often an edit sat in a buffer),
   - apply latency (how stale a replica's view of an edit was),
   - messages on the wire,
   - writes never propagated (writing-semantics protocols only).

   Every run is audited by the checker first — numbers from an unsound
   run would be meaningless.

   Run with:  dune exec examples/collaborative_editor.exe *)

module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Sim_run = Dsm_runtime.Sim_run
module Checker = Dsm_runtime.Checker
module Execution = Dsm_runtime.Execution
module Summary = Dsm_stats.Summary
module Table_fmt = Dsm_stats.Table_fmt

let protocols : (module Dsm_core.Protocol.S) list =
  [
    (module Dsm_core.Opt_p);
    (module Dsm_core.Anbkh);
    (module Dsm_core.Ws_receiver);
    (module Dsm_core.Opt_p_ws);
    (module Dsm_core.Opt_p_direct);
    (module Dsm_core.Ws_token);
  ]

let spec =
  Spec.make ~n:6 ~m:8 ~ops_per_process:200 ~write_ratio:0.6
    ~var_dist:(Spec.Zipf_vars 1.2)
    ~think:(Latency.Exponential { mean = 8. })
    ~seed:2026 ()

(* a wide-area network: 20 time-unit base propagation plus a
   heavy-tailed jitter — overtaking is routine *)
let wan =
  Latency.Shifted
    { base = 20.; jitter = Latency.Pareto { scale = 2.; shape = 1.6 } }

let () =
  Format.printf "== Collaborative editor ==@.@.workload: %a@.network: %a@.@."
    Spec.pp spec Latency.pp wan;
  let table =
    Table_fmt.create ~header:
      [
        "protocol";
        "delays";
        "unnecessary";
        "apply latency (mean)";
        "apply latency (p99)";
        "messages";
        "writes skipped";
      ]
      ()
  in
  Table_fmt.set_align table
    [
      Table_fmt.Left;
      Table_fmt.Right;
      Table_fmt.Right;
      Table_fmt.Right;
      Table_fmt.Right;
      Table_fmt.Right;
      Table_fmt.Right;
    ];
  List.iter
    (fun ((module P : Dsm_core.Protocol.S) as p) ->
      let outcome = Sim_run.run p ~spec ~latency:wan ~seed:7 () in
      let report = Checker.check outcome.execution in
      if not (Checker.is_clean report) then
        Format.kasprintf failwith "%s failed the audit: %a" P.name
          Checker.pp_report report;
      let lat = Summary.of_list (Execution.apply_latencies outcome.execution) in
      Table_fmt.add_row table
        [
          P.name;
          string_of_int report.Checker.total_delays;
          string_of_int report.Checker.unnecessary_delays;
          Printf.sprintf "%.1f" (Summary.mean lat);
          Printf.sprintf "%.1f" (Summary.percentile lat 99.);
          string_of_int outcome.messages_sent;
          string_of_int outcome.skipped_writes;
        ])
    protocols;
  print_string (Table_fmt.render table);
  print_endline
    "\nReading the table: OptP never delays an edit unnecessarily \
     (column 3 is 0 by Theorem 4), so its replicas see edits sooner \
     than causal broadcast's. The writing-semantics variants trade \
     completeness (skipped writes) for even less buffering; the token \
     protocol trades receiver-side delays for sender-side batching."
