(* Edge caches: partial replication in a geo-distributed setting.

   Six edge sites serve twelve content descriptors. Each descriptor is
   cached at only three sites (a ring layout), so a write to it is
   multicast to its replicas alone — no site pays for content it never
   serves. Causality still matters across descriptors: a site that
   reads descriptor A and then updates descriptor B creates a
   dependency that B's replicas must respect even if they do not cache
   A. The matrix-clock OptP variant (Opt_p_partial) handles exactly
   that, and the replication-aware checker audits the run.

   The same workload is also run under full replication for the cost
   comparison.

   Run with:  dune exec examples/edge_cache.exe *)

module Replication = Dsm_core.Replication
module Partial_run = Dsm_runtime.Partial_run
module Checker = Dsm_runtime.Checker
module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Table_fmt = Dsm_stats.Table_fmt

let n = 6
let m = 12

let spec =
  Spec.make ~n ~m ~ops_per_process:150 ~write_ratio:0.4
    ~var_dist:(Spec.Zipf_vars 0.9)
    ~think:(Latency.Exponential { mean = 6. })
    ~seed:808 ()

let wan =
  Latency.Shifted { base = 12.; jitter = Latency.Exponential { mean = 8. } }

let run degree =
  let replication = Replication.ring ~n ~m ~degree in
  let outcome = Partial_run.run ~replication ~spec ~latency:wan ~seed:5 () in
  let report = Partial_run.check outcome in
  if not (Checker.is_clean report) then
    Format.kasprintf failwith "degree %d failed the audit: %a" degree
      Checker.pp_report report;
  (outcome, report)

let () =
  Format.printf "== Edge caches: partial replication ==@.@.";
  Format.printf "workload: %a@.network:  %a@.@." Spec.pp spec Latency.pp wan;
  let table =
    Table_fmt.create
      ~header:
        [
          "copies per descriptor";
          "messages";
          "delays";
          "unnecessary";
          "peak buffer";
        ]
      ()
  in
  Table_fmt.set_align table
    [ Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
      Table_fmt.Right ];
  List.iter
    (fun degree ->
      let outcome, report = run degree in
      Table_fmt.add_row table
        [
          (if degree = n then Printf.sprintf "%d (full)" degree
           else string_of_int degree);
          string_of_int outcome.Partial_run.messages_sent;
          string_of_int report.Checker.total_delays;
          string_of_int report.Checker.unnecessary_delays;
          string_of_int
            (Array.fold_left max 0 outcome.Partial_run.buffer_high_watermarks);
        ])
    [ 6; 4; 3; 2 ];
  print_string (Table_fmt.render table);
  print_endline
    "\nEvery row passed the replication-aware audit: causal order holds \
     on each site's observable operations, with zero unnecessary delays \
     (the merge-on-read discipline survives partial replication), while \
     the wire bill shrinks with the replica count."
