(* False causality, step by step.

   The paper's central observation (§3.6 and Figures 3/6): causal
   broadcast orders apply events by the happened-before relation of the
   sends, which is a strict superset of the cause-effect relation ↦co of
   the memory — so it delays writes that have no actual dependency.

   The witness is the write w2(x2)b of history Ĥ₁. Its issuer p2 had
   already APPLIED p1's second write w1(x1)c when it wrote b, but it
   never READ it:

   - ANBKH's Fidge–Mattern timestamp of b is [2,1,0] — "both writes of
     p1 precede me" — because the vector absorbed w1(x1)c at delivery;
   - OptP's Write_co of b is [1,1,0] — only the write p2 actually read.

   At p3, where c's message is slow, that one component is the
   difference between buffering b for 17 extra time units and applying
   it immediately after a.

   Run with:  dune exec examples/false_causality.exe *)

module PS = Dsm_runtime.Paper_scenarios
module Experiment = Dsm_runtime.Experiment
module Execution = Dsm_runtime.Execution
module Checker = Dsm_runtime.Checker
module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock

let show_run label p scenario =
  Printf.printf "---- %s ----\n" label;
  let outcome = PS.run p scenario in
  Format.printf "p3's sequence: %a@."
    (Execution.pp_process outcome.execution 2)
    ();
  let b_applied =
    Option.get (Execution.apply_time outcome.execution ~proc:2 ~dot:PS.w2b)
  in
  let b_received =
    Option.get (Execution.receipt_time outcome.execution ~proc:2 ~dot:PS.w2b)
  in
  Format.printf "b received at t=%a, applied at t=%a (buffered %.1f)@."
    Dsm_sim.Sim_time.pp b_received Dsm_sim.Sim_time.pp b_applied
    (Dsm_sim.Sim_time.diff b_applied b_received);
  let report = Checker.check outcome.execution in
  Format.printf "delays: %d necessary, %d unnecessary@.@."
    report.Checker.necessary_delays report.Checker.unnecessary_delays;
  outcome

let () =
  print_endline "== False causality: ANBKH vs OptP on the same pattern ==\n";

  (* ANBKH under the Figure 3 schedule *)
  let anbkh = show_run "ANBKH (Figure 3)" (module Dsm_core.Anbkh) PS.figure3 in

  (* the send timestamps ANBKH computed, recovered from the run *)
  let vt = Experiment.send_vectors anbkh.execution in
  Format.printf "ANBKH's timestamp of b: vt = %a   (claims c precedes b)@."
    V.pp (Dot.Map.find PS.w2b vt);

  (* OptP under the same message pattern (Figure 6) *)
  let optp = show_run "\nOptP (Figure 6)" (module Dsm_core.Opt_p) PS.figure6 in
  let wv = Dsm_memory.Write_vectors.compute optp.history in
  Format.printf "OptP's timestamp of b: Write_co = %a   (b depends only on a)@."
    V.pp (Dsm_memory.Write_vectors.of_write wv PS.w2b);

  (* the formal ground truth: b and c are concurrent *)
  let co = Dsm_memory.Causal_order.compute PS.h1_reference in
  Format.printf "@.Ground truth: w1(x1)c ∥co w2(x2)b? %b@."
    (Dsm_memory.Causal_order.write_concurrent co PS.w1c PS.w2b);
  print_endline
    "\nBoth protocols had to hold b until a arrived; ANBKH additionally \
     held it for c — compare the buffered times above. That extension \
     is false causality: the optimality criterion (Definition 5) allows \
     delaying b only behind writes in its ↦co-past, and c is not in it. \
     (Under the Figure 2 pattern, where a is already applied when b \
     arrives, ANBKH's whole delay is classified unnecessary — run \
     'dune exec bench/main.exe -- --only F2' to see it.) OptP is \
     exactly the protocol the criterion prescribes."
