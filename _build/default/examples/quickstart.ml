(* Quickstart: the paper's worked example Ĥ₁, end to end.

   Three processes share two variables through the OptP protocol over a
   simulated network. We script the exact message timing of the paper's
   Figure 6, run it, print every process's event sequence, reconstruct
   the abstract history, and let the independent checker confirm that
   the run is causally consistent and that the single write delay it
   contains was necessary.

   Run with:  dune exec examples/quickstart.exe *)

module PS = Dsm_runtime.Paper_scenarios
module Execution = Dsm_runtime.Execution
module Checker = Dsm_runtime.Checker

let () =
  print_endline "== Quickstart: OptP on the paper's example history ==\n";

  (* 1. run OptP under the Figure 6 schedule *)
  let outcome = PS.run (module Dsm_core.Opt_p) PS.figure6 in
  print_endline "Per-process event sequences ('*' marks a delayed apply):";
  for proc = 0 to PS.n - 1 do
    Format.printf "  p%d: %a@." (proc + 1)
      (Execution.pp_process outcome.execution proc)
      ()
  done;

  print_endline "\nSpace-time diagram:";
  print_string (Dsm_runtime.Timeline.render ~width:64 outcome.execution);

  (* 2. the abstract history the run produced *)
  print_endline "\nReconstructed history:";
  Format.printf "%a@." Dsm_memory.History.pp outcome.history;
  assert (PS.h1_matches outcome.history);
  print_endline "(matches the paper's H1 exactly)";

  (* 3. independent audit *)
  let report = Checker.check outcome.execution in
  Format.printf "\nChecker: %a@." Checker.pp_report report;
  assert (Checker.is_clean report);
  assert (report.unnecessary_delays = 0);

  (* 4. causal consistency, from first principles *)
  let co = Dsm_memory.Causal_order.compute outcome.history in
  Format.printf "Causally consistent: %b@."
    (Dsm_memory.Legality.is_causally_consistent co);

  (* 5. the Write_co timestamps that made it work *)
  let wv = Dsm_memory.Write_vectors.compute outcome.history in
  print_endline "\nWrite_co timestamps (Theorem 1: they characterize ↦co):";
  List.iter
    (fun (w : Dsm_memory.Operation.write) ->
      Format.printf "  %a.Write_co = %a@." Dsm_memory.Operation.pp
        (Dsm_memory.Operation.Write w) Dsm_vclock.Vector_clock.pp
        (Dsm_memory.Write_vectors.of_write wv w.wdot))
    (Dsm_memory.History.writes outcome.history)
