lib/core/anbkh.ml: Dsm_sim Dsm_vclock Format List Protocol Replica_store
