lib/core/anbkh.mli: Dsm_vclock Protocol
