lib/core/opt_p.ml: Array Dsm_sim Dsm_vclock Format List Protocol Replica_store
