lib/core/opt_p.mli: Dsm_vclock Protocol
