lib/core/opt_p_direct.ml: Array Dsm_sim Dsm_vclock Format Fun Hashtbl List Protocol Replica_store
