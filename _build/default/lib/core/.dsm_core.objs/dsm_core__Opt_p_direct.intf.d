lib/core/opt_p_direct.mli: Dsm_vclock Protocol
