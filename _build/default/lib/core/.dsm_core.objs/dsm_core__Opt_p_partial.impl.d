lib/core/opt_p_partial.ml: Array Dsm_sim Dsm_vclock List Printf Protocol Replica_store Replication
