lib/core/opt_p_partial.mli: Dsm_memory Dsm_vclock Protocol Replication
