lib/core/opt_p_ws.ml: Array Dsm_sim Dsm_vclock Format Hashtbl List Printf Protocol Replica_store
