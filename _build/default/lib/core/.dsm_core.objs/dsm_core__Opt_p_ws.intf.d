lib/core/opt_p_ws.mli: Dsm_vclock Protocol
