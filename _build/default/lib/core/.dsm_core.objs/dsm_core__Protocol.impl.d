lib/core/protocol.ml: Dsm_memory Dsm_vclock Format
