lib/core/protocol.mli: Dsm_memory Dsm_vclock Format
