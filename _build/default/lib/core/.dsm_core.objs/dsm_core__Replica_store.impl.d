lib/core/replica_store.ml: Array Dsm_memory Dsm_vclock Format Printf
