lib/core/replica_store.mli: Dsm_memory Dsm_vclock Format
