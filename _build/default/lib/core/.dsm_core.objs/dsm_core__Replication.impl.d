lib/core/replication.ml: Array Dsm_sim Format Fun List Printf String
