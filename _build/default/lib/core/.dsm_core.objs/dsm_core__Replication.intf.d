lib/core/replication.mli: Dsm_sim Format
