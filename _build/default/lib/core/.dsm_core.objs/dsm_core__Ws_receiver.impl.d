lib/core/ws_receiver.ml: Dsm_sim Dsm_vclock Format Hashtbl List Printf Protocol Replica_store
