lib/core/ws_receiver.mli: Dsm_vclock Protocol
