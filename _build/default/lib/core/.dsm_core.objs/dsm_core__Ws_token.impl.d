lib/core/ws_token.ml: Dsm_sim Dsm_vclock Format Int List Protocol Replica_store
