lib/core/ws_token.mli: Dsm_vclock Protocol
