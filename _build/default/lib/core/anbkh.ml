module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Mailbox = Dsm_sim.Mailbox
open Protocol

type message = { var : int; value : int; dot : Dot.t; vt : V.t }
type msg = message

type t = {
  cfg : config;
  me : int;
  store : Replica_store.t;
  delivered : V.t;  (* per-issuer count of writes applied here *)
  vt : V.t;  (* Fidge-Mattern clock over write-send events *)
  buffer : (int * msg) Mailbox.t;
}

let name = "ANBKH"

let create cfg ~me =
  if me < 0 || me >= cfg.n then
    invalid_arg "Anbkh.create: process id out of range";
  {
    cfg;
    me;
    store = Replica_store.create ~m:cfg.m;
    delivered = V.create cfg.n;
    vt = V.create cfg.n;
    buffer = Mailbox.create ();
  }

let me t = t.me

let write t ~var ~value =
  V.tick t.vt t.me;
  let vt = V.copy t.vt in
  let dot = Dot.of_clock vt t.me in
  let m = { var; value; dot; vt } in
  Replica_store.apply t.store ~var ~value ~dot;
  V.tick t.delivered t.me;
  let applied =
    [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
  in
  (dot, effects ~applied ~to_send:[ Broadcast m ] ())

(* reads are purely local: the vector is a message-ordering device and
   does not change on reads *)
let read t ~var = Replica_store.read t.store ~var

let deliverable t ~src (m : msg) =
  let ok = ref (V.get t.delivered src = V.get m.vt src - 1) in
  for k = 0 to t.cfg.n - 1 do
    if k <> src && V.get m.vt k > V.get t.delivered k then ok := false
  done;
  !ok

let apply_msg t ~src m ~from_buffer =
  Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
  V.tick t.delivered src;
  (* causal broadcast: absorb the sender's knowledge unconditionally —
     the source of false causality w.r.t. ↦co *)
  V.merge_into t.vt m.vt;
  { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

let drain t =
  (* apply inside the loop: each apply can enable further buffered
     messages (chained unblocking), so deliverability must be re-tested
     against the post-apply state *)
  let rec go acc =
    match
      Mailbox.take_first t.buffer ~f:(fun (src, m) -> deliverable t ~src m)
    with
    | Some (src, m) -> go (apply_msg t ~src m ~from_buffer:true :: acc)
    | None -> List.rev acc
  in
  go []

let receive t ~src m =
  if deliverable t ~src m then begin
    let first = apply_msg t ~src m ~from_buffer:false in
    effects ~applied:(first :: drain t) ()
  end
  else begin
    Mailbox.add t.buffer (src, m);
    no_effects
  end

let buffered t = Mailbox.length t.buffer
let buffer_high_watermark t = Mailbox.high_watermark t.buffer
let total_buffered t = Mailbox.total_buffered t.buffer
let applied_vector t = V.copy t.delivered
let local_clock t = V.copy t.vt

let pp_msg ppf m =
  Format.fprintf ppf "m(x%d, %d, %a)" (m.var + 1) m.value V.pp m.vt

let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]
