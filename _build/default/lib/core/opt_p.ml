module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Mailbox = Dsm_sim.Mailbox
open Protocol

type message = { var : int; value : int; dot : Dot.t; wco : V.t }
type msg = message

type t = {
  cfg : config;
  me : int;
  store : Replica_store.t;
  apply_cnt : V.t;  (* the paper's Apply *)
  write_co : V.t;  (* the paper's Write_co *)
  last_write_on : V.t array;  (* the paper's LastWriteOn *)
  buffer : (int * msg) Mailbox.t;  (* (src, message) *)
}

let name = "OptP"

let create cfg ~me =
  if me < 0 || me >= cfg.n then
    invalid_arg "Opt_p.create: process id out of range";
  {
    cfg;
    me;
    store = Replica_store.create ~m:cfg.m;
    apply_cnt = V.create cfg.n;
    write_co = V.create cfg.n;
    last_write_on = Array.init cfg.m (fun _ -> V.create cfg.n);
    buffer = Mailbox.create ();
  }

let me t = t.me

(* Figure 4: WRITE(x, v) *)
let write t ~var ~value =
  V.tick t.write_co t.me;
  let wco = V.copy t.write_co in
  let dot = Dot.of_clock wco t.me in
  let m = { var; value; dot; wco } in
  Replica_store.apply t.store ~var ~value ~dot;
  V.tick t.apply_cnt t.me;
  t.last_write_on.(var) <- wco;
  let applied = [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ] in
  (dot, effects ~applied ~to_send:[ Broadcast m ] ())

(* Figure 5: READ(x) — merge LastWriteOn[x] into Write_co, then return *)
let read t ~var =
  V.merge_into t.write_co t.last_write_on.(var);
  Replica_store.read t.store ~var

(* Figure 5, line 2: the wait condition *)
let deliverable t ~src m =
  let ok = ref (V.get t.apply_cnt src = V.get m.wco src - 1) in
  for k = 0 to t.cfg.n - 1 do
    if k <> src && V.get m.wco k > V.get t.apply_cnt k then ok := false
  done;
  !ok

(* Figure 5, lines 3-5 of the synchronization thread *)
let apply_msg t ~src m ~from_buffer =
  Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
  V.tick t.apply_cnt src;
  t.last_write_on.(m.var) <- m.wco;
  { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

let drain t =
  (* apply inside the loop: each apply can enable further buffered
     messages (chained unblocking), so deliverability must be re-tested
     against the post-apply state *)
  let rec go acc =
    match
      Mailbox.take_first t.buffer ~f:(fun (src, m) -> deliverable t ~src m)
    with
    | Some (src, m) -> go (apply_msg t ~src m ~from_buffer:true :: acc)
    | None -> List.rev acc
  in
  go []

let receive t ~src m =
  if deliverable t ~src m then begin
    let first = apply_msg t ~src m ~from_buffer:false in
    effects ~applied:(first :: drain t) ()
  end
  else begin
    Mailbox.add t.buffer (src, m);
    no_effects
  end

let buffered t = Mailbox.length t.buffer
let buffer_high_watermark t = Mailbox.high_watermark t.buffer
let total_buffered t = Mailbox.total_buffered t.buffer
let applied_vector t = V.copy t.apply_cnt
let local_clock t = V.copy t.write_co
let last_write_on t ~var =
  if var < 0 || var >= t.cfg.m then
    invalid_arg "Opt_p.last_write_on: variable out of range";
  V.copy t.last_write_on.(var)

let pp_msg ppf m =
  Format.fprintf ppf "m(x%d, %d, %a)" (m.var + 1) m.value V.pp m.wco

let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]
