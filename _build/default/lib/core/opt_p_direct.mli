(** OptP with direct-dependency tracking.

    A metadata-compression variant of {!Opt_p} in the style of Prakash,
    Raynal & Singhal (the paper's reference [13], where the causality
    graph was introduced for causal deliveries "with reduced
    information"). Instead of the full [n]-entry [Write_co] vector, a
    write message carries only the write's {e immediate} [↦co]
    predecessors — the covering set of the write causality graph, at
    most one dot per process, and typically far fewer on workloads with
    sparse causality.

    The receiver reconstructs the full [Write_co] of an incoming write
    from the (already applied, hence locally known) vectors of its
    dependencies: [w.Write_co = max over deps of dep.Write_co], with the
    issuer component set to [w]'s own sequence number. Deliverability —
    "all listed dependencies applied, sender gap-free" — is equivalent
    to OptP's vector condition, so the protocol inherits OptP's delay
    optimality; the test-suite asserts run-for-run equality of the two
    protocols' delay behaviour on shared seeds.

    The memory cost is a per-process table of applied writes' vectors
    ([seen]); the wire saving is what experiment Q10 measures. *)

type message = {
  var : int;
  value : int;
  dot : Dsm_vclock.Dot.t;
  deps : Dsm_vclock.Dot.t list;
      (** immediate [↦co] predecessors of this write *)
}

include Protocol.S with type msg = message

val deliverable : t -> src:int -> msg -> bool

val total_dep_entries : t -> int
(** Sum of [deps] lengths over all messages this process has sent —
    the wire-metadata counter Q10 compares against [n × writes]. *)
