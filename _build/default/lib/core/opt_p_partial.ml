module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Mailbox = Dsm_sim.Mailbox
open Protocol

type message = {
  var : int;
  value : int;
  dot : Dot.t;
  var_seq : int;
  know : V.t array;
}

type t = {
  repl : Replication.t;
  me : int;
  store : Replica_store.t;  (* indexed by global var id; foreign vars unused *)
  applied : V.t array;  (* per var: applied write counts per issuer *)
  know : V.t array;  (* per var: last known write index per issuer *)
  last_write_know : V.t array array;
      (* per replicated var: the matrix of the last write applied to it *)
  buffer : (int * message) Mailbox.t;
  mutable next_global_seq : int;
}

let matrix n m = Array.init m (fun _ -> V.create n)

let copy_matrix mx = Array.map V.copy mx

let merge_matrix_into dst src =
  Array.iteri (fun i row -> V.merge_into row src.(i)) dst

let create repl ~me =
  let n = Replication.n repl and m = Replication.m repl in
  if me < 0 || me >= n then
    invalid_arg "Opt_p_partial.create: process id out of range";
  {
    repl;
    me;
    store = Replica_store.create ~m;
    applied = matrix n m;
    know = matrix n m;
    last_write_know = Array.init m (fun _ -> matrix n m);
    buffer = Mailbox.create ();
    next_global_seq = 1;
  }

let me t = t.me
let replication t = t.repl

let check_replicated t ~var name =
  if not (Replication.replicates t.repl ~proc:t.me ~var) then
    invalid_arg
      (Printf.sprintf "Opt_p_partial.%s: p%d does not replicate x%d" name
         (t.me + 1) (var + 1))

let write t ~var ~value =
  check_replicated t ~var "write";
  V.tick t.know.(var) t.me;
  let var_seq = V.get t.know.(var) t.me in
  let dot = Dot.make ~replica:t.me ~seq:t.next_global_seq in
  t.next_global_seq <- t.next_global_seq + 1;
  let know = copy_matrix t.know in
  let m = { var; value; dot; var_seq; know } in
  Replica_store.apply t.store ~var ~value ~dot;
  V.tick t.applied.(var) t.me;
  t.last_write_know.(var) <- know;
  let dests =
    List.filter (fun p -> p <> t.me) (Replication.replicas_of t.repl ~var)
  in
  let record =
    { adot = dot; avar = var; avalue = value; afrom_buffer = false }
  in
  (dot, m, dests, record)

let read t ~var =
  check_replicated t ~var "read";
  (* merge-on-read, one level up: absorb the last write's matrix *)
  merge_matrix_into t.know t.last_write_know.(var);
  Replica_store.read t.store ~var

(* applicable iff the sender's chain on the written location is
   gap-free here and every row of a location we replicate is covered *)
let deliverable t ~src (msg : message) =
  msg.var_seq = V.get t.applied.(msg.var) src + 1
  && List.for_all
       (fun y ->
         let rec ok k =
           k < 0
           || ((k = src && y = msg.var)
               (* the sender component of the written row is the
                  gap condition above *)
              || V.get msg.know.(y) k <= V.get t.applied.(y) k)
              && ok (k - 1)
         in
         ok (Replication.n t.repl - 1))
       (Replication.vars_of t.repl ~proc:t.me)

let apply_msg t ~src (msg : message) ~from_buffer =
  Replica_store.apply t.store ~var:msg.var ~value:msg.value ~dot:msg.dot;
  V.tick t.applied.(msg.var) src;
  t.last_write_know.(msg.var) <- copy_matrix msg.know;
  {
    adot = msg.dot;
    avar = msg.var;
    avalue = msg.value;
    afrom_buffer = from_buffer;
  }

let drain t =
  let rec go acc =
    match
      Mailbox.take_first t.buffer ~f:(fun (src, m) -> deliverable t ~src m)
    with
    | Some (src, m) -> go (apply_msg t ~src m ~from_buffer:true :: acc)
    | None -> List.rev acc
  in
  go []

let receive t ~src msg =
  if deliverable t ~src msg then begin
    let first = apply_msg t ~src msg ~from_buffer:false in
    first :: drain t
  end
  else begin
    Mailbox.add t.buffer (src, msg);
    []
  end

let buffered t = Mailbox.length t.buffer
let buffer_high_watermark t = Mailbox.high_watermark t.buffer
let total_buffered t = Mailbox.total_buffered t.buffer
let applied_matrix t = copy_matrix t.applied
