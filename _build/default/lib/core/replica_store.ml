module Operation = Dsm_memory.Operation
module Dot = Dsm_vclock.Dot

type slot = { mutable value : Operation.value; mutable writer : Dot.t option }
type t = { slots : slot array; mutable applies : int }

let create ~m =
  if m <= 0 then invalid_arg "Replica_store.create: m must be positive";
  {
    slots = Array.init m (fun _ -> { value = Operation.Bot; writer = None });
    applies = 0;
  }

let m t = Array.length t.slots

let slot t var name =
  if var < 0 || var >= Array.length t.slots then
    invalid_arg (Printf.sprintf "Replica_store.%s: variable out of range" name);
  t.slots.(var)

let apply t ~var ~value ~dot =
  let s = slot t var "apply" in
  s.value <- Operation.Val value;
  s.writer <- Some dot;
  t.applies <- t.applies + 1

let read t ~var =
  let s = slot t var "read" in
  (s.value, s.writer)

let last_writer t ~var = (slot t var "last_writer").writer
let apply_count t = t.applies
let snapshot t = Array.map (fun s -> (s.value, s.writer)) t.slots

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "x%d = %a%a" (i + 1) Operation.pp_value s.value
        (fun ppf -> function
          | None -> ()
          | Some d -> Format.fprintf ppf " (by %a)" Dot.pp d)
        s.writer)
    t.slots;
  Format.fprintf ppf "@]"
