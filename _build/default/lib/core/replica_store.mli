(** Local replicated memory (the copies [x₁ⁱ … x_mⁱ] of §3.1).

    Each process holds a full copy of the [m] shared locations. A store
    remembers, for every location, the current value and the identity
    of the write that produced it, so reads can report the read-from
    relation exactly. All locations start at ⊥. *)

type t

val create : m:int -> t
(** @raise Invalid_argument unless [m > 0]. *)

val m : t -> int

val apply : t -> var:int -> value:int -> dot:Dsm_vclock.Dot.t -> unit
(** Overwrites the location; the apply event of §3.2.
    @raise Invalid_argument on bad variable index. *)

val read : t -> var:int -> Dsm_memory.Operation.value * Dsm_vclock.Dot.t option
(** Current value and producing write ([None] — value ⊥ — if never
    written). *)

val last_writer : t -> var:int -> Dsm_vclock.Dot.t option

val apply_count : t -> int
(** Total applies ever performed on this store. *)

val snapshot : t -> (Dsm_memory.Operation.value * Dsm_vclock.Dot.t option) array
(** Per-location view, for debugging and invariant checks. *)

val pp : Format.formatter -> t -> unit
