type t = {
  n : int;
  m : int;
  table : bool array array;  (* table.(proc).(var) *)
}

let of_table ~n ~m table =
  Array.iteri
    (fun p row ->
      if not (Array.exists Fun.id row) then
        invalid_arg
          (Printf.sprintf
             "Replication: process %d replicates no variable" p))
    table;
  for var = 0 to m - 1 do
    if not (Array.exists (fun row -> row.(var)) table) then
      invalid_arg
        (Printf.sprintf "Replication: variable %d has no replica" var)
  done;
  { n; m; table }

let full ~n ~m =
  if n <= 0 || m <= 0 then invalid_arg "Replication.full: need n, m > 0";
  { n; m; table = Array.init n (fun _ -> Array.make m true) }

let of_sets ~n ~m vars_of_proc =
  if n <= 0 || m <= 0 then invalid_arg "Replication.of_sets: need n, m > 0";
  if Array.length vars_of_proc <> n then
    invalid_arg "Replication.of_sets: one variable list per process";
  let table = Array.init n (fun _ -> Array.make m false) in
  Array.iteri
    (fun p vars ->
      List.iter
        (fun v ->
          if v < 0 || v >= m then
            invalid_arg "Replication.of_sets: variable index out of range";
          table.(p).(v) <- true)
        vars)
    vars_of_proc;
  of_table ~n ~m table

let ring ~n ~m ~degree =
  if n <= 0 || m <= 0 then invalid_arg "Replication.ring: need n, m > 0";
  if degree < 1 || degree > n then
    invalid_arg "Replication.ring: degree must be in 1..n";
  let table = Array.init n (fun _ -> Array.make m false) in
  for var = 0 to m - 1 do
    for k = 0 to degree - 1 do
      table.((var + k) mod n).(var) <- true
    done
  done;
  of_table ~n ~m table

let random ~n ~m ~degree ~rng =
  if n <= 0 || m <= 0 then invalid_arg "Replication.random: need n, m > 0";
  if degree < 1 || degree > n then
    invalid_arg "Replication.random: degree must be in 1..n";
  let table = Array.init n (fun _ -> Array.make m false) in
  for var = 0 to m - 1 do
    let procs = Array.init n Fun.id in
    Dsm_sim.Rng.shuffle rng procs;
    for k = 0 to degree - 1 do
      table.(procs.(k)).(var) <- true
    done
  done;
  (* a process may end up with no variable; give it one at random *)
  Array.iter
    (fun row ->
      if not (Array.exists Fun.id row) then
        row.(Dsm_sim.Rng.int rng m) <- true)
    table;
  of_table ~n ~m table

let n t = t.n
let m t = t.m

let replicates t ~proc ~var =
  if proc < 0 || proc >= t.n then
    invalid_arg "Replication.replicates: process out of range";
  if var < 0 || var >= t.m then
    invalid_arg "Replication.replicates: variable out of range";
  t.table.(proc).(var)

let vars_of t ~proc =
  if proc < 0 || proc >= t.n then
    invalid_arg "Replication.vars_of: process out of range";
  List.filter (fun v -> t.table.(proc).(v)) (List.init t.m Fun.id)

let replicas_of t ~var =
  if var < 0 || var >= t.m then
    invalid_arg "Replication.replicas_of: variable out of range";
  List.filter (fun p -> t.table.(p).(var)) (List.init t.n Fun.id)

let degree t ~var = List.length (replicas_of t ~var)

let is_full t =
  Array.for_all (fun row -> Array.for_all Fun.id row) t.table

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun p row ->
      if p > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "p%d: {%s}" (p + 1)
        (String.concat ", "
           (List.filter_map
              (fun v -> if row.(v) then Some (Printf.sprintf "x%d" (v + 1)) else None)
              (List.init t.m Fun.id))))
    t.table;
  Format.fprintf ppf "@]"
