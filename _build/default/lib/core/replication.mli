(** Replication maps for partially replicated memory.

    The paper's model replicates every location at every process
    (§3.1). Raynal & Singhal's partially replicated causal objects
    (the paper's reference [14]) relax this: each process holds copies
    of a subset of the locations, writes are multicast only to the
    processes replicating the written location, and a process may only
    operate on locations it replicates. This module is the shared
    vocabulary: who replicates what, with validation and standard
    constructions. *)

type t

val full : n:int -> m:int -> t
(** Every process replicates every variable (the paper's model). *)

val of_sets : n:int -> m:int -> int list array -> t
(** [of_sets ~n ~m vars_of_proc] — element [p] lists the variables
    process [p] replicates.
    @raise Invalid_argument unless the array has length [n], every
    variable index is in range, every process replicates at least one
    variable, and every variable is replicated by at least one process
    (an unreplicated variable could never be written or read). *)

val ring : n:int -> m:int -> degree:int -> t
(** Variable [x] is replicated by processes
    [x mod n, (x+1) mod n, …, (x+degree-1) mod n] — a standard
    k-replication layout.
    @raise Invalid_argument unless [1 <= degree <= n]. *)

val random : n:int -> m:int -> degree:int -> rng:Dsm_sim.Rng.t -> t
(** Each variable gets [degree] distinct replicas chosen uniformly. *)

val n : t -> int
val m : t -> int

val replicates : t -> proc:int -> var:int -> bool
val vars_of : t -> proc:int -> int list
(** Ascending. *)

val replicas_of : t -> var:int -> int list
(** Ascending. *)

val degree : t -> var:int -> int

val is_full : t -> bool

val pp : Format.formatter -> t -> unit
