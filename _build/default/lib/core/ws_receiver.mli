(** Receiver-side writing semantics (Raynal–Singhal '98 / Baldoni,
    Spaziani, Tucci-Piergiovanni & Tulone '02; §3.6 of the paper).

    ANBKH extended with the {e writing-semantics} heuristic: a process
    may apply a write [w(x)] even though an earlier write [w'(x)] with
    [w' ↦co w] has not been applied, provided no write [w''(y)], [y ≠ x],
    is causally interposed ([w' ↦co w'' ↦co w]). The overwritten [w'] is
    then {e skipped}: its apply is considered logically performed
    immediately before [w]'s, and its message is discarded on arrival.

    Reconstruction notes (the 2002/1998 papers differ in wire format;
    the paper under reproduction only fixes the heuristic's semantics):

    - each write message carries [prev] — the identity of the last write
      on the same variable applied at the writer when it wrote — and a
      sender-computed flag [can_skip] stating that no write on another
      variable lies causally between [prev] and this write. The sender
      can compute the flag exactly because, by safety, it has applied
      every write in its causal past; we use its happened-before vector,
      which over-approximates [↦co] and therefore only makes the flag
      {e more} conservative (skips we forgo, never unsafe skips);
    - a skip is performed only when the overwritten write is the very
      next undelivered write of its issuer (keeping the per-issuer
      gap-free counting of the delivery condition sound), and only
      atomically with the apply of the overwriting write — skipping
      without applying the overwriter would let a read observe a value
      older than the skipped write while its causal successors are
      already visible.

    Because skipped writes are never applied at the skipping process,
    runs of this protocol can violate the class-[𝒫] requirement that
    every write is applied everywhere — exactly the paper's argument for
    why writing-semantics protocols fall outside [𝒫]. The [skipped]
    field of the returned effects certifies each such event. *)

type message = {
  var : int;
  value : int;
  dot : Dsm_vclock.Dot.t;
  vt : Dsm_vclock.Vector_clock.t;
  prev : Dsm_vclock.Dot.t option;
      (** last write on [var] applied at the writer at send time *)
  can_skip : bool;
      (** sender-verified: no write on another variable causally
          between [prev] and this write *)
}

include Protocol.S with type msg = message

val skipped_total : t -> int
(** Number of writes this process skipped (never applied locally). *)

val deliverable : t -> src:int -> msg -> bool
