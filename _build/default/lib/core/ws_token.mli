(** Token-based sender-side writing semantics (Jimenez, Fernández &
    Cholvi '01; §3.6 of the paper).

    A token circulates on a logical ring. A process applies its own
    writes locally at once, but {e propagates} them only while holding
    the token — and then sends only the {e last} write per variable
    accumulated since its previous turn, so intermediate writes on the
    same variable are never seen remotely (sender-side overwriting).
    Flushed batches are totally ordered by a round number (one round per
    flush, in token order), so receivers apply batches in round order
    and need no vector clocks at all.

    Consequences, as the paper notes: some writes are never applied at
    all processes (outside class [𝒫]); write {e delays} at receivers are
    traded for {e propagation} delays at senders (a write waits for the
    token before becoming visible).

    Engineering addition for simulation quiescence (documented in
    DESIGN.md): after [n] consecutive idle hops the token {e parks} at
    its holder, which broadcasts [Parked]; a process that later has
    pending updates sends [Nudge] to the parked holder to restart
    circulation. This changes no ordering property — it only stops the
    token from spinning through an idle system forever. *)

type item = {
  var : int;
  value : int;
  dot : Dsm_vclock.Dot.t;
  covered : Dsm_vclock.Dot.t list;
      (** writes this item overwrote at the sender (never propagated);
          receivers account them as skips, logically applied
          immediately before this item *)
}

type message =
  | Batch of { round : int; items : item list }
      (** One flush: the holder's last write per dirty variable. *)
  | Token of { next_round : int; idle_hops : int }
  | Parked of { holder : int }
  | Nudge

include Protocol.S with type msg = message

val has_token : t -> bool
val is_parked : t -> bool
val pending_count : t -> int
(** Dirty variables waiting for the token at this process. *)

val skipped_total : t -> int
(** Own writes overwritten before ever being propagated. *)

val rounds_flushed : t -> int
(** Batches this process has flushed. *)
