lib/memory/bitset.ml: Array Bytes List Printf
