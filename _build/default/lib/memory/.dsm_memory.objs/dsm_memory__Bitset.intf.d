lib/memory/bitset.mli:
