lib/memory/causal_order.ml: Array Bitset Dsm_vclock Format History List Map Operation Seq
