lib/memory/causal_order.mli: Dsm_vclock History Operation
