lib/memory/causality_graph.ml: Buffer Causal_order Dsm_vclock Format History Int List Operation Option Printf
