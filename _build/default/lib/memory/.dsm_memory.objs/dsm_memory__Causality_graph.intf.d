lib/memory/causality_graph.mli: Causal_order Dsm_vclock Format Operation
