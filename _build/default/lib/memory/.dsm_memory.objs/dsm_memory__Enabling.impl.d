lib/memory/enabling.ml: Causal_order Dsm_vclock Format History List Operation
