lib/memory/enabling.mli: Causal_order Dsm_vclock Format History
