lib/memory/history.ml: Array Dsm_vclock Format List Local_history Operation Printf
