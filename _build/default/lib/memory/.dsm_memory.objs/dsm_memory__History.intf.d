lib/memory/history.mli: Dsm_vclock Format Local_history Operation
