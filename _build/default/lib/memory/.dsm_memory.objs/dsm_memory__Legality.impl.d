lib/memory/legality.ml: Causal_order Dsm_vclock Format History List Operation Result
