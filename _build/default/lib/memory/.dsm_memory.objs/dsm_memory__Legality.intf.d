lib/memory/legality.mli: Causal_order Format Operation
