lib/memory/local_history.ml: Format List Operation
