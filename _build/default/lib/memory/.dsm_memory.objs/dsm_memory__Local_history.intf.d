lib/memory/local_history.mli: Dsm_vclock Format Operation
