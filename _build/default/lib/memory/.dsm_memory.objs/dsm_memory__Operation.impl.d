lib/memory/operation.ml: Char Dsm_vclock Format Int
