lib/memory/operation.mli: Dsm_vclock Format
