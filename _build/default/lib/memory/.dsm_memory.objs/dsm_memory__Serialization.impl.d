lib/memory/serialization.ml: Array Causal_order Dsm_vclock Fun Hashtbl History List Operation Result
