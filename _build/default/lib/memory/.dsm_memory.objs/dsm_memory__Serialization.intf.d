lib/memory/serialization.mli: Causal_order Operation
