lib/memory/session_guarantees.ml: Array Causal_order Dsm_vclock Format History List Operation
