lib/memory/session_guarantees.mli: Causal_order Format
