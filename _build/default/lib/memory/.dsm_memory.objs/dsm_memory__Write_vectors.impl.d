lib/memory/write_vectors.ml: Array Dsm_vclock Hashtbl History Operation
