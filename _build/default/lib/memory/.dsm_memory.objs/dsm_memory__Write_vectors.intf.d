lib/memory/write_vectors.mli: Dsm_vclock History
