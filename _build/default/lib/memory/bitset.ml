type t = { words : Bytes.t; capacity : int }

(* 8 bits per byte; Bytes gives compact storage without boxing *)

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((n + 7) / 8) '\000'; capacity = n }

let capacity t = t.capacity
let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let check t i name =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: index out of bounds" name)

let set t i =
  check t i "set";
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  Bytes.set_uint8 t.words (i lsr 3) (b lor (1 lsl (i land 7)))

let clear_bit t i =
  check t i "clear_bit";
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  Bytes.set_uint8 t.words (i lsr 3) (b land lnot (1 lsl (i land 7)))

let mem t i =
  check t i "mem";
  Bytes.get_uint8 t.words (i lsr 3) land (1 lsl (i land 7)) <> 0

let popcount8 =
  (* 256-entry popcount table *)
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun b -> tbl.(b)

let cardinal t =
  let acc = ref 0 in
  for i = 0 to Bytes.length t.words - 1 do
    acc := !acc + popcount8 (Bytes.get_uint8 t.words i)
  done;
  !acc

let check_cap a b name =
  if a.capacity <> b.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch" name)

let union_into dst src =
  check_cap dst src "union_into";
  for i = 0 to Bytes.length dst.words - 1 do
    Bytes.set_uint8 dst.words i
      (Bytes.get_uint8 dst.words i lor Bytes.get_uint8 src.words i)
  done

let inter_into dst src =
  check_cap dst src "inter_into";
  for i = 0 to Bytes.length dst.words - 1 do
    Bytes.set_uint8 dst.words i
      (Bytes.get_uint8 dst.words i land Bytes.get_uint8 src.words i)
  done

let is_subset a b =
  check_cap a b "is_subset";
  let rec go i =
    i = Bytes.length a.words
    || Bytes.get_uint8 a.words i land lnot (Bytes.get_uint8 b.words i) = 0
       && go (i + 1)
  in
  go 0

let equal a b =
  check_cap a b "equal";
  Bytes.equal a.words b.words

let is_empty t =
  let rec go i =
    i = Bytes.length t.words
    || (Bytes.get_uint8 t.words i = 0 && go (i + 1))
  in
  go 0

let iter f t =
  for i = 0 to t.capacity - 1 do
    if Bytes.get_uint8 t.words (i lsr 3) land (1 lsl (i land 7)) <> 0 then
      f i
  done

let elements t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let of_list n l =
  let t = create n in
  List.iter (fun i -> set t i) l;
  t
