(** Fixed-capacity bit sets.

    Dense bitsets back the transitive-closure computation of [↦co]
    (module {!Causal_order}): one row per operation, one bit per
    operation, with closure rows combined by word-wide unions. *)

type t

val create : int -> t
(** [create n] is an empty set over universe [{0..n-1}].
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
val copy : t -> t

val set : t -> int -> unit
val clear_bit : t -> int -> unit
val mem : t -> int -> bool

val cardinal : t -> int

val union_into : t -> t -> unit
(** [union_into dst src] adds every element of [src] to [dst].
    @raise Invalid_argument if capacities differ. *)

val inter_into : t -> t -> unit

val is_subset : t -> t -> bool
(** [is_subset a b] iff every element of [a] is in [b]. *)

val equal : t -> t -> bool
val is_empty : t -> bool

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val elements : t -> int list
val of_list : int -> int list -> t
