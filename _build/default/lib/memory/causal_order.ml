module Dot = Dsm_vclock.Dot
module Vector_clock = Dsm_vclock.Vector_clock

module Op_map = Map.Make (struct
  type t = Operation.t

  let compare = Operation.compare
end)

type t = {
  history : History.t;
  ops : Operation.t array;  (* index -> operation, History.ops order *)
  index : int Op_map.t;  (* operation -> index *)
  reach : Bitset.t array;  (* reach.(i) = indices strictly reachable from i *)
}

let compute history =
  (match History.validate history with
  | Ok () -> ()
  | Error vs ->
      let msg =
        Format.asprintf "Causal_order.compute: ill-formed history: %a"
          (Format.pp_print_list ~pp_sep:Format.pp_print_space
             History.pp_violation)
          vs
      in
      invalid_arg msg);
  let ops = Array.of_list (History.ops history) in
  let nops = Array.length ops in
  let index =
    Array.to_seqi ops
    |> Seq.fold_left (fun m (i, op) -> Op_map.add op i m) Op_map.empty
  in
  (* direct edges: immediate process-order successor + read-from *)
  let succs = Array.make nops [] in
  let add_edge i j = succs.(i) <- j :: succs.(i) in
  for p = 0 to History.n_processes history - 1 do
    let rec chain = function
      | a :: (b :: _ as rest) ->
          add_edge (Op_map.find a index) (Op_map.find b index);
          chain rest
      | [ _ ] | [] -> ()
    in
    chain (History.local history p)
  done;
  Array.iteri
    (fun i op ->
      match op with
      | Operation.Read { read_from = Some dot; _ } -> (
          match History.find_write history dot with
          | Some w -> add_edge (Op_map.find (Operation.Write w) index) i
          | None -> assert false (* validate ruled this out *))
      | Operation.Read _ | Operation.Write _ -> ())
    ops;
  (* transitive closure by memoized DFS over the DAG:
     reach(i) = ∪_{j ∈ succs(i)} ({j} ∪ reach(j)) *)
  let reach = Array.make nops (Bitset.create 0) in
  let state = Array.make nops `White in
  let rec visit i =
    match state.(i) with
    | `Done -> ()
    | `Grey ->
        (* process order + read-from cannot form a cycle in a
           well-formed history of sequential processes; a cycle would
           mean a read returning a value written after it *)
        invalid_arg "Causal_order.compute: cyclic causality (corrupt history)"
    | `White ->
        state.(i) <- `Grey;
        let row = Bitset.create nops in
        List.iter
          (fun j ->
            visit j;
            Bitset.set row j;
            Bitset.union_into row reach.(j))
          succs.(i);
        reach.(i) <- row;
        state.(i) <- `Done
  in
  for i = 0 to nops - 1 do
    visit i
  done;
  { history; ops; index; reach }

let history t = t.history

let idx t op =
  match Op_map.find_opt op t.index with
  | Some i -> i
  | None -> raise Not_found

let precedes t o1 o2 =
  let i = idx t o1 and j = idx t o2 in
  i <> j && Bitset.mem t.reach.(i) j

let concurrent t o1 o2 =
  (not (Operation.equal o1 o2)) && (not (precedes t o1 o2))
  && not (precedes t o2 o1)

let causal_past t op =
  let j = idx t op in
  let acc = ref [] in
  Array.iteri
    (fun i o -> if i <> j && Bitset.mem t.reach.(i) j then acc := o :: !acc)
    t.ops;
  List.rev !acc

let writes_in_past t op =
  List.filter_map Operation.as_write (causal_past t op)

let write_op t dot =
  match History.find_write t.history dot with
  | Some w -> Operation.Write w
  | None -> raise Not_found

let write_precedes t d1 d2 = precedes t (write_op t d1) (write_op t d2)
let write_concurrent t d1 d2 = concurrent t (write_op t d1) (write_op t d2)

let true_write_co t (w : Operation.write) =
  let n = History.n_processes t.history in
  let v = Vector_clock.create n in
  List.iter
    (fun (w' : Operation.write) ->
      let p = Dot.replica w'.wdot in
      if Dot.seq w'.wdot > Vector_clock.get v p then
        Vector_clock.set v p (Dot.seq w'.wdot))
    (writes_in_past t (Operation.Write w));
  (* the issuer component counts w itself (Observation 2) *)
  let p = Dot.replica w.wdot in
  if Dot.seq w.wdot > Vector_clock.get v p then
    Vector_clock.set v p (Dot.seq w.wdot);
  v

let related_write_pairs t =
  let ws = History.writes t.history in
  List.concat_map
    (fun (w : Operation.write) ->
      List.filter_map
        (fun (w' : Operation.write) ->
          if
            (not (Dot.equal w.wdot w'.wdot))
            && precedes t (Operation.Write w) (Operation.Write w')
          then Some (w, w')
          else None)
        ws)
    ws
