(** The causal order [↦co] of a history (§2).

    [↦co] is the transitive closure of process order ([↦poᵢ]) and the
    read-from relation ([↦ro]). This module computes it exactly, as a
    dense reachability matrix over the history's operations, independent
    of any protocol — it is the ground truth against which protocol runs
    are checked (safety, optimality) and against which the [Write_co]
    vector system is validated (Theorems 1–2).

    Complexity: O(ops² / word) time and O(ops²) bits of space; intended
    for histories up to a few thousand operations. Larger experiment
    runs are checked through the vector characterization instead (see
    {!true_write_co} and the runtime checker). *)

type t

val compute : History.t -> t
(** @raise Invalid_argument if the history fails
    {!History.validate} (a dangling read-from would make [↦co]
    meaningless). *)

val history : t -> History.t

val precedes : t -> Operation.t -> Operation.t -> bool
(** [precedes co o1 o2] iff [o1 ↦co o2] (irreflexive).
    @raise Not_found if an operation is not part of the history. *)

val concurrent : t -> Operation.t -> Operation.t -> bool
(** [o1 ∥co o2]: distinct and unrelated. *)

val causal_past : t -> Operation.t -> Operation.t list
(** [↓(o, ↦co)], deterministically ordered as {!History.ops}. *)

val writes_in_past : t -> Operation.t -> Operation.write list
(** The write operations of the causal past — the set whose applies
    form [𝒳_co-safe] (Definition 4). *)

val write_precedes : t -> Dsm_vclock.Dot.t -> Dsm_vclock.Dot.t -> bool
(** [↦co] restricted to writes, by identity.
    @raise Not_found if either dot is absent from the history. *)

val write_concurrent : t -> Dsm_vclock.Dot.t -> Dsm_vclock.Dot.t -> bool

val true_write_co : t -> Operation.write -> Dsm_vclock.Vector_clock.t
(** The ground-truth [Write_co] timestamp of a write [w]: component [j]
    counts the writes of [p_j] in [↓(w, ↦co)], plus [w] itself for the
    issuer component. By Theorems 1–2 this must coincide with the vector
    the OptP protocol assigns to [w]; the test-suite checks exactly
    that. *)

val related_write_pairs :
  t -> (Operation.write * Operation.write) list
(** All ordered pairs [(w, w')] with [w ↦co w'] — used by the checker's
    safety condition. *)
