module Dot = Dsm_vclock.Dot

type t = {
  co : Causal_order.t;
  writes : Operation.write list;
  preds : Dot.t list Dot.Map.t;  (* immediate predecessors *)
  succs : Dot.t list Dot.Map.t;
}

let compute co =
  let history = Causal_order.history co in
  let writes = History.writes history in
  let precedes (a : Operation.write) (b : Operation.write) =
    Causal_order.precedes co (Operation.Write a) (Operation.Write b)
  in
  let immediate a b =
    precedes a b
    && not
         (List.exists
            (fun (c : Operation.write) ->
              (not (Dot.equal c.wdot a.wdot))
              && (not (Dot.equal c.wdot b.wdot))
              && precedes a c && precedes c b)
            writes)
  in
  let preds, succs =
    List.fold_left
      (fun (preds, succs) (b : Operation.write) ->
        let ps =
          List.filter_map
            (fun (a : Operation.write) ->
              if immediate a b then Some a.wdot else None)
            writes
        in
        (* at most one immediate predecessor per process (§4.3) *)
        let by_proc = List.map Dot.replica ps in
        assert (List.length (List.sort_uniq Int.compare by_proc)
                = List.length by_proc);
        let preds = Dot.Map.add b.wdot ps preds in
        let succs =
          List.fold_left
            (fun m p ->
              Dot.Map.update p
                (fun l -> Some (b.wdot :: Option.value l ~default:[]))
                m)
            succs ps
        in
        (preds, succs))
      (Dot.Map.empty, Dot.Map.empty)
      writes
  in
  (* normalize successor lists to deterministic order *)
  let succs = Dot.Map.map (List.sort Dot.compare) succs in
  { co; writes; preds; succs }

let vertices t = t.writes

let edges t =
  List.concat_map
    (fun (w : Operation.write) ->
      List.map (fun p -> (p, w.wdot)) (Dot.Map.find w.wdot t.preds))
    t.writes

let immediate_predecessors t dot =
  match Dot.Map.find_opt dot t.preds with
  | Some l -> l
  | None -> raise Not_found

let immediate_successors t dot =
  if not (Dot.Map.mem dot t.preds) then raise Not_found;
  Option.value (Dot.Map.find_opt dot t.succs) ~default:[]

let roots t =
  List.filter_map
    (fun (w : Operation.write) ->
      if Dot.Map.find w.wdot t.preds = [] then Some w.wdot else None)
    t.writes

let sinks t =
  List.filter_map
    (fun (w : Operation.write) ->
      if immediate_successors t w.wdot = [] then Some w.wdot else None)
    t.writes

let topological t =
  (* writes sorted by causal past size is a linear extension; refine by
     Kahn for exactness, using dot order as deterministic tie-break *)
  let remaining = ref t.writes and out = ref [] in
  let placed = ref Dot.Set.empty in
  while !remaining <> [] do
    let ready, blocked =
      List.partition
        (fun (w : Operation.write) ->
          List.for_all
            (fun p -> Dot.Set.mem p !placed)
            (Dot.Map.find w.wdot t.preds))
        !remaining
    in
    assert (ready <> []);
    let ready =
      List.sort
        (fun (a : Operation.write) (b : Operation.write) ->
          Dot.compare a.wdot b.wdot)
        ready
    in
    List.iter
      (fun (w : Operation.write) -> placed := Dot.Set.add w.wdot !placed)
      ready;
    out := List.rev_append ready !out;
    remaining := blocked
  done;
  List.rev !out

let longest_path_length t =
  let depth = ref Dot.Map.empty in
  List.iter
    (fun (w : Operation.write) ->
      let d =
        List.fold_left
          (fun acc p -> max acc (1 + Dot.Map.find p !depth))
          0
          (Dot.Map.find w.wdot t.preds)
      in
      depth := Dot.Map.add w.wdot d !depth)
    (topological t);
  Dot.Map.fold (fun _ d acc -> max acc d) !depth 0

let write_label t dot =
  match History.find_write (Causal_order.history t.co) dot with
  | Some w -> Operation.to_string (Operation.Write w)
  | None -> Dot.to_string dot

let to_graphviz t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph write_causality {\n";
  List.iter
    (fun (w : Operation.write) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\";\n" (write_label t w.wdot)))
    t.writes;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\";\n" (write_label t a)
           (write_label t b)))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (a, b) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%s -> %s" (write_label t a) (write_label t b))
    (edges t);
  Format.fprintf ppf "@]"
