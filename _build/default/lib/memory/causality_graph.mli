(** The write causality graph (§4.3).

    A DAG whose vertices are the writes of a history, with an edge
    [w → w'] exactly when [w ↦co⁰ w'] — i.e. [w ↦co w'] with no write
    causally interposed (the covering relation of [↦co] restricted to
    writes). The paper uses this graph in the correctness proof of OptP;
    here it also powers Figure 7's reproduction and is exposed for
    analysis (each write has at most [n] immediate predecessors, one per
    process — we assert this invariant). *)

type t

val compute : Causal_order.t -> t

val vertices : t -> Operation.write list
(** Deterministic order ({!History.writes}). *)

val edges : t -> (Dsm_vclock.Dot.t * Dsm_vclock.Dot.t) list
(** [(w, w')] with [w] an immediate predecessor of [w']. *)

val immediate_predecessors : t -> Dsm_vclock.Dot.t -> Dsm_vclock.Dot.t list
(** @raise Not_found if the dot is not a write of the history. *)

val immediate_successors : t -> Dsm_vclock.Dot.t -> Dsm_vclock.Dot.t list

val roots : t -> Dsm_vclock.Dot.t list
(** Writes with no predecessor. *)

val sinks : t -> Dsm_vclock.Dot.t list

val longest_path_length : t -> int
(** Number of edges on a longest path — the "causal depth" of the
    history; 0 for an antichain of writes. *)

val topological : t -> Operation.write list
(** A deterministic linear extension of the graph. *)

val to_graphviz : t -> string
(** DOT-format rendering (for documentation and debugging). *)

val pp : Format.formatter -> t -> unit
(** Edge list in paper notation, e.g. [w1(x1)a -> w2(x2)b]. *)
