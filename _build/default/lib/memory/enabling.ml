module Dot = Dsm_vclock.Dot
module Vector_clock = Dsm_vclock.Vector_clock

type apply_event = { at_proc : int; write : Dot.t }

let co_safe co { at_proc = _; write } =
  let history = Causal_order.history co in
  match History.find_write history write with
  | None -> raise Not_found
  | Some w ->
      Causal_order.writes_in_past co (Operation.Write w)
      |> List.map (fun (w' : Operation.write) -> w'.wdot)

let anbkh ~send_vt ~writes { at_proc = _; write } =
  let vt_w = send_vt write in
  List.filter
    (fun w' ->
      (not (Dot.equal w' write))
      &&
      (* send(w') → send(w) iff w's send timestamp already counts w''s
         send: component test at w''s issuer *)
      Dot.seq w' <= Vector_clock.get vt_w (Dot.replica w'))
    writes

let all_apply_events co =
  let history = Causal_order.history co in
  let n = History.n_processes history in
  List.concat_map
    (fun (w : Operation.write) ->
      List.init n (fun k -> { at_proc = k; write = w.wdot }))
    (History.writes history)

let pp_write_of ~history ppf dot =
  match History.find_write history dot with
  | Some w -> Operation.pp ppf (Operation.Write w)
  | None -> Dot.pp ppf dot

let pp_apply_event ~history ppf { at_proc; write } =
  Format.fprintf ppf "apply_%d(%a)" (at_proc + 1) (pp_write_of ~history)
    write

let pp_set ~history ~at_proc ppf dots =
  match dots with
  | [] -> Format.pp_print_string ppf "∅"
  | _ ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf d ->
             pp_apply_event ~history ppf { at_proc; write = d }))
        dots
