(** Enabling-event sets (§3.3–3.5).

    For an apply event [apply_k(w)], the paper defines:

    - [𝒳_co-safe(apply_k(w))] — the applies, at [p_k], of every write in
      [↓(w, ↦co)] (Definition 4): the {e minimal} enabling set any safe
      protocol must respect;
    - [𝒳_ANBKH(apply_k(w))] — the applies, at [p_k], of every write
      whose send happened-before [w]'s send (§3.6): what causal message
      delivery enforces.

    A safe protocol is write-delay optimal iff the two coincide for
    every event (Definition 5). This module computes both sets
    symbolically (as lists of write dots — the [apply_k] wrapper is
    implied by the process argument) so the bench harness can print the
    paper's Tables 1 and 2 and the checker can audit real runs. *)

type apply_event = { at_proc : int; write : Dsm_vclock.Dot.t }
(** The event [apply_{at_proc}(write)]. *)

val co_safe : Causal_order.t -> apply_event -> Dsm_vclock.Dot.t list
(** Writes whose apply (at the same process) belongs to
    [𝒳_co-safe]; deterministic order.
    @raise Not_found if the write is not in the history. *)

val anbkh :
  send_vt:(Dsm_vclock.Dot.t -> Dsm_vclock.Vector_clock.t) ->
  writes:Dsm_vclock.Dot.t list ->
  apply_event ->
  Dsm_vclock.Dot.t list
(** [anbkh ~send_vt ~writes e] — [send_vt w] must be the Fidge–Mattern
    vector timestamp of [send(w)] in the run under analysis (counting
    write-sends as the relevant events, as ANBKH does). [w'] is in the
    set iff [send(w') → send(w)], i.e. [send_vt w' ≤ send_vt w]
    component-wise with [w' ≠ w] — equivalently
    [send_vt w' [j] ≤ send_vt w [j]] at the issuer [j] of [w']. *)

val all_apply_events : Causal_order.t -> apply_event list
(** Every [apply_k(w)] of the history: all writes × all processes, in
    table order (write-major, as in the paper's Tables 1–2). *)

val pp_apply_event :
  history:History.t -> Format.formatter -> apply_event -> unit
(** [apply_1(w1(x1)a)] — paper notation. *)

val pp_set :
  history:History.t ->
  at_proc:int ->
  Format.formatter ->
  Dsm_vclock.Dot.t list ->
  unit
(** Renders [{apply_1(w1(x1)a), apply_1(w2(x2)b)}] (or [∅]). *)
