type illegal_read = { read : Operation.read; reason : reason }

and reason =
  | No_write_in_past
  | Stale_value of Operation.write
  | Bot_after_write of Operation.write

let writes_on_var_in_past co (r : Operation.read) =
  List.filter
    (fun (w : Operation.write) -> w.wvar = r.rvar)
    (Causal_order.writes_in_past co (Operation.Read r))

let check_read co (r : Operation.read) =
  let past_on_var = writes_on_var_in_past co r in
  match r.read_from with
  | None -> (
      (* read of ⊥: legal iff no write on the variable causally
         precedes the read *)
      match past_on_var with
      | [] -> Ok ()
      | w :: _ -> Error { read = r; reason = Bot_after_write w })
  | Some dot -> (
      match
        List.find_opt
          (fun (w : Operation.write) -> Dsm_vclock.Dot.equal w.wdot dot)
          past_on_var
      with
      | None -> Error { read = r; reason = No_write_in_past }
      | Some w -> (
          (* interposition: w ↦co w' ↦co r with w' on the same variable *)
          let interposed =
            List.find_opt
              (fun (w' : Operation.write) ->
                (not (Dsm_vclock.Dot.equal w'.wdot w.wdot))
                && Causal_order.precedes co (Operation.Write w)
                     (Operation.Write w'))
              past_on_var
          in
          match interposed with
          | None -> Ok ()
          | Some w' -> Error { read = r; reason = Stale_value w' }))

let check co =
  let history = Causal_order.history co in
  let errs =
    List.filter_map
      (fun r ->
        match check_read co r with Ok () -> None | Error e -> Some e)
      (History.reads history)
  in
  match errs with [] -> Ok () | _ -> Error errs

let is_causally_consistent co = Result.is_ok (check co)

let pp_illegal_read ppf { read; reason } =
  match reason with
  | No_write_in_past ->
      Format.fprintf ppf
        "%a is illegal: no causally preceding write produced its value"
        Operation.pp (Operation.Read read)
  | Stale_value w' ->
      Format.fprintf ppf
        "%a is illegal: it is stale, %a is causally interposed"
        Operation.pp (Operation.Read read) Operation.pp (Operation.Write w')
  | Bot_after_write w ->
      Format.fprintf ppf
        "%a is illegal: returned ⊥ although %a causally precedes it"
        Operation.pp (Operation.Read read) Operation.pp (Operation.Write w)
