(** Legal reads and causally consistent histories (Definitions 1–2).

    A read [r(x)v] is {e legal} when some write [w(x)v] satisfies
    [w ↦co r] and no other write [w'(x)] is interposed:
    [w ↦co w'(x) ↦co r]. A history is causally consistent iff every
    read is legal. This checker consumes the exact [↦co] computed by
    {!Causal_order}, so it is protocol-independent: it validates runs of
    OptP, ANBKH and any other implementation on equal terms. *)

type illegal_read = {
  read : Operation.read;
  reason : reason;
}

and reason =
  | No_write_in_past
      (** The read returned a non-⊥ value but no write [w(x)v] with
          [w ↦co r] exists. *)
  | Stale_value of Operation.write
      (** A fresher write on the same variable is causally interposed
          between the read-from write and the read — the carried write
          is the interposed one. *)
  | Bot_after_write of Operation.write
      (** The read returned ⊥ although the carried write on the same
          variable causally precedes it. *)

val check_read : Causal_order.t -> Operation.read -> (unit, illegal_read) result

val check : Causal_order.t -> (unit, illegal_read list) result
(** Definition 2: all reads legal. *)

val is_causally_consistent : Causal_order.t -> bool

val pp_illegal_read : Format.formatter -> illegal_read -> unit
