(** Local history builder (the paper's [h_i]).

    A mutable builder that records the operations of one sequential
    process in process order ([↦poᵢ]), assigning write sequence numbers
    and read slots automatically. Builders are assembled into a global
    {!History.t}. *)

type t

val create : proc:int -> t
(** @raise Invalid_argument on negative process id. *)

val proc : t -> int

val add_write : t -> var:int -> value:int -> Operation.write
(** Appends the next write of this process; its dot sequence number is
    one more than the previous write's (1-based, per Observation 2). *)

val add_read :
  t ->
  var:int ->
  value:Operation.value ->
  read_from:Dsm_vclock.Dot.t option ->
  Operation.read
(** Appends a read. [read_from] identifies the write whose value is
    returned ([None] for the initial value ⊥); consistency between
    [value] and the target write is checked by {!History.validate}, not
    here. *)

val ops : t -> Operation.t list
(** Process order. *)

val length : t -> int
val write_count : t -> int

val nth : t -> int -> Operation.t
(** @raise Invalid_argument if out of bounds. *)

val writes : t -> Operation.write list
(** Process order. *)

val pp : Format.formatter -> t -> unit
(** [h1 : w1(x1)a; r1(x2)b] — the paper's history notation. *)
