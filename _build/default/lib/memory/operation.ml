module Dot = Dsm_vclock.Dot

type value = Bot | Val of int

type write = { wdot : Dot.t; wvar : int; wvalue : int }

type read = {
  rproc : int;
  rslot : int;
  rvar : int;
  rvalue : value;
  read_from : Dot.t option;
}

type t = Write of write | Read of read

let write ~proc ~seq ~var ~value =
  if var < 0 then invalid_arg "Operation.write: negative variable index";
  Write { wdot = Dot.make ~replica:proc ~seq; wvar = var; wvalue = value }

let read ~proc ~slot ~var ~value ~read_from =
  if proc < 0 then invalid_arg "Operation.read: negative process id";
  if slot < 0 then invalid_arg "Operation.read: negative slot";
  if var < 0 then invalid_arg "Operation.read: negative variable index";
  Read { rproc = proc; rslot = slot; rvar = var; rvalue = value; read_from }

let proc = function Write w -> Dot.replica w.wdot | Read r -> r.rproc
let var = function Write w -> w.wvar | Read r -> r.rvar
let is_write = function Write _ -> true | Read _ -> false
let is_read = function Read _ -> true | Write _ -> false
let as_write = function Write w -> Some w | Read _ -> None
let as_read = function Read r -> Some r | Write _ -> None

let compare a b =
  match (a, b) with
  | Write wa, Write wb -> Dot.compare wa.wdot wb.wdot
  | Read ra, Read rb ->
      let c = Int.compare ra.rproc rb.rproc in
      if c <> 0 then c else Int.compare ra.rslot rb.rslot
  | Write _, Read _ -> -1
  | Read _, Write _ -> 1

let equal a b = compare a b = 0

(* Paper examples use single-letter values a, b, c, ...; print integers
   0..25 as letters so our output matches the paper's notation. *)
let pp_int_value ppf v =
  if v >= 0 && v < 26 then
    Format.pp_print_char ppf (Char.chr (Char.code 'a' + v))
  else Format.pp_print_int ppf v

let pp_value ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Val v -> pp_int_value ppf v

let pp ppf = function
  | Write w ->
      Format.fprintf ppf "w%d(x%d)%a"
        (Dot.replica w.wdot + 1)
        (w.wvar + 1) pp_int_value w.wvalue
  | Read r ->
      Format.fprintf ppf "r%d(x%d)%a" (r.rproc + 1) (r.rvar + 1) pp_value
        r.rvalue

let to_string t = Format.asprintf "%a" pp t
