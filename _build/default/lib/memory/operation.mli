(** Read and write operations of the shared-memory model (§2).

    A write [w_i(x_h)v] is identified by its {!Dsm_vclock.Dot.t} — the pair
    (issuing process, per-process write sequence number) — matching the
    paper's Observation 2. A read [r_i(x_h)v] is identified by its
    position in the issuing process's local history, and records which
    write it returned ([read_from]): in an implementation we always know
    the producing write, so the read-from relation [↦ro] is represented
    exactly rather than reconstructed from values (the paper assumes
    this is unambiguous; see the conditions on [↦ro] in §2). *)

type value = Bot | Val of int
(** [Bot] is the initial value ⊥ of every memory location. *)

type write = {
  wdot : Dsm_vclock.Dot.t;  (** identity: (issuing process, 1-based write seq) *)
  wvar : int;  (** memory location index, 0-based *)
  wvalue : int;
}

type read = {
  rproc : int;
  rslot : int;  (** 0-based position among the reads of [rproc] *)
  rvar : int;
  rvalue : value;
  read_from : Dsm_vclock.Dot.t option;
      (** The write this read returned, [None] when it read ⊥. *)
}

type t = Write of write | Read of read

val write : proc:int -> seq:int -> var:int -> value:int -> t
val read :
  proc:int -> slot:int -> var:int -> value:value ->
  read_from:Dsm_vclock.Dot.t option -> t

val proc : t -> int
(** Issuing process. *)

val var : t -> int

val is_write : t -> bool
val is_read : t -> bool

val as_write : t -> write option
val as_read : t -> read option

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order on operation identities (writes by dot, reads by
    (proc, slot); writes before reads arbitrarily). *)

val pp : Format.formatter -> t -> unit
(** Paper notation: [w1(x1)a] / [r2(x1)a], with 1-based process ids and
    variable names [x1..xm]. Integer values are printed as letters
    [a..z] when in range, to mirror the paper's examples. *)

val to_string : t -> string
val pp_value : Format.formatter -> value -> unit
