module Dot = Dsm_vclock.Dot

type witness = Operation.t list

let is_legal_sequence seq =
  let store = Hashtbl.create 8 in
  List.for_all
    (fun op ->
      match op with
      | Operation.Write w ->
          Hashtbl.replace store w.wvar w.wdot;
          true
      | Operation.Read r -> (
          match (Hashtbl.find_opt store r.rvar, r.read_from) with
          | None, None -> true
          | Some d, Some d' -> Dot.equal d d'
          | None, Some _ | Some _, None -> false))
    seq

let serialize_for ?(max_steps = 200_000) co ~proc =
  let history = Causal_order.history co in
  if proc < 0 || proc >= History.n_processes history then
    invalid_arg "Serialization.serialize_for: process id out of range";
  (* H_{i+w}: p_i's operations plus every write of other processes *)
  let ops =
    Array.of_list
      (History.local history proc
      @ List.filter_map
          (fun (w : Operation.write) ->
            if Dot.replica w.wdot = proc then None
            else Some (Operation.Write w))
          (History.writes history))
  in
  let k = Array.length ops in
  (* predecessor lists within the subset *)
  let preds =
    Array.init k (fun i ->
        List.filter
          (fun j -> j <> i && Causal_order.precedes co ops.(j) ops.(i))
          (List.init k Fun.id))
  in
  let placed = Array.make k false in
  let order = ref [] in  (* placed indices, newest first *)
  let placed_count = ref 0 in
  let store = Hashtbl.create 8 in  (* var -> dot of last placed write *)
  let steps = ref 0 in
  let ready i =
    (not placed.(i)) && List.for_all (fun j -> placed.(j)) preds.(i)
  in
  let read_legal (r : Operation.read) =
    match (Hashtbl.find_opt store r.rvar, r.read_from) with
    | None, None -> true
    | Some d, Some d' -> Dot.equal d d'
    | None, Some _ | Some _, None -> false
  in
  let place i =
    placed.(i) <- true;
    order := i :: !order;
    incr placed_count
  in
  let unplace () =
    match !order with
    | i :: rest ->
        placed.(i) <- false;
        order := rest;
        decr placed_count
    | [] -> assert false
  in
  (* Greedily place every ready, currently-legal read. Safe: a read
     constrains nothing downstream and deferring it only risks the
     store moving past its value. Returns how many were placed. *)
  let place_ready_reads () =
    let total = ref 0 in
    let rec pass () =
      let changed = ref false in
      for i = 0 to k - 1 do
        match ops.(i) with
        | Operation.Read r when ready i && read_legal r ->
            place i;
            incr total;
            changed := true
        | Operation.Read _ | Operation.Write _ -> ()
      done;
      if !changed then pass ()
    in
    pass ();
    !total
  in
  (* invariant: [search] returns false only with placed/order/store
     restored exactly to its entry state *)
  let rec search () =
    if !steps > max_steps then
      failwith "Serialization: search budget exhausted";
    incr steps;
    let reads_placed = place_ready_reads () in
    if !placed_count = k then true
    else begin
      let candidates =
        List.filter
          (fun i ->
            match ops.(i) with
            | Operation.Write _ -> ready i
            | Operation.Read _ -> false)
          (List.init k Fun.id)
      in
      let rec try_candidates = function
        | [] -> false
        | i :: rest ->
            let w =
              match ops.(i) with
              | Operation.Write w -> w
              | Operation.Read _ -> assert false
            in
            let previous = Hashtbl.find_opt store w.wvar in
            place i;
            Hashtbl.replace store w.wvar w.wdot;
            if search () then true
            else begin
              unplace ();
              (match previous with
              | Some d -> Hashtbl.replace store w.wvar d
              | None -> Hashtbl.remove store w.wvar);
              try_candidates rest
            end
      in
      if try_candidates candidates then true
      else begin
        (* undo the reads this call placed (reads touch no store state) *)
        for _ = 1 to reads_placed do
          unplace ()
        done;
        false
      end
    end
  in
  if search () then Some (List.rev_map (fun i -> ops.(i)) !order) else None

let check ?max_steps co =
  let history = Causal_order.history co in
  let n = History.n_processes history in
  let rec go proc acc =
    if proc = n then Ok (List.rev acc)
    else
      match serialize_for ?max_steps co ~proc with
      | Some w -> go (proc + 1) (w :: acc)
      | None -> Error proc
  in
  go 0 []

let is_causally_consistent ?max_steps co =
  Result.is_ok (check ?max_steps co)
