(** Causal consistency via serializations — the original definition.

    Ahamad, Neiger, Burns, Kohli & Hutto (1995) define causal memory
    through {e serializations}: a history [Ĥ] is causally consistent
    iff for every process [p_i] there is a sequence [S_i] of the
    operations in [H_{i+w}] (all of [p_i]'s operations plus {e every}
    write) such that

    - [S_i] is a linear extension of [↦co] restricted to [H_{i+w}], and
    - [S_i] is {e legal as a sequence}: each read returns the value of
      the latest preceding write on its variable in [S_i] (⊥ if none).

    The paper under reproduction uses the equivalent per-read legality
    of Definitions 1–2. This module implements the serialization form
    directly — a backtracking search for a witness sequence — so the
    two formulations can be cross-checked against each other (they must
    agree on every history; the property suite verifies this).

    Complexity: worst-case exponential (the problem is a constrained
    topological sort), with strong pruning; intended for the moderate
    histories used in tests and examples. *)

type witness = Operation.t list
(** A serialization [S_i] in order. *)

val serialize_for :
  ?max_steps:int -> Causal_order.t -> proc:int -> witness option
(** [serialize_for co ~proc] searches for a legal serialization of
    process [proc]'s operations plus all writes. [max_steps]
    (default [200_000]) bounds the backtracking search; exceeding it
    raises [Failure] rather than returning a wrong verdict.
    @raise Invalid_argument on a bad process id. *)

val is_causally_consistent : ?max_steps:int -> Causal_order.t -> bool
(** True iff every process admits a witness. *)

val check :
  ?max_steps:int -> Causal_order.t -> (witness list, int) result
(** [Ok witnesses] (one per process) or [Error proc] naming the first
    process with no legal serialization. *)

val is_legal_sequence : witness -> bool
(** Does a sequence satisfy the sequence-legality condition? (exposed
    for tests: every returned witness must pass it). *)
