module Dot = Dsm_vclock.Dot

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Writes_follow_reads
  | Monotonic_writes

type violation = { guarantee : guarantee; proc : int; detail : string }

let pp_guarantee ppf = function
  | Read_your_writes -> Format.pp_print_string ppf "read-your-writes"
  | Monotonic_reads -> Format.pp_print_string ppf "monotonic-reads"
  | Writes_follow_reads -> Format.pp_print_string ppf "writes-follow-reads"
  | Monotonic_writes -> Format.pp_print_string ppf "monotonic-writes"

let pp_violation ppf v =
  Format.fprintf ppf "%a at p%d: %s" pp_guarantee v.guarantee (v.proc + 1)
    v.detail

(* strict ↦co between two writes identified by dots *)
let writes_precede co d1 d2 =
  (not (Dot.equal d1 d2)) && Causal_order.write_precedes co d1 d2

let check co =
  let history = Causal_order.history co in
  let n = History.n_processes history in
  let m = History.n_variables history in
  let violations = ref [] in
  let add guarantee proc detail =
    violations := { guarantee; proc; detail } :: !violations
  in
  for proc = 0 to n - 1 do
    (* per-variable session state while scanning p's operations *)
    let own_last_write = Array.make (max m 1) None in
    let last_read_from = Array.make (max m 1) None in
    let reads_so_far = ref [] in  (* sources of all previous reads *)
    List.iter
      (fun op ->
        match op with
        | Operation.Write (w : Operation.write) ->
            (* MW: every earlier own write must causally precede this
               one (structural in this model, checked as an invariant) *)
            Array.iter
              (function
                | Some earlier
                  when not
                         (Dot.equal earlier w.wdot
                         || writes_precede co earlier w.wdot) ->
                    add Monotonic_writes proc
                      (Format.asprintf "%a does not follow own %a" Dot.pp
                         w.wdot Dot.pp earlier)
                | Some _ | None -> ())
              own_last_write;
            (* WFR: every read source so far must causally precede it *)
            List.iter
              (fun src ->
                if not (writes_precede co src w.wdot) then
                  add Writes_follow_reads proc
                    (Format.asprintf "%a not after read source %a" Dot.pp
                       w.wdot Dot.pp src))
              !reads_so_far;
            own_last_write.(w.wvar) <- Some w.wdot
        | Operation.Read (r : Operation.read) ->
            (* RYW: the read must not return something strictly older
               than this process's own last write on the variable *)
            (match (own_last_write.(r.rvar), r.read_from) with
            | Some own, None ->
                add Read_your_writes proc
                  (Format.asprintf
                     "read of x%d returned ⊥ after own write %a"
                     (r.rvar + 1) Dot.pp own)
            | Some own, Some src
              when (not (Dot.equal src own)) && writes_precede co src own ->
                add Read_your_writes proc
                  (Format.asprintf
                     "read of x%d returned %a, older than own %a"
                     (r.rvar + 1) Dot.pp src Dot.pp own)
            | (Some _ | None), _ -> ());
            (* MR: successive reads of a variable never go backwards *)
            (match (last_read_from.(r.rvar), r.read_from) with
            | Some prev, None ->
                add Monotonic_reads proc
                  (Format.asprintf
                     "read of x%d returned ⊥ after reading %a" (r.rvar + 1)
                     Dot.pp prev)
            | Some prev, Some src
              when (not (Dot.equal src prev)) && writes_precede co src prev
              ->
                add Monotonic_reads proc
                  (Format.asprintf
                     "read of x%d went backwards: %a after %a" (r.rvar + 1)
                     Dot.pp src Dot.pp prev)
            | (Some _ | None), _ -> ());
            (match r.read_from with
            | Some src ->
                last_read_from.(r.rvar) <- Some src;
                reads_so_far := src :: !reads_so_far
            | None -> ()))
      (History.local history proc)
  done;
  List.rev !violations

let holds co guarantee =
  List.for_all (fun v -> v.guarantee <> guarantee) (check co)

let all_hold co = check co = []
