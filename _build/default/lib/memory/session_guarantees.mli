(** Session guarantees (Terry et al. 1994) over a history.

    The four per-process session guarantees decompose causal
    consistency from the client's point of view:

    - {b Read Your Writes} (RYW): a read never returns a value older
      than a write the same process issued earlier on that variable;
    - {b Monotonic Reads} (MR): successive reads of a variable by one
      process never go backwards in [↦co];
    - {b Writes Follow Reads} (WFR): a write issued after a read is
      ordered after the read's source write in [↦co] (and every process
      applies them in that order);
    - {b Monotonic Writes} (MW): a process's writes are ordered in
      [↦co] in issue order.

    A causally consistent history satisfies all four — they are
    implied by Definitions 1–2 — so this module is a third,
    independently-coded validator for protocol runs (alongside
    per-read legality and serializations). Its real diagnostic value is
    on {e broken} runs: the violated guarantee names the anomaly
    (e.g. the eager protocol of [examples/social_timeline.ml] breaks
    RYW-across-processes style guarantees in a way this module pins
    down as an MR or RYW failure). *)

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Writes_follow_reads
  | Monotonic_writes

type violation = {
  guarantee : guarantee;
  proc : int;
  detail : string;
}

val check : Causal_order.t -> violation list
(** All violations across all processes (empty = all four hold). *)

val holds : Causal_order.t -> guarantee -> bool

val all_hold : Causal_order.t -> bool

val pp_guarantee : Format.formatter -> guarantee -> unit
val pp_violation : Format.formatter -> violation -> unit
