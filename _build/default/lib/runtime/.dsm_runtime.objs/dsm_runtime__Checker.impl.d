lib/runtime/checker.ml: Array Dsm_memory Dsm_vclock Execution Format Fun Hashtbl List Option
