lib/runtime/checker.mli: Dsm_vclock Execution Format
