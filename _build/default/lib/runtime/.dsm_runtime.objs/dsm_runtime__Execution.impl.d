lib/runtime/execution.ml: Array Dsm_memory Dsm_sim Dsm_vclock Format Hashtbl List Option
