lib/runtime/execution.mli: Dsm_memory Dsm_sim Dsm_vclock Format
