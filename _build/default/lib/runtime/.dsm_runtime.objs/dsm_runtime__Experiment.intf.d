lib/runtime/experiment.mli: Dsm_core Dsm_sim Dsm_stats Dsm_vclock Dsm_workload Execution
