lib/runtime/node.ml: Dsm_core Dsm_sim Execution List
