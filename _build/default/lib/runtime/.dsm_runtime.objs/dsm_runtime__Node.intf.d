lib/runtime/node.mli: Dsm_core Dsm_memory Dsm_sim Dsm_vclock Execution
