lib/runtime/paper_scenarios.ml: Dsm_memory Dsm_vclock List Scripted_run
