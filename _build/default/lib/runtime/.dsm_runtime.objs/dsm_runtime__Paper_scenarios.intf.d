lib/runtime/paper_scenarios.mli: Dsm_core Dsm_memory Dsm_vclock Scripted_run
