lib/runtime/partial_run.ml: Array Checker Dsm_core Dsm_memory Dsm_sim Dsm_workload Execution List Sim_run
