lib/runtime/partial_run.mli: Checker Dsm_core Dsm_memory Dsm_sim Dsm_workload Execution
