lib/runtime/reliable_run.ml: Array Dsm_core Dsm_memory Dsm_sim Dsm_workload Execution Format List Printf Sim_run
