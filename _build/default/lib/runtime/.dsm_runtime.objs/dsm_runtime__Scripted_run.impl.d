lib/runtime/scripted_run.ml: Array Dsm_core Dsm_memory Dsm_sim Execution Fun List Printf
