lib/runtime/scripted_run.mli: Dsm_core Dsm_memory Dsm_vclock Execution
