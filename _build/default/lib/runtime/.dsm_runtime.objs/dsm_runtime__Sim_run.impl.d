lib/runtime/sim_run.ml: Array Dsm_core Dsm_memory Dsm_sim Dsm_workload Execution Format List Node Printf
