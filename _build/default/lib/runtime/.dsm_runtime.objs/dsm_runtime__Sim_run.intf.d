lib/runtime/sim_run.mli: Dsm_core Dsm_memory Dsm_sim Dsm_workload Execution Format
