lib/runtime/timeline.ml: Array Buffer Bytes Dsm_sim Dsm_vclock Execution Float List Printf String
