lib/runtime/timeline.mli: Execution
