module Protocol = Dsm_core.Protocol
module Network = Dsm_sim.Network
module Engine = Dsm_sim.Engine

module Make (P : Protocol.S) = struct
  type t = {
    me : int;
    proto : P.t;
    engine : Engine.t;
    network : P.msg Network.t;
    execution : Execution.t;
  }

  let now t = Engine.now t.engine

  let record t kind = Execution.record t.execution ~proc:t.me ~time:(now t) kind

  let process_effects t (eff : P.msg Protocol.effects) =
    (* a writing-semantics skip is the logical apply of the overwritten
       write "immediately before" its overwriter's apply: record skips
       first so event order reflects that *)
    List.iter (fun dot -> record t (Execution.Skip { dot })) eff.skipped;
    List.iter
      (fun (a : Protocol.apply_record) ->
        record t
          (Execution.Apply
             {
               dot = a.adot;
               var = a.avar;
               value = a.avalue;
               delayed = a.afrom_buffer;
             }))
      eff.applied;
    List.iter
      (fun outbound ->
        let msg =
          match outbound with
          | Protocol.Broadcast m -> m
          | Protocol.Unicast { msg; _ } -> msg
        in
        List.iter
          (fun (dot, var, value) ->
            record t (Execution.Send { dot; var; value }))
          (P.msg_writes msg);
        match outbound with
        | Protocol.Broadcast m -> Network.broadcast t.network ~src:t.me m
        | Protocol.Unicast { dst; msg } ->
            Network.send t.network ~src:t.me ~dst msg)
      eff.to_send

  let on_delivery t ~src ~at:_ msg =
    List.iter
      (fun (dot, _, _) -> record t (Execution.Receipt { dot; src }))
      (P.msg_writes msg);
    process_effects t (P.receive t.proto ~src msg)

  let create ~cfg ~me ~engine ~network ~execution =
    let t =
      { me; proto = P.create cfg ~me; engine; network; execution }
    in
    Network.set_handler network me (fun ~src ~at msg ->
        on_delivery t ~src ~at msg);
    t

  let me t = t.me
  let protocol t = t.proto

  let write t ~var ~value =
    let dot, eff = P.write t.proto ~var ~value in
    process_effects t eff;
    dot

  let read t ~var =
    let value, read_from = P.read t.proto ~var in
    record t (Execution.Return { var; value; read_from });
    (value, read_from)
end
