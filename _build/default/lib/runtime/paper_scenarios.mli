(** The paper's worked example and figure schedules.

    Everything here revolves around Example 1's history [Ĥ₁]:

    {v
    h1 : w1(x1)a; w1(x1)c
    h2 : r2(x1)a; w2(x2)b
    h3 : r3(x2)b; w3(x2)d
    v}

    with [w1(x1)a ↦co w2(x2)b ↦co w3(x2)d], [w1(x1)a ↦co w1(x1)c], and
    [w1(x1)c] concurrent with both [b] and [d].

    Each scenario fixes the issue times of all operations and the exact
    arrival time of every write message at every destination, matching
    the event orders of the paper's Figures 1, 2, 3 and 6. Running a
    protocol under a scenario with {!run} reproduces the corresponding
    figure; the resulting executions drive Tables 1–2 and the delay
    comparisons in the benchmark harness.

    Values are encoded as [a = 0], [b = 1], [c = 2], [d = 3] (the
    printer renders small integers as letters, so output matches the
    paper's notation). *)

val n : int
(** 3 processes. *)

val m : int
(** 2 variables. *)

(** Write identities of [Ĥ₁]. *)

val w1a : Dsm_vclock.Dot.t
val w1c : Dsm_vclock.Dot.t
val w2b : Dsm_vclock.Dot.t
val w3d : Dsm_vclock.Dot.t

type t = {
  label : string;
  ops : (float * Scripted_run.action) list;
  send_time : Dsm_vclock.Dot.t -> float;
  arrival : dot:Dsm_vclock.Dot.t -> dst:int -> float;
}

val figure1_run1 : t
(** No write delay at [p₃]: messages reach it in causal order. *)

val figure1_run2 : t
(** [w2(x2)b] reaches [p₃] before [w1(x1)a]: one {e necessary} delay. *)

val figure2 : t
(** [p₃] has applied [a] when [b] arrives, but [c] is still missing: a
    non-optimal safe protocol (causal delivery) delays [b] until [c] —
    one {e unnecessary} delay; an optimal protocol delays nothing. *)

val figure3 : t
(** The ANBKH run: [p₂] applies both [a] and [c] before writing [b]
    (but read only [a]), so [send(w1c) → send(w2b)] — false causality.
    Reads are issued late enough to return the [Ĥ₁] values under causal
    delivery. *)

val figure6 : t
(** The OptP run, with the same message pattern as {!figure1_run2}:
    [b] waits only for [a] at [p₃] and is applied before [c]. *)

val all : t list

val run : (module Dsm_core.Protocol.S) -> t -> Scripted_run.outcome
(** Execute a protocol under the scenario's exact schedule. *)

val h1_reference : Dsm_memory.History.t
(** [Ĥ₁] built directly from {!Dsm_memory.Local_history} (no protocol
    run) — the ground truth the scenario runs are compared against. *)

val h1_matches : Dsm_memory.History.t -> bool
(** Does a reconstructed history equal [Ĥ₁] (same operations, same
    read-from edges)? *)
