(** Run a protocol under a fully scripted schedule.

    The paper's figures prescribe the {e exact} order in which messages
    reach each process (e.g. in Figure 3, [p₃] receives [w₂(x₂)b]
    before [w₁(x₁)a]). This driver gives that control: operations are
    issued at explicit times, and each write-message's transit time to
    each destination is chosen by a user-supplied [delay] function keyed
    on the write's identity. Everything else (recording, effects
    processing) matches {!Sim_run}. *)

type action =
  | Write of { proc : int; var : int; value : int }
  | Read of { proc : int; var : int }

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  protocol_name : string;
  engine_steps : int;
}

val run :
  (module Dsm_core.Protocol.S) ->
  n:int ->
  m:int ->
  ops:(float * action) list ->
  delay:(src:int -> dst:int -> dot:Dsm_vclock.Dot.t -> float) ->
  ?control_delay:float ->
  ?max_steps:int ->
  unit ->
  outcome
(** [ops] is a global timeline (times non-decreasing not required; each
    op is scheduled at its own absolute time). [delay] gives the
    transit time of the message carrying write [dot] from [src] to
    [dst]; [control_delay] (default [1.0]) is used for messages that
    carry no write (token traffic). For batch messages carrying several
    writes, the delay of the {e first} write in the batch is used.
    @raise Failure on step-limit exhaustion. *)

val quick_history :
  (module Dsm_core.Protocol.S) ->
  n:int ->
  m:int ->
  ops:(float * action) list ->
  delay:(src:int -> dst:int -> dot:Dsm_vclock.Dot.t -> float) ->
  Dsm_memory.History.t
(** Convenience: run and return just the reconstructed history. *)
