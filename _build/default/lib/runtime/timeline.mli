(** ASCII space–time diagrams of executions.

    Renders a recorded run in the style of the paper's Figures 3 and 6:
    one horizontal lane per process, virtual time on the x-axis, one
    marker per event. Markers (also emitted as a legend):

    - [W] local write (apply at the issuer; the send happens here too)
    - [v] receipt of a write message
    - [A] apply of a remote write, performed at its receipt
    - [*] apply of a remote write after buffering ({e a write delay})
    - [R] read ([return] event)
    - [x] writing-semantics skip

    When several events fall into the same column, the most significant
    marker (in the order above) wins; increase [width] to separate
    them. Purely a visual aid — the exact sequences are available via
    {!Execution.pp_process}. *)

val render : ?width:int -> ?legend:bool -> Execution.t -> string
(** [width] is the number of time columns (default 72).
    [legend] appends the marker key (default true). *)
