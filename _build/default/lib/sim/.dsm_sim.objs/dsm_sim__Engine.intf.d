lib/sim/engine.mli: Format Sim_time
