lib/sim/event_queue.ml: Hashtbl Int Option Pairing_heap Sim_time
