lib/sim/event_queue.mli: Sim_time
