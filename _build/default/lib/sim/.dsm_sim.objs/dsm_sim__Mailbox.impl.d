lib/sim/mailbox.ml: List
