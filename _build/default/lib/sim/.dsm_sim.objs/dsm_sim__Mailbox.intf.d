lib/sim/mailbox.mli:
