lib/sim/network.ml: Array Engine Latency Printf Rng Sim_time
