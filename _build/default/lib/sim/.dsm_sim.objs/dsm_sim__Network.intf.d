lib/sim/network.mli: Engine Latency Rng Sim_time
