lib/sim/reliable_channel.ml: Array Engine Hashtbl Network Printf
