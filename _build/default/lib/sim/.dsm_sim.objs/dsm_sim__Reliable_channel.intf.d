lib/sim/reliable_channel.mli: Engine Network
