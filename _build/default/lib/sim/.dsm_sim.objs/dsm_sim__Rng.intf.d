lib/sim/rng.mli:
