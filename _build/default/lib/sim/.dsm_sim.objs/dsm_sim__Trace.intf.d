lib/sim/trace.mli:
