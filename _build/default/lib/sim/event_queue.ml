module Key = struct
  type t = { time : Sim_time.t; seq : int }

  let compare a b =
    let c = Sim_time.compare a.time b.time in
    if c <> 0 then c else Int.compare a.seq b.seq
end

(* The heap stores keys only; payloads live in a side table so the heap
   element type stays comparison-friendly. *)
module Heap = Pairing_heap.Make (Key)

type 'a t = {
  mutable heap : Heap.t;
  payloads : (int, 'a) Hashtbl.t;
  mutable next_seq : int;
}

let create () =
  { heap = Heap.empty; payloads = Hashtbl.create 256; next_seq = 0 }

let schedule t ~at payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.payloads seq payload;
  t.heap <- Heap.insert { Key.time = at; seq } t.heap

let pop t =
  match Heap.delete_min t.heap with
  | None -> None
  | Some (key, rest) ->
      t.heap <- rest;
      let payload = Hashtbl.find t.payloads key.Key.seq in
      Hashtbl.remove t.payloads key.Key.seq;
      Some (key.Key.time, payload)

let peek_time t = Option.map (fun k -> k.Key.time) (Heap.find_min t.heap)
let size t = Heap.size t.heap
let is_empty t = Heap.is_empty t.heap

let clear t =
  t.heap <- Heap.empty;
  Hashtbl.reset t.payloads

let scheduled_total t = t.next_seq
