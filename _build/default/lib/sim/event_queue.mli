(** Timed event queue.

    A mutable priority queue of [(time, payload)] pairs. Events with
    equal timestamps fire in scheduling order (a monotonically
    increasing sequence number breaks ties), so a run of the simulator
    is fully deterministic. *)

type 'a t

val create : unit -> 'a t

val schedule : 'a t -> at:Sim_time.t -> 'a -> unit

val pop : 'a t -> (Sim_time.t * 'a) option
(** Earliest event, removed; [None] on empty queue. *)

val peek_time : 'a t -> Sim_time.t option

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val scheduled_total : 'a t -> int
(** Total number of events ever scheduled (monotone counter, survives
    [clear]); useful for engine statistics. *)
