type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Lognormal of { mu : float; sigma : float }
  | Pareto of { scale : float; shape : float }
  | Shifted of { base : float; jitter : t }
  | Bimodal of { fast : t; slow : t; p_slow : float }

let rec validate = function
  | Constant c ->
      if c >= 0. && Float.is_finite c then Ok ()
      else Error "Constant: must be finite and non-negative"
  | Uniform { lo; hi } ->
      if lo >= 0. && hi >= lo && Float.is_finite hi then Ok ()
      else Error "Uniform: need 0 <= lo <= hi < infinity"
  | Exponential { mean } ->
      if mean > 0. && Float.is_finite mean then Ok ()
      else Error "Exponential: mean must be positive"
  | Lognormal { mu; sigma } ->
      if Float.is_finite mu && sigma >= 0. && Float.is_finite sigma then
        Ok ()
      else Error "Lognormal: parameters must be finite, sigma >= 0"
  | Pareto { scale; shape } ->
      if scale > 0. && shape > 0. then Ok ()
      else Error "Pareto: scale and shape must be positive"
  | Shifted { base; jitter } ->
      if base >= 0. && Float.is_finite base then validate jitter
      else Error "Shifted: base must be finite and non-negative"
  | Bimodal { fast; slow; p_slow } -> (
      if p_slow < 0. || p_slow > 1. then
        Error "Bimodal: p_slow must be in [0,1]"
      else
        match validate fast with Error _ as e -> e | Ok () -> validate slow)

let rec sample t rng =
  (match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Latency.sample: " ^ msg));
  match t with
  | Constant c -> c
  | Uniform { lo; hi } -> Rng.uniform rng lo hi
  | Exponential { mean } -> Rng.exponential rng mean
  | Lognormal { mu; sigma } -> Rng.lognormal rng ~mu ~sigma
  | Pareto { scale; shape } -> Rng.pareto rng ~scale ~shape
  | Shifted { base; jitter } -> base +. sample jitter rng
  | Bimodal { fast; slow; p_slow } ->
      if Rng.bernoulli rng p_slow then sample slow rng else sample fast rng

let rec mean = function
  | Constant c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | Exponential { mean = m } -> m
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.))
  | Pareto { scale; shape } ->
      if shape <= 1. then infinity else shape *. scale /. (shape -. 1.)
  | Shifted { base; jitter } -> base +. mean jitter
  | Bimodal { fast; slow; p_slow } ->
      ((1. -. p_slow) *. mean fast) +. (p_slow *. mean slow)

let rec pp ppf = function
  | Constant c -> Format.fprintf ppf "const(%g)" c
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential { mean } -> Format.fprintf ppf "exp(mean=%g)" mean
  | Lognormal { mu; sigma } ->
      Format.fprintf ppf "lognormal(mu=%g,sigma=%g)" mu sigma
  | Pareto { scale; shape } ->
      Format.fprintf ppf "pareto(scale=%g,shape=%g)" scale shape
  | Shifted { base; jitter } ->
      Format.fprintf ppf "%g+%a" base pp jitter
  | Bimodal { fast; slow; p_slow } ->
      Format.fprintf ppf "bimodal(%a|%a@@%g)" pp fast pp slow p_slow

let to_string t = Format.asprintf "%a" pp t
