(** Message-latency models.

    The paper's system model (§3.1) only assumes reliable channels with
    finite but unbounded delays. The *distribution* of delays is what
    makes the difference between the protocols visible: with near-equal
    latencies messages rarely arrive "too early" and no protocol delays
    anything; with high variance, causal broadcast (ANBKH) starts
    buffering concurrent writes that OptP applies immediately. The
    quantitative experiments (Q1–Q6) sweep over these models. *)

type t =
  | Constant of float
      (** Every message takes exactly this long. *)
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Lognormal of { mu : float; sigma : float }
      (** Heavy-ish tail; [sigma] is the knob for experiment Q2. *)
  | Pareto of { scale : float; shape : float }
      (** Heavy tail; infinite variance for [shape <= 2]. *)
  | Shifted of { base : float; jitter : t }
      (** [base] propagation delay plus sampled jitter. *)
  | Bimodal of { fast : t; slow : t; p_slow : float }
      (** With probability [p_slow] sample [slow], else [fast]; models
          occasional routing detours / retransmissions. *)

val validate : t -> (unit, string) result
(** Checks parameter sanity (positivity, [lo <= hi], probability in
    [0,1]) recursively. *)

val sample : t -> Rng.t -> float
(** Draws a latency; always non-negative and finite.
    @raise Invalid_argument if [validate] fails. *)

val mean : t -> float
(** Analytical mean of the distribution (for Pareto with
    [shape <= 1] the mean is infinite and [infinity] is returned). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
