(** Simulated message-passing network.

    Models the paper's §3.1 system: [n] processes connected by reliable
    point-to-point channels — every message sent is delivered exactly
    once, no spurious messages, delays finite but arbitrary. Channels
    are {e not} FIFO by default (nothing in the paper requires it, and
    reordering is precisely what makes write delays appear); FIFO
    per-channel delivery can be switched on to study its effect.

    The network is generic in the message payload. Delivery invokes the
    destination's handler inside the engine, so a handler runs
    atomically at its delivery timestamp. *)

type 'a t

type 'a handler = src:int -> at:Sim_time.t -> 'a -> unit

type faults = {
  drop : float;  (** probability a transmission is lost *)
  duplicate : float;  (** probability a delivered message is delivered
                          twice (the copy takes an independent delay) *)
}

val no_faults : faults

val create :
  engine:Engine.t ->
  rng:Rng.t ->
  n:int ->
  latency:(src:int -> dst:int -> Latency.t) ->
  ?fifo:bool ->
  ?faults:faults ->
  unit ->
  'a t
(** [create ~engine ~rng ~n ~latency ()] builds an [n]-process network.
    Each ordered channel gets its own split RNG stream, so adding
    traffic on one channel does not perturb another channel's delays.

    With [?faults], the network no longer implements the paper's §3.1
    reliable-channel assumption: transmissions may be dropped or
    duplicated. The {!Reliable_channel} layer rebuilds exactly-once
    delivery on top (retransmission + acknowledgment + deduplication);
    running a protocol directly over a faulty network is how the
    failure-injection tests provoke checker violations.
    @raise Invalid_argument if [n <= 0] or a fault probability is
    outside [0,1]. *)

val n : 'a t -> int

val set_handler : 'a t -> int -> 'a handler -> unit
(** Installs the delivery handler of a process. Messages delivered to a
    process without a handler raise [Failure] at delivery time. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Schedules delivery of one message at [now + latency(src,dst)].
    Self-sends are rejected ([Invalid_argument]) — protocols apply their
    own writes locally, as in Figure 4 of the paper. *)

val broadcast : 'a t -> src:int -> 'a -> unit
(** [send] to every process but [src] (the paper's
    [send m to Π − p_i]). Per-destination latencies are independent. *)

val messages_sent : 'a t -> int
val messages_delivered : 'a t -> int

val messages_dropped : 'a t -> int
val messages_duplicated : 'a t -> int

val in_flight : 'a t -> int
(** Messages sent and neither delivered nor dropped (duplicate copies
    still in transit are not counted). *)
