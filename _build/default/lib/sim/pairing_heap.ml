module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  type tree = Node of Elt.t * tree list
  type t = { root : tree option; count : int }

  let empty = { root = None; count = 0 }
  let is_empty t = t.root = None
  let size t = t.count

  let merge_tree (Node (x, xs) as a) (Node (y, ys) as b) =
    if Elt.compare x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

  let merge a b =
    match (a.root, b.root) with
    | None, _ -> b
    | _, None -> a
    | Some ta, Some tb ->
        { root = Some (merge_tree ta tb); count = a.count + b.count }

  let insert x t = merge { root = Some (Node (x, [])); count = 1 } t
  let find_min t = Option.map (fun (Node (x, _)) -> x) t.root

  (* two-pass pairing merge of the children list *)
  let rec merge_pairs = function
    | [] -> None
    | [ t ] -> Some t
    | a :: b :: rest -> (
        let ab = merge_tree a b in
        match merge_pairs rest with
        | None -> Some ab
        | Some r -> Some (merge_tree ab r))

  let delete_min t =
    match t.root with
    | None -> None
    | Some (Node (x, children)) ->
        Some (x, { root = merge_pairs children; count = t.count - 1 })

  let of_list l = List.fold_left (fun h x -> insert x h) empty l

  let to_sorted_list t =
    let rec go acc t =
      match delete_min t with
      | None -> List.rev acc
      | Some (x, t') -> go (x :: acc) t'
    in
    go [] t

  let fold_unordered f init t =
    match t.root with
    | None -> init
    | Some root ->
        let rec go acc (Node (x, children)) =
          List.fold_left go (f acc x) children
        in
        go init root
end
