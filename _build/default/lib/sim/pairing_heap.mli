(** Functional pairing heap.

    A persistent min-heap with O(1) [insert]/[merge] and amortized
    O(log n) [delete_min]. It backs the simulator's event queue, where
    millions of timed events are inserted and drained per experiment.

    The functor takes a totally ordered element type; ties must be broken
    by the caller (the event queue pairs each time with a monotonically
    increasing sequence number so that simultaneous events fire in
    schedule order — determinism is a hard requirement for reproducible
    experiments). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val size : t -> int
  (** O(1); the size is cached. *)

  val insert : Elt.t -> t -> t
  val merge : t -> t -> t

  val find_min : t -> Elt.t option
  val delete_min : t -> (Elt.t * t) option

  val of_list : Elt.t list -> t

  val to_sorted_list : t -> Elt.t list
  (** Drains the heap; ascending order. *)

  val fold_unordered : ('a -> Elt.t -> 'a) -> 'a -> t -> 'a
  (** Folds over all elements in unspecified order without draining. *)
end
