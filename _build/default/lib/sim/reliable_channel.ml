type 'a frame =
  | Data of { cseq : int; payload : 'a }
  | Ack of { cseq : int }

type 'a pending = { payload : 'a; mutable acked : bool }

type 'a t = {
  engine : Engine.t;
  network : 'a frame Network.t;
  retransmit_after : float;
  n : int;
  next_seq : int array array;  (* [src].(dst): next data sequence number *)
  outstanding : (int * int * int, 'a pending) Hashtbl.t;
      (* (src, dst, cseq) -> unacked payload *)
  delivered_seqs : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* (src, dst) -> cseqs already delivered at dst *)
  handlers : 'a Network.handler option array;
  mutable payloads_sent : int;
  mutable payloads_delivered : int;
  mutable retransmissions : int;
  mutable duplicates_discarded : int;
}

let seen_set t ~src ~dst =
  match Hashtbl.find_opt t.delivered_seqs (src, dst) with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 64 in
      Hashtbl.add t.delivered_seqs (src, dst) s;
      s

(* receive a wire frame at [dst] *)
let on_frame t dst ~src ~at frame =
  match frame with
  | Ack { cseq } -> (
      (* the ack travels dst->src, so here [dst] is the original
         sender and [src] the original receiver *)
      match Hashtbl.find_opt t.outstanding (dst, src, cseq) with
      | Some p -> p.acked <- true
      | None -> () (* duplicate ack for an already-settled payload *))
  | Data { cseq; payload } ->
      (* always (re-)acknowledge: the previous ack may have been lost *)
      Network.send t.network ~src:dst ~dst:src (Ack { cseq });
      let seen = seen_set t ~src ~dst in
      if Hashtbl.mem seen cseq then
        t.duplicates_discarded <- t.duplicates_discarded + 1
      else begin
        Hashtbl.add seen cseq ();
        t.payloads_delivered <- t.payloads_delivered + 1;
        match t.handlers.(dst) with
        | Some h -> h ~src ~at payload
        | None ->
            failwith
              (Printf.sprintf
                 "Reliable_channel: delivery to process %d without handler"
                 dst)
      end

let create ~engine ~network ?(retransmit_after = 50.) () =
  if retransmit_after <= 0. then
    invalid_arg "Reliable_channel.create: retransmit_after must be positive";
  let n = Network.n network in
  let t =
    {
      engine;
      network;
      retransmit_after;
      n;
      next_seq = Array.init n (fun _ -> Array.make n 0);
      outstanding = Hashtbl.create 256;
      delivered_seqs = Hashtbl.create 64;
      handlers = Array.make n None;
      payloads_sent = 0;
      payloads_delivered = 0;
      retransmissions = 0;
      duplicates_discarded = 0;
    }
  in
  for dst = 0 to n - 1 do
    Network.set_handler network dst (fun ~src ~at frame ->
        on_frame t dst ~src ~at frame)
  done;
  t

let set_handler t i h =
  if i < 0 || i >= t.n then
    invalid_arg "Reliable_channel.set_handler: process id out of range";
  t.handlers.(i) <- Some h

let send t ~src ~dst payload =
  if src = dst then
    invalid_arg "Reliable_channel.send: self-sends are not modelled";
  let cseq = t.next_seq.(src).(dst) in
  t.next_seq.(src).(dst) <- cseq + 1;
  t.payloads_sent <- t.payloads_sent + 1;
  let p = { payload; acked = false } in
  Hashtbl.replace t.outstanding (src, dst, cseq) p;
  let transmit () =
    Network.send t.network ~src ~dst (Data { cseq; payload = p.payload })
  in
  let rec arm_timer () =
    Engine.schedule_after t.engine t.retransmit_after (fun () ->
        if not p.acked then begin
          t.retransmissions <- t.retransmissions + 1;
          transmit ();
          arm_timer ()
        end
        else Hashtbl.remove t.outstanding (src, dst, cseq))
  in
  transmit ();
  arm_timer ()

let broadcast t ~src payload =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst payload
  done

let payloads_sent t = t.payloads_sent
let payloads_delivered t = t.payloads_delivered
let retransmissions t = t.retransmissions
let duplicates_discarded t = t.duplicates_discarded

let unacked t =
  Hashtbl.fold (fun _ p acc -> if p.acked then acc else acc + 1)
    t.outstanding 0
