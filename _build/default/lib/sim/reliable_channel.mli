(** Reliable exactly-once channels over a faulty network.

    The paper's system model (§3.1) assumes channels on which "each
    message sent by a process is eventually received exactly once and
    no spurious message can ever be delivered". This module {e builds}
    that abstraction instead of assuming it: over a {!Network} that may
    drop and duplicate (but not corrupt or forge) messages, it layers

    - per-ordered-pair sequence numbers,
    - positive acknowledgments with timeout-based retransmission, and
    - receiver-side deduplication,

    delivering each payload to the destination handler exactly once
    (not necessarily in send order — the protocols above tolerate
    reordering by design). Retransmission stops once the ack arrives;
    with any drop probability below 1 every message is eventually
    acknowledged, so simulations still quiesce.

    The wire type is {!('a) frame}; create the underlying network with
    that payload type. *)

type 'a frame
(** Data or acknowledgment, as placed on the wire. *)

type 'a t

val create :
  engine:Engine.t ->
  network:'a frame Network.t ->
  ?retransmit_after:float ->
  unit ->
  'a t
(** [retransmit_after] (default [50.] time units) is the ack timeout;
    pick it a few times the mean channel latency.
    @raise Invalid_argument if it is not positive. *)

val set_handler : 'a t -> int -> ('a Network.handler) -> unit
(** Exactly-once delivery handler for a process. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
val broadcast : 'a t -> src:int -> 'a -> unit

(** {1 Statistics} *)

val payloads_sent : 'a t -> int
(** Distinct payloads submitted (not counting retransmissions). *)

val payloads_delivered : 'a t -> int
(** Exactly-once deliveries performed. *)

val retransmissions : 'a t -> int
val duplicates_discarded : 'a t -> int
val unacked : 'a t -> int
(** Payloads still awaiting acknowledgment. *)
