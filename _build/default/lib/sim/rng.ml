type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }
let of_int64 state = { state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  (* mix with a distinct finalizer so the child stream is decorrelated
     from the parent's subsequent outputs *)
  { state = mix64 (Int64.logxor s 0xC2B2AE3D27D4EB4FL) }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (next_int64 t) (Int64.of_int (bound - 1)))
  else begin
    (* rejection sampling over 62 uniform bits to avoid modulo bias *)
    let b = Int64.of_int bound in
    let range = Int64.shift_left 1L 62 in
    let threshold = Int64.sub range (Int64.rem range b) in
    let rec go () =
      let r = Int64.shift_right_logical (next_int64 t) 2 in
      if r < threshold then Int64.to_int (Int64.rem r b) else go ()
    in
    go ()
  end

let float t =
  (* 53 uniform bits into [0,1) *)
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float r *. 0x1p-53

let uniform t lo hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  let p = Float.max 0. (Float.min 1. p) in
  float t < p

let exponential t mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1. -. float t in
  -.mean *. log u

let gaussian t =
  (* Box–Muller, discarding the second variate to keep the generator
     stateless beyond its seed word *)
  let u1 = 1. -. float t and u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let pareto t ~scale ~shape =
  if scale <= 0. then invalid_arg "Rng.pareto: scale must be positive";
  if shape <= 0. then invalid_arg "Rng.pareto: shape must be positive";
  let u = 1. -. float t in
  scale /. (u ** (1. /. shape))

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
