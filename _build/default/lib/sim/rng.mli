(** Deterministic, splittable pseudo-random number generator.

    SplitMix64 (Steele, Lea & Flood 2014). Every stochastic component of
    the simulator draws from an explicit [Rng.t] so that a run is a pure
    function of its seed: experiments are reproducible bit-for-bit, and
    independent components (e.g. each channel's latency stream) can be
    given {!split} streams that do not interfere. *)

type t

val create : int -> t
(** [create seed] initializes a generator from an integer seed. *)

val of_int64 : int64 -> t

val split : t -> t
(** [split t] returns a statistically independent generator and
    advances [t]. Used to give each process/channel its own stream. *)

val next_int64 : t -> int64
(** Uniform over all 2^64 values. *)

val bits : t -> int
(** 30 uniform non-negative bits, as [Random.bits]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)].
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean.
    @raise Invalid_argument if [mean <= 0]. *)

val gaussian : t -> float
(** Standard normal (Box–Muller; one sample per call, no caching so the
    stream stays splittable). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp of a Normal(mu, sigma²) draw. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto type I: support [\[scale, ∞)].
    @raise Invalid_argument unless [scale > 0] and [shape > 0]. *)

val choice : t -> 'a array -> 'a
(** Uniform element. @raise Invalid_argument on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
