(** Simulated time.

    Time in the simulator is a non-negative float of abstract "time
    units" (the experiments interpret one unit as a millisecond, but
    nothing depends on that). The type is kept abstract so that wall
    clock and simulated clock can never be confused. *)

type t

val zero : t
val of_float : float -> t
(** @raise Invalid_argument on negative or non-finite input. *)

val to_float : t -> float
val add : t -> float -> t
(** [add t d] advances [t] by the (non-negative) duration [d].
    @raise Invalid_argument if [d] is negative or not finite. *)

val diff : t -> t -> float
(** [diff later earlier] in time units; may be negative. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val max : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
