type 'a t = { mutable data : 'a option array; mutable len : int }

let create ?(initial_capacity = 64) () =
  { data = Array.make (max 1 initial_capacity) None; len = 0 }

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) None in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let record t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- Some x;
  t.len <- t.len + 1

let length t = t.len

let unsafe_get t i =
  match t.data.(i) with
  | Some x -> x
  | None -> assert false (* slots below [len] are always filled *)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of bounds";
  unsafe_get t i

let to_list t = List.init t.len (fun i -> unsafe_get t i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (unsafe_get t i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (unsafe_get t i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let filter p t =
  fold (fun acc x -> if p x then x :: acc else acc) [] t |> List.rev

let find_opt p t =
  let rec go i =
    if i = t.len then None
    else
      let x = unsafe_get t i in
      if p x then Some x else go (i + 1)
  in
  go 0

let find_index p t =
  let rec go i =
    if i = t.len then None
    else if p (unsafe_get t i) then Some i
    else go (i + 1)
  in
  go 0

let count p t = fold (fun acc x -> if p x then acc + 1 else acc) 0 t

let clear t =
  Array.fill t.data 0 t.len None;
  t.len <- 0
