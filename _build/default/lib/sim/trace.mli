(** Append-only event log.

    Simulation runs record their observable events (send, receipt,
    apply, return — the event vocabulary of the paper's §3.2) into a
    trace; the checker and the experiment reports consume the trace
    after the run. The log is generic: the runtime layer instantiates it
    with its own event record. Amortized O(1) append, O(1) random
    access. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t
val record : 'a t -> 'a -> unit
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th recorded event (0-based, recording order).
    @raise Invalid_argument if out of bounds. *)

val to_list : 'a t -> 'a list
(** Recording order. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val filter : ('a -> bool) -> 'a t -> 'a list
val find_opt : ('a -> bool) -> 'a t -> 'a option
val find_index : ('a -> bool) -> 'a t -> int option
val count : ('a -> bool) -> 'a t -> int
val clear : 'a t -> unit
