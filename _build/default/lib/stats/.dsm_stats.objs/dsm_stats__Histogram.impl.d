lib/stats/histogram.ml: Array Buffer Float Format List Printf Stdlib String
