lib/stats/series.ml: Float Hashtbl List Option Printf Summary Table_fmt
