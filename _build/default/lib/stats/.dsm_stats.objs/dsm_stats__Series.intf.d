lib/stats/series.mli: Summary Table_fmt
