lib/stats/table_fmt.ml: Array Buffer Char Format List Printf String
