type t = {
  x_label : string;
  mutable order : string list;  (* series, first-use order, reversed *)
  points : (string * float, float list ref) Hashtbl.t;
}

let create ~x_label () = { x_label; order = []; points = Hashtbl.create 16 }

let add_point t ~series ~x ~y =
  if not (List.mem series t.order) then t.order <- series :: t.order;
  match Hashtbl.find_opt t.points (series, x) with
  | Some l -> l := y :: !l
  | None -> Hashtbl.add t.points (series, x) (ref [ y ])

let series_names t = List.rev t.order

let xs t =
  Hashtbl.fold (fun (_, x) _ acc -> x :: acc) t.points []
  |> List.sort_uniq Float.compare

let get t ~series ~x =
  Option.map (fun l -> Summary.of_list !l) (Hashtbl.find_opt t.points (series, x))

let cell ?(digits = 2) t ~series ~x =
  match get t ~series ~x with
  | None -> "-"
  | Some s ->
      if Summary.count s = 1 then Printf.sprintf "%.*f" digits (Summary.mean s)
      else
        Printf.sprintf "%.*f ± %.*f" digits (Summary.mean s) digits
          (Summary.stddev s)

let to_table ?title ?digits t =
  let names = series_names t in
  let table = Table_fmt.create ?title ~header:(t.x_label :: names) () in
  Table_fmt.set_align table
    (Table_fmt.Right :: List.map (fun _ -> Table_fmt.Right) names);
  List.iter
    (fun x ->
      Table_fmt.add_row table
        (Printf.sprintf "%g" x
        :: List.map (fun series -> cell ?digits t ~series ~x) names))
    (xs t);
  table

let crossover t ~series_a ~series_b =
  List.find_opt
    (fun x ->
      match (get t ~series:series_a ~x, get t ~series:series_b ~x) with
      | Some a, Some b -> Summary.mean a < Summary.mean b
      | _ -> false)
    (xs t)
