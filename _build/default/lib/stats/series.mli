(** Labelled (x, y) series for parameter sweeps.

    A sweep experiment produces, per protocol, a series of points
    [(parameter value, measured summary)]. This module collects them
    and renders the combined table the paper-style "figure" sections of
    the bench output print (one x-column, one column per series). *)

type t

val create : x_label:string -> unit -> t

val add_point : t -> series:string -> x:float -> y:float -> unit
(** Series are created on first use; multiple [y] values for the same
    [(series, x)] are aggregated into a summary. *)

val series_names : t -> string list
(** In first-use order. *)

val xs : t -> float list
(** Sorted, deduplicated. *)

val get : t -> series:string -> x:float -> Summary.t option

val to_table : ?title:string -> ?digits:int -> t -> Table_fmt.t
(** One row per x, columns [x, series₁, series₂, …]; cells are
    [mean ± stddev] when a point has several samples. Missing points
    render as [-]. *)

val crossover : t -> series_a:string -> series_b:string -> float option
(** Smallest x at which the mean of [series_a] becomes strictly smaller
    than the mean of [series_b] (both defined) — used to report "who
    wins from where" in sweep summaries. *)
