type t = {
  sorted : float array;
  mean : float;
  m2 : float;  (* sum of squared deviations *)
}

let of_array a =
  if Array.length a = 0 then invalid_arg "Summary.of_array: empty sample";
  Array.iter
    (fun x ->
      if not (Float.is_finite x) then
        invalid_arg "Summary.of_array: non-finite sample")
    a;
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  (* Welford's algorithm for numerically stable mean/variance *)
  let mean = ref 0. and m2 = ref 0. in
  Array.iteri
    (fun i x ->
      let d = x -. !mean in
      mean := !mean +. (d /. float_of_int (i + 1));
      m2 := !m2 +. (d *. (x -. !mean)))
    a;
  { sorted; mean = !mean; m2 = !m2 }

let of_list l = of_array (Array.of_list l)

let count t = Array.length t.sorted
let mean t = t.mean

let variance t =
  let n = count t in
  if n < 2 then 0. else t.m2 /. float_of_int (n - 1)

let stddev t = sqrt (variance t)
let std_error t = stddev t /. sqrt (float_of_int (count t))
let min t = t.sorted.(0)
let max t = t.sorted.(count t - 1)
let sum t = Array.fold_left ( +. ) 0. t.sorted

let percentile t p =
  if p < 0. || p > 100. then
    invalid_arg "Summary.percentile: p must be in [0,100]";
  let n = count t in
  if n = 1 then t.sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ((1. -. frac) *. t.sorted.(lo)) +. (frac *. t.sorted.(hi))
  end

let median t = percentile t 50.

let ci95 t =
  let half = 1.96 *. std_error t in
  (t.mean -. half, t.mean +. half)

let pp ppf t =
  Format.fprintf ppf "%.3g ± %.2g [%.3g..%.3g] (n=%d)" (mean t) (stddev t)
    (min t) (max t) (count t)

let pp_brief ppf t = Format.fprintf ppf "%.3g ± %.2g" (mean t) (stddev t)
