(** Summary statistics over float samples.

    Used by the experiment harness to aggregate per-run measurements
    (delay counts, apply latencies, buffer occupancies) across seeds
    into the rows the benchmark tables print. *)

type t

val of_list : float list -> t
(** @raise Invalid_argument on an empty list or non-finite samples. *)

val of_array : float array -> t

val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance (0 for a single sample). *)

val stddev : t -> float
val std_error : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100]; linear interpolation between
    order statistics.
    @raise Invalid_argument if [p] is out of range. *)

val median : t -> float

val ci95 : t -> float * float
(** Normal-approximation 95% confidence interval for the mean
    ([mean ± 1.96 · stderr]). *)

val pp : Format.formatter -> t -> unit
(** [mean ± stddev [min..max] (n=k)]. *)

val pp_brief : Format.formatter -> t -> unit
(** [mean ± stddev]. *)
