type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  header : string list;
  arity : int;
  mutable aligns : align list;
  mutable rows : row list;  (* newest first *)
}

let create ?title ~header () =
  if header = [] then invalid_arg "Table_fmt.create: empty header";
  {
    title;
    header;
    arity = List.length header;
    aligns = List.map (fun _ -> Left) header;
    rows = [];
  }

let set_align t aligns =
  if List.length aligns <> t.arity then
    invalid_arg "Table_fmt.set_align: arity mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.arity then
    invalid_arg "Table_fmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rows t rows = List.iter (add_row t) rows
let add_separator t = t.rows <- Separator :: t.rows

let row_count t =
  List.length
    (List.filter (function Cells _ -> true | Separator -> false) t.rows)

(* display width in characters: count UTF-8 scalar values, not bytes,
   so tables with ∅/↦ glyphs still line up *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let pad align width s =
  let len = display_width s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map display_width t.header) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          List.iteri
            (fun i c -> widths.(i) <- max widths.(i) (display_width c))
            cells)
    rows;
  let buf = Buffer.create 512 in
  let rule () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "+" else "+");
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let emit aligns cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  emit (List.map (fun _ -> Center) t.header) t.header;
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Cells cells -> emit t.aligns cells)
    rows;
  rule ();
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

let cell_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x
let cell_int = string_of_int
