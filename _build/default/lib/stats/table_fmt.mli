(** Plain-text table rendering.

    Every table the benchmark harness prints — the reproductions of the
    paper's Tables 1–2 and the quantitative experiment tables — goes
    through this module, so all output shares one look. Columns are
    sized to their widest cell; alignment is per column. *)

type align = Left | Right | Center

type t

val create : ?title:string -> header:string list -> unit -> t
(** @raise Invalid_argument on an empty header. *)

val set_align : t -> align list -> unit
(** One entry per column (defaults to all [Left]).
    @raise Invalid_argument on length mismatch. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from the header. *)

val add_rows : t -> string list list -> unit

val add_separator : t -> unit
(** A horizontal rule between the rows added before and after. *)

val row_count : t -> int

val render : t -> string
val pp : Format.formatter -> t -> unit

val cell_float : ?digits:int -> float -> string
val cell_int : int -> string
