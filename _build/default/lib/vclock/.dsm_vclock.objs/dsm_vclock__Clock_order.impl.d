lib/vclock/clock_order.ml: Array Int List Vector_clock
