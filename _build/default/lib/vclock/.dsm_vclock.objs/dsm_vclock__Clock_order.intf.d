lib/vclock/clock_order.mli: Vector_clock
