lib/vclock/dot.ml: Format Int Map Set Vector_clock
