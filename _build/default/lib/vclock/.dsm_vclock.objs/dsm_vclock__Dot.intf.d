lib/vclock/dot.mli: Format Map Set Vector_clock
