lib/vclock/matrix_clock.ml: Array Dot Format Printf Vector_clock
