lib/vclock/matrix_clock.mli: Dot Format Vector_clock
