lib/vclock/vector_clock.ml: Array Format Int Printf
