module V = Vector_clock

let minimal l =
  List.filter (fun v -> not (List.exists (fun u -> V.lt u v) l)) l

let maximal l =
  List.filter (fun v -> not (List.exists (fun u -> V.lt v u) l)) l

let is_antichain l =
  let rec go = function
    | [] -> true
    | v :: rest ->
        List.for_all (fun u -> V.concurrent v u) rest && go rest
  in
  go l

let topo_sort l =
  (* Kahn's algorithm over the strict order, with compare_total as a
     deterministic tie-break. A plain sort by compare_total would NOT be
     a linear extension in general (lexicographic order does not extend
     the product order), hence the explicit topological pass. *)
  let arr = Array.of_list l in
  let n = Array.length arr in
  let indeg = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && V.lt arr.(j) arr.(i) then indeg.(i) <- indeg.(i) + 1
    done
  done;
  let module Q = struct
    (* ready vertices kept sorted for determinism *)
    let compare i j =
      let c = V.compare_total arr.(i) arr.(j) in
      if c <> 0 then c else Int.compare i j
  end in
  let ready = ref [] in
  let insert i = ready := List.sort Q.compare (i :: !ready) in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then insert i
  done;
  let out = ref [] in
  let rec drain () =
    match !ready with
    | [] -> ()
    | i :: rest ->
        ready := rest;
        out := arr.(i) :: !out;
        for j = 0 to n - 1 do
          if i <> j && V.lt arr.(i) arr.(j) then begin
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then insert j
          end
        done;
        drain ()
  in
  drain ();
  List.rev !out

let is_linear_extension l =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun u -> not (V.lt u v)) rest && go rest
  in
  go l

let covers l =
  let pairs = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if
            V.lt a b
            && not
                 (List.exists (fun c -> V.lt a c && V.lt c b) l)
          then pairs := (a, b) :: !pairs)
        l)
    l;
  List.rev !pairs

let down_set l v = List.filter (fun u -> V.lt u v) l

let width_lower_bound l =
  (* Greedy: repeatedly pick an element concurrent with everything
     chosen so far, scanning a topologically sorted list. Exact on the
     small posets exercised by the test-suite; documented as a lower
     bound elsewhere. *)
  let sorted = topo_sort l in
  let best = ref 0 in
  List.iteri
    (fun i start ->
      let chosen = ref [ start ] in
      List.iteri
        (fun j v ->
          if j > i && List.for_all (fun u -> V.concurrent u v) !chosen
          then chosen := v :: !chosen)
        sorted;
      if List.length !chosen > !best then best := List.length !chosen)
    sorted;
  !best
