(** Partial-order combinators over collections of vector clocks.

    The paper's correctness argument rests on [(Write_co, <)] being a
    system of vector clocks characterizing [↦co]. This module provides
    the order-theoretic toolkit used by the checker and the tests to
    manipulate sets of timestamps as a partial order: minimal/maximal
    elements, antichains, topological sorting, linear-extension checks
    and covering (immediate-predecessor) relations — the latter is the
    edge relation of the paper's write causality graph (§4.3). *)

val minimal : Vector_clock.t list -> Vector_clock.t list
(** Elements with no strict predecessor in the list (duplicates of a
    minimal value are all kept). *)

val maximal : Vector_clock.t list -> Vector_clock.t list

val is_antichain : Vector_clock.t list -> bool
(** True iff the clocks are pairwise concurrent (and pairwise distinct).
    The empty and singleton lists are antichains. *)

val topo_sort : Vector_clock.t list -> Vector_clock.t list
(** A deterministic linear extension of the partial order: sorted so
    that [lt a b] implies [a] appears before [b]. Ties (concurrent or
    equal clocks) are broken by {!Vector_clock.compare_total}. *)

val is_linear_extension : Vector_clock.t list -> bool
(** [is_linear_extension l] checks that no element is strictly greater
    than a later element — i.e. the list order is compatible with the
    clock order. *)

val covers :
  Vector_clock.t list -> (Vector_clock.t * Vector_clock.t) list
(** [covers l] is the covering relation of the partial order restricted
    to [l]: pairs [(a, b)] with [lt a b] and no [c] in [l] strictly
    between them. Over the [Write_co] timestamps of a history's writes
    this is exactly the edge set of the write causality graph. *)

val down_set : Vector_clock.t list -> Vector_clock.t -> Vector_clock.t list
(** [down_set l v] is every element of [l] strictly below [v] — the
    causal past of [v] within [l]. *)

val width_lower_bound : Vector_clock.t list -> int
(** Size of a maximal antichain found greedily (a lower bound on the
    order width; exact for the small histories used in tests). *)
