type t = { replica : int; seq : int }

let make ~replica ~seq =
  if replica < 0 then invalid_arg "Dot.make: negative replica";
  if seq < 1 then invalid_arg "Dot.make: sequence numbers start at 1";
  { replica; seq }

let replica d = d.replica
let seq d = d.seq
let equal a b = a.replica = b.replica && a.seq = b.seq

let compare a b =
  let c = Int.compare a.replica b.replica in
  if c <> 0 then c else Int.compare a.seq b.seq

let hash d = (d.replica * 1000003) lxor d.seq
let of_clock w_co i = make ~replica:i ~seq:(Vector_clock.get w_co i)
let pp ppf d = Format.fprintf ppf "w%d#%d" (d.replica + 1) d.seq
let to_string d = Format.asprintf "%a" pp d

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
