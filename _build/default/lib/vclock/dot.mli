(** Write identities.

    A {e dot} is the pair [(replica, sequence_number)] identifying the
    [seq]-th write issued by process [replica] (1-based, matching the
    paper's Observation 2: [w] is the [k]-th write of [p_i] iff
    [w.Write_co[i] = k]). Dots name writes independently of their
    payload, which is what the delay-accounting machinery, the causality
    graph and the writing-semantics metadata all need. *)

type t = { replica : int; seq : int }

val make : replica:int -> seq:int -> t
(** @raise Invalid_argument if [replica < 0] or [seq < 1]. *)

val replica : t -> int
val seq : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val of_clock : Vector_clock.t -> int -> t
(** [of_clock w_co i] is the dot of the write whose [Write_co] vector is
    [w_co] and whose issuer is [p_i] — i.e. [(i, w_co[i])]
    (Observation 2). *)

val pp : Format.formatter -> t -> unit
(** Prints as [w{replica+1}#{seq}], e.g. [w1#2] for the second write of
    process [p₁] (1-based process names, as in the paper). *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
