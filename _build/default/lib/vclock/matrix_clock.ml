type t = int array array

let create n =
  if n <= 0 then invalid_arg "Matrix_clock.create: size must be positive";
  Array.init n (fun _ -> Array.make n 0)

let copy m = Array.map Array.copy m
let size = Array.length

let check m i name =
  if i < 0 || i >= Array.length m then
    invalid_arg (Printf.sprintf "Matrix_clock.%s: index out of bounds" name)

let row m j =
  check m j "row";
  Vector_clock.of_array m.(j)

let own = row

let get m i j =
  check m i "get";
  check m j "get";
  m.(i).(j)

let tick m i =
  check m i "tick";
  m.(i).(i) <- m.(i).(i) + 1

let observe m i v =
  check m i "observe";
  if Vector_clock.size v <> Array.length m then
    invalid_arg "Matrix_clock.observe: size mismatch";
  for j = 0 to Array.length m - 1 do
    let x = Vector_clock.get v j in
    if x > m.(i).(j) then m.(i).(j) <- x
  done

let merge_from m ~sender remote =
  check m sender "merge_from";
  if size remote <> size m then
    invalid_arg "Matrix_clock.merge_from: size mismatch";
  let n = Array.length m in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let x = remote.(i).(j) in
      if x > m.(i).(j) then m.(i).(j) <- x
    done
  done;
  (* the sender's row of the remote matrix is the sender's current
     knowledge; absorbing it separately is redundant after the full
     merge above but kept explicit for clarity of the receipt rule *)
  for j = 0 to n - 1 do
    let x = remote.(sender).(j) in
    if x > m.(sender).(j) then m.(sender).(j) <- x
  done

let stable_seq m j =
  check m j "stable_seq";
  Array.fold_left (fun acc r -> min acc r.(j)) max_int m

let is_stable m d = Dot.seq d <= stable_seq m (Dot.replica d)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      Vector_clock.pp ppf (Vector_clock.of_array r))
    m;
  Format.fprintf ppf "@]"
