(** Matrix clocks ("knowledge about knowledge").

    A matrix clock at process [p_i] stores, for every process [p_j], an
    estimate of [p_j]'s vector clock. Row [i] is [p_i]'s own vector.
    Matrix clocks are not needed by OptP itself, but they are the
    standard substrate for two facilities this repository offers on top
    of the paper:

    - {b garbage collection} of write buffers: a write [w] issued by
      [p_j] with sequence number [s] is stable once
      [min_k M[k][j] ≥ s] — every process is known to have applied it;
    - the token-based writing-semantics protocol ([Ws_token]) uses the
      stability test to bound its pending-update sets. *)

type t

val create : int -> t
(** [create n] is an all-zero n×n matrix. *)

val copy : t -> t
val size : t -> int

val row : t -> int -> Vector_clock.t
(** [row m j] is a fresh copy of row [j]. *)

val own : t -> int -> Vector_clock.t
(** [own m i] is [row m i] — process [i]'s own vector. *)

val get : t -> int -> int -> int

val tick : t -> int -> unit
(** [tick m i] increments [M[i][i]] — process [i] produced an event. *)

val observe : t -> int -> Vector_clock.t -> unit
(** [observe m i v] merges [v] into row [i] — process [i] learned of the
    events in [v]. *)

val merge_from : t -> sender:int -> t -> unit
(** [merge_from m ~sender remote] is the receipt rule at some process
    [p_i] (the owner of [m]): every row is merged component-wise with
    the corresponding remote row, and the sender's row additionally
    absorbs the sender's own row of [remote]. *)

val stable_seq : t -> int -> int
(** [stable_seq m j] is [min_k M[k][j]]: every write of [p_j] with
    sequence number [≤ stable_seq m j] is known-applied everywhere. *)

val is_stable : t -> Dot.t -> bool
(** [is_stable m d] is [Dot.seq d <= stable_seq m (Dot.replica d)]. *)

val pp : Format.formatter -> t -> unit
