lib/workload/generator.ml: Array Dsm_sim Float List Spec Zipf
