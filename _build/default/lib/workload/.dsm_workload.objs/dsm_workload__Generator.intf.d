lib/workload/generator.mli: Spec
