lib/workload/scripted.ml: Array List Spec
