lib/workload/scripted.mli: Spec
