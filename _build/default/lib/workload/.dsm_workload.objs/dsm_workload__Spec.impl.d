lib/workload/spec.ml: Dsm_sim Format
