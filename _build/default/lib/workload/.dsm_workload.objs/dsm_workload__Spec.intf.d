lib/workload/spec.mli: Dsm_sim Format
