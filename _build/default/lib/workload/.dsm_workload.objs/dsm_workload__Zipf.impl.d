lib/workload/zipf.ml: Array Dsm_sim
