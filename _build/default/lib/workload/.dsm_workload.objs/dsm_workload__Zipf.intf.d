lib/workload/zipf.mli: Dsm_sim
