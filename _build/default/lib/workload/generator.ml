module Rng = Dsm_sim.Rng
module Latency = Dsm_sim.Latency
open Spec

let generate spec =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Generator.generate: " ^ e));
  let root = Rng.create spec.seed in
  let zipf =
    match spec.var_dist with
    | Zipf_vars s -> Some (Zipf.create ~n:spec.m ~s)
    | Uniform_vars | Single_var -> None
  in
  Array.init spec.n (fun _proc ->
      let rng = Rng.split root in
      let now = ref 0. in
      List.init spec.ops_per_process (fun _ ->
          now := !now +. Latency.sample spec.think rng;
          let var =
            match spec.var_dist with
            | Uniform_vars -> Rng.int rng spec.m
            | Single_var -> 0
            | Zipf_vars _ -> (
                match zipf with
                | Some z -> Zipf.sample z rng
                | None -> assert false)
          in
          let op =
            if Rng.bernoulli rng spec.write_ratio then Do_write { var }
            else Do_read { var }
          in
          { at = !now; op }))

let op_counts schedule =
  Array.fold_left
    (fun (w, r) ops ->
      List.fold_left
        (fun (w, r) { op; _ } ->
          match op with
          | Do_write _ -> (w + 1, r)
          | Do_read _ -> (w, r + 1))
        (w, r) ops)
    (0, 0) schedule

let end_time schedule =
  Array.fold_left
    (fun acc ops ->
      List.fold_left (fun acc { at; _ } -> Float.max acc at) acc ops)
    0. schedule
