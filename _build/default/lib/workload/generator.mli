(** Random workload generation.

    Expands a {!Spec.t} into a concrete per-process schedule of timed
    operations. Generation is deterministic in the spec's seed: each
    process draws from its own split RNG stream, so changing one
    process's parameters never perturbs another's schedule. *)

val generate : Spec.t -> Spec.scheduled_op list array
(** One timed op list per process, ascending in time.
    @raise Invalid_argument if the spec fails {!Spec.validate}. *)

val op_counts : Spec.scheduled_op list array -> int * int
(** [(writes, reads)] totals of a generated schedule. *)

val end_time : Spec.scheduled_op list array -> float
(** Largest scheduled issue time (0 if empty). *)
