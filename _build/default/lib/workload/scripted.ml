open Spec

type program = scheduled_op list

let program ?(start = 0.) ?(gap = 1.) ops =
  if start < 0. then invalid_arg "Scripted.program: negative start";
  if gap <= 0. then invalid_arg "Scripted.program: gap must be positive";
  List.mapi (fun i op -> { at = start +. (float_of_int i *. gap); op }) ops

let timed pairs =
  let rec check prev = function
    | [] -> ()
    | (at, _) :: rest ->
        if at < prev then
          invalid_arg "Scripted.timed: issue times must be non-decreasing";
        check at rest
  in
  check 0. pairs;
  List.map (fun (at, op) -> { at; op }) pairs

let schedule programs = Array.of_list programs

let w var = Do_write { var }
let r var = Do_read { var }
