(** Hand-written workloads.

    Combinators for building explicit per-process schedules — used by
    the example applications and by the paper-figure reproductions,
    where the exact issue order of each operation matters. *)

type program
(** A sequential program for one process: ops with explicit gaps. *)

val program : ?start:float -> ?gap:float -> Spec.op list -> program
(** Ops issued at [start], [start+gap], [start+2·gap], …
    Defaults: [start = 0.], [gap = 1.].
    @raise Invalid_argument on negative [start] or non-positive [gap]. *)

val timed : (float * Spec.op) list -> program
(** Explicit absolute issue times; must be non-decreasing.
    @raise Invalid_argument otherwise. *)

val schedule : program list -> Spec.scheduled_op list array
(** Program [i] runs on process [i]. *)

val w : int -> Spec.op
(** [w var] — write intent (0-based variable). *)

val r : int -> Spec.op
(** [r var] — read intent. *)
