module Latency = Dsm_sim.Latency

type op = Do_write of { var : int } | Do_read of { var : int }
type scheduled_op = { at : float; op : op }

type var_dist = Uniform_vars | Zipf_vars of float | Single_var

type t = {
  n : int;
  m : int;
  ops_per_process : int;
  write_ratio : float;
  think : Latency.t;
  var_dist : var_dist;
  seed : int;
}

let make ?(n = 3) ?(m = 4) ?(ops_per_process = 100) ?(write_ratio = 0.5)
    ?(think = Latency.Exponential { mean = 10. }) ?(var_dist = Uniform_vars)
    ?(seed = 42) () =
  { n; m; ops_per_process; write_ratio; think; var_dist; seed }

let validate t =
  if t.n <= 0 then Error "n must be positive"
  else if t.m <= 0 then Error "m must be positive"
  else if t.ops_per_process < 0 then Error "ops_per_process must be >= 0"
  else if t.write_ratio < 0. || t.write_ratio > 1. then
    Error "write_ratio must be in [0,1]"
  else
    match t.var_dist with
    | Zipf_vars s when s < 0. -> Error "Zipf exponent must be >= 0"
    | Zipf_vars _ | Uniform_vars | Single_var -> (
        match Latency.validate t.think with
        | Ok () -> Ok ()
        | Error e -> Error ("think: " ^ e))

let total_ops t = t.n * t.ops_per_process

let pp_var_dist ppf = function
  | Uniform_vars -> Format.pp_print_string ppf "uniform"
  | Zipf_vars s -> Format.fprintf ppf "zipf(s=%g)" s
  | Single_var -> Format.pp_print_string ppf "single-var"

let pp ppf t =
  Format.fprintf ppf
    "workload(n=%d, m=%d, ops/proc=%d, writes=%.0f%%, think=%a, vars=%a, \
     seed=%d)"
    t.n t.m t.ops_per_process (100. *. t.write_ratio) Latency.pp t.think
    pp_var_dist t.var_dist t.seed

let pp_op ppf = function
  | Do_write { var } -> Format.fprintf ppf "w(x%d)" (var + 1)
  | Do_read { var } -> Format.fprintf ppf "r(x%d)" (var + 1)
