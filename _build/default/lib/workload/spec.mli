(** Workload specifications.

    A workload describes {e what} each process does and {e when},
    independently of any protocol: a timed sequence of read/write
    intents per process. Write values are assigned by the driver (every
    write gets a globally unique value, so the read-from relation is
    unambiguous as required by §2).

    The quantitative experiments (Q1–Q6) are sweeps over these fields:
    more processes, more writes, hotter variables and burstier issue
    times all increase the chance that concurrent writes race through
    the network — which is where delay counts separate the protocols. *)

type op = Do_write of { var : int } | Do_read of { var : int }

type scheduled_op = { at : float; op : op }
(** [at] is an absolute simulated time. *)

type var_dist =
  | Uniform_vars
  | Zipf_vars of float
      (** rank-frequency exponent [s]; [s = 0] is uniform, larger [s]
          concentrates traffic on few variables *)
  | Single_var
      (** all operations on variable 0 — maximal write–write conflicts *)

type t = {
  n : int;  (** processes *)
  m : int;  (** memory locations *)
  ops_per_process : int;
  write_ratio : float;  (** probability an op is a write, in [0,1] *)
  think : Dsm_sim.Latency.t;  (** gap between consecutive ops of a process *)
  var_dist : var_dist;
  seed : int;
}

val make :
  ?n:int ->
  ?m:int ->
  ?ops_per_process:int ->
  ?write_ratio:float ->
  ?think:Dsm_sim.Latency.t ->
  ?var_dist:var_dist ->
  ?seed:int ->
  unit ->
  t
(** Defaults: [n = 3], [m = 4], [ops_per_process = 100],
    [write_ratio = 0.5], [think = Exponential 10.], [Uniform_vars],
    [seed = 42]. *)

val validate : t -> (unit, string) result

val total_ops : t -> int

val pp : Format.formatter -> t -> unit
val pp_op : Format.formatter -> op -> unit
