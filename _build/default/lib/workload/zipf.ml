type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: exponent must be non-negative";
  let weights = Array.init n (fun k -> (float_of_int (k + 1)) ** -.s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n; s; cdf }

let n t = t.n
let exponent t = t.s

let sample t rng =
  let u = Dsm_sim.Rng.float rng in
  (* binary search for the first cdf entry >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let probability t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
