(** Zipf-distributed sampling over ranks [0..n-1].

    Rank [k] (0-based) is drawn with probability proportional to
    [1 / (k+1)^s]. Used by workload generation to model hot variables:
    the higher the exponent, the more write–write conflicts concentrate
    on a few locations. *)

type t

val create : n:int -> s:float -> t
(** @raise Invalid_argument unless [n > 0] and [s >= 0]. [s = 0] is the
    uniform distribution. *)

val n : t -> int
val exponent : t -> float

val sample : t -> Dsm_sim.Rng.t -> int
(** A rank in [0..n-1]. *)

val probability : t -> int -> float
(** Exact probability of a rank.
    @raise Invalid_argument if out of range. *)
