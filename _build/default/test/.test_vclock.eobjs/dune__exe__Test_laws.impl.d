test/test_laws.ml: Alcotest Array Dsm_core Dsm_memory Dsm_vclock List
