test/test_memory.ml: Alcotest Array Dsm_memory Dsm_sim Dsm_vclock Hashtbl Int List QCheck2 QCheck_alcotest String
