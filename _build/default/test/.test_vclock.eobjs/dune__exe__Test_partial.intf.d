test/test_partial.mli:
