test/test_properties.ml: Alcotest Dsm_core Dsm_memory Dsm_runtime Dsm_sim Dsm_vclock Dsm_workload Float Format Fun Hashtbl List QCheck2 QCheck_alcotest
