test/test_protocols.ml: Alcotest Dsm_core Dsm_memory Dsm_vclock List
