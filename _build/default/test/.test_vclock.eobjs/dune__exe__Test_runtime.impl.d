test/test_runtime.ml: Alcotest Dsm_core Dsm_memory Dsm_runtime Dsm_sim Dsm_stats Dsm_vclock Dsm_workload List String
