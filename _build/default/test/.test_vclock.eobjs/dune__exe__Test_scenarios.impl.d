test/test_scenarios.ml: Alcotest Dsm_core Dsm_memory Dsm_runtime Dsm_vclock List
