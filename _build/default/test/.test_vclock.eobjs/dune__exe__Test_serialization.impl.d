test/test_serialization.ml: Alcotest Array Dsm_memory Dsm_sim Dsm_vclock List Printf QCheck2 QCheck_alcotest
