test/test_session_guarantees.ml: Alcotest Dsm_core Dsm_memory Dsm_runtime Dsm_sim Dsm_vclock Dsm_workload List QCheck2 QCheck_alcotest
