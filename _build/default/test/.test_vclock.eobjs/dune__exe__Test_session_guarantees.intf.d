test/test_session_guarantees.mli:
