test/test_sim.ml: Alcotest Array Dsm_sim Float Fun Int List Option QCheck2 QCheck_alcotest Result
