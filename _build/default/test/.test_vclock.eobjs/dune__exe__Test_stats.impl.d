test/test_stats.ml: Alcotest Dsm_stats Float List QCheck2 QCheck_alcotest String
