test/test_stress.ml: Alcotest Dsm_core Dsm_runtime Dsm_sim Dsm_workload Format List
