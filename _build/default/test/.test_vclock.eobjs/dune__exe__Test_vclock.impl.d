test/test_vclock.ml: Alcotest Array Dsm_vclock Fun List Map QCheck2 QCheck_alcotest Set
