test/test_workload.ml: Alcotest Array Dsm_sim Dsm_workload List QCheck2 QCheck_alcotest Result
