  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency const:5
  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 --drop 0.2 > /dev/null 2>&1; echo "exit: $?"
  $ dsm-sim run -n 4 -m 8 --ops 20 --seed 4 --replication-degree 2 > /dev/null 2>&1; echo "exit: $?"
  $ dsm-sim run --protocol nope 2> /dev/null; echo "exit: $?"
