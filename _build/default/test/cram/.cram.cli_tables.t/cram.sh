  $ dsm-sim tables --section F7
  $ dsm-sim graph -n 2 -m 2 --ops 4 --write-ratio 1.0 --seed 1 | head -3
