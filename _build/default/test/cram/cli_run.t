A small deterministic run: OptP audits clean and exits 0.

  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency const:5
  workload: workload(n=3, m=2, ops/proc=20, writes=50%, think=exp(mean=10), vars=uniform, seed=4)
  network:  const(5)
  
  protocol: OptP
  
  OptP: 205 events, 58 msgs sent / 58 delivered, t_end=189.0
  applies=87 delays=0 skips=0 buffer-high=0,0,0
  
  audit: applies=87 delays=0 (necessary=0, unnecessary=0) skips=0 complete=true lost=0
         violations=0
A lossy run over reliable channels also audits clean.

  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 --drop 0.2 > /dev/null 2>&1; echo "exit: $?"
  exit: 0
Partial replication over a ring layout.

  $ dsm-sim run -n 4 -m 8 --ops 20 --seed 4 --replication-degree 2 > /dev/null 2>&1; echo "exit: $?"
  exit: 0
An unknown protocol is rejected.

  $ dsm-sim run --protocol nope 2> /dev/null; echo "exit: $?"
  exit: 124
