The paper's tables are fully deterministic and must never change.

  $ dsm-sim tables --section F7
  Figure 7: write causality graph of H1
  w1(x1)a -> w1(x1)c
  w1(x1)a -> w2(x2)b
  w2(x2)b -> w3(x2)d
  
  digraph write_causality {
    "w1(x1)a";
    "w1(x1)c";
    "w2(x2)b";
    "w3(x2)d";
    "w1(x1)a" -> "w1(x1)c";
    "w1(x1)a" -> "w2(x2)b";
    "w2(x2)b" -> "w3(x2)d";
  }
  $ dsm-sim graph -n 2 -m 2 --ops 4 --write-ratio 1.0 --seed 1 | head -3
  digraph write_causality {
    "w1(x1)b";
    "w1(x1)c";
