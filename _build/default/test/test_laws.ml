(* Protocol conformance laws: one battery of behavioural invariants run
   uniformly against every Protocol.S implementation. Complements the
   per-protocol unit tests by guaranteeing no implementation quietly
   diverges from the shared contract. *)

module Protocol = Dsm_core.Protocol
module Operation = Dsm_memory.Operation
module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let protocols : (string * (module Protocol.S)) list =
  [
    ("optp", (module Dsm_core.Opt_p));
    ("anbkh", (module Dsm_core.Anbkh));
    ("ws-recv", (module Dsm_core.Ws_receiver));
    ("optp-ws", (module Dsm_core.Opt_p_ws));
    ("optp-direct", (module Dsm_core.Opt_p_direct));
    ("ws-token", (module Dsm_core.Ws_token));
  ]

let cfg = Protocol.config ~n:3 ~m:2

(* law: a fresh replica reads ⊥ everywhere *)
let law_fresh_reads_bot (module P : Protocol.S) () =
  let p = P.create cfg ~me:0 in
  for var = 0 to 1 do
    check_bool "⊥" true (P.read p ~var = (Operation.Bot, None))
  done;
  Alcotest.(check (list int)) "zero applied vector" [ 0; 0; 0 ]
    (V.to_list (P.applied_vector p))

(* law: read your own write, immediately *)
let law_read_own_write (module P : Protocol.S) () =
  let p = P.create cfg ~me:1 in
  let dot, _ = P.write p ~var:0 ~value:42 in
  check_bool "own value" true (P.read p ~var:0 = (Operation.Val 42, Some dot));
  check_bool "other var untouched" true (P.read p ~var:1 = (Operation.Bot, None))

(* law: dots are (me, 1), (me, 2), ... in issue order *)
let law_dot_sequencing (module P : Protocol.S) () =
  let p = P.create cfg ~me:2 in
  let d1, _ = P.write p ~var:0 ~value:1 in
  let d2, _ = P.write p ~var:1 ~value:2 in
  let d3, _ = P.write p ~var:0 ~value:3 in
  Alcotest.(check (list string)) "sequenced"
    [ "w3#1"; "w3#2"; "w3#3" ]
    (List.map Dot.to_string [ d1; d2; d3 ])

(* law: the write's apply record is the local apply, not buffered *)
let law_local_apply_record (module P : Protocol.S) () =
  let p = P.create cfg ~me:0 in
  let dot, eff = P.write p ~var:1 ~value:5 in
  match eff.Protocol.applied with
  | [ a ] ->
      check_bool "same dot" true (Dot.equal a.Protocol.adot dot);
      check_int "var" 1 a.Protocol.avar;
      check_int "value" 5 a.Protocol.avalue;
      check_bool "not from buffer" false a.Protocol.afrom_buffer
  | _ -> Alcotest.fail "expected exactly the local apply"

(* law: applied_vector counts own writes in its own component *)
let law_applied_vector_counts_own (module P : Protocol.S) () =
  let p = P.create cfg ~me:1 in
  for v = 1 to 4 do
    ignore (P.write p ~var:0 ~value:v)
  done;
  check_int "own component" 4 (V.get (P.applied_vector p) 1)

(* law: msg_writes of an outbound write message names the write *)
let law_msg_writes (module P : Protocol.S) () =
  let p = P.create cfg ~me:0 in
  let dot, eff = P.write p ~var:0 ~value:9 in
  let carried =
    List.concat_map
      (fun ob ->
        let m =
          match ob with
          | Protocol.Broadcast m -> m
          | Protocol.Unicast { msg; _ } -> msg
        in
        P.msg_writes m)
      eff.Protocol.to_send
  in
  (* token protocols may defer propagation; when a message does carry
     writes, the new write must be among them *)
  match carried with
  | [] -> ()
  | l ->
      check_bool "carries the write" true
        (List.exists (fun (d, _, _) -> Dot.equal d dot) l)

(* law: in-order pairwise exchange applies everything, buffers stay
   empty at quiescence *)
let law_in_order_exchange (module P : Protocol.S) () =
  let a = P.create cfg ~me:0 in
  let b = P.create cfg ~me:1 in
  let c = P.create cfg ~me:2 in
  let all = [| a; b; c |] in
  let deliver_all src (eff : P.msg Protocol.effects) =
    List.iter
      (fun ob ->
        match ob with
        | Protocol.Broadcast m ->
            Array.iteri
              (fun i p -> if i <> src then ignore (P.receive p ~src m))
              all
        | Protocol.Unicast { dst; msg } ->
            ignore (P.receive all.(dst) ~src:dst msg) |> ignore;
            ignore (P.receive all.(dst) ~src msg) |> ignore)
      eff.Protocol.to_send
  in
  ignore deliver_all;
  (* use broadcast-only protocols for this law; token's unicast routing
     is driven by its own tests *)
  let broadcast_only =
    match P.name with "WS-token" -> false | _ -> true
  in
  if broadcast_only then begin
    let _, e1 = P.write a ~var:0 ~value:1 in
    (match e1.Protocol.to_send with
    | [ Protocol.Broadcast m ] ->
        ignore (P.receive b ~src:0 m);
        ignore (P.receive c ~src:0 m)
    | _ -> Alcotest.fail "expected a broadcast");
    let _, e2 = P.write b ~var:1 ~value:2 in
    (match e2.Protocol.to_send with
    | [ Protocol.Broadcast m ] ->
        ignore (P.receive a ~src:1 m);
        ignore (P.receive c ~src:1 m)
    | _ -> Alcotest.fail "expected a broadcast");
    Array.iter
      (fun p ->
        check_int "buffer empty" 0 (P.buffered p);
        check_bool "x1 converged" true
          (fst (P.read p ~var:0) = Operation.Val 1);
        check_bool "x2 converged" true
          (fst (P.read p ~var:1) = Operation.Val 2))
      all
  end

(* law: buffer statistics are consistent *)
let law_buffer_stats (module P : Protocol.S) () =
  let p = P.create cfg ~me:0 in
  check_int "fresh buffer empty" 0 (P.buffered p);
  check_int "fresh high watermark" 0 (P.buffer_high_watermark p);
  check_int "fresh total" 0 (P.total_buffered p)

(* law: create rejects out-of-range process ids *)
let law_create_validation (module P : Protocol.S) () =
  check_bool "negative me" true
    (try
       ignore (P.create cfg ~me:(-1));
       false
     with Invalid_argument _ -> true);
  check_bool "me = n" true
    (try
       ignore (P.create cfg ~me:3);
       false
     with Invalid_argument _ -> true)

let laws =
  [
    ("fresh reads ⊥", law_fresh_reads_bot);
    ("read your own write", law_read_own_write);
    ("dot sequencing", law_dot_sequencing);
    ("local apply record", law_local_apply_record);
    ("applied vector counts own", law_applied_vector_counts_own);
    ("msg_writes names the write", law_msg_writes);
    ("in-order exchange converges", law_in_order_exchange);
    ("buffer stats", law_buffer_stats);
    ("create validation", law_create_validation);
  ]

let () =
  Alcotest.run "protocol_laws"
    (List.map
       (fun (pname, p) ->
         ( pname,
           List.map
             (fun (lname, law) -> Alcotest.test_case lname `Quick (law p))
             laws ))
       protocols)
