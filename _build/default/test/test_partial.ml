(* Tests for partially replicated causal memory: the Replication map,
   the Opt_p_partial protocol and the Partial_run driver with the
   replication-aware checker. *)

module Replication = Dsm_core.Replication
module P = Dsm_core.Opt_p_partial
module Partial_run = Dsm_runtime.Partial_run
module Checker = Dsm_runtime.Checker
module Execution = Dsm_runtime.Execution
module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Dot = Dsm_vclock.Dot
module Operation = Dsm_memory.Operation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck_case ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Replication maps                                                    *)
(* ------------------------------------------------------------------ *)

let test_full_map () =
  let r = Replication.full ~n:3 ~m:4 in
  check_bool "full" true (Replication.is_full r);
  check_int "degree" 3 (Replication.degree r ~var:2);
  Alcotest.(check (list int)) "vars" [ 0; 1; 2; 3 ]
    (Replication.vars_of r ~proc:1)

let test_ring_map () =
  let r = Replication.ring ~n:4 ~m:4 ~degree:2 in
  check_bool "not full" false (Replication.is_full r);
  Alcotest.(check (list int)) "x1 at p1,p2" [ 0; 1 ]
    (Replication.replicas_of r ~var:0);
  Alcotest.(check (list int)) "x4 wraps to p4,p1" [ 0; 3 ]
    (Replication.replicas_of r ~var:3);
  check_int "every var degree 2" 2 (Replication.degree r ~var:2)

let test_of_sets_validation () =
  Alcotest.check_raises "process with no vars"
    (Invalid_argument "Replication: process 1 replicates no variable")
    (fun () -> ignore (Replication.of_sets ~n:2 ~m:2 [| [ 0; 1 ]; [] |]));
  Alcotest.check_raises "unreplicated variable"
    (Invalid_argument "Replication: variable 1 has no replica") (fun () ->
      ignore (Replication.of_sets ~n:2 ~m:2 [| [ 0 ]; [ 0 ] |]))

let test_random_map_wellformed () =
  let rng = Dsm_sim.Rng.create 5 in
  let r = Replication.random ~n:5 ~m:7 ~degree:2 ~rng in
  for var = 0 to 6 do
    check_bool "every var replicated" true (Replication.degree r ~var >= 2)
  done;
  for proc = 0 to 4 do
    check_bool "every proc has a var" true
      (Replication.vars_of r ~proc <> [])
  done

(* ------------------------------------------------------------------ *)
(* Opt_p_partial unit behaviour                                        *)
(* ------------------------------------------------------------------ *)

(* p1{x1}, p2{x1,x2}, p3{x2}: causality flows p1 -> p2 -> p3 through
   x1 even though p3 does not replicate x1 *)
let chain_map () =
  Replication.of_sets ~n:3 ~m:2 [| [ 0 ]; [ 0; 1 ]; [ 1 ] |]

let test_partial_write_destinations () =
  let repl = chain_map () in
  let p1 = P.create repl ~me:0 in
  let _, _, dests, _ = P.write p1 ~var:0 ~value:1 in
  Alcotest.(check (list int)) "x1 goes to p2 only" [ 1 ] dests

let test_partial_rejects_foreign_ops () =
  let repl = chain_map () in
  let p1 = P.create repl ~me:0 in
  Alcotest.check_raises "write foreign var"
    (Invalid_argument "Opt_p_partial.write: p1 does not replicate x2")
    (fun () -> ignore (P.write p1 ~var:1 ~value:9));
  Alcotest.check_raises "read foreign var"
    (Invalid_argument "Opt_p_partial.read: p1 does not replicate x2")
    (fun () -> ignore (P.read p1 ~var:1))

(* transitive dependency through a location the receiver does not
   replicate: p2 reads x1=a then writes x2=b; p3 (x2 only) can apply b
   without ever seeing a *)
let test_partial_transitive_through_foreign_var () =
  let repl = chain_map () in
  let p1 = P.create repl ~me:0 in
  let p2 = P.create repl ~me:1 in
  let p3 = P.create repl ~me:2 in
  let _, ma, _, _ = P.write p1 ~var:0 ~value:1 in
  ignore (P.receive p2 ~src:0 ma);
  ignore (P.read p2 ~var:0);
  let _, mb, dests, _ = P.write p2 ~var:1 ~value:2 in
  Alcotest.(check (list int)) "x2 goes to p3 only" [ 2 ] dests;
  let applied = P.receive p3 ~src:1 mb in
  check_int "applied immediately (a is foreign to p3)" 1
    (List.length applied);
  check_bool "value visible" true
    (P.read p3 ~var:1 = (Operation.Val 2, Some mb.P.dot))

(* dependency on a REPLICATED location does block *)
let test_partial_replicated_dependency_blocks () =
  (* p3 replicates both x1 and x2 here *)
  let repl = Replication.of_sets ~n:3 ~m:2 [| [ 0 ]; [ 0; 1 ]; [ 0; 1 ] |] in
  let p1 = P.create repl ~me:0 in
  let p2 = P.create repl ~me:1 in
  let p3 = P.create repl ~me:2 in
  let _, ma, dests_a, _ = P.write p1 ~var:0 ~value:1 in
  Alcotest.(check (list int)) "x1 to p2 and p3" [ 1; 2 ] dests_a;
  ignore (P.receive p2 ~src:0 ma);
  ignore (P.read p2 ~var:0);
  let _, mb, _, _ = P.write p2 ~var:1 ~value:2 in
  (* b reaches p3 before a: must buffer *)
  let applied = P.receive p3 ~src:1 mb in
  check_int "buffered" 0 (List.length applied);
  check_int "one in buffer" 1 (P.buffered p3);
  let applied = P.receive p3 ~src:0 ma in
  check_int "a unblocks b" 2 (List.length applied)

(* merge-on-read at matrix level: applying without reading creates no
   dependency (the OptP property, one level up) *)
let test_partial_no_read_no_dependency () =
  let repl = Replication.of_sets ~n:3 ~m:2 [| [ 0 ]; [ 0; 1 ]; [ 0; 1 ] |] in
  let p1 = P.create repl ~me:0 in
  let p2 = P.create repl ~me:1 in
  let p3 = P.create repl ~me:2 in
  let _, ma, _, _ = P.write p1 ~var:0 ~value:1 in
  ignore (P.receive p2 ~src:0 ma);
  (* p2 applies a but does NOT read it *)
  let _, mb, _, _ = P.write p2 ~var:1 ~value:2 in
  let applied = P.receive p3 ~src:1 mb in
  check_int "b applies without a at p3" 1 (List.length applied)

(* ------------------------------------------------------------------ *)
(* Partial_run integration                                             *)
(* ------------------------------------------------------------------ *)

let run_ring ~degree ~seed =
  let n = 5 and m = 10 in
  let repl = Replication.ring ~n ~m ~degree in
  let spec =
    Spec.make ~n ~m ~ops_per_process:80 ~write_ratio:0.5
      ~think:(Latency.Exponential { mean = 5. })
      ~seed ()
  in
  Partial_run.run ~replication:repl ~spec
    ~latency:(Latency.Lognormal { mu = log 10. -. 0.5; sigma = 1.0 })
    ~seed ()

let test_partial_run_clean () =
  let o = run_ring ~degree:2 ~seed:11 in
  let r = Partial_run.check o in
  check_bool "clean" true (Checker.is_clean r);
  check_bool "complete (w.r.t. replication)" true r.Checker.complete;
  check_int "no unnecessary delays" 0 r.Checker.unnecessary_delays

let test_partial_run_saves_messages () =
  let o2 = run_ring ~degree:2 ~seed:12 in
  let o5 = run_ring ~degree:5 ~seed:12 in
  check_bool "fewer messages at lower degree" true
    (o2.Partial_run.messages_sent < o5.Partial_run.messages_sent)

let test_partial_ops_stay_local () =
  let o = run_ring ~degree:2 ~seed:13 in
  let repl = o.Partial_run.replication in
  List.iter
    (fun (e : Execution.event) ->
      match e.kind with
      | Execution.Return { var; _ } ->
          check_bool "reads only replicated vars" true
            (Replication.replicates repl ~proc:e.proc ~var)
      | Execution.Apply { var; _ } ->
          check_bool "applies only replicated vars" true
            (Replication.replicates repl ~proc:e.proc ~var)
      | _ -> ())
    (Execution.events o.Partial_run.execution)

let test_full_map_equivalent_to_checker_default () =
  (* under a full map the replication-aware audit agrees with the
     standard one *)
  let n = 4 and m = 4 in
  let repl = Replication.full ~n ~m in
  let spec = Spec.make ~n ~m ~ops_per_process:60 ~seed:21 () in
  let o =
    Partial_run.run ~replication:repl ~spec
      ~latency:(Latency.Exponential { mean = 10. })
      ~seed:2 ()
  in
  let r_partial = Partial_run.check o in
  let r_plain = Checker.check o.Partial_run.execution in
  check_bool "both clean" true
    (Checker.is_clean r_partial && Checker.is_clean r_plain);
  check_int "same delays" r_plain.Checker.total_delays
    r_partial.Checker.total_delays;
  check_int "same unnecessary" r_plain.Checker.unnecessary_delays
    r_partial.Checker.unnecessary_delays

let prop_random_replication_clean =
  qcheck_case ~count:15 "random replication maps: clean, complete, optimal"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, degree) ->
      let n = 4 and m = 6 in
      let rng = Dsm_sim.Rng.create seed in
      let repl = Replication.random ~n ~m ~degree ~rng in
      let spec =
        Spec.make ~n ~m ~ops_per_process:50 ~write_ratio:0.5 ~seed ()
      in
      let o =
        Partial_run.run ~replication:repl ~spec
          ~latency:(Latency.Lognormal { mu = 2.0; sigma = 1.2 })
          ~seed:(seed + 1) ()
      in
      let r = Partial_run.check o in
      Checker.is_clean r && r.Checker.complete
      && r.Checker.unnecessary_delays = 0)


let prop_partial_session_guarantees =
  qcheck_case ~count:10 "partial runs satisfy all session guarantees"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let o = run_ring ~degree:2 ~seed in
      Dsm_memory.Session_guarantees.all_hold
        (Dsm_memory.Causal_order.compute o.Partial_run.history))

let () =
  Alcotest.run "partial_replication"
    [
      ( "replication_map",
        [
          Alcotest.test_case "full" `Quick test_full_map;
          Alcotest.test_case "ring" `Quick test_ring_map;
          Alcotest.test_case "of_sets validation" `Quick
            test_of_sets_validation;
          Alcotest.test_case "random well-formed" `Quick
            test_random_map_wellformed;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "multicast destinations" `Quick
            test_partial_write_destinations;
          Alcotest.test_case "foreign ops rejected" `Quick
            test_partial_rejects_foreign_ops;
          Alcotest.test_case "transitive dep through foreign var" `Quick
            test_partial_transitive_through_foreign_var;
          Alcotest.test_case "replicated dep blocks" `Quick
            test_partial_replicated_dependency_blocks;
          Alcotest.test_case "no read, no dependency" `Quick
            test_partial_no_read_no_dependency;
        ] );
      ( "runs",
        [
          Alcotest.test_case "audited clean" `Quick test_partial_run_clean;
          Alcotest.test_case "message savings" `Quick
            test_partial_run_saves_messages;
          Alcotest.test_case "ops stay local" `Quick
            test_partial_ops_stay_local;
          Alcotest.test_case "full map = plain checker" `Quick
            test_full_map_equivalent_to_checker_default;
          prop_random_replication_clean;
          prop_partial_session_guarantees;
        ] );
    ]
