(* Direct unit tests of the protocol state machines: Replica_store,
   Protocol helpers, OptP, ANBKH, WS-recv, OptP-WS, WS-token.

   These drive the per-process machines by hand (no simulator), checking
   the exact wire contents, deliverability decisions and buffering
   behaviour prescribed by the paper's Figures 4-5 and section 3.6. *)

module Protocol = Dsm_core.Protocol
module Replica_store = Dsm_core.Replica_store
module Opt_p = Dsm_core.Opt_p
module Anbkh = Dsm_core.Anbkh
module Ws_receiver = Dsm_core.Ws_receiver
module Opt_p_ws = Dsm_core.Opt_p_ws
module Ws_token = Dsm_core.Ws_token
module Operation = Dsm_memory.Operation
module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg3 = Protocol.config ~n:3 ~m:2

let dot r s = Dot.make ~replica:r ~seq:s

let broadcast_of (eff : _ Protocol.effects) =
  match eff.to_send with
  | [ Protocol.Broadcast m ] -> m
  | _ -> Alcotest.fail "expected exactly one broadcast"

let applied_dots (eff : _ Protocol.effects) =
  List.map (fun (a : Protocol.apply_record) -> Dot.to_string a.adot)
    eff.applied

(* ------------------------------------------------------------------ *)
(* Replica_store                                                       *)
(* ------------------------------------------------------------------ *)

let test_store_initial_bot () =
  let s = Replica_store.create ~m:3 in
  check_int "m" 3 (Replica_store.m s);
  for v = 0 to 2 do
    check_bool "bot and no writer" true
      (Replica_store.read s ~var:v = (Operation.Bot, None))
  done;
  check_int "no applies yet" 0 (Replica_store.apply_count s)

let test_store_apply_read () =
  let s = Replica_store.create ~m:2 in
  Replica_store.apply s ~var:0 ~value:42 ~dot:(dot 1 1);
  check_bool "value and writer" true
    (Replica_store.read s ~var:0 = (Operation.Val 42, Some (dot 1 1)));
  check_bool "other var untouched" true
    (Replica_store.read s ~var:1 = (Operation.Bot, None));
  Replica_store.apply s ~var:0 ~value:7 ~dot:(dot 2 1);
  check_bool "overwritten" true
    (Replica_store.last_writer s ~var:0 = Some (dot 2 1));
  check_int "two applies" 2 (Replica_store.apply_count s)

let test_store_bounds () =
  let s = Replica_store.create ~m:1 in
  Alcotest.check_raises "read oob"
    (Invalid_argument "Replica_store.read: variable out of range")
    (fun () -> ignore (Replica_store.read s ~var:1));
  Alcotest.check_raises "create invalid"
    (Invalid_argument "Replica_store.create: m must be positive")
    (fun () -> ignore (Replica_store.create ~m:0))

(* ------------------------------------------------------------------ *)
(* Protocol helpers                                                    *)
(* ------------------------------------------------------------------ *)

let test_effects_merge () =
  let open Protocol in
  let a =
    effects
      ~applied:[ { adot = dot 0 1; avar = 0; avalue = 1; afrom_buffer = false } ]
      ()
  in
  let b = effects ~skipped:[ dot 1 1 ] () in
  let m = merge_effects a b in
  check_int "applied" 1 (List.length m.applied);
  check_int "skipped" 1 (List.length m.skipped);
  check_int "no sends" 0 (List.length m.to_send)

let test_config_validation () =
  Alcotest.check_raises "n"
    (Invalid_argument "Protocol.config: n must be positive") (fun () ->
      ignore (Protocol.config ~n:0 ~m:1));
  Alcotest.check_raises "m"
    (Invalid_argument "Protocol.config: m must be positive") (fun () ->
      ignore (Protocol.config ~n:1 ~m:0))

(* ------------------------------------------------------------------ *)
(* OptP - the write procedure (Figure 4)                               *)
(* ------------------------------------------------------------------ *)

let test_optp_write_local_effects () =
  let p = Opt_p.create cfg3 ~me:0 in
  let d, eff = Opt_p.write p ~var:0 ~value:7 in
  check_bool "dot" true (Dot.equal d (dot 0 1));
  Alcotest.(check (list string)) "applied locally" [ "w1#1" ]
    (applied_dots eff);
  let m = broadcast_of eff in
  check_int "message var" 0 m.Opt_p.var;
  check_int "message value" 7 m.Opt_p.value;
  Alcotest.(check (list int)) "Write_co on the wire" [ 1; 0; 0 ]
    (V.to_list m.Opt_p.wco);
  Alcotest.(check (list int)) "Apply" [ 1; 0; 0 ]
    (V.to_list (Opt_p.applied_vector p));
  Alcotest.(check (list int)) "LastWriteOn[x1]" [ 1; 0; 0 ]
    (V.to_list (Opt_p.last_write_on p ~var:0));
  check_bool "own value readable" true
    (Opt_p.read p ~var:0 = (Operation.Val 7, Some d))

let test_optp_read_merges_only_on_read () =
  (* the OptP signature move: applying does NOT grow Write_co; reading
     does *)
  let p = Opt_p.create cfg3 ~me:1 in
  let sender = Opt_p.create cfg3 ~me:0 in
  let _, eff = Opt_p.write sender ~var:0 ~value:1 in
  let m = broadcast_of eff in
  ignore (Opt_p.receive p ~src:0 m);
  Alcotest.(check (list int)) "clock unchanged by apply" [ 0; 0; 0 ]
    (V.to_list (Opt_p.local_clock p));
  ignore (Opt_p.read p ~var:0);
  Alcotest.(check (list int)) "clock grown by read" [ 1; 0; 0 ]
    (V.to_list (Opt_p.local_clock p));
  let _, eff2 = Opt_p.write p ~var:1 ~value:2 in
  Alcotest.(check (list int)) "wco carries the dependency" [ 1; 1; 0 ]
    (V.to_list (broadcast_of eff2).Opt_p.wco)

let test_optp_no_read_no_dependency () =
  (* apply without read: the next write stays concurrent - the heart of
     Figure 6 *)
  let p = Opt_p.create cfg3 ~me:1 in
  let sender = Opt_p.create cfg3 ~me:0 in
  let _, e1 = Opt_p.write sender ~var:0 ~value:1 in
  ignore (Opt_p.receive p ~src:0 (broadcast_of e1));
  let _, eff = Opt_p.write p ~var:1 ~value:2 in
  Alcotest.(check (list int)) "no dependency recorded" [ 0; 1; 0 ]
    (V.to_list (broadcast_of eff).Opt_p.wco)

let test_optp_deliverability_gap () =
  let receiver = Opt_p.create cfg3 ~me:2 in
  let sender = Opt_p.create cfg3 ~me:0 in
  let _, e1 = Opt_p.write sender ~var:0 ~value:1 in
  let _, e2 = Opt_p.write sender ~var:0 ~value:2 in
  let m1 = broadcast_of e1 and m2 = broadcast_of e2 in
  check_bool "m2 not deliverable first" false
    (Opt_p.deliverable receiver ~src:0 m2);
  let eff = Opt_p.receive receiver ~src:0 m2 in
  check_int "buffered" 1 (Opt_p.buffered receiver);
  check_int "nothing applied" 0 (List.length eff.Protocol.applied);
  let eff = Opt_p.receive receiver ~src:0 m1 in
  Alcotest.(check (list string)) "chain applied" [ "w1#1"; "w1#2" ]
    (applied_dots eff);
  (match eff.Protocol.applied with
  | [ first; second ] ->
      check_bool "first immediate" false first.Protocol.afrom_buffer;
      check_bool "second delayed" true second.Protocol.afrom_buffer
  | _ -> Alcotest.fail "expected two applies");
  check_int "buffer drained" 0 (Opt_p.buffered receiver);
  check_int "high watermark" 1 (Opt_p.buffer_high_watermark receiver);
  check_int "total buffered" 1 (Opt_p.total_buffered receiver)

let test_optp_cross_process_dependency () =
  (* b (from p2, depending on a) must wait for a at p3 *)
  let p1 = Opt_p.create cfg3 ~me:0 in
  let p2 = Opt_p.create cfg3 ~me:1 in
  let p3 = Opt_p.create cfg3 ~me:2 in
  let _, ea = Opt_p.write p1 ~var:0 ~value:0 in
  let ma = broadcast_of ea in
  ignore (Opt_p.receive p2 ~src:0 ma);
  ignore (Opt_p.read p2 ~var:0);
  let _, eb = Opt_p.write p2 ~var:1 ~value:1 in
  let mb = broadcast_of eb in
  let eff = Opt_p.receive p3 ~src:1 mb in
  check_int "b buffered at p3" 1 (Opt_p.buffered p3);
  check_int "no apply yet" 0 (List.length eff.Protocol.applied);
  let eff = Opt_p.receive p3 ~src:0 ma in
  Alcotest.(check (list string)) "a then b" [ "w1#1"; "w2#1" ]
    (applied_dots eff)

let test_optp_concurrent_writes_apply_any_order () =
  let p3 = Opt_p.create cfg3 ~me:2 in
  let p1 = Opt_p.create cfg3 ~me:0 in
  let p2 = Opt_p.create cfg3 ~me:1 in
  let _, e1 = Opt_p.write p1 ~var:0 ~value:1 in
  let _, e2 = Opt_p.write p2 ~var:0 ~value:2 in
  let eff2 = Opt_p.receive p3 ~src:1 (broadcast_of e2) in
  let eff1 = Opt_p.receive p3 ~src:0 (broadcast_of e1) in
  check_int "both immediate" 2
    (List.length eff1.Protocol.applied + List.length eff2.Protocol.applied);
  check_int "never buffered" 0 (Opt_p.total_buffered p3)

let test_optp_rejects_bad_me () =
  Alcotest.check_raises "me out of range"
    (Invalid_argument "Opt_p.create: process id out of range") (fun () ->
      ignore (Opt_p.create cfg3 ~me:3))

(* ------------------------------------------------------------------ *)
(* ANBKH                                                               *)
(* ------------------------------------------------------------------ *)

let test_anbkh_merges_on_apply () =
  let p = Anbkh.create cfg3 ~me:1 in
  let sender = Anbkh.create cfg3 ~me:0 in
  let _, e1 = Anbkh.write sender ~var:0 ~value:1 in
  ignore (Anbkh.receive p ~src:0 (broadcast_of e1));
  Alcotest.(check (list int)) "clock grew on apply" [ 1; 0; 0 ]
    (V.to_list (Anbkh.local_clock p));
  let _, e2 = Anbkh.write p ~var:1 ~value:2 in
  Alcotest.(check (list int)) "vt carries the false dependency"
    [ 1; 1; 0 ]
    (V.to_list (broadcast_of e2).Anbkh.vt)

let test_anbkh_false_causality_blocks () =
  (* p2 applies both writes of p1 (reading nothing), then writes; its
     message is blocked at p3 until BOTH of p1's writes arrive *)
  let p1 = Anbkh.create cfg3 ~me:0 in
  let p2 = Anbkh.create cfg3 ~me:1 in
  let p3 = Anbkh.create cfg3 ~me:2 in
  let _, ea = Anbkh.write p1 ~var:0 ~value:0 in
  let _, ec = Anbkh.write p1 ~var:0 ~value:2 in
  let ma = broadcast_of ea and mc = broadcast_of ec in
  ignore (Anbkh.receive p2 ~src:0 ma);
  ignore (Anbkh.receive p2 ~src:0 mc);
  let _, eb = Anbkh.write p2 ~var:1 ~value:1 in
  let mb = broadcast_of eb in
  ignore (Anbkh.receive p3 ~src:1 mb);
  ignore (Anbkh.receive p3 ~src:0 ma);
  check_int "b still blocked after a" 1 (Anbkh.buffered p3);
  let eff = Anbkh.receive p3 ~src:0 mc in
  Alcotest.(check (list string)) "c unblocks b" [ "w1#2"; "w2#1" ]
    (applied_dots eff)

let test_optp_would_not_block_same_pattern () =
  let p1 = Opt_p.create cfg3 ~me:0 in
  let p2 = Opt_p.create cfg3 ~me:1 in
  let p3 = Opt_p.create cfg3 ~me:2 in
  let _, ea = Opt_p.write p1 ~var:0 ~value:0 in
  let _, ec = Opt_p.write p1 ~var:0 ~value:2 in
  let ma = broadcast_of ea and mc = broadcast_of ec in
  ignore (Opt_p.receive p2 ~src:0 ma);
  (* p2 reads a (so b will depend on it), then applies c WITHOUT
     reading it - exactly the H1 situation *)
  ignore (Opt_p.read p2 ~var:0);
  ignore (Opt_p.receive p2 ~src:0 mc);
  let _, eb = Opt_p.write p2 ~var:1 ~value:1 in
  let mb = broadcast_of eb in
  ignore (Opt_p.receive p3 ~src:1 mb);
  check_int "b waits for a" 1 (Opt_p.buffered p3);
  let eff = Opt_p.receive p3 ~src:0 ma in
  Alcotest.(check (list string)) "b right after a, no c needed"
    [ "w1#1"; "w2#1" ] (applied_dots eff)

(* ------------------------------------------------------------------ *)
(* Ws_receiver                                                         *)
(* ------------------------------------------------------------------ *)

let ws_two_writes () =
  let p1 = Ws_receiver.create cfg3 ~me:0 in
  let _, e1 = Ws_receiver.write p1 ~var:0 ~value:1 in
  let _, e2 = Ws_receiver.write p1 ~var:0 ~value:2 in
  (broadcast_of e1, broadcast_of e2)

let test_ws_metadata () =
  let m1, m2 = ws_two_writes () in
  check_bool "first has no prev" true (m1.Ws_receiver.prev = None);
  check_bool "second names first" true
    (m2.Ws_receiver.prev = Some (dot 0 1));
  check_bool "no interposition -> can_skip" true m2.Ws_receiver.can_skip

let test_ws_skip_on_incoming () =
  (* m2 arrives without m1: skip m1 and apply m2 immediately *)
  let p2 = Ws_receiver.create cfg3 ~me:1 in
  let m1, m2 = ws_two_writes () in
  let eff = Ws_receiver.receive p2 ~src:0 m2 in
  Alcotest.(check (list string)) "m2 applied" [ "w1#2" ] (applied_dots eff);
  Alcotest.(check (list string)) "m1 skipped"
    [ Dot.to_string (dot 0 1) ]
    (List.map Dot.to_string eff.Protocol.skipped);
  check_bool "not flagged delayed" false
    (List.exists (fun (a : Protocol.apply_record) -> a.afrom_buffer)
       eff.Protocol.applied);
  check_int "one skip" 1 (Ws_receiver.skipped_total p2);
  let eff = Ws_receiver.receive p2 ~src:0 m1 in
  check_int "late m1 discarded" 0 (List.length eff.Protocol.applied);
  check_bool "store shows the newer value" true
    (Ws_receiver.read p2 ~var:0 = (Operation.Val 2, Some (dot 0 2)))

let test_ws_no_skip_with_interposition () =
  (* p1: w(x)=1, w(y)=5, w(x)=2 - the second x write cannot overwrite
     the first because the y write is causally interposed *)
  let p1 = Ws_receiver.create cfg3 ~me:0 in
  let _, _e1 = Ws_receiver.write p1 ~var:0 ~value:1 in
  let _, _ey = Ws_receiver.write p1 ~var:1 ~value:5 in
  let _, e2 = Ws_receiver.write p1 ~var:0 ~value:2 in
  let m2 = broadcast_of e2 in
  check_bool "prev recorded" true (m2.Ws_receiver.prev = Some (dot 0 1));
  check_bool "interposition forbids skipping" false m2.Ws_receiver.can_skip;
  let p2 = Ws_receiver.create cfg3 ~me:1 in
  let eff = Ws_receiver.receive p2 ~src:0 m2 in
  check_int "buffered" 1 (Ws_receiver.buffered p2);
  check_int "nothing applied" 0 (List.length eff.Protocol.applied)

let test_ws_in_order_no_skip () =
  let p2 = Ws_receiver.create cfg3 ~me:1 in
  let m1, m2 = ws_two_writes () in
  ignore (Ws_receiver.receive p2 ~src:0 m1);
  ignore (Ws_receiver.receive p2 ~src:0 m2);
  check_int "no skips" 0 (Ws_receiver.skipped_total p2);
  check_bool "final value" true
    (Ws_receiver.read p2 ~var:0 = (Operation.Val 2, Some (dot 0 2)))

(* ------------------------------------------------------------------ *)
(* Opt_p_ws                                                            *)
(* ------------------------------------------------------------------ *)

let test_optp_ws_skip () =
  let p1 = Opt_p_ws.create cfg3 ~me:0 in
  let _, e1 = Opt_p_ws.write p1 ~var:0 ~value:1 in
  let _, e2 = Opt_p_ws.write p1 ~var:0 ~value:2 in
  let _m1 = broadcast_of e1 and m2 = broadcast_of e2 in
  check_bool "can skip" true m2.Opt_p_ws.can_skip;
  let p2 = Opt_p_ws.create cfg3 ~me:1 in
  let eff = Opt_p_ws.receive p2 ~src:0 m2 in
  Alcotest.(check (list string)) "applied overwriter" [ "w1#2" ]
    (applied_dots eff);
  check_int "skip counted" 1 (Opt_p_ws.skipped_total p2)

let test_optp_ws_keeps_read_semantics () =
  let p2 = Opt_p_ws.create cfg3 ~me:1 in
  let p1 = Opt_p_ws.create cfg3 ~me:0 in
  let _, e1 = Opt_p_ws.write p1 ~var:0 ~value:1 in
  ignore (Opt_p_ws.receive p2 ~src:0 (broadcast_of e1));
  Alcotest.(check (list int)) "no growth on apply" [ 0; 0; 0 ]
    (V.to_list (Opt_p_ws.local_clock p2));
  ignore (Opt_p_ws.read p2 ~var:0);
  Alcotest.(check (list int)) "growth on read" [ 1; 0; 0 ]
    (V.to_list (Opt_p_ws.local_clock p2))

(* ------------------------------------------------------------------ *)
(* Ws_token                                                            *)
(* ------------------------------------------------------------------ *)

let unicasts_of (eff : _ Protocol.effects) =
  List.filter_map
    (function Protocol.Unicast { dst; msg } -> Some (dst, msg) | _ -> None)
    eff.to_send

let broadcasts_of (eff : _ Protocol.effects) =
  List.filter_map
    (function Protocol.Broadcast m -> Some m | _ -> None)
    eff.to_send

let test_token_initial_state () =
  let p0 = Ws_token.create cfg3 ~me:0 in
  let p1 = Ws_token.create cfg3 ~me:1 in
  check_bool "p0 holds the parked token" true
    (Ws_token.has_token p0 && Ws_token.is_parked p0);
  check_bool "p1 does not" false (Ws_token.has_token p1)

let test_token_holder_flushes_on_write () =
  let p0 = Ws_token.create cfg3 ~me:0 in
  let _, eff = Ws_token.write p0 ~var:0 ~value:7 in
  (match broadcasts_of eff with
  | [ Ws_token.Batch { round = 0; items = [ item ] } ] ->
      check_int "item var" 0 item.Ws_token.var;
      check_int "item value" 7 item.Ws_token.value
  | _ -> Alcotest.fail "expected one batch broadcast");
  (match unicasts_of eff with
  | [ (1, Ws_token.Token { next_round = 1; _ }) ] -> ()
  | _ -> Alcotest.fail "expected the token to go to p1");
  check_bool "token released" false (Ws_token.has_token p0)

let test_token_non_holder_buffers_and_nudges () =
  let p1 = Ws_token.create cfg3 ~me:1 in
  let _, eff = Ws_token.write p1 ~var:0 ~value:3 in
  check_int "pending" 1 (Ws_token.pending_count p1);
  (match unicasts_of eff with
  | [ (0, Ws_token.Nudge) ] -> ()
  | _ -> Alcotest.fail "expected a nudge to p0");
  check_int "no batch yet" 0 (List.length (broadcasts_of eff))

let test_token_sender_side_overwrite () =
  let p1 = Ws_token.create cfg3 ~me:1 in
  let _, _ = Ws_token.write p1 ~var:0 ~value:1 in
  let _, eff2 = Ws_token.write p1 ~var:0 ~value:2 in
  check_int "still one pending item" 1 (Ws_token.pending_count p1);
  check_int "overwrite counted" 1 (Ws_token.skipped_total p1);
  check_int "no skip effect at the sender" 0
    (List.length eff2.Protocol.skipped);
  let eff =
    Ws_token.receive p1 ~src:0
      (Ws_token.Token { next_round = 0; idle_hops = 0 })
  in
  match broadcasts_of eff with
  | [ Ws_token.Batch { items = [ item ]; _ } ] ->
      check_int "last value" 2 item.Ws_token.value;
      Alcotest.(check (list string)) "covers the first write"
        [ Dot.to_string (dot 1 1) ]
        (List.map Dot.to_string item.Ws_token.covered)
  | _ -> Alcotest.fail "expected one batch with one item"

let test_token_receiver_applies_in_round_order () =
  let p2 = Ws_token.create cfg3 ~me:2 in
  let batch0 =
    Ws_token.Batch
      {
        round = 0;
        items =
          [ { Ws_token.var = 0; value = 1; dot = dot 0 1; covered = [] } ];
      }
  in
  let batch1 =
    Ws_token.Batch
      {
        round = 1;
        items =
          [ { Ws_token.var = 0; value = 2; dot = dot 1 1; covered = [] } ];
      }
  in
  let eff = Ws_token.receive p2 ~src:1 batch1 in
  check_int "buffered" 1 (Ws_token.buffered p2);
  check_int "no applies" 0 (List.length eff.Protocol.applied);
  let eff = Ws_token.receive p2 ~src:0 batch0 in
  Alcotest.(check (list string)) "both applied in order"
    [ "w1#1"; "w2#1" ] (applied_dots eff);
  check_bool "second one counted as delayed" true
    (match eff.Protocol.applied with
    | [ a; b ] -> (not a.Protocol.afrom_buffer) && b.Protocol.afrom_buffer
    | _ -> false)

let test_token_covered_reported_as_skips () =
  let p2 = Ws_token.create cfg3 ~me:2 in
  let batch =
    Ws_token.Batch
      {
        round = 0;
        items =
          [
            {
              Ws_token.var = 0;
              value = 2;
              dot = dot 0 2;
              covered = [ dot 0 1 ];
            };
          ];
      }
  in
  let eff = Ws_token.receive p2 ~src:0 batch in
  Alcotest.(check (list string)) "covered write skipped here"
    [ Dot.to_string (dot 0 1) ]
    (List.map Dot.to_string eff.Protocol.skipped);
  Alcotest.(check (list string)) "overwriter applied" [ "w1#2" ]
    (applied_dots eff)

let test_token_idle_parking () =
  let p1 = Ws_token.create cfg3 ~me:1 in
  let eff =
    Ws_token.receive p1 ~src:0
      (Ws_token.Token { next_round = 0; idle_hops = 2 })
  in
  check_bool "parked" true (Ws_token.is_parked p1);
  match broadcasts_of eff with
  | [ Ws_token.Parked { holder = 1 } ] -> ()
  | _ -> Alcotest.fail "expected a parked announcement"

let test_token_parked_handler_resumes_on_nudge () =
  let p1 = Ws_token.create cfg3 ~me:1 in
  ignore
    (Ws_token.receive p1 ~src:0
       (Ws_token.Token { next_round = 0; idle_hops = 2 }));
  let eff = Ws_token.receive p1 ~src:2 Ws_token.Nudge in
  check_bool "no longer holder" false (Ws_token.has_token p1);
  match unicasts_of eff with
  | [ (2, Ws_token.Token { next_round = 0; idle_hops = 0 }) ] -> ()
  | _ -> Alcotest.fail "expected the token to move on"

let test_token_parked_notice_triggers_nudge () =
  let p2 = Ws_token.create cfg3 ~me:2 in
  let _, _ = Ws_token.write p2 ~var:1 ~value:4 in
  let eff = Ws_token.receive p2 ~src:1 (Ws_token.Parked { holder = 1 }) in
  match unicasts_of eff with
  | [ (1, Ws_token.Nudge) ] -> ()
  | _ -> Alcotest.fail "expected a nudge to the new holder"


(* ------------------------------------------------------------------ *)
(* Opt_p_direct                                                        *)
(* ------------------------------------------------------------------ *)

module Opt_p_direct = Dsm_core.Opt_p_direct

let test_direct_deps_first_write () =
  let p = Opt_p_direct.create cfg3 ~me:0 in
  let _, eff = Opt_p_direct.write p ~var:0 ~value:1 in
  let m = broadcast_of eff in
  Alcotest.(check (list string)) "first write has no deps" []
    (List.map Dot.to_string m.Opt_p_direct.deps)

let test_direct_deps_own_chain () =
  let p = Opt_p_direct.create cfg3 ~me:0 in
  let _, _ = Opt_p_direct.write p ~var:0 ~value:1 in
  let _, eff = Opt_p_direct.write p ~var:0 ~value:2 in
  Alcotest.(check (list string)) "second write depends on first"
    [ "w1#1" ]
    (List.map Dot.to_string (broadcast_of eff).Opt_p_direct.deps)

let test_direct_deps_cover_only () =
  (* the H1 pattern: p2 reads a then writes b; b's only immediate
     predecessor is a (not c, which p2 applied but never read) *)
  let p1 = Opt_p_direct.create cfg3 ~me:0 in
  let p2 = Opt_p_direct.create cfg3 ~me:1 in
  let _, ea = Opt_p_direct.write p1 ~var:0 ~value:0 in
  let _, ec = Opt_p_direct.write p1 ~var:0 ~value:2 in
  ignore (Opt_p_direct.receive p2 ~src:0 (broadcast_of ea));
  ignore (Opt_p_direct.read p2 ~var:0);
  ignore (Opt_p_direct.receive p2 ~src:0 (broadcast_of ec));
  let _, eb = Opt_p_direct.write p2 ~var:1 ~value:1 in
  Alcotest.(check (list string)) "b depends only on a" [ "w1#1" ]
    (List.map Dot.to_string (broadcast_of eb).Opt_p_direct.deps)

let test_direct_deps_dominated_removed () =
  (* p2 reads a then writes b; a is in b's past. If p2 then reads its
     own b and writes again, the new write's deps must be {b} only —
     a is dominated by b *)
  let p1 = Opt_p_direct.create cfg3 ~me:0 in
  let p2 = Opt_p_direct.create cfg3 ~me:1 in
  let _, ea = Opt_p_direct.write p1 ~var:0 ~value:0 in
  ignore (Opt_p_direct.receive p2 ~src:0 (broadcast_of ea));
  ignore (Opt_p_direct.read p2 ~var:0);
  let _, _ = Opt_p_direct.write p2 ~var:1 ~value:1 in
  let _, eff = Opt_p_direct.write p2 ~var:1 ~value:2 in
  Alcotest.(check (list string)) "a dominated by own write" [ "w2#1" ]
    (List.map Dot.to_string (broadcast_of eff).Opt_p_direct.deps)

let test_direct_blocks_like_optp () =
  (* b (depending on a) buffered at p3 until a arrives *)
  let p1 = Opt_p_direct.create cfg3 ~me:0 in
  let p2 = Opt_p_direct.create cfg3 ~me:1 in
  let p3 = Opt_p_direct.create cfg3 ~me:2 in
  let _, ea = Opt_p_direct.write p1 ~var:0 ~value:0 in
  let ma = broadcast_of ea in
  ignore (Opt_p_direct.receive p2 ~src:0 ma);
  ignore (Opt_p_direct.read p2 ~var:0);
  let _, eb = Opt_p_direct.write p2 ~var:1 ~value:1 in
  let eff = Opt_p_direct.receive p3 ~src:1 (broadcast_of eb) in
  check_int "buffered" 1 (Opt_p_direct.buffered p3);
  check_int "no apply" 0 (List.length eff.Protocol.applied);
  let eff = Opt_p_direct.receive p3 ~src:0 ma in
  Alcotest.(check (list string)) "a then b" [ "w1#1"; "w2#1" ]
    (applied_dots eff)

let test_direct_reconstructs_wco () =
  (* after applying, reads must merge the reconstructed vector: a
     subsequent write carries the right dependency structure *)
  let p1 = Opt_p_direct.create cfg3 ~me:0 in
  let p2 = Opt_p_direct.create cfg3 ~me:1 in
  let p3 = Opt_p_direct.create cfg3 ~me:2 in
  let _, ea = Opt_p_direct.write p1 ~var:0 ~value:0 in
  let ma = broadcast_of ea in
  ignore (Opt_p_direct.receive p2 ~src:0 ma);
  ignore (Opt_p_direct.read p2 ~var:0);
  let _, eb = Opt_p_direct.write p2 ~var:1 ~value:1 in
  let mb = broadcast_of eb in
  ignore (Opt_p_direct.receive p3 ~src:0 ma);
  ignore (Opt_p_direct.receive p3 ~src:1 mb);
  ignore (Opt_p_direct.read p3 ~var:1);
  let _, ed = Opt_p_direct.write p3 ~var:1 ~value:3 in
  (* d's immediate predecessor is b alone (a is dominated through b) *)
  Alcotest.(check (list string)) "d depends on b" [ "w2#1" ]
    (List.map Dot.to_string (broadcast_of ed).Opt_p_direct.deps);
  check_int "p2 sent one dep entry" 1 (Opt_p_direct.total_dep_entries p2);
  check_int "p3 sent one dep entry" 1 (Opt_p_direct.total_dep_entries p3)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "protocols"
    [
      ( "replica_store",
        [
          Alcotest.test_case "initial bot" `Quick test_store_initial_bot;
          Alcotest.test_case "apply/read" `Quick test_store_apply_read;
          Alcotest.test_case "bounds" `Quick test_store_bounds;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "effects merge" `Quick test_effects_merge;
          Alcotest.test_case "config validation" `Quick
            test_config_validation;
        ] );
      ( "optp",
        [
          Alcotest.test_case "write procedure (Fig. 4)" `Quick
            test_optp_write_local_effects;
          Alcotest.test_case "merge on read only" `Quick
            test_optp_read_merges_only_on_read;
          Alcotest.test_case "apply without read adds no dependency"
            `Quick test_optp_no_read_no_dependency;
          Alcotest.test_case "per-sender gap blocks" `Quick
            test_optp_deliverability_gap;
          Alcotest.test_case "cross-process dependency blocks" `Quick
            test_optp_cross_process_dependency;
          Alcotest.test_case "concurrent writes never buffer" `Quick
            test_optp_concurrent_writes_apply_any_order;
          Alcotest.test_case "bad process id" `Quick
            test_optp_rejects_bad_me;
        ] );
      ( "anbkh",
        [
          Alcotest.test_case "merges on apply" `Quick
            test_anbkh_merges_on_apply;
          Alcotest.test_case "false causality blocks b behind c" `Quick
            test_anbkh_false_causality_blocks;
          Alcotest.test_case "OptP immune on the same pattern" `Quick
            test_optp_would_not_block_same_pattern;
        ] );
      ( "ws_receiver",
        [
          Alcotest.test_case "overwrite metadata" `Quick test_ws_metadata;
          Alcotest.test_case "skip on incoming" `Quick
            test_ws_skip_on_incoming;
          Alcotest.test_case "interposition forbids skip" `Quick
            test_ws_no_skip_with_interposition;
          Alcotest.test_case "in-order delivery never skips" `Quick
            test_ws_in_order_no_skip;
        ] );
      ( "optp_ws",
        [
          Alcotest.test_case "skip over OptP" `Quick test_optp_ws_skip;
          Alcotest.test_case "read-merge semantics kept" `Quick
            test_optp_ws_keeps_read_semantics;
        ] );
      ( "optp_direct",
        [
          Alcotest.test_case "first write: no deps" `Quick
            test_direct_deps_first_write;
          Alcotest.test_case "own chain dep" `Quick
            test_direct_deps_own_chain;
          Alcotest.test_case "covering set only (H1)" `Quick
            test_direct_deps_cover_only;
          Alcotest.test_case "dominated deps removed" `Quick
            test_direct_deps_dominated_removed;
          Alcotest.test_case "blocks like OptP" `Quick
            test_direct_blocks_like_optp;
          Alcotest.test_case "vector reconstruction" `Quick
            test_direct_reconstructs_wco;
        ] );
      ( "ws_token",
        [
          Alcotest.test_case "initial state" `Quick test_token_initial_state;
          Alcotest.test_case "parked holder flushes on write" `Quick
            test_token_holder_flushes_on_write;
          Alcotest.test_case "non-holder buffers and nudges" `Quick
            test_token_non_holder_buffers_and_nudges;
          Alcotest.test_case "sender-side overwrite" `Quick
            test_token_sender_side_overwrite;
          Alcotest.test_case "round-ordered application" `Quick
            test_token_receiver_applies_in_round_order;
          Alcotest.test_case "covered writes become skips" `Quick
            test_token_covered_reported_as_skips;
          Alcotest.test_case "idle parking" `Quick test_token_idle_parking;
          Alcotest.test_case "nudge resumes circulation" `Quick
            test_token_parked_handler_resumes_on_nudge;
          Alcotest.test_case "parked notice triggers nudge" `Quick
            test_token_parked_notice_triggers_nudge;
        ] );
    ]
