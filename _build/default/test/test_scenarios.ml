(* Integration tests around the paper's worked example Ĥ₁ and its
   figure schedules: every protocol run is audited by the checker, and
   the figure-specific claims (who delays what, and whether the delay
   was necessary) are asserted exactly as the paper states them. *)

module PS = Dsm_runtime.Paper_scenarios
module Scripted_run = Dsm_runtime.Scripted_run
module Checker = Dsm_runtime.Checker
module Execution = Dsm_runtime.Execution
module Dot = Dsm_vclock.Dot

let optp = (module Dsm_core.Opt_p : Dsm_core.Protocol.S)
let anbkh = (module Dsm_core.Anbkh : Dsm_core.Protocol.S)

let check_clean label report =
  Alcotest.(check bool)
    (label ^ ": no safety/legality violations")
    true
    (Checker.is_clean report)

let test_h1_reference_valid () =
  match Dsm_memory.History.validate PS.h1_reference with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "reference Ĥ₁ is ill-formed"

let test_h1_is_causally_consistent () =
  let co = Dsm_memory.Causal_order.compute PS.h1_reference in
  Alcotest.(check bool)
    "Ĥ₁ is causally consistent" true
    (Dsm_memory.Legality.is_causally_consistent co)

(* every scenario, under OptP, must reconstruct exactly Ĥ₁ *)
let test_scenarios_reproduce_h1_optp () =
  List.iter
    (fun (s : PS.t) ->
      if s.label = PS.figure3.label then ()
        (* figure 3 issues p3's ops later; same Ĥ₁ either way *)
      else begin
        let outcome = PS.run optp s in
        Alcotest.(check bool)
          (s.label ^ ": OptP history = Ĥ₁")
          true
          (PS.h1_matches outcome.history)
      end)
    PS.all

let test_figure3_anbkh_reproduces_h1 () =
  let outcome = PS.run anbkh PS.figure3 in
  Alcotest.(check bool)
    "figure 3 under ANBKH yields Ĥ₁" true
    (PS.h1_matches outcome.history)

let delays_at outcome proc =
  Execution.delay_count_at outcome.Scripted_run.execution proc

(* Figure 1 run (1): nothing is delayed anywhere *)
let test_figure1_run1_no_delay () =
  let outcome = PS.run optp PS.figure1_run1 in
  let report = Checker.check outcome.execution in
  check_clean "fig1.1" report;
  Alcotest.(check int) "no delays at all" 0 report.total_delays

(* Figure 1 run (2) = Figure 6: exactly one delay, at p3, necessary *)
let test_figure6_optp_one_necessary_delay () =
  let outcome = PS.run optp PS.figure6 in
  let report = Checker.check outcome.execution in
  check_clean "fig6" report;
  Alcotest.(check int) "one delay in the run" 1 report.total_delays;
  Alcotest.(check int) "the delay is at p3" 1 (delays_at outcome 2);
  Alcotest.(check int) "necessary" 1 report.necessary_delays;
  Alcotest.(check int) "no unnecessary delays (Theorem 4)" 0
    report.unnecessary_delays;
  (* and the delayed write is w2(x2)b, blocked by w1(x1)a *)
  match report.delays with
  | [ d ] ->
      Alcotest.(check bool) "delayed write is b" true (Dot.equal d.ddot PS.w2b);
      Alcotest.(check (list string))
        "blocked by exactly a"
        [ Dot.to_string PS.w1a ]
        (List.map Dot.to_string d.dblocking)
  | _ -> Alcotest.fail "expected exactly one delay record"

(* In figure 6, OptP applies b at p3 before c arrives: b's apply must
   precede c's apply in p3's sequence *)
let test_figure6_b_applied_before_c () =
  let outcome = PS.run optp PS.figure6 in
  let pos dot =
    match Execution.apply_position outcome.execution ~proc:2 ~dot with
    | Some p -> p
    | None -> Alcotest.fail "missing apply at p3"
  in
  Alcotest.(check bool) "apply(b) < apply(c) at p3" true (pos PS.w2b < pos PS.w1c)

(* Figure 3: ANBKH delays b at p3 until c — and once a has been applied
   the remaining wait is unnecessary; OptP on the same schedule applies
   b right after a *)
let test_figure3_anbkh_false_causality () =
  let outcome = PS.run anbkh PS.figure3 in
  let report = Checker.check outcome.execution in
  check_clean "fig3 anbkh" report;
  Alcotest.(check int) "one delay, at p3" 1 (delays_at outcome 2);
  let pos dot =
    match Execution.apply_position outcome.execution ~proc:2 ~dot with
    | Some p -> p
    | None -> Alcotest.fail "missing apply at p3"
  in
  Alcotest.(check bool) "ANBKH applies c before b at p3" true
    (pos PS.w1c < pos PS.w2b)

let test_figure3_optp_no_extra_wait () =
  let outcome = PS.run optp PS.figure3 in
  let report = Checker.check outcome.execution in
  check_clean "fig3 optp" report;
  Alcotest.(check int) "OptP: every delay necessary" 0
    report.unnecessary_delays;
  let pos dot =
    match Execution.apply_position outcome.execution ~proc:2 ~dot with
    | Some p -> p
    | None -> Alcotest.fail "missing apply at p3"
  in
  Alcotest.(check bool) "OptP applies b before c at p3" true
    (pos PS.w2b < pos PS.w1c)

(* Figure 2: the causal-delivery protocol performs one unnecessary
   delay; OptP performs none *)
let test_figure2_unnecessary_delay () =
  let anbkh_outcome = PS.run anbkh PS.figure2 in
  let anbkh_report = Checker.check anbkh_outcome.execution in
  check_clean "fig2 anbkh" anbkh_report;
  Alcotest.(check int) "ANBKH: one delay" 1 anbkh_report.total_delays;
  Alcotest.(check int) "ANBKH: it is unnecessary" 1
    anbkh_report.unnecessary_delays;
  let optp_outcome = PS.run optp PS.figure2 in
  let optp_report = Checker.check optp_outcome.execution in
  check_clean "fig2 optp" optp_report;
  Alcotest.(check int) "OptP: no delay at all" 0 optp_report.total_delays

(* both protocols are complete (class 𝒫) on every scenario *)
let test_completeness () =
  List.iter
    (fun (s : PS.t) ->
      List.iter
        (fun p ->
          let outcome = PS.run p s in
          let report = Checker.check outcome.execution in
          Alcotest.(check bool)
            (s.label ^ ": complete")
            true report.complete)
        [ optp; anbkh ])
    PS.all


(* the remaining protocols on the figure schedules, with their
   distinctive outcomes asserted *)

let ws_recv = (module Dsm_core.Ws_receiver : Dsm_core.Protocol.S)
let optp_ws = (module Dsm_core.Opt_p_ws : Dsm_core.Protocol.S)
let optp_direct = (module Dsm_core.Opt_p_direct : Dsm_core.Protocol.S)

(* OptP-direct must mirror OptP exactly on every scenario *)
let test_direct_mirrors_optp_on_scenarios () =
  List.iter
    (fun (s : PS.t) ->
      let o1 = PS.run optp s in
      let o2 = PS.run optp_direct s in
      Alcotest.(check bool)
        (s.label ^ ": same history")
        true
        (Dsm_memory.History.ops o1.history
        = Dsm_memory.History.ops o2.history);
      Alcotest.(check int)
        (s.label ^ ": same delay count")
        (Execution.delay_count o1.execution)
        (Execution.delay_count o2.execution))
    PS.all

(* In figure 2, b is the FIRST write on x2, so writing semantics has
   nothing to overwrite: WS-recv behaves exactly like ANBKH (one
   unnecessary delay), OptP-WS exactly like OptP (none) *)
let test_figure2_ws_variants () =
  let r_ws = Checker.check (PS.run ws_recv PS.figure2).execution in
  Alcotest.(check int) "WS-recv: one unnecessary delay" 1
    r_ws.Checker.unnecessary_delays;
  Alcotest.(check int) "WS-recv: no skips possible" 0 r_ws.Checker.skipped;
  let r_ows = Checker.check (PS.run optp_ws PS.figure2).execution in
  Alcotest.(check int) "OptP-WS: no delays" 0 r_ows.Checker.total_delays;
  Alcotest.(check int) "OptP-WS: no skips" 0 r_ows.Checker.skipped

(* In figure 6's schedule, c (the second write of p1 on x1) arrives at
   p3 last; under writing semantics nothing is skippable there either
   because a was applied long before c arrives (no pending overwrite
   pair ever forms). All variants stay complete. *)
let test_figure6_ws_variants_complete () =
  List.iter
    (fun p ->
      let r = Checker.check (PS.run p PS.figure6).execution in
      Alcotest.(check bool) "clean" true (Checker.is_clean r);
      Alcotest.(check bool) "complete" true r.Checker.complete)
    [ ws_recv; optp_ws ]

let () =
  Alcotest.run "paper_scenarios"
    [
      ( "h1",
        [
          Alcotest.test_case "reference history is well-formed" `Quick
            test_h1_reference_valid;
          Alcotest.test_case "reference history is causally consistent"
            `Quick test_h1_is_causally_consistent;
          Alcotest.test_case "scenarios reproduce Ĥ₁ under OptP" `Quick
            test_scenarios_reproduce_h1_optp;
          Alcotest.test_case "figure 3 reproduces Ĥ₁ under ANBKH" `Quick
            test_figure3_anbkh_reproduces_h1;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 1 run (1): no delay" `Quick
            test_figure1_run1_no_delay;
          Alcotest.test_case "figure 6: one necessary delay at p3" `Quick
            test_figure6_optp_one_necessary_delay;
          Alcotest.test_case "figure 6: b applied before c at p3" `Quick
            test_figure6_b_applied_before_c;
          Alcotest.test_case "figure 3: ANBKH false causality" `Quick
            test_figure3_anbkh_false_causality;
          Alcotest.test_case "figure 3: OptP does not wait for c" `Quick
            test_figure3_optp_no_extra_wait;
          Alcotest.test_case "figure 2: unnecessary delay vs none" `Quick
            test_figure2_unnecessary_delay;
          Alcotest.test_case "completeness on all scenarios" `Quick
            test_completeness;
          Alcotest.test_case "OptP-direct mirrors OptP" `Quick
            test_direct_mirrors_optp_on_scenarios;
          Alcotest.test_case "figure 2 under WS variants" `Quick
            test_figure2_ws_variants;
          Alcotest.test_case "figure 6 WS variants complete" `Quick
            test_figure6_ws_variants_complete;
        ] );
    ]
