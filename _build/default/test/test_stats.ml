(* Tests for the statistics library: Summary, Histogram, Table_fmt,
   Series. *)

module Summary = Dsm_stats.Summary
module Histogram = Dsm_stats.Histogram
module Table_fmt = Dsm_stats.Table_fmt
module Series = Dsm_stats.Series

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_basics () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  check_int "count" 5 (Summary.count s);
  check_float "mean" 3. (Summary.mean s);
  check_float "min" 1. (Summary.min s);
  check_float "max" 5. (Summary.max s);
  check_float "sum" 15. (Summary.sum s);
  check_float "variance" 2.5 (Summary.variance s);
  check_float "median" 3. (Summary.median s)

let test_summary_single () =
  let s = Summary.of_list [ 7. ] in
  check_float "mean" 7. (Summary.mean s);
  check_float "variance 0" 0. (Summary.variance s);
  check_float "stderr 0" 0. (Summary.std_error s);
  check_float "p99 = the sample" 7. (Summary.percentile s 99.)

let test_summary_percentiles () =
  let s = Summary.of_list [ 10.; 20.; 30.; 40. ] in
  check_float "p0" 10. (Summary.percentile s 0.);
  check_float "p100" 40. (Summary.percentile s 100.);
  check_float "p50 interpolates" 25. (Summary.percentile s 50.);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Summary.percentile: p must be in [0,100]")
    (fun () -> ignore (Summary.percentile s 101.))

let test_summary_rejects_bad_input () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Summary.of_array: empty sample") (fun () ->
      ignore (Summary.of_list []));
  Alcotest.check_raises "nan"
    (Invalid_argument "Summary.of_array: non-finite sample") (fun () ->
      ignore (Summary.of_list [ Float.nan ]))

let test_summary_ci () =
  let s = Summary.of_list (List.init 100 (fun i -> float_of_int (i mod 10))) in
  let lo, hi = Summary.ci95 s in
  check_bool "ci brackets the mean" true (lo <= Summary.mean s && Summary.mean s <= hi)

let prop_summary_mean_bounded =
  qcheck_case "min <= mean <= max"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun l ->
      let s = Summary.of_list l in
      Summary.min s <= Summary.mean s && Summary.mean s <= Summary.max s)

let prop_summary_percentile_monotone =
  qcheck_case "percentiles are monotone"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun l ->
      let s = Summary.of_list l in
      let ps = [ 0.; 25.; 50.; 75.; 100. ] in
      let vals = List.map (Summary.percentile s) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

(* Welford vs naive two-pass on well-conditioned data *)
let prop_summary_variance_matches_naive =
  qcheck_case "variance matches two-pass formula"
    QCheck2.Gen.(list_size (int_range 2 50) (float_bound_inclusive 100.))
    (fun l ->
      let s = Summary.of_list l in
      let n = float_of_int (List.length l) in
      let mean = List.fold_left ( +. ) 0. l /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. l
        /. (n -. 1.)
      in
      abs_float (Summary.variance s -. var) < 1e-6 *. (1. +. var))

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add_all h [ 0.; 1.9; 2.; 9.99 ];
  check_int "bin 0" 2 (Histogram.bin_value h 0);
  check_int "bin 1" 1 (Histogram.bin_value h 1);
  check_int "bin 4" 1 (Histogram.bin_value h 4);
  check_int "total" 4 (Histogram.total h);
  check_bool "bin range" true (Histogram.bin_range h 1 = (2., 4.))

let test_histogram_overflow () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  Histogram.add h (-5.);
  Histogram.add h 5.;
  Histogram.add h 1.0 (* hi is exclusive *);
  check_int "underflow" 1 (Histogram.underflow h);
  check_int "overflow" 2 (Histogram.overflow h);
  check_int "total counts everything" 3 (Histogram.total h)

let test_histogram_of_samples () =
  let h = Histogram.of_samples ~bins:4 [ 1.; 2.; 3.; 4. ] in
  check_int "total" 4 (Histogram.total h);
  check_int "no overflow (max lands in last bin)" 0 (Histogram.overflow h);
  Alcotest.check_raises "empty"
    (Invalid_argument "Histogram.of_samples: empty sample") (fun () ->
      ignore (Histogram.of_samples []))

let test_histogram_render () =
  let h = Histogram.of_samples ~bins:3 [ 1.; 1.; 2.; 3. ] in
  let s = Histogram.render ~width:10 h in
  check_bool "mentions counts" true (String.length s > 0)

let prop_histogram_conserves_mass =
  qcheck_case "bins + under + over = total"
    QCheck2.Gen.(list_size (int_range 1 100) (float_range (-10.) 20.))
    (fun l ->
      let h = Histogram.create ~lo:0. ~hi:10. ~bins:7 in
      Histogram.add_all h l;
      let binned = ref 0 in
      for i = 0 to Histogram.bin_count h - 1 do
        binned := !binned + Histogram.bin_value h i
      done;
      !binned + Histogram.underflow h + Histogram.overflow h
      = List.length l)

(* ------------------------------------------------------------------ *)
(* Table_fmt                                                           *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table_fmt.create ~title:"T" ~header:[ "a"; "bb" ] () in
  Table_fmt.add_row t [ "1"; "2" ];
  Table_fmt.add_row t [ "333"; "4" ];
  let s = Table_fmt.render t in
  check_bool "has title" true (String.sub s 0 1 = "T");
  check_int "rows" 2 (Table_fmt.row_count t);
  (* all lines after the title have the same display width *)
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> 'T')
  in
  let widths = List.map String.length lines in
  check_bool "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_arity_checks () =
  let t = Table_fmt.create ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Table_fmt.add_row: arity mismatch") (fun () ->
      Table_fmt.add_row t [ "only one" ]);
  Alcotest.check_raises "align arity"
    (Invalid_argument "Table_fmt.set_align: arity mismatch") (fun () ->
      Table_fmt.set_align t [ Table_fmt.Left ]);
  Alcotest.check_raises "empty header"
    (Invalid_argument "Table_fmt.create: empty header") (fun () ->
      ignore (Table_fmt.create ~header:[] ()))

let test_table_utf8_width () =
  (* the ∅ glyph must count as one column *)
  let t = Table_fmt.create ~header:[ "x" ] () in
  Table_fmt.add_row t [ "∅" ];
  Table_fmt.add_row t [ "ab" ];
  let s = Table_fmt.render t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  (* compare display widths via byte-independent check: the rule lines
     (pure ASCII) and the ∅ line must align on the trailing '|' *)
  let ends_with_bar l = l.[String.length l - 1] = '|' || l.[String.length l - 1] = '+' in
  check_bool "all lines closed" true (List.for_all ends_with_bar lines)

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table_fmt.cell_float ~digits:2 3.14159);
  Alcotest.(check string) "int" "42" (Table_fmt.cell_int 42)

(* ------------------------------------------------------------------ *)
(* Series                                                              *)
(* ------------------------------------------------------------------ *)

let test_series_accumulation () =
  let s = Series.create ~x_label:"n" () in
  Series.add_point s ~series:"A" ~x:1. ~y:10.;
  Series.add_point s ~series:"A" ~x:1. ~y:20.;
  Series.add_point s ~series:"B" ~x:1. ~y:5.;
  Series.add_point s ~series:"A" ~x:2. ~y:30.;
  Alcotest.(check (list string)) "names in first-use order" [ "A"; "B" ]
    (Series.series_names s);
  Alcotest.(check (list (float 1e-9))) "xs" [ 1.; 2. ] (Series.xs s);
  (match Series.get s ~series:"A" ~x:1. with
  | Some sum ->
      check_int "two samples" 2 (Summary.count sum);
      check_float "mean" 15. (Summary.mean sum)
  | None -> Alcotest.fail "missing point");
  check_bool "absent point" true (Series.get s ~series:"B" ~x:2. = None)

let test_series_table () =
  let s = Series.create ~x_label:"x" () in
  Series.add_point s ~series:"A" ~x:1. ~y:1.;
  Series.add_point s ~series:"B" ~x:1. ~y:2.;
  let t = Series.to_table ~title:"demo" s in
  check_int "one row" 1 (Table_fmt.row_count t)

let test_series_crossover () =
  let s = Series.create ~x_label:"x" () in
  List.iter
    (fun (x, a, b) ->
      Series.add_point s ~series:"A" ~x ~y:a;
      Series.add_point s ~series:"B" ~x ~y:b)
    [ (1., 10., 5.); (2., 8., 7.); (3., 4., 9.) ];
  check_bool "A beats B from x=3" true
    (Series.crossover s ~series_a:"A" ~series_b:"B" = Some 3.);
  check_bool "B beats A from x=1" true
    (Series.crossover s ~series_a:"B" ~series_b:"A" = Some 1.)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basics" `Quick test_summary_basics;
          Alcotest.test_case "single sample" `Quick test_summary_single;
          Alcotest.test_case "percentiles" `Quick test_summary_percentiles;
          Alcotest.test_case "rejects bad input" `Quick
            test_summary_rejects_bad_input;
          Alcotest.test_case "confidence interval" `Quick test_summary_ci;
          prop_summary_mean_bounded;
          prop_summary_percentile_monotone;
          prop_summary_variance_matches_naive;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "under/overflow" `Quick test_histogram_overflow;
          Alcotest.test_case "of_samples" `Quick test_histogram_of_samples;
          Alcotest.test_case "render" `Quick test_histogram_render;
          prop_histogram_conserves_mass;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity checks" `Quick test_table_arity_checks;
          Alcotest.test_case "utf8 width" `Quick test_table_utf8_width;
          Alcotest.test_case "cell helpers" `Quick test_table_cells;
        ] );
      ( "series",
        [
          Alcotest.test_case "accumulation" `Quick test_series_accumulation;
          Alcotest.test_case "to_table" `Quick test_series_table;
          Alcotest.test_case "crossover" `Quick test_series_crossover;
        ] );
    ]
