(* Tests for workload specification, Zipf sampling, random generation
   and scripted schedules. *)

module Spec = Dsm_workload.Spec
module Zipf = Dsm_workload.Zipf
module Generator = Dsm_workload.Generator
module Scripted = Dsm_workload.Scripted
module Rng = Dsm_sim.Rng
module Latency = Dsm_sim.Latency

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Spec                                                                *)
(* ------------------------------------------------------------------ *)

let test_spec_defaults () =
  let s = Spec.make () in
  check_int "n" 3 s.Spec.n;
  check_int "m" 4 s.Spec.m;
  check_bool "valid" true (Spec.validate s = Ok ());
  check_int "total ops" 300 (Spec.total_ops s)

let test_spec_validation () =
  let bad f = Result.is_error (Spec.validate f) in
  check_bool "n=0" true (bad (Spec.make ~n:0 ()));
  check_bool "m=0" true (bad (Spec.make ~m:0 ()));
  check_bool "ratio" true (bad (Spec.make ~write_ratio:1.5 ()));
  check_bool "zipf" true (bad (Spec.make ~var_dist:(Spec.Zipf_vars (-1.)) ()));
  check_bool "think" true
    (bad (Spec.make ~think:(Latency.Constant (-1.)) ()))

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_uniform_at_zero () =
  let z = Zipf.create ~n:4 ~s:0. in
  for k = 0 to 3 do
    check_bool "equal mass" true (abs_float (Zipf.probability z k -. 0.25) < 1e-9)
  done

let test_zipf_probabilities_sum_to_one () =
  let z = Zipf.create ~n:7 ~s:1.3 in
  let total = ref 0. in
  for k = 0 to 6 do
    total := !total +. Zipf.probability z k
  done;
  check_bool "sums to 1" true (abs_float (!total -. 1.) < 1e-9)

let test_zipf_monotone () =
  let z = Zipf.create ~n:5 ~s:1.0 in
  for k = 0 to 3 do
    check_bool "decreasing mass" true
      (Zipf.probability z k >= Zipf.probability z (k + 1))
  done

let test_zipf_sampling_matches_probability () =
  let z = Zipf.create ~n:4 ~s:1.2 in
  let rng = Rng.create 99 in
  let counts = Array.make 4 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 3 do
    let empirical = float_of_int counts.(k) /. float_of_int n in
    check_bool "within 2% absolute" true
      (abs_float (empirical -. Zipf.probability z k) < 0.02)
  done

let test_zipf_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.));
  Alcotest.check_raises "s"
    (Invalid_argument "Zipf.create: exponent must be non-negative")
    (fun () -> ignore (Zipf.create ~n:3 ~s:(-0.5)))

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_shape () =
  let spec = Spec.make ~n:4 ~m:3 ~ops_per_process:25 () in
  let sched = Generator.generate spec in
  check_int "one list per process" 4 (Array.length sched);
  Array.iter (fun ops -> check_int "ops per proc" 25 (List.length ops)) sched;
  let w, r = Generator.op_counts sched in
  check_int "total" 100 (w + r)

let test_generator_deterministic () =
  let spec = Spec.make ~seed:123 () in
  check_bool "same seed, same schedule" true
    (Generator.generate spec = Generator.generate spec);
  let spec2 = Spec.make ~seed:124 () in
  check_bool "different seed, different schedule" true
    (Generator.generate spec <> Generator.generate spec2)

let test_generator_times_ascending () =
  let sched = Generator.generate (Spec.make ~n:3 ~ops_per_process:50 ()) in
  Array.iter
    (fun ops ->
      let rec ascending = function
        | { Spec.at = t1; _ } :: ({ Spec.at = t2; _ } :: _ as rest) ->
            check_bool "ascending" true (t1 <= t2);
            ascending rest
        | [ _ ] | [] -> ()
      in
      ascending ops)
    sched

let test_generator_vars_in_range () =
  let spec = Spec.make ~m:3 ~var_dist:(Spec.Zipf_vars 1.1) () in
  let sched = Generator.generate spec in
  Array.iter
    (List.iter (fun { Spec.op; _ } ->
         let var =
           match op with
           | Spec.Do_write { var } | Spec.Do_read { var } -> var
         in
         check_bool "var in range" true (var >= 0 && var < 3)))
    sched

let test_generator_single_var () =
  let sched = Generator.generate (Spec.make ~var_dist:Spec.Single_var ()) in
  Array.iter
    (List.iter (fun { Spec.op; _ } ->
         let var =
           match op with
           | Spec.Do_write { var } | Spec.Do_read { var } -> var
         in
         check_int "always variable 0" 0 var))
    sched

let test_generator_write_ratio_extremes () =
  let w_all, r_all =
    Generator.op_counts (Generator.generate (Spec.make ~write_ratio:1.0 ()))
  in
  check_int "all writes" 0 r_all;
  check_bool "writes present" true (w_all > 0);
  let w_none, _ =
    Generator.op_counts (Generator.generate (Spec.make ~write_ratio:0.0 ()))
  in
  check_int "no writes" 0 w_none

let test_generator_rejects_invalid () =
  Alcotest.check_raises "invalid spec"
    (Invalid_argument "Generator.generate: n must be positive") (fun () ->
      ignore (Generator.generate (Spec.make ~n:0 ())))

let prop_generator_write_ratio_respected =
  qcheck_case ~count:20 "empirical write ratio tracks the spec"
    QCheck2.Gen.(float_bound_inclusive 1.)
    (fun ratio ->
      let spec = Spec.make ~n:4 ~ops_per_process:500 ~write_ratio:ratio () in
      let w, r = Generator.op_counts (Generator.generate spec) in
      let empirical = float_of_int w /. float_of_int (w + r) in
      abs_float (empirical -. ratio) < 0.05)

(* ------------------------------------------------------------------ *)
(* Scripted                                                            *)
(* ------------------------------------------------------------------ *)

let test_scripted_program () =
  let prog = Scripted.program ~start:2. ~gap:3. [ Scripted.w 0; Scripted.r 1 ] in
  let sched = Scripted.schedule [ prog ] in
  match sched.(0) with
  | [ { Spec.at = 2.; op = Spec.Do_write { var = 0 } };
      { Spec.at = 5.; op = Spec.Do_read { var = 1 } } ] -> ()
  | _ -> Alcotest.fail "unexpected schedule"

let test_scripted_timed_monotone () =
  Alcotest.check_raises "decreasing times"
    (Invalid_argument "Scripted.timed: issue times must be non-decreasing")
    (fun () -> ignore (Scripted.timed [ (5., Scripted.w 0); (1., Scripted.r 0) ]))

let test_scripted_validation () =
  Alcotest.check_raises "negative start"
    (Invalid_argument "Scripted.program: negative start") (fun () ->
      ignore (Scripted.program ~start:(-1.) [ Scripted.w 0 ]));
  Alcotest.check_raises "zero gap"
    (Invalid_argument "Scripted.program: gap must be positive") (fun () ->
      ignore (Scripted.program ~gap:0. [ Scripted.w 0 ]))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "workload"
    [
      ( "spec",
        [
          Alcotest.test_case "defaults" `Quick test_spec_defaults;
          Alcotest.test_case "validation" `Quick test_spec_validation;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "uniform at s=0" `Quick test_zipf_uniform_at_zero;
          Alcotest.test_case "probabilities sum to 1" `Quick
            test_zipf_probabilities_sum_to_one;
          Alcotest.test_case "monotone mass" `Quick test_zipf_monotone;
          Alcotest.test_case "sampling matches probabilities" `Slow
            test_zipf_sampling_matches_probability;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
        ] );
      ( "generator",
        [
          Alcotest.test_case "shape" `Quick test_generator_shape;
          Alcotest.test_case "deterministic in seed" `Quick
            test_generator_deterministic;
          Alcotest.test_case "ascending times" `Quick
            test_generator_times_ascending;
          Alcotest.test_case "variables in range" `Quick
            test_generator_vars_in_range;
          Alcotest.test_case "single-var distribution" `Quick
            test_generator_single_var;
          Alcotest.test_case "write-ratio extremes" `Quick
            test_generator_write_ratio_extremes;
          Alcotest.test_case "rejects invalid spec" `Quick
            test_generator_rejects_invalid;
          prop_generator_write_ratio_respected;
        ] );
      ( "scripted",
        [
          Alcotest.test_case "program" `Quick test_scripted_program;
          Alcotest.test_case "timed monotonicity" `Quick
            test_scripted_timed_monotone;
          Alcotest.test_case "validation" `Quick test_scripted_validation;
        ] );
    ]
