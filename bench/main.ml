(* Benchmark and reproduction harness.

   Running this executable regenerates every table and figure of the
   paper (sections T1, T2, F1, F2, F3, F6, F7), runs the quantitative
   companion experiments of DESIGN.md §5 (Q1–Q6), the crash-recovery
   (R) and churn-storm (C) campaigns, and finishes with Bechamel
   micro-benchmarks of the protocol hot paths (section M).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --no-micro   # skip Bechamel section
     dune exec bench/main.exe -- --only T1,Q2 # selected sections
     dune exec bench/main.exe -- --json F     # also write results to F
     dune exec bench/main.exe -- --stress-quick # tiny S section (smoke) *)

module Experiment = Dsm_runtime.Experiment
module Table_fmt = Dsm_stats.Table_fmt

let section name title body =
  Printf.printf "\n================================================\n";
  Printf.printf "%s — %s\n" name title;
  Printf.printf "================================================\n";
  body ();
  flush stdout

let print_table t = print_string (Table_fmt.render t)

(* ------------------------------------------------------------------ *)
(* Paper artifacts                                                     *)
(* ------------------------------------------------------------------ *)

let t1 () = print_table (Experiment.table1 ())
let t2 () = print_table (Experiment.table2 ())
let f1 () = print_string (Experiment.figure1 ())
let f2 () = print_string (Experiment.figure2 ())
let f3 () = print_string (Experiment.figure3 ())
let f6 () = print_string (Experiment.figure6 ())
let f7 () = print_string (Experiment.figure7 ())

(* ------------------------------------------------------------------ *)
(* Quantitative experiments                                            *)
(* ------------------------------------------------------------------ *)

let q1 () = print_table (Experiment.q1_sweep_processes ())
let q2 () = print_table (Experiment.q2_sweep_latency_variance ())
let q3 () = print_table (Experiment.q3_sweep_write_ratio ())
let q4 () = print_table (Experiment.q4_buffer_occupancy ())
let q5 () =
  print_table (Experiment.q5_apply_latency ());
  print_newline ();
  print_string (Experiment.q5_histogram ())
let q6 () = print_table (Experiment.q6_ws_skips ())
let q7 () = print_table (Experiment.q7_fifo_ablation ())
let q8 () = print_table (Experiment.q8_lossy_links ())
let q9 () = print_table (Experiment.q9_divergence ())
let q10 () = print_table (Experiment.q10_metadata_size ())
let q11 () = print_table (Experiment.q11_partial_replication ())
let q12 () = print_table (Experiment.q12_crash_recovery ())

(* ------------------------------------------------------------------ *)
(* Crash-recovery acceptance campaign                                  *)
(* ------------------------------------------------------------------ *)

module Recovery = struct
  module FC = Dsm_runtime.Fault_campaign

  (* (protocol, outcome, wall seconds) for the JSON writer *)
  let results : (string * FC.outcome * float) list ref = ref []

  let run () =
    let table =
      Table_fmt.create
        ~title:
          "R: acceptance campaign - 8 replicas, 500-unit partition, \
           p3+p6 crash and recover"
        ~header:
          [
            "protocol";
            "recovery latency";
            "replayed";
            "rolled back";
            "commits";
            "retransmits";
            "audit";
          ]
        ()
    in
    Table_fmt.set_align table
      [
        Table_fmt.Left; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
        Table_fmt.Right; Table_fmt.Right; Table_fmt.Left;
      ];
    results := [];
    List.iter
      (fun (name, packed) ->
        let t0 = Sys.time () in
        let o = Experiment.acceptance_campaign ~protocol:packed () in
        let wall = Sys.time () -. t0 in
        results := !results @ [ (name, o, wall) ];
        let lats = List.filter_map FC.recovery_latency o.FC.recoveries in
        let lat_str =
          match lats with
          | [] -> "-"
          | l ->
              Printf.sprintf "%.0f"
                (List.fold_left ( +. ) 0. l /. float_of_int (List.length l))
        in
        Table_fmt.add_row table
          [
            name;
            lat_str;
            string_of_int o.FC.replayed_writes;
            string_of_int o.FC.rolled_back_events;
            string_of_int o.FC.commits;
            string_of_int o.FC.retransmissions;
            (if o.FC.clean && o.FC.live_equal then "clean+converged"
             else "VIOLATIONS");
          ])
      [
        ("OptP", Dsm_core.Protocol.Packed (module Dsm_core.Opt_p));
        ("ANBKH", Dsm_core.Protocol.Packed (module Dsm_core.Anbkh));
      ];
    print_table table
end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel
  open Toolkit
  module V = Dsm_vclock.Vector_clock
  module Protocol = Dsm_core.Protocol

  let vclock_merge =
    let a = V.of_array (Array.init 32 (fun i -> i + 1))
    and b = V.of_array (Array.init 32 (fun i -> 32 - i)) in
    Test.make ~name:"M1 vclock.merge n=32"
      (Staged.stage (fun () -> ignore (V.merge a b)))

  let vclock_compare =
    let a = V.of_array (Array.init 32 (fun i -> i + 1))
    and b = V.of_array (Array.init 32 (fun i -> if i = 7 then 99 else i + 1)) in
    Test.make ~name:"M2 vclock.compare_partial n=32"
      (Staged.stage (fun () -> ignore (V.compare_partial a b)))

  (* one full write step (local apply + message build) of each protocol;
     state is rebuilt per batch through make_with_resource *)
  let protocol_write (module P : Protocol.S) label =
    Test.make_with_resource ~name:label Test.multiple
      ~allocate:(fun () -> P.create (Protocol.config ~n:8 ~m:16) ~me:0)
      ~free:(fun _ -> ())
      (Staged.stage (fun state -> ignore (P.write state ~var:3 ~value:1)))

  let optp_write =
    protocol_write (module Dsm_core.Opt_p) "M3a OptP write step n=8"

  let anbkh_write =
    protocol_write (module Dsm_core.Anbkh) "M3b ANBKH write step n=8"

  (* in-order receive: a sender state generates messages consumed by a
     fresh receiver *)
  let receive_step =
    Test.make_with_resource ~name:"M4 OptP receive step n=8" Test.multiple
      ~allocate:(fun () ->
        let cfg = Protocol.config ~n:8 ~m:16 in
        let sender = Dsm_core.Opt_p.create cfg ~me:1 in
        let receiver = Dsm_core.Opt_p.create cfg ~me:0 in
        (sender, receiver))
      ~free:(fun _ -> ())
      (Staged.stage (fun (sender, receiver) ->
           let _, eff = Dsm_core.Opt_p.write sender ~var:2 ~value:7 in
           match eff.Protocol.to_send with
           | [ Protocol.Broadcast m ] ->
               ignore (Dsm_core.Opt_p.receive receiver ~src:1 m)
           | _ -> assert false))

  let engine_event =
    Test.make ~name:"M5 engine schedule+run 1k events"
      (Staged.stage (fun () ->
           let e = Dsm_sim.Engine.create () in
           for i = 1 to 1000 do
             Dsm_sim.Engine.schedule_at e
               (Dsm_sim.Sim_time.of_float (float_of_int i))
               (fun () -> ())
           done;
           ignore (Dsm_sim.Engine.run e)))

  let end_to_end =
    let spec =
      Dsm_workload.Spec.make ~n:4 ~m:4 ~ops_per_process:50 ~write_ratio:0.5
        ~seed:7 ()
    in
    Test.make ~name:"M6 full OptP simulation (4 procs x 50 ops)"
      (Staged.stage (fun () ->
           ignore
             (Dsm_runtime.Sim_run.run
                (module Dsm_core.Opt_p)
                ~spec
                ~latency:(Dsm_sim.Latency.Exponential { mean = 10. })
                ())))

  let tests =
    Test.make_grouped ~name:"micro"
      [
        vclock_merge;
        vclock_compare;
        optp_write;
        anbkh_write;
        receive_step;
        engine_event;
        end_to_end;
      ]

  (* returns the measured rows so --json can serialize them *)
  let run () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |]
    in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
    in
    let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let table =
      Table_fmt.create ~title:"Bechamel micro-benchmarks"
        ~header:[ "benchmark"; "time/run (ns)"; "r²" ]
        ()
    in
    Table_fmt.set_align table
      [ Table_fmt.Left; Table_fmt.Right; Table_fmt.Right ];
    let rows =
      Hashtbl.fold
        (fun name ols acc ->
          let time =
            match Analyze.OLS.estimates ols with
            | Some (t :: _) -> Some t
            | Some [] | None -> None
          in
          (name, time, Analyze.OLS.r_square ols) :: acc)
        results []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    in
    List.iter
      (fun (n, t, r) ->
        let fmt_opt f = function Some v -> f v | None -> "-" in
        Table_fmt.add_row table
          [
            n;
            fmt_opt (Printf.sprintf "%.1f") t;
            fmt_opt (Printf.sprintf "%.4f") r;
          ])
      rows;
    print_table table;
    rows
end

(* ------------------------------------------------------------------ *)
(* Buffer stress: indexed wakeups vs scanning drain                    *)
(* ------------------------------------------------------------------ *)

module Stress = struct
  module P = Dsm_core.Opt_p
  module Protocol = Dsm_core.Protocol

  type result = {
    sn : int;  (** processes *)
    senders : int;
    writes_per_sender : int;
    messages : int;
    scan_ms : float;
    indexed_ms : float;
    speedup : float;
  }

  (* Causally chained script: sender [i] first receives everything
     senders [1..i-1] sent (so its Write_co vector carries cross-process
     constraints), then issues [writes] writes of its own. Delivering
     the whole script to a fresh receiver in reverse send order is the
     protocol's worst case: every message buffers until the very last
     one — (sender 1, seq 1) — arrives and triggers a single cascade
     that drains the entire buffer. The seed Mailbox re-scans the whole
     buffer after every apply (O(B²·n) total); the delivery index wakes
     exactly one message per apply (O(B·n)). *)
  let build ~senders ~writes =
    let cfg = Protocol.config ~n:(senders + 1) ~m:4 in
    let sent = ref [] in
    for i = 1 to senders do
      let s = P.create cfg ~me:i in
      List.iter (fun (src, m) -> ignore (P.receive s ~src m)) (List.rev !sent);
      for k = 1 to writes do
        let _, eff = P.write s ~var:(k mod 4) ~value:k in
        match eff.Protocol.to_send with
        | [ Protocol.Broadcast m ] -> sent := (i, m) :: !sent
        | _ -> assert false
      done
    done;
    (* head of [sent] is the newest write: the list as-is IS the
       deep-reorder delivery order (senders then seqs descending) *)
    (cfg, !sent)

  let drain (module I : P.IMPL) cfg script =
    let r = I.create cfg ~me:0 in
    let applied =
      List.fold_left
        (fun acc (src, m) ->
          acc + List.length (I.receive r ~src m).Protocol.applied)
        0 script
    in
    (applied, I.applied_vector r)

  (* Sys.time has coarse resolution: repeat until enough CPU time
     accumulates, report per-drain milliseconds *)
  let time_drain impl cfg script =
    let reps = ref 0 and elapsed = ref 0. and out = ref None in
    while !elapsed < 0.2 && !reps < 100 do
      let t0 = Sys.time () in
      out := Some (drain impl cfg script);
      elapsed := !elapsed +. (Sys.time () -. t0);
      incr reps
    done;
    (Option.get !out, !elapsed /. float_of_int !reps *. 1000.)

  let run ~quick () =
    let senders, writes = if quick then (8, 6) else (31, 600) in
    let cfg, script = build ~senders ~writes in
    let messages = List.length script in
    Printf.printf "n=%d senders=%d writes/sender=%d messages=%d\n"
      (senders + 1) senders writes messages;
    let (applied_s, vec_s), scan_ms = time_drain (module P.Scan) cfg script in
    let (applied_i, vec_i), indexed_ms = time_drain (module P) cfg script in
    if applied_s <> messages || applied_i <> messages || vec_s <> vec_i then
      failwith "Stress: indexed and scanning drains disagree";
    Printf.printf "all %d writes applied by both; final vectors identical\n"
      messages;
    Printf.printf "scan (seed Mailbox) drain : %10.3f ms\n" scan_ms;
    Printf.printf "indexed wakeups drain     : %10.3f ms\n" indexed_ms;
    let speedup = scan_ms /. indexed_ms in
    Printf.printf "speedup                   : %10.1fx\n" speedup;
    {
      sn = senders + 1;
      senders;
      writes_per_sender = writes;
      messages;
      scan_ms;
      indexed_ms;
      speedup;
    }
end

(* ------------------------------------------------------------------ *)
(* Observability: probe overhead, null sink vs full tracing            *)
(* ------------------------------------------------------------------ *)

module Obs = struct
  module Metrics = Dsm_obs.Metrics
  module Sim_run = Dsm_runtime.Sim_run
  module Provenance = Dsm_runtime.Provenance
  module Execution = Dsm_runtime.Execution

  type result = {
    on : int;  (** processes *)
    omessages : int;
    null_ms : float;  (** per run, everything inert *)
    full_ms : float;
        (** per run, live registry + wire accountant + flight recorder
            (one registry reused across reps via [Metrics.reset]) *)
    trace_ms : float;  (** chrome-trace assembly alone, post-run export *)
    overhead_pct : float;  (** full vs null *)
    instruments : int;
  }

  let results : result list ref = ref []

  let latency = Dsm_sim.Latency.Exponential { mean = 10. }

  let spec ~n ~quick =
    Dsm_workload.Spec.make ~n ~m:8
      ~ops_per_process:(if quick then 15 else 60)
      ~write_ratio:0.5 ~seed:11 ()

  let once ~n ~quick ~metrics ~wire ~recorder () =
    Sim_run.run
      (module Dsm_core.Opt_p)
      ~spec:(spec ~n ~quick) ~latency ~seed:2 ~metrics ~wire ~recorder ()

  (* Sys.time is coarse: repeat until enough CPU time accumulates *)
  let time f =
    let reps = ref 0 and elapsed = ref 0. in
    while !elapsed < 0.3 && !reps < 50 do
      let t0 = Sys.time () in
      ignore (f ());
      elapsed := !elapsed +. (Sys.time () -. t0);
      incr reps
    done;
    !elapsed /. float_of_int !reps *. 1000.

  let run ~quick () =
    results := [];
    let table =
      Table_fmt.create
        ~title:
          "O: probe overhead - null sink vs metrics + wire + recorder \
           (chrome export timed apart)"
        ~header:
          [
            "n"; "messages"; "null ms/run"; "full ms/run"; "overhead";
            "trace ms";
          ]
        ()
    in
    Table_fmt.set_align table
      [
        Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
        Table_fmt.Right; Table_fmt.Right;
      ];
    let last_live = ref None in
    List.iter
      (fun n ->
        let null_run () =
          once ~n ~quick
            ~metrics:(Metrics.null ())
            ~wire:(Dsm_obs.Wire.null ())
            ~recorder:(Dsm_obs.Timeseries.null ())
            ()
        in
        (* one registry + accountant for every reps of this size; reset
           between reps so tallies cannot leak run-to-run *)
        let metrics = Metrics.create () in
        let wire = Dsm_obs.Wire.create ~proto:"OptP" ~n () in
        let recorder = Dsm_obs.Timeseries.create ~metrics () in
        let full_run () =
          Metrics.reset metrics;
          Dsm_obs.Wire.reset wire;
          once ~n ~quick ~metrics ~wire ~recorder ()
        in
        (* differential guard: live observers must not change the run *)
        let o0 = null_run () in
        let o1 = full_run () in
        if
          o0.Sim_run.end_time <> o1.Sim_run.end_time
          || o0.Sim_run.messages_sent <> o1.Sim_run.messages_sent
          || Execution.event_count o0.Sim_run.execution
             <> Execution.event_count o1.Sim_run.execution
        then failwith "Obs: observation changed the simulated outcome";
        last_live := Some metrics;
        let null_ms = time null_run in
        let full_ms = time full_run in
        let trace_ms =
          time (fun () ->
              let buf = Buffer.create 8192 in
              Dsm_obs.Export.chrome buf ~n ~end_time:o1.Sim_run.end_time
                (Dsm_obs.Span.spans (Provenance.spans o1.Sim_run.execution));
              Buffer.length buf)
        in
        let overhead_pct = (full_ms -. null_ms) /. null_ms *. 100. in
        Table_fmt.add_row table
          [
            string_of_int n;
            string_of_int o0.Sim_run.messages_sent;
            Printf.sprintf "%.3f" null_ms;
            Printf.sprintf "%.3f" full_ms;
            Printf.sprintf "%+.1f%%" overhead_pct;
            Printf.sprintf "%.3f" trace_ms;
          ];
        results :=
          !results
          @ [
              {
                on = n;
                omessages = o0.Sim_run.messages_sent;
                null_ms;
                full_ms;
                trace_ms;
                overhead_pct;
                instruments = List.length (Metrics.rows metrics);
              };
            ])
      [ 8; 32 ];
    print_table table;
    (* the registry of the last timed rep, as users will see it *)
    match !last_live with
    | Some live ->
        print_newline ();
        print_table
          (Metrics.summary_table ~title:"metrics registry (n=32 run)" live)
    | None -> ()
end

(* ------------------------------------------------------------------ *)
(* Wire cost: causal-metadata bytes vs system size, dense vs delta     *)
(* ------------------------------------------------------------------ *)

module Wire_bench = struct
  module Sim_run = Dsm_runtime.Sim_run
  module Wire = Dsm_obs.Wire

  type result = {
    wn : int;  (** processes *)
    wframes : int;
    wtotal_bytes : int;
    wheader : int;
    wpayload : int;
    wmeta : int;
    wdelta_meta : int;
    wmeta_per_msg : float;
    wdelta_per_msg : float;
  }

  let results : result list ref = ref []

  (* Zipf-skewed writes: consecutive frames on an edge mostly move few
     vector entries, which is where the delta counterfactual wins *)
  let spec ~n ~quick =
    Dsm_workload.Spec.make ~n ~m:8
      ~ops_per_process:(if quick then 15 else 40)
      ~write_ratio:0.5 ~var_dist:(Dsm_workload.Spec.Zipf_vars 1.2) ~seed:11
      ()

  let run ~quick () =
    results := [];
    let table =
      Table_fmt.create
        ~title:
          "W: wire cost of dense OptP vectors vs the delta counterfactual \
           (zipf 1.2 writes)"
        ~header:
          [
            "n"; "frames"; "total B"; "meta B"; "meta B/msg";
            "delta B/msg"; "delta/dense";
          ]
        ()
    in
    Table_fmt.set_align table
      [
        Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
        Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
      ];
    List.iter
      (fun n ->
        let wire = Wire.create ~proto:"OptP" ~n () in
        ignore
          (Sim_run.run
             (module Dsm_core.Opt_p)
             ~spec:(spec ~n ~quick)
             ~latency:(Dsm_sim.Latency.Exponential { mean = 10. })
             ~seed:2 ~wire ());
        let t = Wire.totals wire in
        let per x = float_of_int x /. float_of_int t.Wire.frames in
        let meta_per_msg = per t.Wire.meta in
        let delta_per_msg = per t.Wire.delta_meta in
        Table_fmt.add_row table
          [
            string_of_int n;
            string_of_int t.Wire.frames;
            string_of_int (Wire.total_bytes wire);
            string_of_int t.Wire.meta;
            Printf.sprintf "%.1f" meta_per_msg;
            Printf.sprintf "%.1f" delta_per_msg;
            Printf.sprintf "%.2f" (delta_per_msg /. meta_per_msg);
          ];
        results :=
          !results
          @ [
              {
                wn = n;
                wframes = t.Wire.frames;
                wtotal_bytes = Wire.total_bytes wire;
                wheader = t.Wire.header;
                wpayload = t.Wire.payload;
                wmeta = t.Wire.meta;
                wdelta_meta = t.Wire.delta_meta;
                wmeta_per_msg = meta_per_msg;
                wdelta_per_msg = delta_per_msg;
              };
            ])
      (if quick then [ 8; 32 ] else [ 8; 32; 128 ]);
    print_table table;
    print_endline
      "  dense causal metadata grows linearly in n (4 + 8n bytes per \
       write);";
    print_endline
      "  the delta counterfactual tracks how much of the vector actually \
       moved per edge."
end

(* ------------------------------------------------------------------ *)
(* Churn storm: 8 -> 16 -> 8 replicas under a Zipf workload            *)
(* ------------------------------------------------------------------ *)

module Churn = struct
  module CC = Dsm_runtime.Churn_campaign
  module FC = Dsm_runtime.Fault_campaign
  module Fault_plan = Dsm_sim.Fault_plan

  type result = {
    cprotocol : string;
    outcome : CC.outcome;
    static_payloads : int;
    static_frames : int;
    wall : float;
  }

  let results : result list ref = ref []
  let universe = 16
  let initial = 8
  let latency = Dsm_sim.Latency.Exponential { mean = 10. }

  let spec ~quick =
    Dsm_workload.Spec.make ~n:universe ~m:8
      ~ops_per_process:(if quick then 12 else 40)
      ~write_ratio:0.5 ~var_dist:(Dsm_workload.Spec.Zipf_vars 1.2) ~seed:7 ()

  (* slots 8..15 join staggered, then all eight leave again: the view
     grows 8 -> 16 and shrinks back to 8 while traffic is in flight *)
  let plan ~quick =
    let t f = Dsm_sim.Sim_time.of_float (if quick then f /. 3. else f) in
    Fault_plan.make
      (List.concat_map
         (fun i ->
           [
             Fault_plan.Join { proc = initial + i; at = t (60. +. (25. *. float_of_int i)) };
             Fault_plan.Leave { proc = initial + i; at = t (460. +. (25. *. float_of_int i)) };
           ])
         (List.init (universe - initial) Fun.id))

  let campaign (type pt pm)
      (module P : Dsm_core.Protocol.S with type t = pt and type msg = pm)
      ~quick () =
    let t0 = Sys.time () in
    let o =
      CC.run (module P) ~spec:(spec ~quick) ~latency ~plan:(plan ~quick)
        ~initial ~seed:5 ()
    in
    let wall = Sys.time () -. t0 in
    (* static baseline: the same workload with all 16 slots members from
       time 0 and no view changes — amplification is the extra wire
       traffic churn costs per delivered payload *)
    let s =
      FC.run (module P) ~spec:(spec ~quick) ~latency
        ~faults:Dsm_sim.Network.no_faults ~plan:(Fault_plan.make []) ~seed:5
        ()
    in
    {
      cprotocol = P.name;
      outcome = o;
      static_payloads = s.FC.payloads_sent;
      static_frames = s.FC.frames_sent;
      wall;
    }

  let frames_per_payload ~frames ~payloads =
    if payloads = 0 then 0.
    else float_of_int frames /. float_of_int payloads

  let amplification r =
    let churn =
      frames_per_payload ~frames:r.outcome.CC.frames_sent
        ~payloads:r.outcome.CC.payloads_sent
    and static_ =
      frames_per_payload ~frames:r.static_frames ~payloads:r.static_payloads
    in
    if static_ = 0. then 0. else churn /. static_

  type grid_cell = {
    spacing : float;
    gops : int;
    gjoins : int;
    gconverged : int;
    gmean : float;
    gmax : float;
    gclean : bool;
  }

  let grid_results : grid_cell list ref = ref []

  let run_tables ~quick () =
    results := [];
    let table =
      Table_fmt.create
        ~title:
          "C: churn storm - 8 -> 16 -> 8 replicas, Zipf(1.2) over 8 vars"
        ~header:
          [
            "protocol";
            "join latency";
            "transfer B";
            "replayed";
            "frames/payload";
            "static f/p";
            "amplification";
            "audit";
          ]
        ()
    in
    Table_fmt.set_align table
      [
        Table_fmt.Left; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
        Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Left;
      ];
    let rs =
      [
        campaign (module Dsm_core.Opt_p) ~quick ();
        campaign (module Dsm_core.Anbkh) ~quick ();
      ]
    in
    results := rs;
    List.iter
      (fun r ->
        let o = r.outcome in
        let lats = List.filter_map CC.catch_up_latency o.CC.catch_ups in
        let lat_str =
          match lats with
          | [] -> "-"
          | l ->
              Printf.sprintf "%.1f"
                (List.fold_left ( +. ) 0. l /. float_of_int (List.length l))
        in
        Table_fmt.add_row table
          [
            r.cprotocol;
            lat_str;
            string_of_int o.CC.transfer_bytes;
            string_of_int o.CC.replayed_writes;
            Printf.sprintf "%.3f"
              (frames_per_payload ~frames:o.CC.frames_sent
                 ~payloads:o.CC.payloads_sent);
            Printf.sprintf "%.3f"
              (frames_per_payload ~frames:r.static_frames
                 ~payloads:r.static_payloads);
            Printf.sprintf "%.2fx" (amplification r);
            (if o.CC.clean && o.CC.live_equal && o.CC.quarantine_leaks = 0
             then "clean+converged"
             else "VIOLATIONS");
          ])
      rs;
    print_table table

  (* join rate vs workload rate: how fast slots can enter the view
     before catch-up latency degrades, at two traffic volumes *)
  let run_grid ~quick () =
    grid_results := [];
    let table =
      Table_fmt.create
        ~title:"C2: join rate vs workload rate - join-to-converged latency"
        ~header:
          [ "join spacing"; "ops/proc"; "joins"; "mean conv"; "max conv";
            "audit" ]
        ()
    in
    Table_fmt.set_align table
      [
        Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
        Table_fmt.Right; Table_fmt.Left;
      ];
    List.iter
      (fun spacing ->
        List.iter
          (fun ops ->
            let guniverse = 12 and ginitial = 8 in
            let spec =
              Dsm_workload.Spec.make ~n:guniverse ~m:8
                ~ops_per_process:(if quick then max 4 (ops / 3) else ops)
                ~write_ratio:0.5
                ~var_dist:(Dsm_workload.Spec.Zipf_vars 1.2) ~seed:11 ()
            in
            let plan =
              Fault_plan.make
                (List.init (guniverse - ginitial) (fun i ->
                     Fault_plan.Join
                       {
                         proc = ginitial + i;
                         at =
                           Dsm_sim.Sim_time.of_float
                             (60. +. (spacing *. float_of_int i));
                       }))
            in
            let o =
              CC.run (module Dsm_core.Opt_p) ~spec ~latency ~plan
                ~initial:ginitial ~seed:11 ()
            in
            let lats =
              List.filter_map
                (fun c ->
                  if c.CC.ckind = CC.Fresh_join then CC.catch_up_latency c
                  else None)
                o.CC.catch_ups
            in
            let mean = function
              | [] -> 0.
              | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
            in
            let cell =
              {
                spacing;
                gops = ops;
                gjoins = o.CC.joins;
                gconverged = List.length lats;
                gmean = mean lats;
                gmax = List.fold_left Float.max 0. lats;
                gclean =
                  o.CC.clean && o.CC.live_equal
                  && o.CC.quarantine_leaks = 0;
              }
            in
            grid_results := !grid_results @ [ cell ];
            Table_fmt.add_row table
              [
                Printf.sprintf "%.0f" spacing;
                string_of_int ops;
                Printf.sprintf "%d/%d" cell.gconverged cell.gjoins;
                Printf.sprintf "%.1f" cell.gmean;
                Printf.sprintf "%.1f" cell.gmax;
                (if cell.gclean then "clean" else "VIOLATIONS");
              ])
          [ 10; 40 ])
      [ 15.; 40.; 80. ];
    print_table table

  let run ~quick () =
    run_tables ~quick ();
    print_newline ();
    run_grid ~quick ()
end

(* ------------------------------------------------------------------ *)
(* Failure detection: accrual threshold x heartbeat period x crashes   *)
(* ------------------------------------------------------------------ *)

module Fd_bench = struct
  module CC = Dsm_runtime.Churn_campaign
  module Fd = Dsm_runtime.Failure_detector
  module Fault_plan = Dsm_sim.Fault_plan

  type cell = {
    fthreshold : float;
    fhb_every : float;
    fcrashes : int;
    fseeds : int;
    ftrue : int;  (** true suspicions across the seeds *)
    ffalse : int;  (** suspicions of a live peer *)
    frefuted : int;
    fdetect_mean : float;  (** crash-to-suspicion latency, true only *)
    fdetect_max : float;
    fheartbeats : int;
    fclean : bool;  (** every run clean+converged, zero leaks/unnecessary *)
  }

  let results : cell list ref = ref []
  let universe = 8
  let latency = Dsm_sim.Latency.Exponential { mean = 10. }

  let spec ~quick ~seed =
    Dsm_workload.Spec.make ~n:universe ~m:8
      ~ops_per_process:(if quick then 8 else 24)
      ~write_ratio:0.5 ~var_dist:(Dsm_workload.Spec.Zipf_vars 1.2) ~seed ()

  (* crash-only plan — in emergent mode the detector owns the view, so
     crashes are the only scripted input; every other victim recovers
     and must re-enter through the refutation/rejoin path *)
  let plan ~crashes =
    Fault_plan.make
      (List.concat_map
         (fun i ->
           let proc = 1 + i in
           let crash_at = 100. +. (60. *. float_of_int i) in
           Fault_plan.Crash { proc; at = Dsm_sim.Sim_time.of_float crash_at }
           ::
           (if i mod 2 = 1 then
              [
                Fault_plan.Recover
                  {
                    proc;
                    at = Dsm_sim.Sim_time.of_float (crash_at +. 250.);
                  };
              ]
            else []))
         (List.init crashes Fun.id))

  let run_cell ~quick ~threshold ~hb_every ~crashes =
    let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
    let detector = Fd.config ~threshold ~heartbeat_every:hb_every () in
    let t = ref 0
    and f = ref 0
    and refuted = ref 0
    and hbs = ref 0
    and lats = ref []
    and clean = ref true in
    List.iter
      (fun seed ->
        let o =
          CC.run (module Dsm_core.Opt_p) ~spec:(spec ~quick ~seed) ~latency
            ~plan:(plan ~crashes) ~initial:universe ~detector ~seed ()
        in
        List.iter
          (fun (s : CC.suspicion) ->
            if s.CC.strue then incr t else incr f;
            Option.iter (fun l -> lats := l :: !lats) s.CC.slatency)
          o.CC.suspicions;
        refuted := !refuted + o.CC.refutations;
        hbs := !hbs + o.CC.heartbeats_sent;
        clean :=
          !clean && o.CC.clean && o.CC.live_equal
          && o.CC.quarantine_leaks = 0
          && o.CC.report.Dsm_runtime.Checker.unnecessary_delays = 0)
      seeds;
    let mean = function
      | [] -> 0.
      | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
    in
    {
      fthreshold = threshold;
      fhb_every = hb_every;
      fcrashes = crashes;
      fseeds = List.length seeds;
      ftrue = !t;
      ffalse = !f;
      frefuted = !refuted;
      fdetect_mean = mean !lats;
      fdetect_max = List.fold_left Float.max 0. !lats;
      fheartbeats = !hbs;
      fclean = !clean;
    }

  let run ~quick () =
    results := [];
    let table =
      Table_fmt.create
        ~title:
          "F: accrual failure detection - threshold x heartbeat x crash rate"
        ~header:
          [
            "phi thresh"; "hb every"; "crashes"; "true susp"; "false susp";
            "refuted"; "detect mean"; "detect max"; "audit";
          ]
        ()
    in
    Table_fmt.set_align table
      [
        Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
        Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
        Table_fmt.Left;
      ];
    List.iter
      (fun threshold ->
        List.iter
          (fun hb_every ->
            List.iter
              (fun crashes ->
                let c = run_cell ~quick ~threshold ~hb_every ~crashes in
                results := !results @ [ c ];
                Table_fmt.add_row table
                  [
                    Printf.sprintf "%.1f" c.fthreshold;
                    Printf.sprintf "%.0f" c.fhb_every;
                    string_of_int c.fcrashes;
                    string_of_int c.ftrue;
                    string_of_int c.ffalse;
                    string_of_int c.frefuted;
                    Printf.sprintf "%.1f" c.fdetect_mean;
                    Printf.sprintf "%.1f" c.fdetect_max;
                    (if c.fclean then "clean" else "VIOLATIONS");
                  ])
              [ 1; 3 ])
          [ 10.; 25. ])
      [ 1.5; 3.; 5. ];
    print_table table
end

(* ------------------------------------------------------------------ *)
(* Engine throughput: indexed queue, arena, delivery batching          *)
(* ------------------------------------------------------------------ *)

module Engine_bench = struct
  module Engine = Dsm_sim.Engine
  module Sim_time = Dsm_sim.Sim_time
  module Network = Dsm_sim.Network

  type row = {
    equeue : string;
    eevents : int;
    ens_per_event : float;
    eminor_per_event : float;  (** GC minor words per event, steady state *)
    emajor_per_event : float;
  }

  type batch_row = {
    bmode : string;
    bdeliveries : int;
    bsteps : int;
    bns_per_delivery : float;
  }

  type summary = {
    rows : row list;
    m5_indexed_ns : float;
        (** schedule+run 1k events on the indexed queue — directly
            comparable to micro M5 and the CI regression baseline *)
    m5_heap_ns : float;
    bursts : int;
    burst_size : int;
    brows : batch_row list;
  }

  let results : summary option ref = ref None

  let queue_name = function Engine.Indexed -> "indexed" | Engine.Heap -> "heap"

  (* Steady-state workload: [width] self-rescheduling events in flight,
     [events] total firings. The in-flight count never exceeds [width],
     so the queue's capacity is pinned at a small constant and what the
     loop measures is the per-event schedule/pop cycle — the simulator
     hot path — not array growth. A single recursive closure serves
     every slot: the handler itself allocates nothing. *)
  let steady ~queue ~events () =
    let e = Engine.create ~queue () in
    let width = 64 in
    let fired = ref 0 in
    let rec fire () =
      incr fired;
      if !fired + width <= events then Engine.schedule_after e 1.0 fire
    in
    for i = 0 to width - 1 do
      Engine.schedule_at e
        (Sim_time.of_float (float_of_int i /. float_of_int width))
        fire
    done;
    ignore (Engine.run e);
    assert (!fired = events)

  (* Sys.time is coarse: repeat until enough CPU accumulates. GC deltas
     are read around the whole timed region (after one warm-up run) and
     divided by total events, so one-off warm-up allocation is excluded
     and per-rep setup amortizes away. *)
  let measure ~events f =
    f ();
    let reps = ref 0 and elapsed = ref 0. in
    let g0 = Gc.quick_stat () in
    while !elapsed < 0.2 && !reps < 500 do
      let t0 = Sys.time () in
      f ();
      elapsed := !elapsed +. (Sys.time () -. t0);
      incr reps
    done;
    let g1 = Gc.quick_stat () in
    let per = float_of_int (!reps * events) in
    ( !elapsed /. per *. 1e9,
      (g1.Gc.minor_words -. g0.Gc.minor_words) /. per,
      (g1.Gc.major_words -. g0.Gc.major_words) /. per )

  (* the exact M5 shape — schedule 1k events at distinct times, drain —
     for an apples-to-apples number against BENCH_indexed_buffer.json *)
  let m5_like ~queue () =
    let e = Engine.create ~queue () in
    for i = 1 to 1000 do
      Engine.schedule_at e
        (Sim_time.of_float (float_of_int i))
        (fun () -> ())
    done;
    ignore (Engine.run e)

  (* Same-edge bursts under constant latency: every burst lands at one
     delivery instant on one (src,dst) edge, the case batching collapses
     into a single wakeup. Deliveries and their times are identical in
     both modes; only the engine event count differs. *)
  let burst_run ~batch ~bursts ~burst_size () =
    let e = Engine.create () in
    let rng = Dsm_sim.Rng.create 42 in
    let net =
      Network.create ~engine:e ~rng ~n:8
        ~latency:(fun ~src:_ ~dst:_ -> Dsm_sim.Latency.Constant 5.)
        ~batch ()
    in
    let delivered = ref 0 in
    for p = 0 to 7 do
      Network.set_handler net p (fun ~src:_ ~at:_ (_ : int) -> incr delivered)
    done;
    for k = 0 to bursts - 1 do
      let src = k mod 8 in
      let dst = (k + 1) mod 8 in
      Engine.schedule_at e
        (Sim_time.of_float (float_of_int k *. 10.))
        (fun () ->
          for j = 1 to burst_size do
            Network.send net ~src ~dst j
          done)
    done;
    ignore (Engine.run e);
    (!delivered, Engine.steps_executed e)

  let run ~quick () =
    let sweep_events =
      if quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000 ]
    in
    let table =
      Table_fmt.create
        ~title:"E: engine throughput - steady-state schedule/pop cycles"
        ~header:
          [ "queue"; "events"; "ns/event"; "minor w/event"; "major w/event" ]
        ()
    in
    Table_fmt.set_align table
      [
        Table_fmt.Left; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
        Table_fmt.Right;
      ];
    let rows =
      List.concat_map
        (fun queue ->
          List.map
            (fun events ->
              let ns, minor, major =
                measure ~events (steady ~queue ~events)
              in
              let r =
                {
                  equeue = queue_name queue;
                  eevents = events;
                  ens_per_event = ns;
                  eminor_per_event = minor;
                  emajor_per_event = major;
                }
              in
              Table_fmt.add_row table
                [
                  r.equeue;
                  string_of_int events;
                  Printf.sprintf "%.1f" ns;
                  Printf.sprintf "%.2f" minor;
                  Printf.sprintf "%.3f" major;
                ];
              r)
            sweep_events)
        [ Engine.Indexed; Engine.Heap ]
    in
    print_table table;
    let m5_indexed_ns, _, _ =
      measure ~events:1 (m5_like ~queue:Engine.Indexed)
    in
    let m5_heap_ns, _, _ = measure ~events:1 (m5_like ~queue:Engine.Heap) in
    Printf.printf
      "\nM5-equivalent (schedule+run 1k events): indexed %.0f ns, heap %.0f \
       ns (%.1fx)\n"
      m5_indexed_ns m5_heap_ns
      (m5_heap_ns /. m5_indexed_ns);
    (* delivery batching: same-instant same-edge bursts *)
    let bursts = if quick then 32 else 256 in
    let burst_size = 32 in
    let btable =
      Table_fmt.create
        ~title:
          (Printf.sprintf
             "E2: delivery batching - %d bursts of %d same-instant sends \
              per edge"
             bursts burst_size)
        ~header:[ "mode"; "deliveries"; "engine steps"; "ns/delivery" ]
        ()
    in
    Table_fmt.set_align btable
      [ Table_fmt.Left; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right ];
    let brows =
      List.map
        (fun (bmode, batch) ->
          let d0, s0 = burst_run ~batch ~bursts ~burst_size () in
          let ns, _, _ =
            measure ~events:d0 (fun () ->
                let d, s = burst_run ~batch ~bursts ~burst_size () in
                if d <> d0 || s <> s0 then
                  failwith "Engine_bench: burst run not deterministic")
          in
          let r =
            {
              bmode;
              bdeliveries = d0;
              bsteps = s0;
              bns_per_delivery = ns;
            }
          in
          Table_fmt.add_row btable
            [
              bmode;
              string_of_int d0;
              string_of_int s0;
              Printf.sprintf "%.1f" ns;
            ];
          r)
        [ ("unbatched", false); ("batched", true) ]
    in
    (match brows with
    | [ u; b ] ->
        if u.bdeliveries <> b.bdeliveries then
          failwith "Engine_bench: batched and unbatched deliveries disagree"
    | _ -> assert false);
    print_newline ();
    print_table btable;
    results :=
      Some { rows; m5_indexed_ns; m5_heap_ns; bursts; burst_size; brows }
end

module Nemesis_bench = struct
  module N = Dsm_runtime.Nemesis

  type summary = {
    xscenarios : int;
    xscenario_ok : int;
    xswarm_total : int;
    xswarm_accepted : int;
    xcounts : (string * int) list;  (** verdict tally, fixed order *)
    xsched_per_sec : float;
    xcanary_total : int;
    xcanary_caught : int;
    xshrinks : (string * int * int * int) list;
        (** (schedule, events before, events after, campaign runs) *)
  }

  let results : summary option ref = ref None

  let run ~quick () =
    (* scenario corpus: every named schedule on its expected verdict *)
    let ok = ref 0 in
    List.iter
      (fun (sc : N.scenario) ->
        let r = N.run sc.sched_ in
        let good = List.mem r.verdict sc.expected in
        if good then incr ok;
        Printf.printf "  %-22s %-18s %s\n%!" sc.sched_.N.name
          (N.verdict_name r.verdict)
          (if good then "ok" else "UNEXPECTED"))
      N.scenarios;
    (* swarm throughput + verdict table *)
    let count = if quick then 64 else 1000 in
    let t0 = Sys.time () in
    let rep = N.swarm ~seed:1 ~count () in
    let wall = Sys.time () -. t0 in
    let rate = float_of_int rep.N.total /. Float.max wall 1e-9 in
    Printf.printf "  swarm: %d schedules, %d accepted, %.0f schedules/sec\n%!"
      rep.N.total rep.N.accepted_count rate;
    List.iter
      (fun (v, k) ->
        if k > 0 then Printf.printf "    %-18s %d\n%!" (N.verdict_name v) k)
      rep.N.counts;
    (* the canary self-test: the swarm must catch the buggy protocol,
       and the shrinker must cut its reproducers down *)
    let canary_count = if quick then 4 else 16 in
    let crep = N.swarm ~protocol:"canary" ~seed:42 ~count:canary_count () in
    let caught = crep.N.total - crep.N.accepted_count in
    Printf.printf "  canary: %d/%d schedules caught\n%!" caught crep.N.total;
    let shrinks =
      crep.N.failures
      |> List.filteri (fun i _ -> i < if quick then 2 else 4)
      |> List.map (fun (r : N.result) ->
             let sh = N.shrink r.sched ~target:r.verdict in
             Printf.printf "  shrink %s: %d -> %d events in %d runs\n%!"
               sh.N.minimal.N.name sh.N.events_before sh.N.events_after
               sh.N.attempts;
             ( sh.N.minimal.N.name,
               sh.N.events_before,
               sh.N.events_after,
               sh.N.attempts ))
    in
    results :=
      Some
        {
          xscenarios = List.length N.scenarios;
          xscenario_ok = !ok;
          xswarm_total = rep.N.total;
          xswarm_accepted = rep.N.accepted_count;
          xcounts =
            List.map (fun (v, k) -> (N.verdict_name v, k)) rep.N.counts;
          xsched_per_sec = rate;
          xcanary_total = crep.N.total;
          xcanary_caught = caught;
          xshrinks = shrinks;
        }
end

(* ------------------------------------------------------------------ *)
(* K: endurance soak — slot reuse and retired-state reclamation        *)
(* ------------------------------------------------------------------ *)

module Soak_bench = struct
  module Soak = Dsm_runtime.Soak

  let results : Soak.outcome option ref = ref None

  (* The endurance claim: thousands of occupant lifetimes over a fixed
     6-slot universe, with per-replica metadata and wire vector width
     bounded by live membership rather than by the run's length. Quick
     mode shortens the run; the bounds being checked are identical. *)
  let run ~quick () =
    let cfg =
      { Soak.default with Soak.epochs = (if quick then 500 else 10_000) }
    in
    let o = Soak.run (module Dsm_core.Opt_p) cfg in
    results := Some o;
    Format.printf "%a@." Soak.pp_outcome o;
    Format.printf "high-water:@.";
    List.iter
      (fun (name, v) -> Format.printf "  %-28s %d@." name v)
      (Soak.high_water_table o);
    if not o.Soak.clean then failwith "soak verdict not clean"
end

(* ------------------------------------------------------------------ *)
(* G: session tier — friend-or-foe across placement policies           *)
(* ------------------------------------------------------------------ *)

module Session_bench = struct
  module ST = Dsm_runtime.Session_tier
  module CC = Dsm_runtime.Churn_campaign
  module Fd = Dsm_runtime.Failure_detector

  (* The friend-or-foe tension (Didona et al.): session guarantees
     couple a client's reads to its own causal frontier, so the same
     mechanism that keeps reads fresh (route anywhere, gate on the
     session vector) charges the client in blocked rejections and
     retries when the serving replica lags. One failover schedule —
     the home partitioned away mid-run — measured per placement
     policy, against the replica-side Theorem-4 accounting (which
     must stay at zero unnecessary delays regardless of policy). *)

  type cell = {
    gplacement : string;
    gseeds : int;
    gops : int;  (** acked ops across seeds *)
    gmigrations : int;
    gretries : int;
    gblocked : int;
    gunavailable : int;
    gdedup : int;
    gdegraded : int;
    gviolations : int;
    gdup_writes : int;
    gwrite_mean : float;
    gwrite_p50 : float;
    gwrite_p95 : float;
    gwrite_p99 : float;
    gread_mean : float;
    gread_p50 : float;
    gread_p95 : float;
    gread_p99 : float;
    gunnecessary : int;  (** replica-side, Theorem-4 accounting *)
    gclean : bool;
  }

  let results : cell list ref = ref []
  let universe = 5
  let seeds = [ 11; 12; 13 ]

  let failover_plan =
    Dsm_sim.Fault_plan.make
      [
        Dsm_sim.Fault_plan.Cut
          {
            groups = [ [ 0 ]; [ 1; 2; 3; 4 ] ];
            at = Dsm_sim.Sim_time.of_float 40.;
          };
        Dsm_sim.Fault_plan.Heal { at = Dsm_sim.Sim_time.of_float 400. };
      ]

  let run_policy placement =
    let acc = ref [] in
    List.iter
      (fun seed ->
        let spec =
          Dsm_workload.Spec.make ~n:universe ~m:3 ~ops_per_process:20
            ~write_ratio:0.5 ~seed ()
        in
        let sessions =
          {
            (ST.default_config ~count:16) with
            ST.placement;
            ops_per_session = 24;
            think_mean = 4.;
            write_ratio = 0.5;
            seed;
          }
        in
        let o =
          CC.run
            (module Dsm_core.Opt_p)
            ~spec
            ~latency:(Dsm_sim.Latency.Exponential { mean = 8. })
            ~plan:failover_plan ~initial:universe
            ~detector:(Fd.config ~threshold:1.2 ~heartbeat_every:8. ())
            ~mixed:true ~sessions ~seed ()
        in
        acc := o :: !acc)
      seeds;
    let outcomes = List.rev !acc in
    let reports =
      List.filter_map (fun (o : CC.outcome) -> o.CC.sessions) outcomes
    in
    let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
    let cat f = List.concat_map f reports in
    let writes = cat (fun r -> r.ST.write_latencies) in
    let reads = cat (fun r -> r.ST.read_latencies) in
    {
      gplacement = ST.placement_to_string placement;
      gseeds = List.length seeds;
      gops = sum (fun r -> r.ST.ops_done);
      gmigrations = sum (fun r -> List.length r.ST.migrations);
      gretries = sum (fun r -> r.ST.retries);
      gblocked = sum (fun r -> r.ST.blocked_rejections);
      gunavailable = sum (fun r -> r.ST.unavailable_rejections);
      gdedup = sum (fun r -> r.ST.dedup_hits);
      gdegraded = sum (fun r -> List.length r.ST.degraded);
      gviolations = sum (fun r -> List.length r.ST.violations);
      gdup_writes = sum (fun r -> r.ST.duplicate_writes);
      gwrite_mean = ST.mean writes;
      gwrite_p50 = ST.percentile writes 0.5;
      gwrite_p95 = ST.percentile writes 0.95;
      gwrite_p99 = ST.percentile writes 0.99;
      gread_mean = ST.mean reads;
      gread_p50 = ST.percentile reads 0.5;
      gread_p95 = ST.percentile reads 0.95;
      gread_p99 = ST.percentile reads 0.99;
      gunnecessary =
        List.fold_left
          (fun a (o : CC.outcome) ->
            a + o.CC.report.Dsm_runtime.Checker.unnecessary_delays)
          0 outcomes;
      gclean =
        List.for_all
          (fun (o : CC.outcome) ->
            o.CC.clean && o.CC.live_equal
            && match o.CC.sessions with
               | Some r -> ST.clean r
               | None -> false)
          outcomes;
    }

  (* deliberately identical in quick and full mode: the campaigns are
     millisecond-scale and the checked-in baseline must reproduce
     byte-for-byte under CI's --stress-quick *)
  let run ~quick:_ () =
    results :=
      List.map run_policy [ ST.Sticky; ST.Random; ST.Nearest ];
    Printf.printf
      "  %-8s %5s %5s %6s %4s %7s %5s %8s %8s %8s %8s %6s\n" "policy"
      "ops" "migr" "retry" "blk" "unavail" "degr" "w_mean" "w_p95"
      "r_mean" "r_p95" "unnec";
    List.iter
      (fun c ->
        Printf.printf
          "  %-8s %5d %5d %6d %4d %7d %5d %8.1f %8.1f %8.1f %8.1f %6d%s\n"
          c.gplacement c.gops c.gmigrations c.gretries c.gblocked
          c.gunavailable c.gdegraded c.gwrite_mean c.gwrite_p95
          c.gread_mean c.gread_p95 c.gunnecessary
          (if c.gclean then "" else "  DIRTY"))
      !results;
    if List.exists (fun c -> not c.gclean) !results then
      failwith "session bench: a policy run was not clean"
end

(* results captured for --json; filled by the section bodies *)
let stress_quick = ref false
let stress_result : Stress.result option ref = ref None
let micro_rows : (string * float option * float option) list ref = ref []

let sections =
  [
    ("T1", "Table 1: X_co-safe over H1", t1);
    ("T2", "Table 2: X_ANBKH over the Figure 3 run", t2);
    ("F1", "Figure 1: two admissible runs at p3", f1);
    ("F2", "Figure 2: a non-optimal safe protocol", f2);
    ("F3", "Figure 3: ANBKH and false causality", f3);
    ("F6", "Figure 6: the OptP run", f6);
    ("F7", "Figure 7: write causality graph of H1", f7);
    ("Q1", "delays vs number of processes", q1);
    ("Q2", "false causality vs latency variance", q2);
    ("Q3", "delays vs write ratio", q3);
    ("Q4", "buffer occupancy", q4);
    ("Q5", "apply latency", q5);
    ("Q6", "writing-semantics skips", q6);
    ("Q7", "ablation: FIFO channels", q7);
    ("Q8", "lossy links + reliable channels", q8);
    ("Q9", "replica divergence at quiescence", q9);
    ("Q10", "metadata: vectors vs direct dependencies", q10);
    ("Q11", "partial replication", q11);
    ("Q12", "crash-recovery campaigns", q12);
    ("R", "crash-recovery acceptance campaign", Recovery.run);
    ( "S",
      "buffer stress: indexed wakeups vs scanning drain",
      fun () -> stress_result := Some (Stress.run ~quick:!stress_quick ()) );
    ( "O",
      "observability: probe overhead, null sink vs full tracing",
      fun () -> Obs.run ~quick:!stress_quick () );
    ( "W",
      "wire cost: dense causal metadata vs the delta counterfactual",
      fun () -> Wire_bench.run ~quick:!stress_quick () );
    ( "C",
      "churn storm: 8 -> 16 -> 8 replicas under a Zipf workload",
      fun () -> Churn.run ~quick:!stress_quick () );
    ( "F",
      "failure detection: threshold x heartbeat x crash-rate sweep",
      fun () -> Fd_bench.run ~quick:!stress_quick () );
    ( "E",
      "engine throughput: indexed queue, arena, delivery batching",
      fun () -> Engine_bench.run ~quick:!stress_quick () );
    ( "X",
      "nemesis: scenario corpus, fault swarm, canary shrink",
      fun () -> Nemesis_bench.run ~quick:!stress_quick () );
    ( "K",
      "endurance soak: slot reuse + reclamation under churn",
      fun () -> Soak_bench.run ~quick:!stress_quick () );
    ( "G",
      "session tier: friend-or-foe latency across placement policies",
      fun () -> Session_bench.run ~quick:!stress_quick () );
  ]

(* per-section GC pressure for --json: (name, minor words, major words)
   allocated while the section body ran *)
let section_gc : (string * float * float) list ref = ref []

let run_section name title body =
  let g0 = Gc.quick_stat () in
  section name title body;
  let g1 = Gc.quick_stat () in
  section_gc :=
    !section_gc
    @ [
        ( name,
          g1.Gc.minor_words -. g0.Gc.minor_words,
          g1.Gc.major_words -. g0.Gc.major_words );
      ]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json file =
  let buf = Buffer.create 1024 in
  let fopt = function
    | Some v -> Printf.sprintf "%.4f" v
    | None -> "null"
  in
  Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
  Buffer.add_string buf "  \"micro\": [";
  List.iteri
    (fun i (name, t, r2) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s }"
           (json_escape name) (fopt t) (fopt r2)))
    !micro_rows;
  Buffer.add_string buf (if !micro_rows = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"sections\": [";
  List.iteri
    (fun i (name, minor, major) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"gc_minor_words\": %.0f, \
            \"gc_major_words\": %.0f }"
           (json_escape name) minor major))
    !section_gc;
  Buffer.add_string buf (if !section_gc = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"stress\": ";
  (match !stress_result with
  | None -> Buffer.add_string buf "null"
  | Some s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\n\
           \    \"n\": %d,\n\
           \    \"senders\": %d,\n\
           \    \"writes_per_sender\": %d,\n\
           \    \"messages\": %d,\n\
           \    \"scan_ms\": %.4f,\n\
           \    \"indexed_ms\": %.4f,\n\
           \    \"speedup\": %.2f\n\
           \  }"
           s.Stress.sn s.Stress.senders s.Stress.writes_per_sender
           s.Stress.messages s.Stress.scan_ms s.Stress.indexed_ms
           s.Stress.speedup));
  Buffer.add_string buf "\n}\n";
  match open_out file with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nwrote %s\n" file
  | exception Sys_error e ->
      Printf.eprintf "--json: cannot write %s (%s)\n" file e;
      exit 1

let write_recovery_json file =
  let module FC = Dsm_runtime.Fault_campaign in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
  Buffer.add_string buf "  \"section\": \"crash_recovery\",\n";
  Buffer.add_string buf
    "  \"plan\": { \"n\": 8, \"ops_per_process\": 60, \"crashes\": 2,\n\
    \            \"partition\": { \"cut_at\": 300.0, \"heal_at\": 800.0, \
     \"span\": 500.0 } },\n";
  Buffer.add_string buf "  \"campaigns\": [";
  List.iteri
    (fun i (name, (o : FC.outcome), wall) ->
      if i > 0 then Buffer.add_char buf ',';
      let lats = List.filter_map FC.recovery_latency o.FC.recoveries in
      let mean l =
        match l with
        | [] -> 0.
        | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
      in
      let fmax = List.fold_left Float.max 0. in
      Buffer.add_string buf
        (Printf.sprintf "\n    { \"protocol\": \"%s\",\n" (json_escape name));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"clean\": %b, \"live_equal\": %b,\n"
           o.FC.clean o.FC.live_equal);
      Buffer.add_string buf "      \"recoveries\": [";
      List.iteri
        (fun j (r : FC.recovery) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n        { \"proc\": %d, \"crashed_at\": %.1f, \
                \"recovered_at\": %.1f,\n\
               \          \"caught_up_at\": %s, \"latency\": %s,\n\
               \          \"rolled_back_events\": %d, \"replayed\": %d }"
               r.FC.rproc r.FC.crashed_at r.FC.recovered_at
               (match r.FC.caught_up_at with
               | Some t -> Printf.sprintf "%.1f" t
               | None -> "null")
               (match FC.recovery_latency r with
               | Some l -> Printf.sprintf "%.1f" l
               | None -> "null")
               r.FC.rolled_back_events r.FC.replayed))
        o.FC.recoveries;
      Buffer.add_string buf "\n      ],\n";
      Buffer.add_string buf
        (Printf.sprintf
           "      \"recovery_latency_mean\": %.1f, \
            \"recovery_latency_max\": %.1f,\n"
           (mean lats) (fmax lats));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"catch_up\": { \"replayed_writes\": %d, \
            \"sync_requests\": %d, \"sync_replies\": %d,\n\
           \                    \"stale_deliveries_dropped\": %d, \
            \"aborted_payloads\": %d },\n"
           o.FC.replayed_writes o.FC.sync_requests o.FC.sync_replies
           o.FC.stale_deliveries_dropped o.FC.aborted_payloads);
      Buffer.add_string buf
        (Printf.sprintf
           "      \"durability\": { \"commits\": %d, \"snapshot_bytes\": \
            %d, \"rolled_back_events\": %d },\n"
           o.FC.commits o.FC.snapshot_bytes o.FC.rolled_back_events);
      Buffer.add_string buf
        (Printf.sprintf
           "      \"wire\": { \"payloads_sent\": %d, \"frames_sent\": %d, \
            \"retransmissions\": %d,\n\
           \                \"frames_partition_dropped\": %d, \
            \"frames_crash_dropped\": %d,\n\
           \                \"frames_per_payload\": %.3f },\n"
           o.FC.payloads_sent o.FC.frames_sent o.FC.retransmissions
           o.FC.frames_partition_dropped o.FC.frames_crash_dropped
           (if o.FC.payloads_sent = 0 then 0.
            else
              float_of_int o.FC.frames_sent /. float_of_int o.FC.payloads_sent));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"engine_steps\": %d, \"sim_end_time\": %.1f, \
            \"wall_seconds\": %.3f }"
           o.FC.engine_steps o.FC.end_time wall))
    !Recovery.results;
  Buffer.add_string buf
    (if !Recovery.results = [] then "]\n}\n" else "\n  ]\n}\n");
  match open_out file with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nwrote %s\n" file
  | exception Sys_error e ->
      Printf.eprintf "--recovery-json: cannot write %s (%s)\n" file e;
      exit 1

let write_obs_json file =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
  Buffer.add_string buf "  \"section\": \"observability\",\n";
  Buffer.add_string buf
    "  \"workload\": { \"protocol\": \"OptP\", \"m\": 8, \
     \"write_ratio\": 0.5, \"latency\": \"exp(mean=10)\" },\n";
  Buffer.add_string buf "  \"overhead\": [";
  List.iteri
    (fun i (r : Obs.result) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"n\": %d, \"messages\": %d, \"instruments\": %d,\n\
           \      \"null_ms_per_run\": %.4f, \"full_ms_per_run\": %.4f, \
            \"overhead_pct\": %.2f,\n\
           \      \"trace_ms_per_run\": %.4f }"
           r.Obs.on r.Obs.omessages r.Obs.instruments r.Obs.null_ms
           r.Obs.full_ms r.Obs.overhead_pct r.Obs.trace_ms))
    !Obs.results;
  Buffer.add_string buf (if !Obs.results = [] then "]\n}\n" else "\n  ]\n}\n");
  match open_out file with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nwrote %s\n" file
  | exception Sys_error e ->
      Printf.eprintf "--obs-json: cannot write %s (%s)\n" file e;
      exit 1

let write_wire_json file =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
  Buffer.add_string buf "  \"section\": \"wire_cost\",\n";
  Buffer.add_string buf
    "  \"workload\": { \"protocol\": \"OptP\", \"m\": 8, \
     \"write_ratio\": 0.5, \"vars\": \"zipf(1.2)\", \"latency\": \
     \"exp(mean=10)\" },\n";
  Buffer.add_string buf "  \"results\": [";
  List.iteri
    (fun i (r : Wire_bench.result) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"n\": %d, \"frames\": %d, \"total_bytes\": %d, \
            \"header_bytes\": %d,\n\
           \      \"payload_bytes\": %d, \"meta_bytes\": %d, \
            \"delta_meta_bytes\": %d,\n\
           \      \"meta_bytes_per_msg\": %.2f, \
            \"delta_bytes_per_msg\": %.2f }"
           r.Wire_bench.wn r.Wire_bench.wframes r.Wire_bench.wtotal_bytes
           r.Wire_bench.wheader r.Wire_bench.wpayload r.Wire_bench.wmeta
           r.Wire_bench.wdelta_meta r.Wire_bench.wmeta_per_msg
           r.Wire_bench.wdelta_per_msg))
    !Wire_bench.results;
  Buffer.add_string buf
    (if !Wire_bench.results = [] then "]\n}\n" else "\n  ]\n}\n");
  match open_out file with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nwrote %s\n" file
  | exception Sys_error e ->
      Printf.eprintf "--wire-json: cannot write %s (%s)\n" file e;
      exit 1

let write_churn_json file =
  let module CC = Dsm_runtime.Churn_campaign in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
  Buffer.add_string buf "  \"section\": \"churn_storm\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"plan\": { \"universe\": %d, \"initial\": %d, \"joins\": %d, \
        \"leaves\": %d,\n\
       \            \"workload\": \"zipf(1.2) over 8 vars\" },\n"
       Churn.universe Churn.initial
       (Churn.universe - Churn.initial)
       (Churn.universe - Churn.initial));
  Buffer.add_string buf "  \"campaigns\": [";
  List.iteri
    (fun i (r : Churn.result) ->
      if i > 0 then Buffer.add_char buf ',';
      let o = r.Churn.outcome in
      let lats = List.filter_map CC.catch_up_latency o.CC.catch_ups in
      let mean = function
        | [] -> 0.
        | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
      in
      Buffer.add_string buf
        (Printf.sprintf "\n    { \"protocol\": \"%s\",\n"
           (json_escape r.Churn.cprotocol));
      Buffer.add_string buf
        (Printf.sprintf "      \"clean\": %b, \"live_equal\": %b,\n"
           o.CC.clean o.CC.live_equal);
      Buffer.add_string buf
        (Printf.sprintf
           "      \"membership\": { \"final_epoch\": %d, \"joins\": %d, \
            \"rejoins\": %d, \"leaves\": %d },\n"
           o.CC.final_epoch o.CC.joins o.CC.rejoins o.CC.leaves);
      Buffer.add_string buf "      \"catch_ups\": [";
      List.iteri
        (fun j (c : CC.catch_up) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n        { \"proc\": %d, \"started_at\": %.1f, \
                \"latency\": %s,\n\
               \          \"transfer_bytes\": %d, \"replayed\": %d }"
               c.CC.cproc c.CC.started_at
               (match CC.catch_up_latency c with
               | Some l -> Printf.sprintf "%.1f" l
               | None -> "null")
               c.CC.transfer_bytes c.CC.replayed))
        o.CC.catch_ups;
      Buffer.add_string buf "\n      ],\n";
      Buffer.add_string buf
        (Printf.sprintf
           "      \"join_to_converged\": { \"mean\": %.1f, \"max\": %.1f },\n"
           (mean lats)
           (List.fold_left Float.max 0. lats));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"quarantine\": { \"chan_stale_quarantined\": %d, \
            \"net_stale_dropped\": %d,\n\
           \                      \"net_nonmember_dropped\": %d, \
            \"quarantine_leaks\": %d },\n"
           o.CC.chan_stale_quarantined o.CC.net_stale_dropped
           o.CC.net_nonmember_dropped o.CC.quarantine_leaks);
      Buffer.add_string buf
        (Printf.sprintf
           "      \"wire\": { \"payloads_sent\": %d, \"frames_sent\": %d, \
            \"retransmissions\": %d,\n\
           \                \"transfer_bytes\": %d,\n\
           \                \"static_payloads\": %d, \"static_frames\": %d,\n\
           \                \"message_amplification\": %.3f },\n"
           o.CC.payloads_sent o.CC.frames_sent o.CC.retransmissions
           o.CC.transfer_bytes r.Churn.static_payloads r.Churn.static_frames
           (Churn.amplification r));
      Buffer.add_string buf
        (Printf.sprintf
           "      \"audit\": { \"violations\": %d, \"necessary_delays\": \
            %d, \"unnecessary_delays\": %d },\n"
           (List.length o.CC.report.Dsm_runtime.Checker.violations)
           o.CC.report.Dsm_runtime.Checker.necessary_delays
           o.CC.report.Dsm_runtime.Checker.unnecessary_delays);
      Buffer.add_string buf
        (Printf.sprintf
           "      \"engine_steps\": %d, \"sim_end_time\": %.1f, \
            \"wall_seconds\": %.3f }"
           o.CC.engine_steps o.CC.end_time r.Churn.wall))
    !Churn.results;
  Buffer.add_string buf
    (if !Churn.results = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"join_grid\": [";
  List.iteri
    (fun i (c : Churn.grid_cell) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"join_spacing\": %.1f, \"ops_per_process\": %d, \
            \"joins\": %d, \"converged\": %d,\n\
           \      \"join_to_converged_mean\": %.1f, \
            \"join_to_converged_max\": %.1f, \"clean\": %b }"
           c.Churn.spacing c.Churn.gops c.Churn.gjoins c.Churn.gconverged
           c.Churn.gmean c.Churn.gmax c.Churn.gclean))
    !Churn.grid_results;
  Buffer.add_string buf
    (if !Churn.grid_results = [] then "]\n}\n" else "\n  ]\n}\n");
  match open_out file with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nwrote %s\n" file
  | exception Sys_error e ->
      Printf.eprintf "--churn-json: cannot write %s (%s)\n" file e;
      exit 1

let write_fd_json file =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
  Buffer.add_string buf "  \"section\": \"failure_detector\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"plan\": { \"universe\": %d, \"mode\": \"emergent\", \
        \"protocol\": \"OptP\",\n\
       \            \"workload\": \"zipf(1.2) over 8 vars\" },\n"
       Fd_bench.universe);
  Buffer.add_string buf "  \"sweep\": [";
  List.iteri
    (fun i (c : Fd_bench.cell) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"threshold\": %.1f, \"heartbeat_every\": %.1f, \
            \"crashes\": %d, \"seeds\": %d,\n\
           \      \"true_suspicions\": %d, \"false_suspicions\": %d, \
            \"refutations\": %d,\n\
           \      \"detection_latency_mean\": %.1f, \
            \"detection_latency_max\": %.1f,\n\
           \      \"heartbeats_sent\": %d, \"clean\": %b }"
           c.Fd_bench.fthreshold c.Fd_bench.fhb_every c.Fd_bench.fcrashes
           c.Fd_bench.fseeds c.Fd_bench.ftrue c.Fd_bench.ffalse
           c.Fd_bench.frefuted c.Fd_bench.fdetect_mean c.Fd_bench.fdetect_max
           c.Fd_bench.fheartbeats c.Fd_bench.fclean))
    !Fd_bench.results;
  Buffer.add_string buf
    (if !Fd_bench.results = [] then "]\n}\n" else "\n  ]\n}\n");
  match open_out file with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nwrote %s\n" file
  | exception Sys_error e ->
      Printf.eprintf "--fd-json: cannot write %s (%s)\n" file e;
      exit 1

let write_engine_json file =
  let module E = Engine_bench in
  match !E.results with
  | None -> ()
  | Some s ->
      let buf = Buffer.create 2048 in
      Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
      Buffer.add_string buf "  \"section\": \"engine_throughput\",\n";
      Buffer.add_string buf "  \"sweep\": [";
      List.iteri
        (fun i (r : E.row) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n    { \"queue\": \"%s\", \"events\": %d, \
                \"ns_per_event\": %.2f,\n\
               \      \"gc_minor_words_per_event\": %.3f, \
                \"gc_major_words_per_event\": %.4f }"
               (json_escape r.E.equeue) r.E.eevents r.E.ens_per_event
               r.E.eminor_per_event r.E.emajor_per_event))
        s.E.rows;
      Buffer.add_string buf (if s.E.rows = [] then "],\n" else "\n  ],\n");
      Buffer.add_string buf
        (Printf.sprintf "  \"m5_equiv_ns_per_1k_events\": %.1f,\n"
           s.E.m5_indexed_ns);
      Buffer.add_string buf
        (Printf.sprintf "  \"m5_equiv_heap_ns_per_1k_events\": %.1f,\n"
           s.E.m5_heap_ns);
      Buffer.add_string buf
        (Printf.sprintf
           "  \"batching\": { \"bursts\": %d, \"burst_size\": %d,\n\
           \    \"modes\": ["
           s.E.bursts s.E.burst_size);
      List.iteri
        (fun i (r : E.batch_row) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n      { \"mode\": \"%s\", \"deliveries\": %d, \
                \"engine_steps\": %d, \"ns_per_delivery\": %.2f }"
               (json_escape r.E.bmode) r.E.bdeliveries r.E.bsteps
               r.E.bns_per_delivery))
        s.E.brows;
      Buffer.add_string buf "\n    ],\n";
      (match s.E.brows with
      | [ u; b ] ->
          Buffer.add_string buf
            (Printf.sprintf "    \"step_reduction\": %.2f\n"
               (float_of_int u.E.bsteps /. float_of_int b.E.bsteps))
      | _ -> Buffer.add_string buf "    \"step_reduction\": null\n");
      Buffer.add_string buf "  }\n}\n";
      (match open_out file with
      | oc ->
          output_string oc (Buffer.contents buf);
          close_out oc;
          Printf.printf "\nwrote %s\n" file
      | exception Sys_error e ->
          Printf.eprintf "--engine-json: cannot write %s (%s)\n" file e;
          exit 1)

let write_nemesis_json file =
  match !Nemesis_bench.results with
  | None -> ()
  | Some s ->
      let module X = Nemesis_bench in
      let buf = Buffer.create 2048 in
      Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
      Buffer.add_string buf "  \"section\": \"nemesis\",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  \"scenarios\": { \"total\": %d, \"on_expected_verdict\": %d },\n"
           s.X.xscenarios s.X.xscenario_ok);
      Buffer.add_string buf
        (Printf.sprintf
           "  \"swarm\": { \"schedules\": %d, \"accepted\": %d, \
            \"schedules_per_sec\": %.1f,\n\
           \             \"verdicts\": {"
           s.X.xswarm_total s.X.xswarm_accepted s.X.xsched_per_sec);
      List.iteri
        (fun i (name, k) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "\"%s\": %d" name k))
        s.X.xcounts;
      Buffer.add_string buf " } },\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  \"canary\": { \"schedules\": %d, \"caught\": %d },\n"
           s.X.xcanary_total s.X.xcanary_caught);
      Buffer.add_string buf "  \"shrinks\": [";
      List.iteri
        (fun i (name, before, after, attempts) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n    { \"schedule\": \"%s\", \"events_before\": %d, \
                \"events_after\": %d, \"campaign_runs\": %d }"
               (json_escape name) before after attempts))
        s.X.xshrinks;
      Buffer.add_string buf
        (if s.X.xshrinks = [] then "]\n}\n" else "\n  ]\n}\n");
      (match open_out file with
      | oc ->
          output_string oc (Buffer.contents buf);
          close_out oc;
          Printf.printf "\nwrote %s\n" file
      | exception Sys_error e ->
          Printf.eprintf "--nemesis-json: cannot write %s (%s)\n" file e;
          exit 1)

let write_soak_json file =
  match !Soak_bench.results with
  | None -> ()
  | Some o -> (
      match open_out file with
      | oc ->
          output_string oc
            (Dsm_stats.Json.to_string (Dsm_runtime.Soak.to_json o) ^ "\n");
          close_out oc;
          Printf.printf "\nwrote %s\n" file
      | exception Sys_error e ->
          Printf.eprintf "--soak-json: cannot write %s (%s)\n" file e;
          exit 1)

let write_session_json file =
  let module G = Session_bench in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"causal-dsm-bench/v1\",\n";
  Buffer.add_string buf "  \"section\": \"session_tier\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"plan\": { \"universe\": %d, \"sessions\": 16, \
        \"ops_per_session\": 24,\n\
       \            \"schedule\": \"partition home slot 0 @40, heal \
        @400, phi detector armed\" },\n"
       G.universe);
  Buffer.add_string buf "  \"policies\": [";
  List.iteri
    (fun i (c : G.cell) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"placement\": \"%s\", \"seeds\": %d, \"ops\": %d,\n\
           \      \"migrations\": %d, \"retries\": %d, \
            \"blocked_rejections\": %d, \"unavailable_rejections\": %d,\n\
           \      \"dedup_hits\": %d, \"degraded\": %d, \"violations\": \
            %d, \"duplicate_writes\": %d,\n\
           \      \"write_latency\": { \"mean\": %.2f, \"p50\": %.2f, \
            \"p95\": %.2f, \"p99\": %.2f },\n\
           \      \"read_latency\": { \"mean\": %.2f, \"p50\": %.2f, \
            \"p95\": %.2f, \"p99\": %.2f },\n\
           \      \"unnecessary_delays\": %d, \"clean\": %b }"
           (json_escape c.G.gplacement) c.G.gseeds c.G.gops c.G.gmigrations
           c.G.gretries c.G.gblocked c.G.gunavailable c.G.gdedup
           c.G.gdegraded c.G.gviolations c.G.gdup_writes c.G.gwrite_mean
           c.G.gwrite_p50 c.G.gwrite_p95 c.G.gwrite_p99 c.G.gread_mean
           c.G.gread_p50 c.G.gread_p95 c.G.gread_p99 c.G.gunnecessary
           c.G.gclean))
    !Session_bench.results;
  Buffer.add_string buf
    (if !Session_bench.results = [] then "]\n}\n" else "\n  ]\n}\n");
  match open_out file with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "\nwrote %s\n" file
  | exception Sys_error e ->
      Printf.eprintf "--session-json: cannot write %s (%s)\n" file e;
      exit 1

(* [--opt=v] or [--opt v] *)
let keyed_arg key args =
  let eq = key ^ "=" in
  let len = String.length eq in
  let with_eq =
    List.find_map
      (fun a ->
        if String.length a > len && String.sub a 0 len = eq then
          Some (String.sub a len (String.length a - len))
        else None)
      args
  in
  match with_eq with
  | Some _ as o -> o
  | None ->
      let rec find = function
        | k :: v :: _ when k = key -> Some v
        | _ :: rest -> find rest
        | [] -> None
      in
      find args

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  stress_quick := List.mem "--stress-quick" args;
  let json_path = keyed_arg "--json" args in
  let only =
    Option.map (String.split_on_char ',') (keyed_arg "--only" args)
  in
  let wanted name =
    match only with None -> true | Some names -> List.mem name names
  in
  List.iter
    (fun (name, title, body) ->
      if wanted name then run_section name title body)
    sections;
  if (not no_micro) && wanted "M" then
    run_section "M" "Bechamel micro-benchmarks" (fun () ->
        micro_rows := Micro.run ());
  if !Recovery.results <> [] then
    write_recovery_json
      (Option.value ~default:"BENCH_crash_recovery.json"
         (keyed_arg "--recovery-json" args));
  if !Obs.results <> [] then
    write_obs_json
      (Option.value ~default:"BENCH_observability.json"
         (keyed_arg "--obs-json" args));
  if !Wire_bench.results <> [] then
    write_wire_json
      (Option.value ~default:"BENCH_wire.json"
         (keyed_arg "--wire-json" args));
  if !Churn.results <> [] then
    write_churn_json
      (Option.value ~default:"BENCH_churn.json"
         (keyed_arg "--churn-json" args));
  if !Fd_bench.results <> [] then
    write_fd_json
      (Option.value ~default:"BENCH_failure_detector.json"
         (keyed_arg "--fd-json" args));
  if !Engine_bench.results <> None then
    write_engine_json
      (Option.value ~default:"BENCH_engine_throughput.json"
         (keyed_arg "--engine-json" args));
  if !Nemesis_bench.results <> None then
    write_nemesis_json
      (Option.value ~default:"BENCH_nemesis.json"
         (keyed_arg "--nemesis-json" args));
  if !Soak_bench.results <> None then
    write_soak_json
      (Option.value ~default:"BENCH_soak.json" (keyed_arg "--soak-json" args));
  if !Session_bench.results <> [] then
    write_session_json
      (Option.value ~default:"BENCH_session_tier.json"
         (keyed_arg "--session-json" args));
  Option.iter write_json json_path
