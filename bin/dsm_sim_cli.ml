(* dsm-sim — command-line driver for the causal-DSM simulator.

   Subcommands:
     run      simulate a workload under one protocol and audit the run
     report   run with the full observability stack and emit one report
     explain  run, then print the provenance of every write delay
     nemesis  adversarial combined-fault campaigns, swarm + shrinker
     plan     validate a fault plan and show which driver runs it
     tables   regenerate the paper's tables and figures
     sweep    run a quantitative experiment (Q1..Q6)
     graph    emit the write causality graph of a run (Graphviz)
     bench    benchmark-artifact tooling (bench diff OLD NEW)

   Examples:
     dsm-sim run --protocol optp -n 6 -m 8 --ops 200 --write-ratio 0.6
     dsm-sim run --protocol anbkh --latency lognormal:2.3,1.0 --seed 3
     dsm-sim run --trace-out run.json --trace-format chrome --metrics-out m.json
     dsm-sim run --wire --wire-out wire.json
     dsm-sim report --protocol optp -n 8 --json > report.json
     dsm-sim bench diff BENCH_old.json BENCH_new.json --fail-over 2.0
     dsm-sim explain --protocol anbkh --seed 3
     dsm-sim tables --section T1
     dsm-sim sweep --experiment q2   (q1..q11)
     dsm-sim graph -n 4 --ops 20
     dsm-sim nemesis                 (scenario corpus)
     dsm-sim nemesis --swarm 64 --seed 7 --shrink --out min.json
     dsm-sim nemesis --replay min.json *)

open Cmdliner

module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Experiment = Dsm_runtime.Experiment
module Checker = Dsm_runtime.Checker
module Sim_run = Dsm_runtime.Sim_run
module Provenance = Dsm_runtime.Provenance
module Metrics = Dsm_obs.Metrics

(* ---------------------------------------------------------------- *)
(* shared argument parsing                                           *)
(* ---------------------------------------------------------------- *)

let protocol_of_string = function
  | "optp" -> Ok (module Dsm_core.Opt_p : Dsm_core.Protocol.S)
  | "anbkh" -> Ok (module Dsm_core.Anbkh : Dsm_core.Protocol.S)
  | "ws-recv" -> Ok (module Dsm_core.Ws_receiver : Dsm_core.Protocol.S)
  | "optp-ws" -> Ok (module Dsm_core.Opt_p_ws : Dsm_core.Protocol.S)
  | "ws-token" -> Ok (module Dsm_core.Ws_token : Dsm_core.Protocol.S)
  | "optp-direct" -> Ok (module Dsm_core.Opt_p_direct : Dsm_core.Protocol.S)
  | s ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown protocol %S (expected optp | anbkh | ws-recv | \
              optp-ws | ws-token | optp-direct)"
             s))

let protocol_conv =
  Arg.conv
    ( protocol_of_string,
      fun ppf (module P : Dsm_core.Protocol.S) ->
        Format.pp_print_string ppf P.name )

(* latency syntax: const:C | uniform:LO,HI | exp:MEAN | lognormal:MU,SIGMA
   | pareto:SCALE,SHAPE *)
let latency_of_string s =
  let parse_floats part =
    String.split_on_char ',' part |> List.map float_of_string
  in
  match String.split_on_char ':' s with
  | [ "const"; p ] -> (
      match parse_floats p with
      | [ c ] -> Ok (Latency.Constant c)
      | _ -> Error (`Msg "const takes one parameter"))
  | [ "uniform"; p ] -> (
      match parse_floats p with
      | [ lo; hi ] -> Ok (Latency.Uniform { lo; hi })
      | _ -> Error (`Msg "uniform takes lo,hi"))
  | [ "exp"; p ] -> (
      match parse_floats p with
      | [ mean ] -> Ok (Latency.Exponential { mean })
      | _ -> Error (`Msg "exp takes one parameter"))
  | [ "lognormal"; p ] -> (
      match parse_floats p with
      | [ mu; sigma ] -> Ok (Latency.Lognormal { mu; sigma })
      | _ -> Error (`Msg "lognormal takes mu,sigma"))
  | [ "pareto"; p ] -> (
      match parse_floats p with
      | [ scale; shape ] -> Ok (Latency.Pareto { scale; shape })
      | _ -> Error (`Msg "pareto takes scale,shape"))
  | _ ->
      Error
        (`Msg
          "latency syntax: const:C | uniform:LO,HI | exp:MEAN | \
           lognormal:MU,SIGMA | pareto:SCALE,SHAPE")

let latency_of_string s =
  try latency_of_string s
  with Failure _ -> Error (`Msg "latency parameters must be numbers")

let latency_conv = Arg.conv (latency_of_string, Latency.pp)

let protocol =
  Arg.(
    value
    & opt protocol_conv (module Dsm_core.Opt_p : Dsm_core.Protocol.S)
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:"Protocol: optp, anbkh, ws-recv, optp-ws, ws-token or optp-direct.")

let n_procs =
  Arg.(value & opt int 4 & info [ "n"; "processes" ] ~docv:"N"
         ~doc:"Number of processes.")

let m_vars =
  Arg.(value & opt int 8 & info [ "m"; "variables" ] ~docv:"M"
         ~doc:"Number of shared memory locations.")

let ops =
  Arg.(value & opt int 200 & info [ "ops" ] ~docv:"OPS"
         ~doc:"Operations per process.")

let write_ratio =
  Arg.(value & opt float 0.5 & info [ "write-ratio" ] ~docv:"R"
         ~doc:"Fraction of operations that are writes, in [0,1].")

let zipf =
  Arg.(value & opt (some float) None & info [ "zipf" ] ~docv:"S"
         ~doc:"Zipf exponent for variable choice (uniform if absent).")

let latency =
  Arg.(
    value
    & opt latency_conv
        (Latency.Lognormal { mu = log 10. -. 0.5; sigma = 1.0 })
    & info [ "latency" ] ~docv:"DIST" ~doc:"Channel latency distribution.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Seed for workload and network randomness.")

let fifo =
  Arg.(value & flag & info [ "fifo" ]
         ~doc:"Per-channel FIFO delivery (default: reordering allowed).")

let drop =
  Arg.(value & opt float 0. & info [ "drop" ] ~docv:"P"
         ~doc:"Frame drop probability; > 0 switches to the \
               reliable-channel substrate.")

let duplicate =
  Arg.(value & opt float 0. & info [ "duplicate" ] ~docv:"P"
         ~doc:"Frame duplication probability (with --drop, uses the \
               reliable-channel substrate).")

let corrupt =
  Arg.(value & opt float 0. & info [ "corrupt" ] ~docv:"P"
         ~doc:"Frame corruption probability; checksums detect and drop \
               mangled frames, retransmission heals them (uses the \
               reliable-channel substrate).")

let repl_degree =
  Arg.(value & opt (some int) None
       & info [ "replication-degree" ] ~docv:"K"
           ~doc:"Replicate each location at K processes (ring layout) \
                 and run the partial-replication protocol instead.")

(* --crash P@T1:T2 (recover at T2) or P@T1 (stays down) *)
let crash_of_string s =
  let err =
    Error (`Msg "crash syntax: PROC@T_CRASH[:T_RECOVER] (0-based process)")
  in
  match String.split_on_char '@' s with
  | [ p; times ] -> (
      match
        ( int_of_string_opt p,
          List.map float_of_string_opt (String.split_on_char ':' times) )
      with
      | Some p, [ Some t1 ] -> Ok (p, t1, None)
      | Some p, [ Some t1; Some t2 ] -> Ok (p, t1, Some t2)
      | _ -> err)
  | _ -> err

let crash_conv =
  Arg.conv
    ( crash_of_string,
      fun ppf (p, t1, t2) ->
        match t2 with
        | Some t2 -> Format.fprintf ppf "%d@%g:%g" p t1 t2
        | None -> Format.fprintf ppf "%d@%g" p t1 )

let crashes =
  Arg.(
    value
    & opt_all crash_conv []
    & info [ "crash" ] ~docv:"P@T1:T2"
        ~doc:
          "Crash process $(b,P) (0-based) at time $(b,T1) and recover it \
           from its last durable snapshot at $(b,T2) (omit $(b,:T2) to \
           leave it down). Repeatable. Switches to the fault-campaign \
           driver (protocols: optp, anbkh, optp-direct).")

(* --partition 0,1/2,3@T1:T2 *)
let partition_of_string s =
  let err =
    Error
      (`Msg
        "partition syntax: G1/G2[/G3...]@T_CUT:T_HEAL with groups like \
         0,1,2 (0-based processes)")
  in
  match String.split_on_char '@' s with
  | [ groups; times ] -> (
      let parse_group g =
        String.split_on_char ',' g |> List.map int_of_string_opt
      in
      let groups = List.map parse_group (String.split_on_char '/' groups) in
      match
        ( List.for_all (List.for_all Option.is_some) groups,
          List.map float_of_string_opt (String.split_on_char ':' times) )
      with
      | true, [ Some t1; Some t2 ] when t2 > t1 ->
          Ok (List.map (List.map Option.get) groups, t1, t2)
      | _ -> err)
  | _ -> err

let partition_conv =
  Arg.conv
    ( partition_of_string,
      fun ppf (groups, t1, t2) ->
        Format.fprintf ppf "%s@%g:%g"
          (String.concat "/"
             (List.map
                (fun g -> String.concat "," (List.map string_of_int g))
                groups))
          t1 t2 )

let partitions =
  Arg.(
    value
    & opt_all partition_conv []
    & info [ "partition" ] ~docv:"GROUPS@T1:T2"
        ~doc:
          "Cut the network into $(b,GROUPS) (e.g. 0,1/2,3) at $(b,T1) and \
           heal every cut at $(b,T2). Repeatable (episodes should not \
           overlap: a heal heals all cuts). Switches to the \
           fault-campaign driver.")

(* --join P@T / --leave P@T: membership events over a fixed universe *)
let proc_at_of_string what s =
  let err =
    Error (`Msg (Printf.sprintf "%s syntax: PROC@TIME (0-based process)" what))
  in
  match String.split_on_char '@' s with
  | [ p; time ] -> (
      match (int_of_string_opt p, float_of_string_opt time) with
      | Some p, Some t when t >= 0. -> Ok (p, t)
      | _ -> err)
  | _ -> err

let proc_at_conv what =
  Arg.conv
    ( proc_at_of_string what,
      fun ppf (p, t) -> Format.fprintf ppf "%d@%g" p t )

let joins =
  Arg.(
    value
    & opt_all (proc_at_conv "join") []
    & info [ "join" ] ~docv:"P@T"
        ~doc:
          "Slot $(b,P) (0-based, within -n) joins the membership view at \
           time $(b,T): a fresh process bootstraps by state transfer from \
           a sponsor, a crashed member rejoins under a new incarnation. \
           Repeatable. Switches to the churn-campaign driver; combine \
           with --initial to start with fewer than n members.")

let leaves =
  Arg.(
    value
    & opt_all (proc_at_conv "leave") []
    & info [ "leave" ] ~docv:"P@T"
        ~doc:
          "Member $(b,P) departs gracefully at time $(b,T): it stops \
           issuing, flushes its unacknowledged writes, then leaves the \
           view for good. Repeatable. Switches to the churn-campaign \
           driver.")

let initial_members =
  Arg.(
    value
    & opt (some int) None
    & info [ "initial" ] ~docv:"K"
        ~doc:
          "Only slots 0..K-1 are members at time 0; the remaining slots \
           of the n-slot universe are free to --join later. Default: all \
           n. Switches to the churn-campaign driver.")

(* --churn J,L,R@H: a randomized churn storm *)
let churn_of_string s =
  let err =
    Error
      (`Msg
        "churn syntax: JOINS,LEAVES,REJOINS@HORIZON (e.g. 3,2,1@400)")
  in
  match String.split_on_char '@' s with
  | [ counts; horizon ] -> (
      match
        ( List.map int_of_string_opt (String.split_on_char ',' counts),
          float_of_string_opt horizon )
      with
      | [ Some j; Some l; Some r ], Some h when h > 0. -> Ok (j, l, r, h)
      | _ -> err)
  | _ -> err

let churn_conv =
  Arg.conv
    ( churn_of_string,
      fun ppf (j, l, r, h) -> Format.fprintf ppf "%d,%d,%d@%g" j l r h )

let churn =
  Arg.(
    value
    & opt (some churn_conv) None
    & info [ "churn" ] ~docv:"J,L,R@H"
        ~doc:
          "Randomized churn schedule over horizon $(b,H): $(b,J) fresh \
           joins, $(b,L) graceful leaves, $(b,R) crash-rejoins, drawn \
           from --seed. Needs --initial (default n-J) members at time 0 \
           within the -n slot universe. Does not combine with \
           --crash/--partition/--join/--leave.")

(* --fd: emergent membership, the detector produces the view *)
let fd_flag =
  Arg.(
    value & flag
    & info [ "fd" ]
        ~doc:
          "Emergent membership: active slots gossip heartbeats, a \
           phi-accrual failure detector accrues suspicion from silence, \
           and every membership change is detector-driven — a crossed \
           threshold marks the peer down, a later heartbeat refutes the \
           suspicion and rejoins the slot under a fresh incarnation. \
           Scripted membership (--join/--leave/--churn) is refused: \
           --crash/--partition are the only inputs. Switches to the \
           churn-campaign driver.")

let fd_threshold =
  Arg.(
    value
    & opt float 3.
    & info [ "fd-threshold" ] ~docv:"PHI"
        ~doc:
          "Suspicion threshold in phi units (decades of unlikelihood of \
           the observed silence): lower detects faster but false-suspects \
           more. Only with --fd.")

let heartbeat_every =
  Arg.(
    value
    & opt float 20.
    & info [ "heartbeat-every" ] ~docv:"T"
        ~doc:
          "Gossip period: each active slot beacons every $(docv) time \
           units to peers it has not otherwise talked to (protocol \
           traffic piggybacks as liveness evidence). Only with --fd.")

let fd_adaptive =
  Arg.(
    value
    & opt float 0.
    & info [ "fd-adaptive" ] ~docv:"GAIN"
        ~doc:
          "Per-peer adaptive thresholds: scale each link's suspicion \
           threshold by 1 + $(docv) * cv, where cv is that link's \
           observed inter-arrival coefficient of variation. Noisy links \
           earn headroom against false suspicions; metronomic links keep \
           the base threshold and detection time. 0 (the default) keeps \
           a single fixed threshold. Only with --fd.")

(* --sessions: a client-session tier multiplexed over the replicas *)
let sessions_count =
  Arg.(
    value
    & opt (some int) None
    & info [ "sessions" ] ~docv:"N"
        ~doc:
          "Multiplex $(docv) lightweight client sessions over the \
           replicas. Each session carries a session vector, so its reads \
           and writes can be served by any replica while keeping the \
           four session guarantees (RYW/MR/WFR/MW); on failover the \
           vector is handed off to the new home. Switches to the \
           churn-campaign driver; combine with --fd, --crash or \
           --partition to exercise migration.")

let session_placement =
  Arg.(
    value
    & opt string "sticky"
    & info [ "placement" ] ~docv:"POLICY"
        ~doc:
          "Session placement policy: $(b,sticky) (stay on one home, \
           fail over to the cyclically next active slot), $(b,random) \
           (uniformly random active replica per attempt) or \
           $(b,nearest) (static preference ring, fails over and back). \
           Only with --sessions.")

let session_ops =
  Arg.(
    value
    & opt int 24
    & info [ "session-ops" ] ~docv:"K"
        ~doc:"Operations per session. Only with --sessions.")

let sessions_of ~sessions ~placement ~session_ops ~seed =
  match sessions with
  | None -> Ok None
  | Some count -> (
      match Dsm_runtime.Session_tier.placement_of_string placement with
      | None ->
          Error
            (Printf.sprintf
               "unknown placement %S (expected sticky | random | nearest)"
               placement)
      | Some p -> (
          let cfg =
            {
              (Dsm_runtime.Session_tier.default_config ~count) with
              Dsm_runtime.Session_tier.placement = p;
              ops_per_session = session_ops;
              seed;
            }
          in
          match Dsm_runtime.Session_tier.validate_config cfg with
          | () -> Ok (Some cfg)
          | exception Invalid_argument msg -> Error msg))

let detector_of ~fd ~fd_threshold ~heartbeat_every ~fd_adaptive ~joins
    ~leaves ~churn =
  if not fd then Ok None
  else if joins <> [] || leaves <> [] || churn <> None then
    Error
      "--fd is emergent membership — drop --join/--leave/--churn; crashes \
       and partitions are the only scripted inputs, the detector produces \
       the view history"
  else
    match
      Dsm_runtime.Failure_detector.config ~threshold:fd_threshold
        ~heartbeat_every ~adaptive:fd_adaptive ()
    with
    | exception Invalid_argument msg -> Error msg
    | cfg -> Ok (Some cfg)

let checkpoint_every =
  Arg.(
    value
    & opt float 50.
    & info [ "checkpoint-every" ] ~docv:"T"
        ~doc:
          "Interval between durable checkpoints of received writes \
           (local writes are always committed immediately).")

let json_out =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the campaign outcome as JSON on stdout instead of the \
           human-readable report (fault-campaign runs only).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the causal trace of the run (one span per write, with \
           per-destination receipt / blocked / apply phases) to $(docv).")

let trace_format_conv =
  Arg.conv
    ( (fun s ->
        match Provenance.format_of_string s with
        | Some f -> Ok f
        | None -> Error (`Msg "trace format: jsonl | chrome")),
      fun ppf f ->
        Format.pp_print_string ppf (Provenance.format_to_string f) )

let trace_format =
  Arg.(
    value
    & opt trace_format_conv Provenance.Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace rendering: $(b,jsonl) (one JSON object per span per \
           line) or $(b,chrome) (trace-event array, loadable in \
           Perfetto; write delays appear as blocked slices).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Enable the metrics registry and write every instrument \
           (network, channel, buffers, protocol, campaign) to $(docv) \
           as JSON. Probes are pure observation: the simulated outcome \
           is byte-identical with and without this flag.")

let wire_flag =
  Arg.(
    value & flag
    & info [ "wire" ]
        ~doc:
          "Enable the wire-cost accountant and print its per-cause byte \
           summary: header / payload / causal-metadata bytes, plus the \
           delta-encoding counterfactual. Pure observation: the \
           simulated outcome is byte-identical with and without it.")

let wire_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "wire-out" ] ~docv:"FILE"
        ~doc:
          "Enable the wire-cost accountant and write its aggregates \
           (totals, per cause, per edge) to $(docv) as JSON.")

let scrape_every_arg =
  Arg.(
    value & opt float 25.
    & info [ "scrape-every" ] ~docv:"DT"
        ~doc:"Flight-recorder scrape period, in simulated time units.")

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error msg -> Error msg

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* the run itself is untouched by observers; emit files afterwards *)
let emit_observers ~trace_out ~trace_format ~metrics_out ~metrics execution =
  (match trace_out with
  | None -> ()
  | Some path ->
      Provenance.write_trace trace_format ~path execution;
      let c = Provenance.spans execution in
      Format.printf "trace: %d spans (%d blocked records) -> %s (%s)@."
        (Dsm_obs.Span.span_count c)
        (Dsm_obs.Span.blocked_count c)
        path
        (Provenance.format_to_string trace_format));
  match metrics_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Metrics.to_json metrics);
      output_char oc '\n';
      close_out oc;
      Format.printf "metrics: %d instruments -> %s@."
        (List.length (Metrics.rows metrics))
        path

(* Theorem 4 protocols: a single unnecessary delay is a bug, not a
   statistic — fail the run *)
let claims_optimality name =
  List.mem name [ "OptP"; "OptP/scan"; "OptP-direct" ]

let spec_of ~n ~m ~ops ~write_ratio ~zipf ~seed =
  let var_dist =
    match zipf with None -> Spec.Uniform_vars | Some s -> Spec.Zipf_vars s
  in
  Spec.make ~n ~m ~ops_per_process:ops ~write_ratio ~var_dist ~seed ()

(* ---------------------------------------------------------------- *)
(* fault campaigns (run --crash / --partition)                       *)
(* ---------------------------------------------------------------- *)

module Fault_plan = Dsm_sim.Fault_plan
module Fault_campaign = Dsm_runtime.Fault_campaign

let plan_of ?(joins = []) ?(leaves = []) ~crashes ~partitions () =
  let t = Dsm_sim.Sim_time.of_float in
  let crash_events =
    List.concat_map
      (fun (proc, t1, t2) ->
        Fault_plan.Crash { proc; at = t t1 }
        ::
        (match t2 with
        | Some t2 -> [ Fault_plan.Recover { proc; at = t t2 } ]
        | None -> []))
      crashes
  in
  let cut_events =
    List.concat_map
      (fun (groups, t1, t2) ->
        [
          Fault_plan.Cut { groups; at = t t1 };
          Fault_plan.Heal { at = t t2 };
        ])
      partitions
  in
  let join_events =
    List.map (fun (proc, t1) -> Fault_plan.Join { proc; at = t t1 }) joins
  in
  let leave_events =
    List.map (fun (proc, t1) -> Fault_plan.Leave { proc; at = t t1 }) leaves
  in
  Fault_plan.make (crash_events @ cut_events @ join_events @ leave_events)

let campaign_json ppf (o : Fault_campaign.outcome) =
  let open Format in
  fprintf ppf "{@,  \"schema\": \"causal-dsm-campaign/v1\",@,";
  fprintf ppf "  \"protocol\": \"%s\",@," o.protocol_name;
  fprintf ppf "  \"clean\": %b,@,  \"live_equal\": %b,@," o.clean
    o.live_equal;
  fprintf ppf "  \"down_at_end\": [%s],@,"
    (String.concat ", " (List.map string_of_int o.down_at_end));
  fprintf ppf "  \"recoveries\": [";
  List.iteri
    (fun i (r : Fault_campaign.recovery) ->
      if i > 0 then fprintf ppf ",";
      fprintf ppf
        "@,    { \"proc\": %d, \"crashed_at\": %.1f, \"recovered_at\": \
         %.1f, \"caught_up_at\": %s,@,      \"latency\": %s, \
         \"rolled_back_events\": %d, \"replayed\": %d }"
        r.rproc r.crashed_at r.recovered_at
        (match r.caught_up_at with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "null")
        (match Fault_campaign.recovery_latency r with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "null")
        r.rolled_back_events r.replayed)
    o.recoveries;
  if o.recoveries = [] then fprintf ppf "],@," else fprintf ppf "@,  ],@,";
  fprintf ppf
    "  \"durability\": { \"commits\": %d, \"snapshot_bytes\": %d, \
     \"rolled_back_events\": %d },@,"
    o.commits o.snapshot_bytes o.rolled_back_events;
  fprintf ppf
    "  \"catch_up\": { \"sync_requests\": %d, \"sync_replies\": %d, \
     \"replayed_writes\": %d, \"stale_deliveries_dropped\": %d },@,"
    o.sync_requests o.sync_replies o.replayed_writes
    o.stale_deliveries_dropped;
  fprintf ppf
    "  \"wire\": { \"payloads_sent\": %d, \"frames_sent\": %d, \
     \"retransmissions\": %d, \"aborted_payloads\": %d,@,\
    \            \"frames_partition_dropped\": %d, \
     \"frames_crash_dropped\": %d, \"duplicates_discarded\": %d },@,"
    o.payloads_sent o.frames_sent o.retransmissions o.aborted_payloads
    o.frames_partition_dropped o.frames_crash_dropped
    o.duplicates_discarded;
  fprintf ppf
    "  \"audit\": { \"violations\": %d, \"necessary_delays\": %d, \
     \"unnecessary_delays\": %d, \"lost\": %d },@,"
    (List.length o.report.Checker.violations)
    o.report.Checker.necessary_delays o.report.Checker.unnecessary_delays
    (List.length o.report.Checker.lost);
  fprintf ppf "  \"engine_steps\": %d,@,  \"sim_end_time\": %.1f@,}"
    o.engine_steps o.end_time

let campaign (module P : Dsm_core.Protocol.S) ~spec ~latency ~faults
    ~crashes ~partitions ~checkpoint_every ~seed ~json ~metrics ~wire ~emit
    =
  if not (List.mem P.name [ "OptP"; "ANBKH"; "OptP-direct" ]) then
    `Error
      ( false,
        Printf.sprintf
          "--crash/--partition need a complete-broadcast protocol (optp, \
           anbkh or optp-direct); %s cannot serve anti-entropy catch-up"
          P.name )
  else
    match
      Fault_campaign.run
        (module P)
        ~spec ~latency ~faults
        ~plan:(plan_of ~crashes ~partitions ())
        ~checkpoint_every ~seed ~metrics ~wire ()
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | o ->
        if json then Format.printf "@[<v>%a@]@." campaign_json o
        else begin
          Format.printf "%a@.@." Fault_campaign.pp_outcome o;
          Format.printf "audit: %a@." Checker.pp_report o.report
        end;
        emit o.Fault_campaign.execution;
        if not (o.clean && o.live_equal) then
          `Error (false, "campaign is not clean")
        else if
          claims_optimality P.name
          && o.report.Checker.unnecessary_delays > 0
        then
          `Error
            ( false,
              Printf.sprintf
                "%d unnecessary delays — %s claims Theorem 4 optimality"
                o.report.Checker.unnecessary_delays P.name )
        else `Ok ()

(* ---------------------------------------------------------------- *)
(* churn campaigns (run --join / --leave / --churn / --initial)      *)
(* ---------------------------------------------------------------- *)

module Churn_campaign = Dsm_runtime.Churn_campaign

let churn_json ppf (o : Churn_campaign.outcome) =
  let open Format in
  fprintf ppf "{@,  \"schema\": \"causal-dsm-churn/v1\",@,";
  fprintf ppf "  \"protocol\": \"%s\",@," o.protocol_name;
  fprintf ppf "  \"clean\": %b,@,  \"live_equal\": %b,@," o.clean
    o.live_equal;
  fprintf ppf
    "  \"membership\": { \"final_epoch\": %d, \"joins\": %d, \
     \"rejoins\": %d, \"leaves\": %d, \"active_at_end\": [%s] },@,"
    o.final_epoch o.joins o.rejoins o.leaves
    (String.concat ", " (List.map string_of_int o.active_at_end));
  (match o.detector with
  | None -> ()
  | Some cfg ->
      fprintf ppf
        "  \"detector\": { \"threshold\": %g, \"heartbeat_every\": %g, \
         \"window\": %d, \"adaptive\": %g,@,\
        \                \"heartbeats_sent\": %d, \"suspicions\": %d, \
         \"false_suspicions\": %d, \"refutations\": %d },@,"
        cfg.Dsm_runtime.Failure_detector.threshold
        cfg.Dsm_runtime.Failure_detector.heartbeat_every
        cfg.Dsm_runtime.Failure_detector.window
        cfg.Dsm_runtime.Failure_detector.adaptive o.heartbeats_sent
        (List.length o.suspicions)
        o.false_suspicions o.refutations;
      fprintf ppf "  \"view_changes\": [";
      List.iteri
        (fun i (epoch, at, why) ->
          if i > 0 then fprintf ppf ",";
          fprintf ppf "@,    { \"epoch\": %d, \"at\": %.1f, \"why\": \"%s\" }"
            epoch at why)
        o.view_reasons;
      if o.view_reasons = [] then fprintf ppf "],@,"
      else fprintf ppf "@,  ],@,");
  fprintf ppf "  \"catch_ups\": [";
  List.iteri
    (fun i (c : Churn_campaign.catch_up) ->
      if i > 0 then fprintf ppf ",";
      fprintf ppf
        "@,    { \"proc\": %d, \"kind\": \"%s\", \"started_at\": %.1f, \
         \"converged_at\": %s, \"latency\": %s,@,      \
         \"transfer_writes\": %d, \"transfer_bytes\": %d, \"replayed\": \
         %d }"
        c.cproc
        (match c.ckind with
        | Churn_campaign.Fresh_join -> "join"
        | Churn_campaign.Rejoin -> "rejoin"
        | Churn_campaign.Recover -> "recover")
        c.started_at
        (match c.converged_at with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "null")
        (match Churn_campaign.catch_up_latency c with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "null")
        c.transfer_writes c.transfer_bytes c.replayed)
    o.catch_ups;
  if o.catch_ups = [] then fprintf ppf "],@," else fprintf ppf "@,  ],@,";
  fprintf ppf
    "  \"quarantine\": { \"chan_stale_quarantined\": %d, \
     \"net_stale_dropped\": %d, \"net_nonmember_dropped\": %d, \
     \"corrupt_dropped\": %d, \"quarantine_leaks\": %d },@,"
    o.chan_stale_quarantined o.net_stale_dropped o.net_nonmember_dropped
    o.corrupt_dropped o.quarantine_leaks;
  fprintf ppf
    "  \"durability\": { \"commits\": %d, \"snapshot_bytes\": %d, \
     \"transfer_bytes\": %d, \"rolled_back_events\": %d },@,"
    o.commits o.snapshot_bytes o.transfer_bytes o.rolled_back_events;
  fprintf ppf
    "  \"catch_up\": { \"sync_requests\": %d, \"sync_replies\": %d, \
     \"replayed_writes\": %d, \"stale_deliveries_dropped\": %d },@,"
    o.sync_requests o.sync_replies o.replayed_writes
    o.stale_deliveries_dropped;
  fprintf ppf
    "  \"wire\": { \"payloads_sent\": %d, \"frames_sent\": %d, \
     \"retransmissions\": %d, \"aborted_payloads\": %d, \
     \"duplicates_discarded\": %d },@,"
    o.payloads_sent o.frames_sent o.retransmissions o.aborted_payloads
    o.duplicates_discarded;
  fprintf ppf
    "  \"audit\": { \"violations\": %d, \"necessary_delays\": %d, \
     \"unnecessary_delays\": %d, \"lost\": %d },@,"
    (List.length o.report.Checker.violations)
    o.report.Checker.necessary_delays o.report.Checker.unnecessary_delays
    (List.length o.report.Checker.lost);
  (match o.sessions with
  | Some sr ->
      let module ST = Dsm_runtime.Session_tier in
      fprintf ppf
        "  \"sessions\": { \"count\": %d, \"placement\": \"%s\", \
         \"ops\": %d, \"writes\": %d, \"reads\": %d, \"migrations\": %d, \
         \"retries\": %d, \"blocked_rejections\": %d, \
         \"unavailable_rejections\": %d, \"dedup_hits\": %d, \
         \"replies_lost\": %d, \"degraded\": %d, \"duplicate_writes\": \
         %d, \"violations\": %d, \"write_p50\": %.3f, \"write_p99\": \
         %.3f, \"read_p50\": %.3f, \"read_p99\": %.3f },@,"
        sr.ST.cfg.ST.count
        (ST.placement_to_string sr.ST.cfg.ST.placement)
        sr.ST.ops_done sr.ST.writes_done sr.ST.reads_done
        (List.length sr.ST.migrations)
        sr.ST.retries sr.ST.blocked_rejections sr.ST.unavailable_rejections
        sr.ST.dedup_hits sr.ST.replies_lost
        (List.length sr.ST.degraded)
        sr.ST.duplicate_writes
        (List.length sr.ST.violations)
        (ST.percentile sr.ST.write_latencies 0.5)
        (ST.percentile sr.ST.write_latencies 0.99)
        (ST.percentile sr.ST.read_latencies 0.5)
        (ST.percentile sr.ST.read_latencies 0.99)
  | None -> ());
  fprintf ppf "  \"engine_steps\": %d,@,  \"sim_end_time\": %.1f@,}"
    o.engine_steps o.end_time

let churn_campaign (module P : Dsm_core.Protocol.S) ~spec ~latency ~faults
    ~plan ~initial ?detector ?sessions ~checkpoint_every ~seed ~json
    ~metrics ~wire ~emit () =
  if not (List.mem P.name [ "OptP"; "ANBKH"; "OptP-direct" ]) then
    `Error
      ( false,
        Printf.sprintf
          "--join/--leave/--churn/--fd need a complete-broadcast protocol \
           (optp, anbkh or optp-direct); %s cannot serve state transfer"
          P.name )
  else
    match
      Churn_campaign.run
        (module P)
        ~spec ~latency ~faults ~plan ~initial ?detector ?sessions
        ~checkpoint_every ~seed ~metrics ~wire ()
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | o ->
        if json then Format.printf "@[<v>%a@]@." churn_json o
        else begin
          Format.printf "%a@.@." Churn_campaign.pp_outcome o;
          (match o.Churn_campaign.sessions with
          | Some sr ->
              Format.printf "%a@.@." Dsm_runtime.Session_tier.pp_report sr
          | None -> ());
          Format.printf "audit: %a@." Checker.pp_report o.report
        end;
        emit o.Churn_campaign.execution;
        let session_dirty =
          match o.Churn_campaign.sessions with
          | Some sr -> not (Dsm_runtime.Session_tier.clean sr)
          | None -> false
        in
        if not (o.clean && o.live_equal) then
          `Error (false, "campaign is not clean")
        else if session_dirty then
          `Error
            ( false,
              "session tier is not clean (guarantee violation or \
               duplicate write)" )
        else if
          claims_optimality P.name
          && o.report.Checker.unnecessary_delays > 0
        then
          `Error
            ( false,
              Printf.sprintf
                "%d unnecessary delays — %s claims Theorem 4 optimality"
                o.report.Checker.unnecessary_delays P.name )
        else `Ok ()

(* Build the churn plan + initial membership from the CLI flags.
   [Error]s surface as parse-level failures. *)
let churn_setup ~n ~seed ~crashes ~partitions ~joins ~leaves ~initial ~churn
    =
  match churn with
  | Some (j, l, r, h) ->
      if crashes <> [] || partitions <> [] || joins <> [] || leaves <> []
      then
        Error
          "--churn does not combine with --crash/--partition/--join/--leave"
      else begin
        let ini = match initial with Some k -> k | None -> n - j in
        match
          Fault_plan.random_churn
            (Dsm_sim.Rng.create seed)
            ~initial:ini ~n ~horizon:h ~joins:j ~leaves:l ~rejoins:r ()
        with
        | exception Invalid_argument msg -> Error msg
        | plan -> Ok (plan, ini)
      end
  | None ->
      let ini = Option.value initial ~default:n in
      if ini < 2 || ini > n then
        Error "--initial must be in 2..n"
      else Ok (plan_of ~joins ~leaves ~crashes ~partitions (), ini)

(* ---------------------------------------------------------------- *)
(* run                                                               *)
(* ---------------------------------------------------------------- *)

let run_cmd =
  let action (module P : Dsm_core.Protocol.S) n m ops write_ratio zipf
      latency seed fifo drop duplicate corrupt repl_degree crashes
      partitions joins leaves initial churn fd fd_threshold heartbeat_every
      fd_adaptive sessions placement session_ops checkpoint_every json
      trace_out trace_format metrics_out wire_on wire_out =
    let spec = spec_of ~n ~m ~ops ~write_ratio ~zipf ~seed in
    let metrics =
      match metrics_out with
      | None -> Metrics.null ()
      | Some _ -> Metrics.create ()
    in
    let wire =
      if wire_on || wire_out <> None then
        Dsm_obs.Wire.create ~proto:P.name ~n ()
      else Dsm_obs.Wire.null ()
    in
    (* accounting is written after the audit so it never perturbs the
       run, and never touches stdout in --json mode *)
    let emit_wire () =
      if Dsm_obs.Wire.enabled wire then begin
        (match wire_out with
        | Some path ->
            write_file path
              (Dsm_stats.Json.to_string (Dsm_obs.Wire.to_json wire) ^ "\n");
            if not json then
              Format.printf "wire: %d frames, %d bytes -> %s@."
                (Dsm_obs.Wire.frames wire)
                (Dsm_obs.Wire.total_bytes wire)
                path
        | None -> ());
        if wire_on && not json then
          Format.printf "@.%a@." Dsm_obs.Wire.pp_summary wire
      end
    in
    let emit execution =
      emit_observers ~trace_out ~trace_format ~metrics_out ~metrics
        execution
    in
    if not json then
      Format.printf "workload: %a@.network:  %a@.@." Spec.pp spec Latency.pp
        latency;
    let finish ~execution report =
      Format.printf "audit: %a@." Checker.pp_report report;
      emit execution;
      if not (Checker.is_clean report) then
        `Error (false, "run is not clean")
      else if
        claims_optimality P.name && report.Checker.unnecessary_delays > 0
      then
        `Error
          ( false,
            Printf.sprintf
              "%d unnecessary delays — %s claims Theorem 4 optimality"
              report.Checker.unnecessary_delays P.name )
      else `Ok ()
    in
    let churny =
      joins <> [] || leaves <> [] || churn <> None || initial <> None || fd
      || sessions <> None
    in
    let res =
    if churny then begin
      if repl_degree <> None then
        `Error (false, "churn flags do not combine with \
                        --replication-degree")
      else if fifo then `Error (false, "churn flags do not combine with --fifo")
      else
        match
          detector_of ~fd ~fd_threshold ~heartbeat_every ~fd_adaptive ~joins
            ~leaves ~churn
        with
        | Error msg -> `Error (false, msg)
        | Ok detector -> (
            match sessions_of ~sessions ~placement ~session_ops ~seed with
            | Error msg -> `Error (false, msg)
            | Ok session_cfg -> (
            match
              churn_setup ~n ~seed ~crashes ~partitions ~joins ~leaves
                ~initial ~churn
            with
            | Error msg -> `Error (false, msg)
            | Ok (plan, ini) ->
                churn_campaign
                  (module P)
                  ~spec ~latency
                  ~faults:{ Dsm_sim.Network.drop; duplicate; corrupt }
                  ~plan ~initial:ini ?detector ?sessions:session_cfg
                  ~checkpoint_every ~seed ~json ~metrics ~wire ~emit ()))
    end
    else if crashes <> [] || partitions <> [] then begin
      if repl_degree <> None then
        `Error (false, "--crash/--partition do not combine with \
                        --replication-degree")
      else if fifo then
        `Error (false, "--crash/--partition do not combine with --fifo")
      else
        campaign
          (module P)
          ~spec ~latency
          ~faults:{ Dsm_sim.Network.drop; duplicate; corrupt }
          ~crashes ~partitions ~checkpoint_every ~seed ~json ~metrics
          ~wire ~emit
    end
    else if json then
      `Error (false, "--json requires --crash, --partition or churn flags")
    else
    match repl_degree with
    | Some degree ->
        if drop > 0. || duplicate > 0. || corrupt > 0. then
          `Error
            (false, "--replication-degree does not combine with --drop")
        else if degree < 1 || degree > n then
          `Error (false, "--replication-degree must be in 1..n")
        else begin
          let replication = Dsm_core.Replication.ring ~n ~m ~degree in
          Format.printf
            "protocol: OptP over partial replication (degree %d)@.%a@.@."
            degree Dsm_core.Replication.pp replication;
          let outcome =
            Dsm_runtime.Partial_run.run ~replication ~spec ~latency ~seed
              ~metrics ~wire ()
          in
          Format.printf "messages: %d, t_end=%.1f@.@."
            outcome.Dsm_runtime.Partial_run.messages_sent
            outcome.Dsm_runtime.Partial_run.end_time;
          finish ~execution:outcome.Dsm_runtime.Partial_run.execution
            (Dsm_runtime.Partial_run.check outcome)
        end
    | None ->
        if drop > 0. || duplicate > 0. || corrupt > 0. then begin
          Format.printf
            "protocol: %s over faulty links (drop=%g, dup=%g, corrupt=%g) \
             healed by reliable channels@.@."
            P.name drop duplicate corrupt;
          let outcome =
            Dsm_runtime.Reliable_run.run
              (module P)
              ~spec ~latency
              ~faults:{ Dsm_sim.Network.drop; duplicate; corrupt }
              ~seed ~metrics ~wire ()
          in
          Format.printf "%a@.@." Dsm_runtime.Reliable_run.pp_outcome
            outcome;
          finish ~execution:outcome.Dsm_runtime.Reliable_run.execution
            (Checker.check outcome.Dsm_runtime.Reliable_run.execution)
        end
        else begin
          Format.printf "protocol: %s@.@." P.name;
          let outcome =
            Sim_run.run
              (module P)
              ~spec ~latency ~fifo ~seed ~metrics ~wire ()
          in
          Format.printf "%a@.@." Sim_run.pp_outcome outcome;
          finish ~execution:outcome.execution
            (Checker.check outcome.execution)
        end
    in
    emit_wire ();
    res
  in
  let term =
    Term.(
      ret
        (const action $ protocol $ n_procs $ m_vars $ ops $ write_ratio
       $ zipf $ latency $ seed $ fifo $ drop $ duplicate $ corrupt
       $ repl_degree $ crashes $ partitions $ joins $ leaves
       $ initial_members $ churn $ fd_flag $ fd_threshold $ heartbeat_every
       $ fd_adaptive $ sessions_count $ session_placement $ session_ops
       $ checkpoint_every $ json_out $ trace_out
       $ trace_format $ metrics_out $ wire_flag $ wire_out))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Simulate a random workload under one protocol, audit the run \
          and print delay statistics. With --drop/--duplicate the links \
          are faulty and the reliable-channel substrate heals them; with \
          --replication-degree the partial-replication protocol runs on \
          a ring layout; with --crash/--partition the fault-campaign \
          driver crashes and restarts processes from durable snapshots, \
          partitions the network and audits recovery (--json for \
          machine-readable output); with --join/--leave/--initial/--churn \
          the membership view itself changes mid-run (state-transfer \
          joins, flushed leaves, fresh-incarnation rejoins) and the audit \
          spans every epoch; with --fd membership is emergent — no \
          scripted view changes, a phi-accrual failure detector over \
          gossip heartbeats suspects silent slots and heartbeats refute \
          false suspicions; with --sessions a client-session tier rides \
          on top — sessions carry session vectors, migrate on failover \
          with vector handoff, retry with capped backoff and dedup \
          retried writes, and the audit re-checks the four session \
          guarantees per client. --trace-out/--metrics-out export the causal \
          trace and the metrics registry without perturbing the run; \
          --wire/--wire-out add per-cause wire-cost accounting (header, \
          payload, causal metadata, delta counterfactual). \
          Exits non-zero on any checker violation, and on any \
          unnecessary delay for protocols claiming Theorem 4 optimality.")
    term

(* ---------------------------------------------------------------- *)
(* explain                                                           *)
(* ---------------------------------------------------------------- *)

let explain_cmd =
  let action (module P : Dsm_core.Protocol.S) n m ops write_ratio zipf
      latency seed fifo crashes partitions joins leaves initial churn fd
      fd_threshold heartbeat_every fd_adaptive sessions placement
      session_ops checkpoint_every =
    let spec = spec_of ~n ~m ~ops ~write_ratio ~zipf ~seed in
    let churny =
      joins <> [] || leaves <> [] || churn <> None || initial <> None || fd
      || sessions <> None
    in
    let needs_campaign = churny || crashes <> [] || partitions <> [] in
    let outcome =
      if needs_campaign then begin
        if not (List.mem P.name [ "OptP"; "ANBKH"; "OptP-direct" ]) then
          Error
            (Printf.sprintf
               "--crash/--partition need a complete-broadcast protocol \
                (optp, anbkh or optp-direct); %s cannot serve \
                anti-entropy catch-up"
               P.name)
        else if fifo then
          Error "--crash/--partition do not combine with --fifo"
        else if churny then
          match
            detector_of ~fd ~fd_threshold ~heartbeat_every ~fd_adaptive
              ~joins ~leaves ~churn
          with
          | Error msg -> Error msg
          | Ok detector -> (
              match sessions_of ~sessions ~placement ~session_ops ~seed with
              | Error msg -> Error msg
              | Ok session_cfg -> (
              match
                churn_setup ~n ~seed ~crashes ~partitions ~joins ~leaves
                  ~initial ~churn
              with
              | Error msg -> Error msg
              | Ok (plan, ini) -> (
                  match
                    Churn_campaign.run
                      (module P)
                      ~spec ~latency ~plan ~initial:ini ?detector
                      ?sessions:session_cfg ~checkpoint_every ~seed ()
                  with
                  | exception Invalid_argument msg -> Error msg
                  | o ->
                      Ok
                        ( o.Churn_campaign.execution,
                          o.Churn_campaign.report,
                          o.Churn_campaign.view_reasons,
                          o.Churn_campaign.sessions ))))
        else
          match
            Fault_campaign.run
              (module P)
              ~spec ~latency
              ~plan:(plan_of ~crashes ~partitions ())
              ~checkpoint_every ~seed ()
          with
          | exception Invalid_argument msg -> Error msg
          | o ->
              Ok
                (o.Fault_campaign.execution, o.Fault_campaign.report, [], None)
      end
      else
        let o = Sim_run.run (module P) ~spec ~latency ~fifo ~seed () in
        Ok (o.Sim_run.execution, Checker.check o.Sim_run.execution, [], None)
    in
    match outcome with
    | Error msg -> `Error (false, msg)
    | Ok (execution, report, view_reasons, session_report) ->
        Format.printf "workload: %a@.protocol: %s@.@." Spec.pp spec P.name;
        (* the view's own provenance: why each epoch happened — scripted
           events, or in --fd mode the detector's suspicions and
           refutations *)
        if view_reasons <> [] then begin
          Format.printf "view changes:@.";
          List.iter
            (fun r ->
              Format.printf "  %a@." Churn_campaign.pp_view_reason r)
            view_reasons;
          Format.printf "@."
        end;
        let e = Provenance.explain execution report in
        Format.printf "%a@." Provenance.pp_explanation e;
        (* per-session rows: migration edges, every degraded/blocked
           claim joined against the checker's ground truth, and each
           session violation's nearest preceding migration *)
        (match session_report with
        | Some sr ->
            Format.printf "@.%a@."
              (Dsm_runtime.Session_tier.pp_explain ~execution)
              sr
        | None -> ());
        let session_dirty =
          match session_report with
          | Some sr -> not (Dsm_runtime.Session_tier.clean sr)
          | None -> false
        in
        if report.Checker.violations <> [] then
          `Error (false, "run is not clean")
        else if session_dirty then
          `Error (false, "session tier is not clean")
        else if
          claims_optimality P.name && report.Checker.unnecessary_delays > 0
        then
          `Error
            ( false,
              Printf.sprintf
                "%d unnecessary delays — %s claims Theorem 4 optimality"
                report.Checker.unnecessary_delays P.name )
        else `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ protocol $ n_procs $ m_vars $ ops $ write_ratio
       $ zipf $ latency $ seed $ fifo $ crashes $ partitions $ joins
       $ leaves $ initial_members $ churn $ fd_flag $ fd_threshold
       $ heartbeat_every $ fd_adaptive $ sessions_count $ session_placement
       $ session_ops $ checkpoint_every))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run a workload, audit it, and print the provenance of every \
          write delay: when the write was buffered, which predecessor \
          dot the protocol declared it was waiting on, and whether the \
          checker's ground-truth causal order confirms that claim \
          (necessary delay) or refutes it (false causality). Supports \
          the fault-campaign path via --crash/--partition and the \
          churn-campaign path via --join/--leave/--initial/--churn or \
          --fd (emergent membership: the report starts with the \
          detector's view-change provenance). With --sessions the \
          report ends with per-session rows: migration edges, every \
          degraded or blocked claim joined against the checker's \
          ground truth, and each session-guarantee violation named \
          with the migration edge nearest before it.")
    term

(* ---------------------------------------------------------------- *)
(* nemesis                                                           *)
(* ---------------------------------------------------------------- *)

module Nemesis = Dsm_runtime.Nemesis

let nemesis_cmd =
  let swarm_count =
    Arg.(
      value
      & opt (some int) None
      & info [ "swarm" ] ~docv:"N"
          ~doc:
            "Swarm mode: run $(docv) randomized combined-fault schedules \
             derived from --seed, classify each, and summarize the \
             verdict tally. Exits non-zero if any schedule lands outside \
             the accepted verdicts (clean, refuted-suspicion).")
  in
  let scenario_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Run one named scenario from the corpus (see \
             --list-scenarios) and check its verdict against the \
             scenario's expected set.")
  in
  let list_scenarios =
    Arg.(
      value & flag
      & info [ "list-scenarios" ]
          ~doc:"List the scenario corpus (name, expected verdicts, what \
                it exercises) and exit.")
  in
  let shrink_flag =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "On failure, greedily delta-debug the first failing schedule \
             to a minimal fault schedule still producing the same \
             verdict; combine with --out to save the reproducer.")
  in
  let out_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the failing (shrunk, with --shrink) schedule as \
             replayable $(b,causal-dsm-nemesis-plan/v1) JSON to $(docv). \
             With --replay, re-serializes the loaded schedule (canonical \
             round-trip).")
  in
  let replay_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a schedule from $(docv) (JSON emitted by --out) and \
             print its verdict. Deterministic: two replays of one file \
             produce byte-identical output.")
  in
  let nemesis_protocol =
    Arg.(
      value
      & opt string "optp"
      & info [ "protocol"; "p" ] ~docv:"P"
          ~doc:
            "Protocol under attack in swarm mode: $(b,optp), $(b,anbkh), \
             $(b,optp-direct), or $(b,canary) (a deliberately buggy \
             per-sender-FIFO protocol — the swarm must catch it).")
  in
  let shrink_and_out ~shrink ~out (r : Nemesis.result) =
    let sched =
      if shrink then begin
        let sh = Nemesis.shrink r.sched ~target:r.verdict in
        Format.printf "%a@." Nemesis.pp_shrink_report sh;
        sh.minimal
      end
      else r.sched
    in
    match out with
    | None -> ()
    | Some path ->
        write_file path (Nemesis.to_json_string sched);
        Format.printf "reproducer -> %s@." path
  in
  let action count scenario list_s shrink out replay proto seed =
    if Nemesis.protocol_by_name proto = None then
      `Error
        ( false,
          Printf.sprintf "unknown protocol %S (expected %s)" proto
            (String.concat " | " Nemesis.protocol_names) )
    else if list_s then begin
      List.iter
        (fun (sc : Nemesis.scenario) ->
          Format.printf "%-22s [%s]@.    %s@." sc.sched_.Nemesis.name
            (String.concat "; "
               (List.map Nemesis.verdict_name sc.expected))
            sc.about)
        Nemesis.scenarios;
      `Ok ()
    end
    else
      match replay with
      | Some path -> (
          match read_file path with
          | Error msg -> `Error (false, msg)
          | Ok text -> (
              match Nemesis.of_json_string text with
              | Error msg -> `Error (false, msg)
              | Ok sched ->
                  let r = Nemesis.run sched in
                  Format.printf "%a@." Nemesis.pp_result r;
                  Option.iter
                    (fun p ->
                      write_file p (Nemesis.to_json_string sched);
                      Format.printf "reproducer -> %s@." p)
                    out;
                  `Ok ()))
      | None -> (
          match scenario with
          | Some name -> (
              match Nemesis.find_scenario name with
              | None ->
                  `Error
                    ( false,
                      Printf.sprintf
                        "unknown scenario %S (try --list-scenarios)" name )
              | Some sc ->
                  let r = Nemesis.run sc.sched_ in
                  let ok = List.mem r.verdict sc.expected in
                  Format.printf "%a@.expected: [%s] — %s@." Nemesis.pp_result
                    r
                    (String.concat "; "
                       (List.map Nemesis.verdict_name sc.expected))
                    (if ok then "as expected" else "UNEXPECTED");
                  if ok then `Ok ()
                  else begin
                    shrink_and_out ~shrink ~out r;
                    `Error (false, "scenario verdict unexpected")
                  end)
          | None -> (
              match count with
              | Some n ->
                  let rep = Nemesis.swarm ~protocol:proto ~seed ~count:n () in
                  Format.printf "%a@." Nemesis.pp_swarm_report rep;
                  if rep.failures = [] then `Ok ()
                  else begin
                    (match rep.failures with
                    | r :: _ -> shrink_and_out ~shrink ~out r
                    | [] -> ());
                    `Error
                      ( false,
                        Printf.sprintf "%d/%d schedules not accepted"
                          (rep.total - rep.accepted_count)
                          rep.total )
                  end
              | None ->
                  (* full scenario table *)
                  let bad = ref 0 in
                  List.iter
                    (fun (sc : Nemesis.scenario) ->
                      let r = Nemesis.run sc.sched_ in
                      let ok = List.mem r.verdict sc.expected in
                      if not ok then incr bad;
                      Format.printf "%-22s %-18s expected [%s] %s@."
                        sc.sched_.Nemesis.name
                        (Nemesis.verdict_name r.verdict)
                        (String.concat "; "
                           (List.map Nemesis.verdict_name sc.expected))
                        (if ok then "ok" else "UNEXPECTED"))
                    Nemesis.scenarios;
                  if !bad = 0 then `Ok ()
                  else
                    `Error
                      ( false,
                        Printf.sprintf "%d scenario(s) off their expected \
                                        verdicts"
                          !bad )))
  in
  let term =
    Term.(
      ret
        (const action $ swarm_count $ scenario_name $ list_scenarios
       $ shrink_flag $ out_file $ replay_file $ nemesis_protocol $ seed))
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:
         "Unified adversarial fault campaigns: compose crashes, \
          partitions, churn, asymmetric link cuts, flapping, delay \
          inflation, corruption and an accrual failure detector in one \
          schedule, judge the run with one verdict taxonomy (clean, \
          refuted-suspicion, unnecessary-delay, ghost-leak, diverged, \
          violation, stuck), and on failure shrink the schedule to a \
          minimal replayable JSON reproducer. Default: run the scenario \
          corpus; --swarm N for randomized schedules; --replay FILE to \
          reproduce a saved case.")
    term

(* ---------------------------------------------------------------- *)
(* plan                                                              *)
(* ---------------------------------------------------------------- *)

(* a plan that composes fault families is the nemesis driver's: link
   faults always (no other driver arms them), and membership changes
   mixed with static faults (crashes/partitions) *)
let combined_plan plan =
  Fault_plan.has_link_faults plan
  || Fault_plan.has_churn plan
     && List.exists
          (function
            | Fault_plan.Crash _ | Fault_plan.Recover _ | Fault_plan.Cut _
            | Fault_plan.Heal _ ->
                true
            | _ -> false)
          plan

let plan_cmd =
  let driver =
    Arg.(
      value
      & opt
          (enum
             [
               ("auto", `Auto);
               ("fault", `Fault);
               ("churn", `Churn);
               ("nemesis", `Nemesis);
             ])
          `Auto
      & info [ "driver" ] ~docv:"D"
          ~doc:
            "Validate against this driver's acceptance rules: $(b,fault) \
             (static membership — refuses join/leave events), $(b,churn) \
             (dynamic membership over the slot universe), $(b,nemesis) \
             (combined fault schedules: every family at once), or \
             $(b,auto) (nemesis when the plan combines fault families — \
             link faults, or membership events mixed with \
             crashes/partitions — churn when it has membership events \
             alone, fault otherwise).")
  in
  let plan_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Validate a replayable nemesis schedule \
             ($(b,causal-dsm-nemesis-plan/v1) JSON, as emitted by \
             $(b,dsm-sim nemesis --out)) instead of building a plan from \
             flags; prints its expanded event schedule.")
  in
  let action n seed crashes partitions joins leaves initial churn driver
      plan_file =
    match plan_file with
    | Some path -> (
        match read_file path with
        | Error msg -> `Error (false, msg)
        | Ok text -> (
            match Nemesis.of_json_string text with
            | Error msg -> `Error (false, msg)
            | Ok sched ->
                Format.printf
                  "universe: %d slots, %d initial members@.driver: \
                   nemesis@.protocol: %s, seed %d@.events: %d@.%a@."
                  sched.Nemesis.universe sched.Nemesis.initial
                  sched.Nemesis.protocol sched.Nemesis.seed
                  (List.length sched.Nemesis.plan)
                  Fault_plan.pp sched.Nemesis.plan;
                `Ok ()))
    | None -> (
        match
          churn_setup ~n ~seed ~crashes ~partitions ~joins ~leaves ~initial
            ~churn
        with
        | Error msg -> `Error (false, msg)
        | Ok (plan, ini) -> (
            let validate_universe label =
              match
                Fault_plan.validate ~n
                  ~initial:(List.init ini (fun i -> i))
                  plan
              with
              | exception Invalid_argument msg -> Error msg
              | () -> Ok label
            in
            let accept =
              match driver with
              | `Fault -> (
                  match Fault_campaign.validate_plan ~n plan with
                  | exception Invalid_argument msg -> Error msg
                  | () -> Ok "fault-campaign")
              | `Nemesis -> validate_universe "nemesis"
              | `Auto when combined_plan plan -> validate_universe "nemesis"
              | `Churn | `Auto when Fault_plan.has_churn plan || driver = `Churn
                ->
                  validate_universe "churn-campaign"
              | _ -> (
                  match Fault_campaign.validate_plan ~n plan with
                  | exception Invalid_argument msg -> Error msg
                  | () -> Ok "fault-campaign")
            in
            match accept with
            | Error msg -> `Error (false, msg)
            | Ok accepted_by ->
                Format.printf
                  "universe: %d slots, %d initial members@.driver: \
                   %s@.events: %d@.%a@."
                  n ini accepted_by (List.length plan) Fault_plan.pp plan;
                `Ok ()))
  in
  let term =
    Term.(
      ret
        (const action $ n_procs $ seed $ crashes $ partitions $ joins
       $ leaves $ initial_members $ churn $ driver $ plan_file))
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Expand and validate a fault/churn plan without running it: \
          print the time-sorted event schedule built from \
          --crash/--partition/--join/--leave/--churn (or loaded from a \
          nemesis reproducer with --file) and check it against the \
          chosen campaign driver's acceptance rules. Exits non-zero \
          (with the driver's own message) when the plan is rejected — \
          e.g. a churny plan offered to the static fault-campaign \
          driver.")
    term

(* ---------------------------------------------------------------- *)
(* tables                                                            *)
(* ---------------------------------------------------------------- *)

let tables_cmd =
  let section =
    Arg.(
      value
      & opt (some string) None
      & info [ "section" ] ~docv:"ID"
          ~doc:"Only this section (T1, T2, F1, F2, F3, F6 or F7).")
  in
  let action section =
    let all =
      [
        ("T1", fun () -> print_string (Dsm_stats.Table_fmt.render (Experiment.table1 ())));
        ("T2", fun () -> print_string (Dsm_stats.Table_fmt.render (Experiment.table2 ())));
        ("F1", fun () -> print_string (Experiment.figure1 ()));
        ("F2", fun () -> print_string (Experiment.figure2 ()));
        ("F3", fun () -> print_string (Experiment.figure3 ()));
        ("F6", fun () -> print_string (Experiment.figure6 ()));
        ("F7", fun () -> print_string (Experiment.figure7 ()));
      ]
    in
    match section with
    | None ->
        List.iter
          (fun (id, f) ->
            Printf.printf "---- %s ----\n" id;
            f ();
            print_newline ())
          all;
        `Ok ()
    | Some id -> (
        match List.assoc_opt (String.uppercase_ascii id) all with
        | Some f ->
            f ();
            `Ok ()
        | None -> `Error (false, "unknown section " ^ id))
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Regenerate the paper's tables and figure runs.")
    Term.(ret (const action $ section))

(* ---------------------------------------------------------------- *)
(* sweep                                                             *)
(* ---------------------------------------------------------------- *)

let sweep_cmd =
  let experiment =
    Arg.(
      required
      & opt (some string) None
      & info [ "e"; "experiment" ] ~docv:"ID"
          ~doc:"Experiment id: q1 .. q12.")
  in
  let action experiment =
    let table =
      match String.lowercase_ascii experiment with
      | "q1" -> Some (Experiment.q1_sweep_processes ())
      | "q2" -> Some (Experiment.q2_sweep_latency_variance ())
      | "q3" -> Some (Experiment.q3_sweep_write_ratio ())
      | "q4" -> Some (Experiment.q4_buffer_occupancy ())
      | "q5" -> Some (Experiment.q5_apply_latency ())
      | "q6" -> Some (Experiment.q6_ws_skips ())
      | "q7" -> Some (Experiment.q7_fifo_ablation ())
      | "q8" -> Some (Experiment.q8_lossy_links ())
      | "q9" -> Some (Experiment.q9_divergence ())
      | "q10" -> Some (Experiment.q10_metadata_size ())
      | "q11" -> Some (Experiment.q11_partial_replication ())
      | "q12" -> Some (Experiment.q12_crash_recovery ())
      | _ -> None
    in
    match table with
    | Some t ->
        print_string (Dsm_stats.Table_fmt.render t);
        `Ok ()
    | None -> `Error (false, "unknown experiment " ^ experiment)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run one of the quantitative experiments.")
    Term.(ret (const action $ experiment))

(* ---------------------------------------------------------------- *)
(* graph                                                             *)
(* ---------------------------------------------------------------- *)

let graph_cmd =
  let action (module P : Dsm_core.Protocol.S) n m ops write_ratio zipf
      latency seed =
    let spec = spec_of ~n ~m ~ops ~write_ratio ~zipf ~seed in
    let outcome = Sim_run.run (module P) ~spec ~latency ~seed () in
    let co = Dsm_memory.Causal_order.compute outcome.history in
    let graph = Dsm_memory.Causality_graph.compute co in
    print_string (Dsm_memory.Causality_graph.to_graphviz graph);
    `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ protocol $ n_procs $ m_vars $ ops $ write_ratio
       $ zipf $ latency $ seed))
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Run a workload and emit the write causality graph of the \
          resulting history in Graphviz format.")
    term

(* ---------------------------------------------------------------- *)
(* report                                                            *)
(* ---------------------------------------------------------------- *)

module Report = Dsm_runtime.Report

let report_cmd =
  let action (module P : Dsm_core.Protocol.S) n m ops write_ratio zipf
      latency seed fifo json out series_out scrape_every =
    let spec = spec_of ~n ~m ~ops ~write_ratio ~zipf ~seed in
    let metrics = Metrics.create () in
    let wire = Dsm_obs.Wire.create ~proto:P.name ~n () in
    let recorder = Dsm_obs.Timeseries.create ~metrics () in
    let outcome =
      Sim_run.run
        (module P)
        ~spec ~latency ~fifo ~seed ~metrics ~wire ~recorder ~scrape_every ()
    in
    let r = Report.make ~spec ~net_seed:seed ~outcome ~metrics ~wire ~recorder () in
    if json then print_endline (Report.to_string r)
    else Format.printf "%a" Report.pp r;
    (match out with
    | None -> ()
    | Some path ->
        write_file path (Report.to_string r ^ "\n");
        if not json then Format.printf "report -> %s@." path);
    (match series_out with
    | None -> ()
    | Some path ->
        write_file path (Dsm_obs.Timeseries.to_jsonl recorder);
        if not json then
          Format.printf "timeseries: %d scrapes -> %s@."
            (Dsm_obs.Timeseries.scrapes recorder)
            path);
    let report = r.Report.checker in
    if not (Checker.is_clean report) then `Error (false, "run is not clean")
    else if
      claims_optimality P.name && report.Checker.unnecessary_delays > 0
    then
      `Error
        ( false,
          Printf.sprintf
            "%d unnecessary delays — %s claims Theorem 4 optimality"
            report.Checker.unnecessary_delays P.name )
    else `Ok ()
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the report document to $(docv).")
  in
  let series_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "series-out" ] ~docv:"FILE"
          ~doc:
            "Write the flight recorder's retained scrapes to $(docv) as \
             JSONL (one object per scrape).")
  in
  let report_json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the causal-dsm-report/v1 document on stdout instead of \
             the human-readable report.")
  in
  let term =
    Term.(
      ret
        (const action $ protocol $ n_procs $ m_vars $ ops $ write_ratio
       $ zipf $ latency $ seed $ fifo $ report_json $ out $ series_out
       $ scrape_every_arg))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a workload with the full observability stack armed — \
          metrics registry, wire-cost accountant, flight recorder — and \
          emit one report joining the checker verdicts, per-cause byte \
          accounting, delivery-latency and blocked-duration quantiles, \
          and the raw instruments (causal-dsm-report/v1 with --json). \
          Same exit conventions as $(b,run). The observers are pure: the \
          simulated outcome matches an unobserved run with the same \
          seeds.")
    term

(* ---------------------------------------------------------------- *)
(* bench diff                                                        *)
(* ---------------------------------------------------------------- *)

module Bench_diff = Dsm_runtime.Bench_diff

let bench_cmd =
  let diff_action old_path new_path fail_over all =
    let load path =
      match read_file path with
      | Error msg -> Error msg
      | Ok text -> (
          match Dsm_stats.Json.parse_result text with
          | Ok doc -> Ok doc
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
    in
    match (load old_path, load new_path) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok old_doc, Ok new_doc -> (
        match Bench_diff.diff ~fail_over ~old_doc ~new_doc () with
        | exception Invalid_argument msg -> `Error (false, msg)
        | d ->
            Format.printf "%a" (Bench_diff.pp ~all) d;
            let regs = Bench_diff.regressions d in
            if regs <> [] then
              `Error
                ( false,
                  Printf.sprintf "%d metric(s) regressed beyond %.2fx"
                    (List.length regs) fail_over )
            else `Ok ())
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench JSON document.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench JSON document.")
  in
  let fail_over =
    Arg.(
      value & opt float 2.0
      & info [ "fail-over" ] ~docv:"X"
          ~doc:
            "Regression threshold: fail when a metric worsens by more \
             than $(docv)x (must exceed 1.0).")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Show every shared metric, including unregressed info rows.")
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two causal-dsm-bench/v1 documents metric by metric. \
            Direction is inferred from each metric's name (ns/ms/pct/\
            bytes are lower-is-better, throughput/speedup higher); a \
            metric worsening beyond --fail-over is a regression and the \
            command exits non-zero. Metrics present in only one document \
            are listed but never fatal.")
      Term.(
        ret (const diff_action $ old_arg $ new_arg $ fail_over $ all_flag))
  in
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Benchmark-artifact tooling (regression comparison).")
    [ diff_cmd ]

(* ---------------------------------------------------------------- *)
(* soak                                                              *)
(* ---------------------------------------------------------------- *)

module Soak = Dsm_runtime.Soak

let soak_cmd =
  let action protocol universe vars epochs window ops_per_epoch write_ratio
      churn fault latency seed drop duplicate corrupt lax out quiet =
    let (module P : Dsm_core.Protocol.S) = protocol in
    if P.name = "WS-token" then
      `Error
        ( false,
          "soak needs every write on the wire for anti-entropy re-supply; \
           WS-token's sender-side overwriting never propagates covered \
           writes" )
    else
    let cfg =
      {
        Soak.default with
        universe;
        vars;
        epochs;
        window;
        ops_per_epoch;
        write_ratio;
        churn_prob = churn;
        fault_prob = fault;
        latency;
        seed;
        drop;
        duplicate;
        corrupt;
        strict_delays = claims_optimality P.name && not lax;
      }
    in
    match Soak.run (module P) cfg with
    | exception (Invalid_argument msg | Failure msg) -> `Error (false, msg)
    | o ->
        if not quiet then begin
          Format.printf "%a@." Soak.pp_outcome o;
          Format.printf "high-water:@.";
          List.iter
            (fun (name, v) -> Format.printf "  %-28s %d@." name v)
            (Soak.high_water_table o)
        end;
        (match out with
        | None -> ()
        | Some path ->
            write_file path (Dsm_stats.Json.to_string (Soak.to_json o) ^ "\n");
            Format.printf "soak report -> %s@." path);
        if o.Soak.clean then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf
                "soak not clean: %d violations, %d lost, %d ghosts, %d \
                 forged, %d cross-window dups, %d unnecessary delays"
                o.Soak.violations o.Soak.lost o.Soak.ghost_dots
                o.Soak.forged_values o.Soak.cross_window_dups
                o.Soak.unnecessary_delays )
  in
  let universe =
    Arg.(
      value & opt int Soak.default.Soak.universe
      & info [ "universe"; "n" ] ~docv:"N"
          ~doc:"Slot universe (all slots start as members).")
  in
  let vars =
    Arg.(
      value & opt int Soak.default.Soak.vars
      & info [ "m"; "vars" ] ~docv:"M" ~doc:"Shared variables.")
  in
  let epochs =
    Arg.(
      value & opt int Soak.default.Soak.epochs
      & info [ "epochs" ] ~docv:"E" ~doc:"Workload epochs to run.")
  in
  let window =
    Arg.(
      value & opt int Soak.default.Soak.window
      & info [ "window" ] ~docv:"W"
          ~doc:"Epochs between convergence barriers (audit windows).")
  in
  let ops_per_epoch =
    Arg.(
      value & opt int Soak.default.Soak.ops_per_epoch
      & info [ "ops-per-epoch" ] ~docv:"K" ~doc:"Operations per epoch.")
  in
  let write_ratio =
    Arg.(
      value & opt float Soak.default.Soak.write_ratio
      & info [ "write-ratio" ] ~docv:"R" ~doc:"Fraction of ops that write.")
  in
  let churn =
    Arg.(
      value & opt float Soak.default.Soak.churn_prob
      & info [ "churn" ] ~docv:"P"
          ~doc:
            "Per-epoch probability of one churn action (leave, crash, \
             rejoin, or adoption of a recycled slot).")
  in
  let fault =
    Arg.(
      value & opt float Soak.default.Soak.fault_prob
      & info [ "fault" ] ~docv:"P"
          ~doc:"Per-epoch probability of one link cut (healed later).")
  in
  let latency =
    Arg.(
      value & opt latency_conv Soak.default.Soak.latency
      & info [ "latency" ] ~docv:"SPEC"
          ~doc:"Latency model (const:C | uniform:LO,HI | exp:MEAN | \
                lognormal:MU,SIGMA | pareto:SCALE,SHAPE).")
  in
  let seed =
    Arg.(
      value & opt int Soak.default.Soak.seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"Root of every random stream.")
  in
  let drop =
    Arg.(
      value & opt float Soak.default.Soak.drop
      & info [ "drop" ] ~docv:"P" ~doc:"Per-frame drop probability.")
  in
  let duplicate =
    Arg.(
      value & opt float Soak.default.Soak.duplicate
      & info [ "duplicate" ] ~docv:"P"
          ~doc:"Per-frame duplication probability.")
  in
  let corrupt =
    Arg.(
      value & opt float Soak.default.Soak.corrupt
      & info [ "corrupt" ] ~docv:"P"
          ~doc:"Per-frame corruption probability.")
  in
  let lax =
    Arg.(
      value & flag
      & info [ "lax" ]
          ~doc:
            "Do not count unnecessary delays against the verdict even \
             for Theorem 4 protocols.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the soak report (BENCH_soak.json schema) to $(docv).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress the text summary (still exits \
                               non-zero on a dirty verdict).")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Unbounded-lifetime churn soak: epochs of randomized workload, \
          slot reuse under bumped generations, crash-rejoins and link \
          faults, with convergence barriers every --window epochs that \
          audit the window (safety, legality, Theorem 4 delay \
          accounting), scan for ghost dots and forged values, reclaim \
          retired state (slot frees, log pruning, dedup watermarks) and \
          record memory/wire high-water marks. Exits non-zero unless the \
          whole run is clean.")
    Term.(
      ret
        (const action $ protocol $ universe $ vars $ epochs $ window
       $ ops_per_epoch $ write_ratio $ churn $ fault $ latency $ seed
       $ drop $ duplicate $ corrupt $ lax $ out $ quiet))

let () =
  let default =
    Term.(ret (const (`Help (`Pager, None))))
  in
  let info =
    Cmd.info "dsm-sim" ~version:"1.0.0"
      ~doc:
        "Causally consistent distributed shared memory: OptP and its \
         baselines on a deterministic discrete-event simulator."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            run_cmd;
            report_cmd;
            explain_cmd;
            nemesis_cmd;
            plan_cmd;
            tables_cmd;
            sweep_cmd;
            graph_cmd;
            soak_cmd;
            bench_cmd;
          ]))
