(* Lossy WAN: causal memory over links that drop and duplicate.

   The paper assumes reliable exactly-once channels (§3.1). This
   example runs OptP over a WAN where every frame is dropped with
   probability 25% and duplicated with probability 10%, with the
   reliable-channel substrate (sequence numbers, acknowledgments,
   timeout retransmission, receiver deduplication) rebuilding the
   assumption underneath. The independent checker then certifies that
   nothing was lost and no consistency property bent: fault tolerance
   costs wire traffic and time, never correctness.

   For contrast, the same workload is then run over the same faulty
   links *without* the recovery layer — and the checker reports exactly
   what broke.

   Run with:  dune exec examples/lossy_wan.exe *)

module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Network = Dsm_sim.Network
module Reliable_run = Dsm_runtime.Reliable_run
module Sim_run = Dsm_runtime.Sim_run
module Checker = Dsm_runtime.Checker

let spec =
  Spec.make ~n:5 ~m:6 ~ops_per_process:120 ~write_ratio:0.5
    ~think:(Latency.Exponential { mean = 8. })
    ~seed:404 ()

let wan =
  Latency.Shifted
    { base = 15.; jitter = Latency.Exponential { mean = 10. } }

let faults = { Network.drop = 0.25; duplicate = 0.10; corrupt = 0. }

let () =
  Format.printf "== Causal memory over a lossy WAN ==@.@.";
  Format.printf "workload: %a@.network:  %a, drop=%.0f%%, dup=%.0f%%@.@."
    Spec.pp spec Latency.pp wan (100. *. faults.Network.drop)
    (100. *. faults.Network.duplicate);

  (* with the reliable-channel substrate *)
  let healed =
    Reliable_run.run (module Dsm_core.Opt_p) ~spec ~latency:wan ~faults
      ~retransmit_after:80. ~seed:11 ()
  in
  Format.printf "%a@." Reliable_run.pp_outcome healed;
  let report = Checker.check healed.execution in
  Format.printf "checker: %a@.@." Checker.pp_report report;
  assert (Checker.is_clean report);
  assert (report.Checker.complete);

  (* the same faults with no recovery layer: the checker names the
     damage *)
  print_endline "---- same links, no recovery layer ----";
  let raw =
    Sim_run.run (module Dsm_core.Opt_p) ~spec ~latency:wan ~faults ~seed:11
      ()
  in
  let raw_report = Checker.check raw.execution in
  Format.printf
    "raw run: %d msgs sent, %d writes lost somewhere, clean=%b@."
    raw.messages_sent
    (List.length raw_report.Checker.lost)
    (Checker.is_clean raw_report);
  assert (not (Checker.is_clean raw_report));
  Format.printf
    "@.The reliable layer paid %.2f frames per payload and %d \
     retransmissions to keep the paper's channel assumption true.@."
    (float_of_int healed.frames_sent
    /. float_of_int (max 1 healed.payloads_sent))
    healed.retransmissions
