(* Social timeline: why causal consistency matters, and what OptP does
   about it.

   The classic anomaly (the very scenario causal memory was invented
   for): Alice first restricts her ACL so her boss cannot read her
   posts, and only then posts a complaint. The two writes are related
   by process order, so ACL ↦co POST. If a replica applies the post
   without the ACL update, the boss's replica shows the complaint while
   still showing the old, permissive ACL.

   This example runs the same message schedule — the post's message
   overtakes the ACL's on the way to the boss's replica — under:

   - a deliberately broken "Eager" protocol, defined right here against
     the public [Protocol.S] interface, which applies every write the
     moment it arrives, and
   - OptP, which delays the post until the ACL update has been applied
     (a necessary delay, per the paper's Definition 5).

   The independent checker convicts the eager run (safety violation and
   an illegal stale read at the boss's replica) and certifies the OptP
   run clean.

   Run with:  dune exec examples/social_timeline.exe *)

module Protocol = Dsm_core.Protocol
module Scripted_run = Dsm_runtime.Scripted_run
module Checker = Dsm_runtime.Checker
module Execution = Dsm_runtime.Execution
module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock

(* A protocol that ignores causality: applies on receipt. It is live
   and wait-free but NOT safe w.r.t. ↦co — the checker will prove it. *)
module Eager : Protocol.S = struct
  type message = { var : int; value : int; dot : Dot.t }
  type msg = message

  type t = {
    cfg : Protocol.config;
    me : int;
    store : Dsm_core.Replica_store.t;
    applied : V.t;
    mutable next_seq : int;
  }

  let name = "Eager (broken)"

  let create cfg ~me =
    {
      cfg;
      me;
      store = Dsm_core.Replica_store.create ~m:cfg.Protocol.m;
      applied = V.create cfg.Protocol.n;
      next_seq = 1;
    }

  let me t = t.me

  let grow _t ~n:_ = invalid_arg "Eager.grow: static test protocol"

  let set_generation _t ~gen =
    if gen <> 0 then
      invalid_arg "Eager.set_generation: static test protocol"

  let generation _t = 0
  let adopt _cfg ~me:_ ~gen:_ ~sponsor:_ =
    invalid_arg "Eager.adopt: static test protocol"

  let write t ~var ~value =
    let dot = Dot.make ~replica:t.me ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    Dsm_core.Replica_store.apply t.store ~var ~value ~dot;
    V.tick t.applied t.me;
    let open Protocol in
    ( dot,
      effects
        ~applied:
          [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
        ~to_send:[ Broadcast { var; value; dot } ]
        () )

  let read t ~var = Dsm_core.Replica_store.read t.store ~var

  let receive t ~src:_ (m : msg) =
    Dsm_core.Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
    (* count per-issuer applies on a high-water basis: Eager has no
       ordering, so seqs can arrive out of order *)
    if Dot.seq m.dot > V.get t.applied (Dot.replica m.dot) then
      V.set t.applied (Dot.replica m.dot) (Dot.seq m.dot);
    let open Protocol in
    effects
      ~applied:
        [
          {
            adot = m.dot;
            avar = m.var;
            avalue = m.value;
            afrom_buffer = false;
          };
        ]
      ()

  let waiting_for _ ~src:_ _ = None (* never buffers *)
  let buffered _ = 0
  let buffer_wakeup_scans _ = 0
  let buffer_high_watermark _ = 0
  let total_buffered _ = 0
  let applied_vector t = V.copy t.applied
  let local_clock t = V.copy t.applied
  let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

  (* var + value on the wire; the dot is the only causal metadata *)
  let msg_frame (_ : msg) =
    { Dsm_obs.Wire.kind = "write"; scalars = 2; dots = 1; vectors = [] }

  let pp_msg ppf (m : msg) =
    Format.fprintf ppf "m(x%d := %d)" (m.var + 1) m.value

  let snapshot t = Protocol.Snapshot.encode t

  let restore cfg ~me s =
    let t : t = Protocol.Snapshot.decode s in
    Protocol.Snapshot.check_identity ~proto:"Eager" ~cfg ~me ~cfg':t.cfg
      ~me':t.me;
    t
end

(* the scenario: Alice = p1, a friend = p2, the boss = p3 *)
let acl = 0 (* x1: 0 = ⊥/public, 1 = restricted *)
let post = 1 (* x2: 9 = the complaint *)

let ops =
  [
    (0.0, Scripted_run.Write { proc = 0; var = acl; value = 1 });
    (1.0, Scripted_run.Write { proc = 0; var = post; value = 9 });
    (* the boss's replica reads the timeline, then the ACL *)
    (20.0, Scripted_run.Read { proc = 2; var = post });
    (21.0, Scripted_run.Read { proc = 2; var = acl });
  ]

(* the post's message overtakes the ACL's on the way to p3 *)
let delay ~src:_ ~dst ~dot =
  let is_acl = Dot.seq dot = 1 in
  match (dst, is_acl) with
  | 2, true -> 30. (* ACL update reaches the boss late *)
  | 2, false -> 5. (* the post gets there early *)
  | _, _ -> 2.

let describe label (module P : Protocol.S) =
  Printf.printf "---- %s ----\n" P.name;
  ignore label;
  let outcome = Scripted_run.run (module P) ~n:3 ~m:2 ~ops ~delay () in
  Format.printf "boss's replica (p3): %a@."
    (Execution.pp_process outcome.execution 2)
    ();
  let report = Checker.check outcome.execution in
  Format.printf "checker: %a@.@." Checker.pp_report report;
  report

let () =
  print_endline "== The ACL anomaly, eager vs causal ==\n";
  let eager_report = describe "eager" (module Eager) in
  let optp_report = describe "optp" (module Dsm_core.Opt_p) in
  assert (not (Checker.is_clean eager_report));
  assert (Checker.is_clean optp_report);
  assert (optp_report.Checker.unnecessary_delays = 0);
  print_endline
    "Eager applied the post before the ACL at the boss's replica and \
     produced an illegal stale read;\n\
     OptP delayed the post exactly until the ACL arrived — a necessary \
     delay, and the anomaly is gone."
