module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Buffer = Dsm_sim.Delivery_buffer
open Protocol

type message = { var : int; value : int; dot : Dot.t; vt : V.t }

module type IMPL = sig
  include Protocol.S with type msg = message

  val deliverable : t -> src:int -> msg -> bool
end

module Make (B : Buffer.S) = struct
  type msg = message

  type t = {
    mutable cfg : config;
    me : int;
    mutable my_gen : int;  (* occupancy generation of this slot (reuse) *)
    store : Replica_store.t;
    delivered : V.t;  (* per-issuer count of writes applied here *)
    vt : V.t;  (* Fidge-Mattern clock over write-send events *)
    buffer : (int * msg) B.t;
  }

  let name = "ANBKH"

  let create cfg ~me =
    if me < 0 || me >= cfg.n then
      invalid_arg "Anbkh.create: process id out of range";
    {
      cfg;
      me;
      my_gen = 0;
      store = Replica_store.create ~m:cfg.m;
      delivered = V.create cfg.n;
      vt = V.create cfg.n;
      buffer = B.create ();
    }

  let me t = t.me

  let set_generation t ~gen =
    if gen < 0 then invalid_arg "Anbkh.set_generation: negative generation";
    t.my_gen <- gen

  let generation t = t.my_gen

  let grow t ~n =
    if n < t.cfg.n then invalid_arg "Anbkh.grow: cannot shrink";
    if n > t.cfg.n then begin
      t.cfg <- { t.cfg with n };
      V.grow t.delivered n;
      V.grow t.vt n
    end

  (* causal-broadcast wait condition as a wakeup constraint; the scan
     bound is the narrower of the local view and the message's send-time
     view — components beyond a vector's size are implicit zeros and can
     never block *)
  let status t ((src, m) : int * msg) : Buffer.status =
    let d_src = V.get0 t.delivered src in
    let v_src = V.get0 m.vt src in
    if d_src < v_src - 1 then Wait_for { counter = src; count = v_src - 1 }
    else if d_src > v_src - 1 then Stuck  (* duplicate: already applied *)
    else
      let n = min t.cfg.n (V.size m.vt) in
      let rec scan k =
        if k >= n then Buffer.Ready
        else if k <> src && V.unsafe_get m.vt k > V.unsafe_get t.delivered k
        then Wait_for { counter = k; count = V.unsafe_get m.vt k }
        else scan (k + 1)
      in
      scan 0

  let deliverable t ~src (m : msg) =
    match status t (src, m) with
    | Buffer.Ready -> true
    | Wait_for _ | Stuck -> false

  let waiting_for t ~src m =
    match status t (src, m) with
    | Buffer.Wait_for { counter; count } ->
        Some (Dot.make ~replica:counter ~seq:count)
    | Ready | Stuck -> None

  module Step = Protocol.Step (B)

  let write t ~var ~value =
    V.tick t.vt t.me;
    (* canonical-gen rule: stamp only alongside the counter advance *)
    if t.my_gen > 0 then V.set_gen t.vt t.me t.my_gen;
    let vt = V.copy t.vt in
    let dot = Dot.of_clock vt t.me in
    let m = { var; value; dot; vt } in
    Replica_store.apply t.store ~var ~value ~dot;
    V.tick t.delivered t.me;
    B.note_advance t.buffer ~status:(status t) ~counter:t.me
      ~count:(V.unsafe_get t.delivered t.me);
    let applied =
      [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
    in
    (dot, effects ~applied ~to_send:[ Broadcast m ] ())

  (* reads are purely local: the vector is a message-ordering device and
     does not change on reads *)
  let read t ~var = Replica_store.read t.store ~var

  let apply_msg t ~status ~src m ~from_buffer =
    Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
    V.tick t.delivered src;
    if Dot.gen m.dot > 0 then V.set_gen t.delivered src (Dot.gen m.dot);
    B.note_advance t.buffer ~status ~counter:src
      ~count:(V.unsafe_get t.delivered src);
    (* causal broadcast: absorb the sender's knowledge unconditionally —
       the source of false causality w.r.t. ↦co. [merge_into] is the
       in-place scratch merge: no intermediate vector. *)
    V.merge_into t.vt m.vt;
    { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

  let receive t ~src m =
    let status = status t in
    Step.receive t.buffer ~status ~apply:(apply_msg t ~status) ~src m

  let buffered t = B.length t.buffer
  let buffer_high_watermark t = B.high_watermark t.buffer
  let total_buffered t = B.total_buffered t.buffer
  let buffer_wakeup_scans t = B.oracle_calls t.buffer
  let applied_vector t = V.copy t.delivered
  let local_clock t = V.copy t.vt

  let pp_msg ppf m =
    Format.fprintf ppf "m(x%d, %d, %a)" (m.var + 1) m.value V.pp m.vt

  let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

  let msg_frame (m : msg) =
    { Dsm_obs.Wire.kind = "write"; scalars = 2; dots = 1; vectors = [ m.vt ] }

  let snapshot t = Snapshot.encode t

  let restore cfg ~me s =
    let t : t = Snapshot.decode s in
    Snapshot.check_identity ~proto:"Anbkh" ~cfg ~me ~cfg':t.cfg ~me':t.me;
    t

  (* Slot reuse (see Opt_p.adopt): keep the sponsor's replica image,
     discard its process identity. For causal broadcast the working
     clock must still dominate everything applied locally, so the
     adopter's vt starts from the sponsor's DELIVERED counts (all of
     which the reuse gate guarantees are cluster-wide), not from the
     sponsor's send-time clock. *)
  let adopt cfg ~me ~gen ~sponsor =
    if me < 0 || me >= cfg.n then
      invalid_arg "Anbkh.adopt: process id out of range";
    if gen < 1 then invalid_arg "Anbkh.adopt: generation must be positive";
    let s : t = Snapshot.decode sponsor in
    if s.cfg <> cfg then
      invalid_arg "Anbkh.adopt: snapshot from a different config";
    {
      cfg;
      me;
      my_gen = gen;
      store = s.store;
      delivered = s.delivered;
      vt = V.copy s.delivered;
      buffer = B.create ();
    }
end

include Make (Buffer.Indexed)
module Scan = Make (Buffer.Scan)
