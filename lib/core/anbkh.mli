(** ANBKH — the causal-broadcast baseline (Ahamad, Neiger, Burns, Kohli
    & Hutto 1995; §3.6 of the paper).

    Write messages are delivered in causal order of their {e send}
    events using a Fidge–Mattern vector clock whose relevant events are
    the write-sends. The deliverability predicate is syntactically the
    same as OptP's; the semantic difference is where the vector grows:

    - OptP merges a write's timestamp into the local vector only when
      the process {e reads} the written value;
    - ANBKH merges it at {e every delivery}.

    Consequently ANBKH's vector tracks Lamport's happened-before [→] of
    the sends, a strict superset of [↦co], and
    [𝒳_ANBKH(e) ⊇ 𝒳_co-safe(e)] with strict inclusion whenever a
    process writes after applying (without reading) a concurrent write —
    the "false causality" of Figure 3. ANBKH is safe but not write-delay
    optimal (the experiments quantify the gap). *)

type message = {
  var : int;
  value : int;
  dot : Dsm_vclock.Dot.t;
  vt : Dsm_vclock.Vector_clock.t;
      (** Fidge–Mattern timestamp of the send event (write-sends are
          the counted events). *)
}

module type IMPL = sig
  include Protocol.S with type msg = message

  val deliverable : t -> src:int -> msg -> bool
end

include IMPL
(** Default instantiation over the counter-indexed
    {!Dsm_sim.Delivery_index} (O(1) amortized wakeups). *)

module Scan : IMPL
(** Reference instantiation over the seed scanning {!Dsm_sim.Mailbox};
    behaviourally identical, kept for differential testing. *)

module Make (_ : Dsm_sim.Delivery_buffer.S) : IMPL
(** ANBKH over an arbitrary delivery-buffer strategy. *)
