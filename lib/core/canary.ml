module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Mailbox = Dsm_sim.Mailbox
open Protocol

type message = { var : int; value : int; dot : Dot.t }
type msg = message

type t = {
  mutable cfg : config;
  me : int;
  mutable my_gen : int;  (* occupancy generation of this slot (reuse) *)
  store : Replica_store.t;
  apply_cnt : V.t;
  buffer : (int * msg) Mailbox.t;
}

let name = "Canary"

let create cfg ~me =
  if me < 0 || me >= cfg.n then
    invalid_arg "Canary.create: process id out of range";
  {
    cfg;
    me;
    my_gen = 0;
    store = Replica_store.create ~m:cfg.m;
    apply_cnt = V.create cfg.n;
    buffer = Mailbox.create ();
  }

let me t = t.me

let set_generation t ~gen =
  if gen < 0 then invalid_arg "Canary.set_generation: negative generation";
  t.my_gen <- gen

let generation t = t.my_gen

let grow t ~n =
  if n < t.cfg.n then invalid_arg "Canary.grow: cannot shrink";
  if n > t.cfg.n then begin
    t.cfg <- { t.cfg with n };
    V.grow t.apply_cnt n
  end

let write t ~var ~value =
  V.tick t.apply_cnt t.me;
  if t.my_gen > 0 then V.set_gen t.apply_cnt t.me t.my_gen;
  let dot = Dot.of_clock t.apply_cnt t.me in
  Replica_store.apply t.store ~var ~value ~dot;
  let applied =
    [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
  in
  (dot, effects ~applied ~to_send:[ Broadcast { var; value; dot } ] ())

let read t ~var = Replica_store.read t.store ~var

(* THE BUG: deliverability checks only the sender's own chain.  A write
   that causally depends on another issuer's write (its issuer read
   that value first) is applied as soon as the sender chain is gap-free
   — cross-issuer causal order is simply ignored. *)
let deliverable t ~src (m : msg) = V.get t.apply_cnt src = Dot.seq m.dot - 1

let waiting_for t ~src (m : msg) =
  let a = V.get t.apply_cnt src in
  let seq = Dot.seq m.dot in
  if a >= seq then None
  else if a < seq - 1 then Some (Dot.make ~replica:src ~seq:(seq - 1))
  else None

let apply_msg t ~src (m : msg) ~from_buffer =
  Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
  V.tick t.apply_cnt src;
  if Dot.gen m.dot > 0 then V.set_gen t.apply_cnt src (Dot.gen m.dot);
  { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

let drain t ~f =
  let rec go acc =
    match Mailbox.take_first t.buffer ~f with
    | Some (src, m) -> go (apply_msg t ~src m ~from_buffer:true :: acc)
    | None -> List.rev acc
  in
  go []

let receive t ~src m =
  if V.get t.apply_cnt src >= Dot.seq m.dot then no_effects (* duplicate *)
  else if deliverable t ~src m then begin
    let first = apply_msg t ~src m ~from_buffer:false in
    let f (src, m) = deliverable t ~src m in
    effects ~applied:(first :: drain t ~f) ()
  end
  else begin
    Mailbox.add t.buffer (src, m);
    no_effects
  end

let buffered t = Mailbox.length t.buffer
let buffer_high_watermark t = Mailbox.high_watermark t.buffer
let total_buffered t = Mailbox.total_buffered t.buffer
let buffer_wakeup_scans t = Mailbox.scans t.buffer
let applied_vector t = V.copy t.apply_cnt
let local_clock t = V.copy t.apply_cnt
let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

let msg_frame (_ : msg) =
  { Dsm_obs.Wire.kind = "write"; scalars = 2; dots = 1; vectors = [] }

let pp_msg ppf (m : msg) =
  Format.fprintf ppf "m(x%d, %d, %a)" (m.var + 1) m.value Dot.pp m.dot

let snapshot t = Snapshot.encode t

let restore cfg ~me s =
  let t : t = Snapshot.decode s in
  Snapshot.check_identity ~proto:"Canary" ~cfg ~me ~cfg':t.cfg ~me':t.me;
  t

(* Slot reuse (see Opt_p.adopt). The canary's own counter IS its
   apply_cnt entry, which the sponsor image carries at the retired
   occupant's final value — the adopter's writes continue from there
   automatically. *)
let adopt cfg ~me ~gen ~sponsor =
  if me < 0 || me >= cfg.n then
    invalid_arg "Canary.adopt: process id out of range";
  if gen < 1 then invalid_arg "Canary.adopt: generation must be positive";
  let s : t = Snapshot.decode sponsor in
  if s.cfg <> cfg then
    invalid_arg "Canary.adopt: snapshot from a different config";
  {
    cfg;
    me;
    my_gen = gen;
    store = s.store;
    apply_cnt = s.apply_cnt;
    buffer = Mailbox.create ();
  }
