(** Deliberately buggy protocol — the nemesis harness's self-test.

    A {e per-sender FIFO} broadcast masquerading as a causal one: a
    received write is applied as soon as the sender's own chain is
    gap-free, ignoring cross-issuer causal dependencies entirely. Under
    message reordering, a process can apply a write [w2] whose issuer
    had read some other process's write [w1] before [w1] itself arrives
    — a textbook delivery-order (safety) violation that
    {!Checker.check} flags from the ground-truth [↦co] order.

    The harness-facing machinery is honest: per-sender applies are
    contiguous (so anti-entropy log re-supply works), duplicates are
    dropped, snapshots round-trip. Only causal ordering is broken — by
    design. A fault swarm that cannot catch this protocol is not
    testing anything; see {!Nemesis}. Never use outside tests. *)

include Protocol.S
