module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Buffer = Dsm_sim.Delivery_buffer
open Protocol

type message = { var : int; value : int; dot : Dot.t; wco : V.t }

module type IMPL = sig
  include Protocol.S with type msg = message

  val last_write_on : t -> var:int -> Dsm_vclock.Vector_clock.t
  val deliverable : t -> src:int -> msg -> bool
end

module Make (B : Buffer.S) = struct
  type msg = message

  type t = {
    mutable cfg : config;
    me : int;
    mutable my_gen : int;  (* occupancy generation of this slot (reuse) *)
    store : Replica_store.t;
    apply_cnt : V.t;  (* the paper's Apply *)
    write_co : V.t;  (* the paper's Write_co *)
    last_write_on : V.t array;  (* the paper's LastWriteOn *)
    buffer : (int * msg) B.t;  (* (src, message) *)
  }

  let name = "OptP"

  let create cfg ~me =
    if me < 0 || me >= cfg.n then
      invalid_arg "Opt_p.create: process id out of range";
    {
      cfg;
      me;
      my_gen = 0;
      store = Replica_store.create ~m:cfg.m;
      apply_cnt = V.create cfg.n;
      write_co = V.create cfg.n;
      last_write_on = Array.init cfg.m (fun _ -> V.create cfg.n);
      buffer = B.create ();
    }

  let me t = t.me

  let set_generation t ~gen =
    if gen < 0 then invalid_arg "Opt_p.set_generation: negative generation";
    t.my_gen <- gen

  let generation t = t.my_gen

  let grow t ~n =
    if n < t.cfg.n then invalid_arg "Opt_p.grow: cannot shrink";
    if n > t.cfg.n then begin
      t.cfg <- { t.cfg with n };
      V.grow t.apply_cnt n;
      V.grow t.write_co n
      (* last_write_on entries alias message vectors from their send-time
         epoch; they only feed merge_into, which pads implicit zeros, so
         they need no widening. Buffered messages re-evaluate against the
         new [status] closure automatically. *)
    end

  (* Figure 5, line 2, as a wakeup constraint: the first enabling event
     still missing. The scan bound is the narrower of the local view and
     the message's send-time view: components beyond a vector's size are
     implicit zeros and can never block (a process not yet joined had
     written nothing). *)
  let status t ((src, m) : int * msg) : Buffer.status =
    let a_src = V.get0 t.apply_cnt src in
    let w_src = V.get0 m.wco src in
    if a_src < w_src - 1 then Wait_for { counter = src; count = w_src - 1 }
    else if a_src > w_src - 1 then Stuck  (* duplicate: already applied *)
    else
      let n = min t.cfg.n (V.size m.wco) in
      let rec scan k =
        if k >= n then Buffer.Ready
        else if k <> src && V.unsafe_get m.wco k > V.unsafe_get t.apply_cnt k
        then Wait_for { counter = k; count = V.unsafe_get m.wco k }
        else scan (k + 1)
      in
      scan 0

  (* Figure 5, line 2: the wait condition *)
  let deliverable t ~src m =
    match status t (src, m) with
    | Buffer.Ready -> true
    | Wait_for _ | Stuck -> false

  (* The wakeup constraint as a write identity: waiting on counter [k]
     to reach [c] is waiting for the apply of p_k's write number [c] —
     the dot (k, c). Always among the checker's missing writes for the
     resulting delay. *)
  let waiting_for t ~src m =
    match status t (src, m) with
    | Buffer.Wait_for { counter; count } ->
        Some (Dot.make ~replica:counter ~seq:count)
    | Ready | Stuck -> None

  module Step = Protocol.Step (B)

  (* Figure 4: WRITE(x, v). The [status] oracle is hoisted once per
     entry point (see [Protocol.Step]). *)
  let write t ~var ~value =
    V.tick t.write_co t.me;
    (* canonical-gen rule: the generation stamp rides the own entry
       only alongside the counter advance it describes, so lexicographic
       (gen, counter) order coincides with counter order and the dense
       gen-free path stays byte-identical for generation-0 processes *)
    if t.my_gen > 0 then V.set_gen t.write_co t.me t.my_gen;
    let wco = V.copy t.write_co in
    let dot = Dot.of_clock wco t.me in
    let m = { var; value; dot; wco } in
    Replica_store.apply t.store ~var ~value ~dot;
    V.tick t.apply_cnt t.me;
    B.note_advance t.buffer ~status:(status t) ~counter:t.me
      ~count:(V.unsafe_get t.apply_cnt t.me);
    t.last_write_on.(var) <- wco;
    let applied = [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ] in
    (dot, effects ~applied ~to_send:[ Broadcast m ] ())

  (* Figure 5: READ(x) — merge LastWriteOn[x] into Write_co in place
     ([merge_into] is the scratch merge: no intermediate vector), then
     return *)
  let read t ~var =
    V.merge_into t.write_co t.last_write_on.(var);
    Replica_store.read t.store ~var

  (* Figure 5, lines 3-5 of the synchronization thread *)
  let apply_msg t ~status ~src m ~from_buffer =
    Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
    V.tick t.apply_cnt src;
    (* record which occupancy the applied write belongs to *)
    if Dot.gen m.dot > 0 then V.set_gen t.apply_cnt src (Dot.gen m.dot);
    B.note_advance t.buffer ~status ~counter:src
      ~count:(V.unsafe_get t.apply_cnt src);
    t.last_write_on.(m.var) <- m.wco;
    { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

  let receive t ~src m =
    let status = status t in
    Step.receive t.buffer ~status ~apply:(apply_msg t ~status) ~src m

  let buffered t = B.length t.buffer
  let buffer_high_watermark t = B.high_watermark t.buffer
  let total_buffered t = B.total_buffered t.buffer
  let buffer_wakeup_scans t = B.oracle_calls t.buffer
  let applied_vector t = V.copy t.apply_cnt
  let local_clock t = V.copy t.write_co
  let last_write_on t ~var =
    if var < 0 || var >= t.cfg.m then
      invalid_arg "Opt_p.last_write_on: variable out of range";
    V.copy t.last_write_on.(var)

  let pp_msg ppf m =
    Format.fprintf ppf "m(x%d, %d, %a)" (m.var + 1) m.value V.pp m.wco

  let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

  let msg_frame (m : msg) =
    { Dsm_obs.Wire.kind = "write"; scalars = 2; dots = 1; vectors = [ m.wco ] }

  let snapshot t = Snapshot.encode t

  let restore cfg ~me s =
    let t : t = Snapshot.decode s in
    Snapshot.check_identity ~proto:"Opt_p" ~cfg ~me ~cfg':t.cfg ~me':t.me;
    t

  (* Slot reuse: a NEW process takes over slot [me] at generation
     [gen], bootstrapped from a live sponsor's snapshot. It keeps the
     sponsor's replica image — store, Apply, LastWriteOn — but none of
     the sponsor's process identity: Write_co claims only the slot's
     own counter (continuing from the retired occupant's final, which
     the sponsor has fully applied thanks to the reuse gate), and the
     buffer starts empty. Its first write is then [base + 1], so dots
     never collide with the predecessor's, and receivers see
     [Apply[me] = base = wco[me] - 1] — immediately deliverable. *)
  let adopt cfg ~me ~gen ~sponsor =
    if me < 0 || me >= cfg.n then
      invalid_arg "Opt_p.adopt: process id out of range";
    if gen < 1 then invalid_arg "Opt_p.adopt: generation must be positive";
    let s : t = Snapshot.decode sponsor in
    if s.cfg <> cfg then
      invalid_arg "Opt_p.adopt: snapshot from a different config";
    let write_co = V.create cfg.n in
    let base = V.get0 s.apply_cnt me in
    if base > 0 then begin
      V.set write_co me base;
      V.set_gen write_co me (V.gen s.apply_cnt me)
    end;
    {
      cfg;
      me;
      my_gen = gen;
      store = s.store;
      apply_cnt = s.apply_cnt;
      write_co;
      last_write_on = s.last_write_on;
      buffer = B.create ();
    }
end

include Make (Buffer.Indexed)
module Scan = Make (Buffer.Scan)
