(** OptP — the paper's write-delay-optimal protocol (§4, Figures 4–5).

    Per-process state (paper names in brackets):
    - [applied_vector] ([Apply]): component [j] counts the writes issued
      by [p_j] and applied here;
    - [local_clock] ([Write_co]): the vector attached to this process's
      next write; component [j] = index of the last write of [p_j] that
      causally precedes it w.r.t. [↦co];
    - [last_write_on] ([LastWriteOn]): per location, the [Write_co] of
      the last write applied to it.

    The crucial line is in [read]: the local [Write_co] absorbs
    [LastWriteOn[x]] {e only when the process actually reads [x]} —
    establishing exactly the read-from edges of [↦co] and nothing else.
    Causal-broadcast protocols (ANBKH) instead absorb every delivered
    timestamp, which inflates the tracked relation to Lamport's [→] and
    produces unnecessary delays ("false causality").

    A write from [p_u] carrying vector [W] is applicable when
    [∀t≠u, W[t] ≤ Apply[t]] and [Apply[u] = W[u] − 1] (Figure 5 line 2);
    otherwise it is buffered — and by Theorem 4 every such buffering is
    {e necessary} for safety. *)

type message = {
  var : int;
  value : int;
  dot : Dsm_vclock.Dot.t;
  wco : Dsm_vclock.Vector_clock.t;  (** [w.Write_co] *)
}
(** The wire message [m(x_h, v, Write_co)] of Figure 4, line 2. *)

module type IMPL = sig
  include Protocol.S with type msg = message

  val last_write_on : t -> var:int -> Dsm_vclock.Vector_clock.t
  (** Introspection for Figure 6: current [LastWriteOn[var]]. *)

  val deliverable : t -> src:int -> msg -> bool
  (** The wait condition of Figure 5, line 2 (true = no wait needed). *)
end

include IMPL
(** The default instantiation buffers early writes in a
    {!Dsm_sim.Delivery_index}: an apply wakes only the messages
    subscribed to the counter it advanced (O(1) amortized), instead of
    rescanning the whole buffer. *)

module Scan : IMPL
(** Reference instantiation over the seed scanning {!Dsm_sim.Mailbox}
    (O(b) per apply). Behaviourally identical — the differential suite
    holds the two to byte-identical runs — and kept for exactly that
    purpose. *)

module Make (_ : Dsm_sim.Delivery_buffer.S) : IMPL
(** OptP over an arbitrary delivery-buffer strategy. *)
