module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Mailbox = Dsm_sim.Mailbox
open Protocol

type message = { var : int; value : int; dot : Dot.t; deps : Dot.t list }
type msg = message

type t = {
  mutable cfg : config;
  me : int;
  mutable my_gen : int;  (* occupancy generation of this slot (reuse) *)
  store : Replica_store.t;
  apply_cnt : V.t;
  write_co : V.t;
  last_write_on : V.t array;
  seen : (Dot.t, V.t) Hashtbl.t;
      (* Write_co of every write applied here; the decoder for
         dependency lists *)
  gen_of : (int * int, int) Hashtbl.t;
      (* (slot, seq) -> nonzero generation. Counters continue
         monotonically across slot reuse, so (slot, seq) names a write
         uniquely and its generation is derivable metadata; only
         reused-slot writes (gen > 0) need an entry. Rebuilding a
         dependency dot from counters must recover the generation,
         because [seen] is keyed by the full dot. *)
  buffer : (int * msg) Mailbox.t;
  mutable dep_entries : int;
}

let name = "OptP-direct"

let create cfg ~me =
  if me < 0 || me >= cfg.n then
    invalid_arg "Opt_p_direct.create: process id out of range";
  {
    cfg;
    me;
    my_gen = 0;
    store = Replica_store.create ~m:cfg.m;
    apply_cnt = V.create cfg.n;
    write_co = V.create cfg.n;
    last_write_on = Array.init cfg.m (fun _ -> V.create cfg.n);
    seen = Hashtbl.create 64;
    gen_of = Hashtbl.create 16;
    buffer = Mailbox.create ();
    dep_entries = 0;
  }

let me t = t.me

let set_generation t ~gen =
  if gen < 0 then
    invalid_arg "Opt_p_direct.set_generation: negative generation";
  t.my_gen <- gen

let generation t = t.my_gen

let note_gen t d =
  if Dot.gen d > 0 then
    Hashtbl.replace t.gen_of (Dot.replica d, Dot.seq d) (Dot.gen d)

let dot_at t ~replica ~seq =
  match Hashtbl.find_opt t.gen_of (replica, seq) with
  | Some gen -> Dot.make_gen ~replica ~gen ~seq
  | None -> Dot.make ~replica ~seq

let grow t ~n =
  if n < t.cfg.n then invalid_arg "Opt_p_direct.grow: cannot shrink";
  if n > t.cfg.n then begin
    t.cfg <- { t.cfg with n };
    V.grow t.apply_cnt n;
    V.grow t.write_co n
  end

(* the immediate ↦co predecessors of a write with vector [wco]: the
   per-process latest writes in its past, minus those dominated by
   another candidate *)
let immediate_deps t ~wco ~dot =
  let candidates =
    List.filter_map
      (fun p ->
        let seq = if p = t.me then V.get wco p - 1 else V.get wco p in
        if seq > 0 then Some (dot_at t ~replica:p ~seq) else None)
      (List.init t.cfg.n Fun.id)
  in
  ignore dot;
  let vector_of d =
    match Hashtbl.find_opt t.seen d with
    | Some v -> v
    | None ->
        (* every candidate is in our causal past, hence applied here *)
        assert false
  in
  List.filter
    (fun d ->
      not
        (List.exists
           (fun d' ->
             (* [seen] vectors keep their send-time width across {!grow};
                components beyond a vector's size are implicit zeros *)
             (not (Dot.equal d d'))
             && Dot.seq d <= V.get0 (vector_of d') (Dot.replica d))
           candidates))
    candidates

let write t ~var ~value =
  V.tick t.write_co t.me;
  (* canonical-gen rule: stamp only alongside the counter advance *)
  if t.my_gen > 0 then V.set_gen t.write_co t.me t.my_gen;
  let wco = V.copy t.write_co in
  let dot = Dot.of_clock wco t.me in
  note_gen t dot;
  let deps = immediate_deps t ~wco ~dot in
  t.dep_entries <- t.dep_entries + List.length deps;
  let m = { var; value; dot; deps } in
  Replica_store.apply t.store ~var ~value ~dot;
  V.tick t.apply_cnt t.me;
  t.last_write_on.(var) <- wco;
  Hashtbl.replace t.seen dot wco;
  let applied =
    [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
  in
  (dot, effects ~applied ~to_send:[ Broadcast m ] ())

let read t ~var =
  V.merge_into t.write_co t.last_write_on.(var);
  Replica_store.read t.store ~var

(* deliverable iff the sender chain is gap-free and every listed
   dependency has been applied — equivalent to OptP's vector test *)
let deliverable t ~src (m : msg) =
  V.get t.apply_cnt src = Dot.seq m.dot - 1
  && List.for_all
       (fun d -> V.get t.apply_cnt (Dot.replica d) >= Dot.seq d)
       m.deps

(* first missing predecessor: a sender-chain gap names the issuer's
   previous write, otherwise the first unapplied listed dependency *)
let waiting_for t ~src (m : msg) =
  let a_src = V.get t.apply_cnt src in
  let seq = Dot.seq m.dot in
  if a_src >= seq then None (* duplicate: already applied *)
  else if a_src < seq - 1 then
    Some (Dot.make ~replica:src ~seq:(seq - 1))
  else
    List.find_opt
      (fun d -> V.get t.apply_cnt (Dot.replica d) < Dot.seq d)
      m.deps

(* rebuild the write's full Write_co from its dependencies' vectors *)
let reconstruct_wco t ~src (m : msg) =
  let v = V.create t.cfg.n in
  List.iter
    (fun d ->
      match Hashtbl.find_opt t.seen d with
      | Some dv -> V.merge_into v dv
      | None -> assert false (* deliverability guaranteed it applied *))
    m.deps;
  V.set v src (Dot.seq m.dot);
  if Dot.gen m.dot > 0 then V.set_gen v src (Dot.gen m.dot);
  v

let apply_msg t ~src (m : msg) ~from_buffer =
  let wco = reconstruct_wco t ~src m in
  Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
  V.tick t.apply_cnt src;
  if Dot.gen m.dot > 0 then V.set_gen t.apply_cnt src (Dot.gen m.dot);
  t.last_write_on.(m.var) <- wco;
  Hashtbl.replace t.seen m.dot wco;
  note_gen t m.dot;
  { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

(* the deliverability predicate is hoisted once per receive (the
   [Protocol.Step] discipline), not rebuilt per scan iteration *)
let drain t ~f =
  let rec go acc =
    match Mailbox.take_first t.buffer ~f with
    | Some (src, m) -> go (apply_msg t ~src m ~from_buffer:true :: acc)
    | None -> List.rev acc
  in
  go []

let receive t ~src m =
  if deliverable t ~src m then begin
    let first = apply_msg t ~src m ~from_buffer:false in
    let f (src, m) = deliverable t ~src m in
    effects ~applied:(first :: drain t ~f) ()
  end
  else begin
    Mailbox.add t.buffer (src, m);
    no_effects
  end

let buffered t = Mailbox.length t.buffer
let buffer_high_watermark t = Mailbox.high_watermark t.buffer
let total_buffered t = Mailbox.total_buffered t.buffer
let buffer_wakeup_scans t = Mailbox.scans t.buffer
let applied_vector t = V.copy t.apply_cnt
let local_clock t = V.copy t.write_co
let total_dep_entries t = t.dep_entries
let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

let msg_frame (m : msg) =
  {
    Dsm_obs.Wire.kind = "write";
    scalars = 2;
    dots = 1 + List.length m.deps;
    vectors = [];
  }

let pp_msg ppf (m : msg) =
  Format.fprintf ppf "m(x%d, %d, deps={%a})" (m.var + 1) m.value
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Dot.pp)
    m.deps

let snapshot t = Snapshot.encode t

let restore cfg ~me s =
  let t : t = Snapshot.decode s in
  Snapshot.check_identity ~proto:"Opt_p_direct" ~cfg ~me ~cfg':t.cfg
    ~me':t.me;
  t

(* Slot reuse (see Opt_p.adopt): keep the sponsor's replica image
   (store, Apply, LastWriteOn, the seen/gen decoder tables), discard
   its process identity. *)
let adopt cfg ~me ~gen ~sponsor =
  if me < 0 || me >= cfg.n then
    invalid_arg "Opt_p_direct.adopt: process id out of range";
  if gen < 1 then
    invalid_arg "Opt_p_direct.adopt: generation must be positive";
  let s : t = Snapshot.decode sponsor in
  if s.cfg <> cfg then
    invalid_arg "Opt_p_direct.adopt: snapshot from a different config";
  let write_co = V.create cfg.n in
  let base = V.get0 s.apply_cnt me in
  if base > 0 then begin
    V.set write_co me base;
    V.set_gen write_co me (V.gen s.apply_cnt me)
  end;
  {
    cfg;
    me;
    my_gen = gen;
    store = s.store;
    apply_cnt = s.apply_cnt;
    write_co;
    last_write_on = s.last_write_on;
    seen = s.seen;
    gen_of = s.gen_of;
    buffer = Mailbox.create ();
    dep_entries = 0;
  }
