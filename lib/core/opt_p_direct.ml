module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Mailbox = Dsm_sim.Mailbox
open Protocol

type message = { var : int; value : int; dot : Dot.t; deps : Dot.t list }
type msg = message

type t = {
  mutable cfg : config;
  me : int;
  store : Replica_store.t;
  apply_cnt : V.t;
  write_co : V.t;
  last_write_on : V.t array;
  seen : (Dot.t, V.t) Hashtbl.t;
      (* Write_co of every write applied here; the decoder for
         dependency lists *)
  buffer : (int * msg) Mailbox.t;
  mutable dep_entries : int;
}

let name = "OptP-direct"

let create cfg ~me =
  if me < 0 || me >= cfg.n then
    invalid_arg "Opt_p_direct.create: process id out of range";
  {
    cfg;
    me;
    store = Replica_store.create ~m:cfg.m;
    apply_cnt = V.create cfg.n;
    write_co = V.create cfg.n;
    last_write_on = Array.init cfg.m (fun _ -> V.create cfg.n);
    seen = Hashtbl.create 64;
    buffer = Mailbox.create ();
    dep_entries = 0;
  }

let me t = t.me

let grow t ~n =
  if n < t.cfg.n then invalid_arg "Opt_p_direct.grow: cannot shrink";
  if n > t.cfg.n then begin
    t.cfg <- { t.cfg with n };
    V.grow t.apply_cnt n;
    V.grow t.write_co n
  end

(* the immediate ↦co predecessors of a write with vector [wco]: the
   per-process latest writes in its past, minus those dominated by
   another candidate *)
let immediate_deps t ~wco ~dot =
  let candidates =
    List.filter_map
      (fun p ->
        let seq = if p = t.me then V.get wco p - 1 else V.get wco p in
        if seq > 0 then Some (Dot.make ~replica:p ~seq) else None)
      (List.init t.cfg.n Fun.id)
  in
  ignore dot;
  let vector_of d =
    match Hashtbl.find_opt t.seen d with
    | Some v -> v
    | None ->
        (* every candidate is in our causal past, hence applied here *)
        assert false
  in
  List.filter
    (fun d ->
      not
        (List.exists
           (fun d' ->
             (* [seen] vectors keep their send-time width across {!grow};
                components beyond a vector's size are implicit zeros *)
             (not (Dot.equal d d'))
             && Dot.seq d <= V.get0 (vector_of d') (Dot.replica d))
           candidates))
    candidates

let write t ~var ~value =
  V.tick t.write_co t.me;
  let wco = V.copy t.write_co in
  let dot = Dot.of_clock wco t.me in
  let deps = immediate_deps t ~wco ~dot in
  t.dep_entries <- t.dep_entries + List.length deps;
  let m = { var; value; dot; deps } in
  Replica_store.apply t.store ~var ~value ~dot;
  V.tick t.apply_cnt t.me;
  t.last_write_on.(var) <- wco;
  Hashtbl.replace t.seen dot wco;
  let applied =
    [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
  in
  (dot, effects ~applied ~to_send:[ Broadcast m ] ())

let read t ~var =
  V.merge_into t.write_co t.last_write_on.(var);
  Replica_store.read t.store ~var

(* deliverable iff the sender chain is gap-free and every listed
   dependency has been applied — equivalent to OptP's vector test *)
let deliverable t ~src (m : msg) =
  V.get t.apply_cnt src = Dot.seq m.dot - 1
  && List.for_all
       (fun d -> V.get t.apply_cnt (Dot.replica d) >= Dot.seq d)
       m.deps

(* first missing predecessor: a sender-chain gap names the issuer's
   previous write, otherwise the first unapplied listed dependency *)
let waiting_for t ~src (m : msg) =
  let a_src = V.get t.apply_cnt src in
  let seq = Dot.seq m.dot in
  if a_src >= seq then None (* duplicate: already applied *)
  else if a_src < seq - 1 then
    Some (Dot.make ~replica:src ~seq:(seq - 1))
  else
    List.find_opt
      (fun d -> V.get t.apply_cnt (Dot.replica d) < Dot.seq d)
      m.deps

(* rebuild the write's full Write_co from its dependencies' vectors *)
let reconstruct_wco t ~src (m : msg) =
  let v = V.create t.cfg.n in
  List.iter
    (fun d ->
      match Hashtbl.find_opt t.seen d with
      | Some dv -> V.merge_into v dv
      | None -> assert false (* deliverability guaranteed it applied *))
    m.deps;
  V.set v src (Dot.seq m.dot);
  v

let apply_msg t ~src (m : msg) ~from_buffer =
  let wco = reconstruct_wco t ~src m in
  Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
  V.tick t.apply_cnt src;
  t.last_write_on.(m.var) <- wco;
  Hashtbl.replace t.seen m.dot wco;
  { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

(* the deliverability predicate is hoisted once per receive (the
   [Protocol.Step] discipline), not rebuilt per scan iteration *)
let drain t ~f =
  let rec go acc =
    match Mailbox.take_first t.buffer ~f with
    | Some (src, m) -> go (apply_msg t ~src m ~from_buffer:true :: acc)
    | None -> List.rev acc
  in
  go []

let receive t ~src m =
  if deliverable t ~src m then begin
    let first = apply_msg t ~src m ~from_buffer:false in
    let f (src, m) = deliverable t ~src m in
    effects ~applied:(first :: drain t ~f) ()
  end
  else begin
    Mailbox.add t.buffer (src, m);
    no_effects
  end

let buffered t = Mailbox.length t.buffer
let buffer_high_watermark t = Mailbox.high_watermark t.buffer
let total_buffered t = Mailbox.total_buffered t.buffer
let buffer_wakeup_scans t = Mailbox.scans t.buffer
let applied_vector t = V.copy t.apply_cnt
let local_clock t = V.copy t.write_co
let total_dep_entries t = t.dep_entries
let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

let msg_frame (m : msg) =
  {
    Dsm_obs.Wire.kind = "write";
    scalars = 2;
    dots = 1 + List.length m.deps;
    vectors = [];
  }

let pp_msg ppf (m : msg) =
  Format.fprintf ppf "m(x%d, %d, deps={%a})" (m.var + 1) m.value
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Dot.pp)
    m.deps

let snapshot t = Snapshot.encode t

let restore cfg ~me s =
  let t : t = Snapshot.decode s in
  Snapshot.check_identity ~proto:"Opt_p_direct" ~cfg ~me ~cfg':t.cfg
    ~me':t.me;
  t
