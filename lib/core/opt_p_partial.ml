module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Buffer = Dsm_sim.Delivery_buffer

type message = {
  var : int;
  value : int;
  dot : Dot.t;
  var_seq : int;
  know : V.t array;
}

let msg_frame (m : message) =
  {
    Dsm_obs.Wire.kind = "write";
    scalars = 3;  (* var, value, var_seq *)
    dots = 1;
    vectors = Array.to_list m.know;  (* the m×n dependency matrix *)
  }

module type IMPL = sig
  type t

  val create : Replication.t -> me:int -> t
  val me : t -> int
  val set_generation : t -> gen:int -> unit
  val generation : t -> int
  val adopt : Replication.t -> me:int -> gen:int -> sponsor:string -> t
  val replication : t -> Replication.t

  val write :
    t -> var:int -> value:int ->
    Dot.t * message * int list * Protocol.apply_record

  val read : t -> var:int -> Dsm_memory.Operation.value * Dot.t option
  val receive : t -> src:int -> message -> Protocol.apply_record list
  val deliverable : t -> src:int -> message -> bool
  val buffered : t -> int
  val buffer_high_watermark : t -> int
  val total_buffered : t -> int
  val applied_matrix : t -> V.t array
  val snapshot : t -> string
  val restore : Replication.t -> me:int -> string -> t
end

module Make (B : Buffer.S) = struct
  type t = {
    repl : Replication.t;
    me : int;
    mutable my_gen : int;  (* occupancy generation of this slot (reuse) *)
    store : Replica_store.t;  (* indexed by global var id; foreign vars unused *)
    applied : V.t array;  (* per var: applied write counts per issuer *)
    know : V.t array;  (* per var: last known write index per issuer *)
    last_write_know : V.t array array;
        (* per replicated var: the matrix of the last write applied to it *)
    buffer : (int * message) B.t;
    my_vars : int list;  (* vars_of me, cached for the hot path *)
    mutable next_global_seq : int;
  }

  let matrix n m = Array.init m (fun _ -> V.create n)

  let copy_matrix mx = Array.map V.copy mx

  let merge_matrix_into dst src =
    Array.iteri (fun i row -> V.merge_into row src.(i)) dst

  let create repl ~me =
    let n = Replication.n repl and m = Replication.m repl in
    if me < 0 || me >= n then
      invalid_arg "Opt_p_partial.create: process id out of range";
    {
      repl;
      me;
      my_gen = 0;
      store = Replica_store.create ~m;
      applied = matrix n m;
      know = matrix n m;
      last_write_know = Array.init m (fun _ -> matrix n m);
      buffer = B.create ();
      my_vars = Replication.vars_of repl ~proc:me;
      next_global_seq = 1;
    }

  let me t = t.me

  let set_generation t ~gen =
    if gen < 0 then
      invalid_arg "Opt_p_partial.set_generation: negative generation";
    t.my_gen <- gen

  let generation t = t.my_gen
  let replication t = t.repl

  (* the wakeup-counter space is the applied matrix, flattened: cell
     [Applied[y][k]] is abstract counter [y*n + k] *)
  let counter_of t ~var ~proc = (var * Replication.n t.repl) + proc

  let check_replicated t ~var name =
    if not (Replication.replicates t.repl ~proc:t.me ~var) then
      invalid_arg
        (Printf.sprintf "Opt_p_partial.%s: p%d does not replicate x%d" name
           (t.me + 1) (var + 1))

  let status t ((src, msg) : int * message) : Buffer.status =
    let a = V.unsafe_get t.applied.(msg.var) src in
    if msg.var_seq > a + 1 then
      Wait_for
        { counter = counter_of t ~var:msg.var ~proc:src;
          count = msg.var_seq - 1 }
    else if msg.var_seq < a + 1 then Stuck  (* duplicate: already applied *)
    else
      (* every row of a location we replicate must be covered; the
         sender component of the written row is the gap condition
         above *)
      let n = Replication.n t.repl in
      let rec scan_row y k =
        if k >= n then Buffer.Ready
        else if
          (not (k = src && y = msg.var))
          && V.unsafe_get msg.know.(y) k > V.unsafe_get t.applied.(y) k
        then
          Wait_for
            { counter = counter_of t ~var:y ~proc:k;
              count = V.unsafe_get msg.know.(y) k }
        else scan_row y (k + 1)
      in
      let rec scan_vars = function
        | [] -> Buffer.Ready
        | y :: rest -> (
            match scan_row y 0 with
            | Buffer.Ready -> scan_vars rest
            | blocked -> blocked)
      in
      scan_vars t.my_vars

  (* every advance of the applied matrix flows through here so the
     buffer can wake exactly the subscribed messages; the [status]
     oracle is hoisted once per entry point (the [Protocol.Step]
     discipline) and threaded through the cascade *)
  let tick_applied t ~status ~var ~proc =
    V.tick t.applied.(var) proc;
    B.note_advance t.buffer ~status
      ~counter:(counter_of t ~var ~proc)
      ~count:(V.unsafe_get t.applied.(var) proc)

  let write t ~var ~value =
    check_replicated t ~var "write";
    V.tick t.know.(var) t.me;
    let var_seq = V.get t.know.(var) t.me in
    (* delivery conditions use per-var [var_seq] counters only; the
       global seq is pure identity, so under a fresh generation it may
       restart — the generation stamp keeps the dot unique *)
    let dot =
      Dot.make_gen ~replica:t.me ~gen:t.my_gen ~seq:t.next_global_seq
    in
    t.next_global_seq <- t.next_global_seq + 1;
    let know = copy_matrix t.know in
    let m = { var; value; dot; var_seq; know } in
    Replica_store.apply t.store ~var ~value ~dot;
    tick_applied t ~status:(status t) ~var ~proc:t.me;
    t.last_write_know.(var) <- know;
    let dests =
      List.filter (fun p -> p <> t.me) (Replication.replicas_of t.repl ~var)
    in
    let record =
      { Protocol.adot = dot; avar = var; avalue = value; afrom_buffer = false }
    in
    (dot, m, dests, record)

  let read t ~var =
    check_replicated t ~var "read";
    (* merge-on-read, one level up: absorb the last write's matrix *)
    merge_matrix_into t.know t.last_write_know.(var);
    Replica_store.read t.store ~var

  (* applicable iff the sender's chain on the written location is
     gap-free here and every row of a location we replicate is covered *)
  let deliverable t ~src (msg : message) =
    match status t (src, msg) with
    | Buffer.Ready -> true
    | Wait_for _ | Stuck -> false

  let apply_msg t ~status ~src (msg : message) ~from_buffer =
    Replica_store.apply t.store ~var:msg.var ~value:msg.value ~dot:msg.dot;
    tick_applied t ~status ~var:msg.var ~proc:src;
    (* the message matrix is immutable once on the wire: alias it
       instead of copying m vectors per apply *)
    t.last_write_know.(msg.var) <- msg.know;
    {
      Protocol.adot = msg.dot;
      avar = msg.var;
      avalue = msg.value;
      afrom_buffer = from_buffer;
    }

  let drain t ~status =
    let rec go acc =
      match B.take_ready t.buffer ~status with
      | Some (src, m) -> go (apply_msg t ~status ~src m ~from_buffer:true :: acc)
      | None -> List.rev acc
    in
    go []

  let receive t ~src msg =
    let status = status t in
    match status (src, msg) with
    | Buffer.Ready ->
        let first = apply_msg t ~status ~src msg ~from_buffer:false in
        first :: drain t ~status
    | Wait_for _ | Stuck ->
        B.add t.buffer ~status (src, msg);
        []

  let buffered t = B.length t.buffer
  let buffer_high_watermark t = B.high_watermark t.buffer
  let total_buffered t = B.total_buffered t.buffer
  let applied_matrix t = copy_matrix t.applied

  let snapshot t = Protocol.Snapshot.encode t

  let restore repl ~me s =
    let t : t = Protocol.Snapshot.decode s in
    if t.repl <> repl then
      invalid_arg "Opt_p_partial.restore: snapshot from a different map";
    if t.me <> me then
      invalid_arg "Opt_p_partial.restore: snapshot from a different process";
    t

  (* Slot reuse (see Opt_p.adopt): keep the sponsor's replica image;
     the know matrix restarts from the applied matrix, so per-variable
     write counters continue from the retired occupant's finals. *)
  let adopt repl ~me ~gen ~sponsor =
    let n = Replication.n repl in
    if me < 0 || me >= n then
      invalid_arg "Opt_p_partial.adopt: process id out of range";
    if gen < 1 then
      invalid_arg "Opt_p_partial.adopt: generation must be positive";
    let s : t = Protocol.Snapshot.decode sponsor in
    if s.repl <> repl then
      invalid_arg "Opt_p_partial.adopt: snapshot from a different map";
    {
      repl;
      me;
      my_gen = gen;
      store = s.store;
      applied = s.applied;
      know = copy_matrix s.applied;
      last_write_know = s.last_write_know;
      buffer = B.create ();
      my_vars = Replication.vars_of repl ~proc:me;
      next_global_seq = 1;
    }
end

include Make (Buffer.Indexed)
module Scan = Make (Buffer.Scan)
