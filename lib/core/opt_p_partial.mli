(** OptP over partially replicated memory.

    Raynal & Singhal's setting (the paper's reference [14]): each
    process replicates a subset of the locations, a write is multicast
    only to the replicas of the written location, and a process only
    operates on its own locations. Causality may flow {e through}
    locations a receiver does not replicate, so the per-process
    [Write_co] vector is not enough; following [14], control data
    becomes a {b per-location matrix}: [Know[y][t]] = index of the last
    write to [y] by [p_t] in the causal past.

    OptP's discipline carries over verbatim, one level up:

    - a {e write} to [x] increments [Know[x][me]] and piggybacks the
      whole matrix (restricted rows are all a receiver consults);
    - a {e read} of [x] merges the matrix of the last write applied to
      [x] — and nothing else — into [Know] (merge-on-read, the paper's
      anti-false-causality move);
    - an incoming write [w(x)] from [u] with matrix [D] is applicable
      at [p] iff [D[x][u] = Applied[x][u] + 1] and, {e for every
      location y that p replicates}, [D[y][t] ≤ Applied[y][t]] — rows
      of foreign locations are ignored: their writes never arrive here
      and never need to.

    Safety of the {e observable} history (operations on replicated
    locations) follows exactly as in the paper's Theorem 3; the
    replication-aware checker mode audits it. The wire cost is the m×n
    matrix, which is what [14] pays as well (their writing-semantics
    work is precisely about reducing it).

    This module does not implement {!Protocol.S} — creation needs the
    replication map and sends are multicasts — so it ships with its own
    driver, {!Dsm_runtime.Partial_run}. *)

type message = {
  var : int;
  value : int;
  dot : Dsm_vclock.Dot.t;  (** global (proc, per-process seq) identity *)
  var_seq : int;  (** sequence number among writes to [var] by the issuer *)
  know : Dsm_vclock.Vector_clock.t array;
      (** the dependency matrix [D]: one row per location *)
}

val msg_frame : message -> Dsm_obs.Wire.frame
(** Wire shape for byte-cost accounting: the causal metadata is the
    whole m×n [know] matrix, row by row. *)

module type IMPL = sig
  type t

  val create : Replication.t -> me:int -> t
  (** @raise Invalid_argument on a bad process id. *)

  val me : t -> int

  val set_generation : t -> gen:int -> unit
  (** Declare the occupancy generation for slot reuse (see
      {!Protocol.S.set_generation}); stamped into subsequent dots. *)

  val generation : t -> int

  val adopt : Replication.t -> me:int -> gen:int -> sponsor:string -> t
  (** Slot reuse bootstrap from a sponsor snapshot (see
      {!Protocol.S.adopt}): keeps the sponsor's replica image; the
      know matrix restarts from the applied matrix so per-variable
      counters continue from the retired occupant's finals. *)

  val replication : t -> Replication.t

  val write :
    t -> var:int -> value:int ->
    Dsm_vclock.Dot.t * message * int list * Protocol.apply_record
  (** [(dot, message, destinations, local apply)] — destinations are the
      other replicas of [var].
      @raise Invalid_argument if this process does not replicate [var]. *)

  val read : t -> var:int -> Dsm_memory.Operation.value * Dsm_vclock.Dot.t option
  (** @raise Invalid_argument if this process does not replicate [var]. *)

  val receive : t -> src:int -> message -> Protocol.apply_record list
  (** Deliver one message: applies it (and any unblocked buffered
      writes), or buffers it. *)

  val deliverable : t -> src:int -> message -> bool
  val buffered : t -> int
  val buffer_high_watermark : t -> int
  val total_buffered : t -> int

  val applied_matrix : t -> Dsm_vclock.Vector_clock.t array
  (** Per-location applied-write counts (rows of foreign locations are
      all zero). *)

  val snapshot : t -> string
  (** Durable image: the [Applied]/[Know] matrices, the store replica
      and the pending buffer — same contract as {!Protocol.S.snapshot}. *)

  val restore : Replication.t -> me:int -> string -> t
  (** @raise Invalid_argument if the snapshot was taken by a different
      process or under a different replication map. *)
end

include IMPL
(** Default instantiation over the counter-indexed
    {!Dsm_sim.Delivery_index}; the wakeup-counter space is the
    applied {e matrix}, flattened cell-by-cell as [y·n + t]. *)

module Scan : IMPL
(** Reference instantiation over the seed scanning {!Dsm_sim.Mailbox};
    behaviourally identical, kept for differential testing. *)

module Make (_ : Dsm_sim.Delivery_buffer.S) : IMPL
(** Partial-replication OptP over an arbitrary delivery-buffer
    strategy. *)
