module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Buffer = Dsm_sim.Delivery_buffer
open Protocol

type message = {
  var : int;
  value : int;
  dot : Dot.t;
  wco : V.t;
  prev : Dot.t option;
  can_skip : bool;
}

module type IMPL = sig
  include Protocol.S with type msg = message

  val skipped_total : t -> int
  val last_write_on : t -> var:int -> Dsm_vclock.Vector_clock.t
  val deliverable : t -> src:int -> msg -> bool
end

module Make (B : Buffer.S) = struct
  type msg = message

  type t = {
    mutable cfg : config;
    me : int;
    mutable my_gen : int;  (* occupancy generation of this slot (reuse) *)
    store : Replica_store.t;
    apply_cnt : V.t;
    write_co : V.t;
    last_write_on : V.t array;
    buffer : (int * msg) B.t;
    mutable overwritten : Dot.Set.t;
    seen : (Dot.t, int * V.t) Hashtbl.t;  (* var and Write_co of writes seen *)
    mutable skipped_total : int;
  }

  let name = "OptP-WS"

  let create cfg ~me =
    if me < 0 || me >= cfg.n then
      invalid_arg "Opt_p_ws.create: process id out of range";
    {
      cfg;
      me;
      my_gen = 0;
      store = Replica_store.create ~m:cfg.m;
      apply_cnt = V.create cfg.n;
      write_co = V.create cfg.n;
      last_write_on = Array.init cfg.m (fun _ -> V.create cfg.n);
      buffer = B.create ();
      overwritten = Dot.Set.empty;
      seen = Hashtbl.create 64;
      skipped_total = 0;
    }

  let me t = t.me

  let set_generation t ~gen =
    if gen < 0 then
      invalid_arg "Opt_p_ws.set_generation: negative generation";
    t.my_gen <- gen

  let generation t = t.my_gen

  let grow t ~n =
    if n < t.cfg.n then invalid_arg "Opt_p_ws.grow: cannot shrink";
    if n > t.cfg.n then begin
      t.cfg <- { t.cfg with n };
      V.grow t.apply_cnt n;
      V.grow t.write_co n
      (* last_write_on / seen entries alias send-time vectors; they feed
         merge_into and V.lt, both implicit-zero tolerant. *)
    end

  (* exact interposition test: Write_co characterizes ↦co (Theorem 1) *)
  let compute_can_skip t ~var ~prev ~wco =
    match prev with
    | None -> false
    | Some prev_dot -> (
        match Hashtbl.find_opt t.seen prev_dot with
        | None -> false
        | Some (_, prev_wco) ->
            not
              (Hashtbl.fold
                 (fun _ (var'', wco'') found ->
                   found
                   || var'' <> var
                      && V.lt prev_wco wco''
                      && V.lt wco'' wco)
                 t.seen false))

  let write t ~var ~value =
    V.tick t.write_co t.me;
    (* canonical-gen rule: stamp only alongside the counter advance *)
    if t.my_gen > 0 then V.set_gen t.write_co t.me t.my_gen;
    let wco = V.copy t.write_co in
    let dot = Dot.of_clock wco t.me in
    let prev = Replica_store.last_writer t.store ~var in
    let can_skip = compute_can_skip t ~var ~prev ~wco in
    let m = { var; value; dot; wco; prev; can_skip } in
    Replica_store.apply t.store ~var ~value ~dot;
    V.tick t.apply_cnt t.me;
    t.last_write_on.(var) <- wco;
    Hashtbl.replace t.seen dot (var, wco);
    let applied =
      [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
    in
    (dot, effects ~applied ~to_send:[ Broadcast m ] ())

  let read t ~var =
    V.merge_into t.write_co t.last_write_on.(var);
    Replica_store.read t.store ~var

  (* OptP's wait condition as a wakeup constraint; the scan bound is the
     narrower of the local view and the message's send-time view —
     components beyond a vector's size are implicit zeros *)
  let status t ((src, m) : int * msg) : Buffer.status =
    let a_src = V.get0 t.apply_cnt src in
    let w_src = V.get0 m.wco src in
    if a_src < w_src - 1 then Wait_for { counter = src; count = w_src - 1 }
    else if a_src > w_src - 1 then Stuck  (* duplicate or skipped-over *)
    else
      let n = min t.cfg.n (V.size m.wco) in
      let rec scan k =
        if k >= n then Buffer.Ready
        else if k <> src && V.unsafe_get m.wco k > V.unsafe_get t.apply_cnt k
        then Wait_for { counter = k; count = V.unsafe_get m.wco k }
        else scan (k + 1)
      in
      scan 0

  let deliverable t ~src (m : msg) =
    match status t (src, m) with
    | Buffer.Ready -> true
    | Wait_for _ | Stuck -> false

  let waiting_for t ~src (m : msg) =
    if Dot.Set.mem m.dot t.overwritten then None
    else
      match status t (src, m) with
      | Buffer.Wait_for { counter; count } ->
          Some (Dot.make ~replica:counter ~seq:count)
      | Ready | Stuck -> None

  (* every advance of Apply — by an apply or by a skip — flows through
     here so the buffer can wake exactly the subscribed messages; the
     [status] oracle is hoisted once per entry point (the
     [Protocol.Step] discipline) and threaded through the cascade *)
  let tick_apply t ~status k =
    V.tick t.apply_cnt k;
    B.note_advance t.buffer ~status ~counter:k
      ~count:(V.unsafe_get t.apply_cnt k)

  let apply_msg t ~status ~src (m : msg) ~from_buffer =
    Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
    tick_apply t ~status src;
    if Dot.gen m.dot > 0 then V.set_gen t.apply_cnt src (Dot.gen m.dot);
    t.last_write_on.(m.var) <- m.wco;
    Hashtbl.replace t.seen m.dot (m.var, m.wco);
    { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

  let deliverable_after_skip t ~src (m : msg) d =
    let bump k = V.get0 t.apply_cnt k + if k = Dot.replica d then 1 else 0 in
    let ok = ref (bump src = V.get0 m.wco src - 1) in
    for k = 0 to min t.cfg.n (V.size m.wco) - 1 do
      if k <> src && V.get m.wco k > bump k then ok := false
    done;
    !ok

  let try_skip t ~status =
    let candidate =
      List.find_map
        (fun (src, (m : msg)) ->
          match m.prev with
          | Some d
            when m.can_skip
                 && (not (Dot.Set.mem d t.overwritten))
                 && V.get t.apply_cnt (Dot.replica d) = Dot.seq d - 1
                 && deliverable_after_skip t ~src m d ->
              Some (src, m, d)
          | Some _ | None -> None)
        (B.to_list t.buffer)
    in
    match candidate with
    | None -> None
    | Some (src, m, d) ->
        t.overwritten <- Dot.Set.add d t.overwritten;
        t.skipped_total <- t.skipped_total + 1;
        ignore
          (B.remove_all t.buffer ~f:(fun (_, (b : msg)) ->
               Dot.equal b.dot d));
        ignore
          (B.remove_all t.buffer ~f:(fun (_, (b : msg)) ->
               Dot.equal b.dot m.dot));
        tick_apply t ~status (Dot.replica d);
        Some (apply_msg t ~status ~src m ~from_buffer:true, d)


  (* The incoming message itself may trigger a skip at receipt time: its
     named predecessor is the issuer's next undelivered write and skipping
     it makes the message deliverable at once. In that case the write
     never waits, so its apply is NOT a write delay (Definition 3). *)
  let skip_for_incoming t ~status ~src (m : msg) =
    match m.prev with
    | Some d
      when m.can_skip
           && (not (Dot.Set.mem d t.overwritten))
           && V.get t.apply_cnt (Dot.replica d) = Dot.seq d - 1
           && deliverable_after_skip t ~src m d ->
        t.overwritten <- Dot.Set.add d t.overwritten;
        t.skipped_total <- t.skipped_total + 1;
        ignore
          (B.remove_all t.buffer ~f:(fun (_, (b : msg)) ->
               Dot.equal b.dot d));
        tick_apply t ~status (Dot.replica d);
        Some (apply_msg t ~status ~src m ~from_buffer:false, d)
    | Some _ | None -> None

  let drain t ~status =
    let applied = ref [] and skipped = ref [] in
    let rec loop () =
      match B.take_ready t.buffer ~status with
      | Some (src, m) ->
          applied := apply_msg t ~status ~src m ~from_buffer:true :: !applied;
          loop ()
      | None -> (
          match try_skip t ~status with
          | Some (record, d) ->
              applied := record :: !applied;
              skipped := d :: !skipped;
              loop ()
          | None -> ())
    in
    loop ();
    (List.rev !applied, List.rev !skipped)

  let receive t ~src m =
    let status = status t in
    if Dot.Set.mem m.dot t.overwritten then
      (* already logically applied by a skip: discard the late message *)
      no_effects
    else
      match status (src, m) with
      | Buffer.Ready ->
          let first = apply_msg t ~status ~src m ~from_buffer:false in
          let applied, skipped = drain t ~status in
          effects ~applied:(first :: applied) ~skipped ()
      | Wait_for _ | Stuck -> (
          match skip_for_incoming t ~status ~src m with
          | Some (first, d) ->
              let applied, skipped = drain t ~status in
              effects ~applied:(first :: applied) ~skipped:(d :: skipped) ()
          | None ->
              (* a buffered message changes no delivery state, so no
                 other buffered message can have become ready: no drain
                 needed *)
              B.add t.buffer ~status (src, m);
              no_effects)

  let buffered t = B.length t.buffer
  let buffer_high_watermark t = B.high_watermark t.buffer
  let total_buffered t = B.total_buffered t.buffer
  let buffer_wakeup_scans t = B.oracle_calls t.buffer
  let applied_vector t = V.copy t.apply_cnt
  let local_clock t = V.copy t.write_co
  let skipped_total t = t.skipped_total

  let last_write_on t ~var =
    if var < 0 || var >= t.cfg.m then
      invalid_arg "Opt_p_ws.last_write_on: variable out of range";
    V.copy t.last_write_on.(var)

  let pp_msg ppf (m : msg) =
    Format.fprintf ppf "m(x%d, %d, %a%s)" (m.var + 1) m.value V.pp m.wco
      (match m.prev with
      | Some d when m.can_skip ->
          Printf.sprintf ", overwrites %s" (Dot.to_string d)
      | _ -> "")

  let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

  let msg_frame (m : msg) =
    {
      Dsm_obs.Wire.kind = "write";
      scalars = 3;  (* var, value, can_skip *)
      dots = (match m.prev with Some _ -> 2 | None -> 1);
      vectors = [ m.wco ];
    }

  let snapshot t = Snapshot.encode t

  let restore cfg ~me s =
    let t : t = Snapshot.decode s in
    Snapshot.check_identity ~proto:"Opt_p_ws" ~cfg ~me ~cfg':t.cfg
      ~me':t.me;
    t

  (* Slot reuse (see Opt_p.adopt): keep the sponsor's replica image —
     including the seen table and overwritten set, which decode
     interposition for writes already in circulation — and discard the
     sponsor's process identity. *)
  let adopt cfg ~me ~gen ~sponsor =
    if me < 0 || me >= cfg.n then
      invalid_arg "Opt_p_ws.adopt: process id out of range";
    if gen < 1 then invalid_arg "Opt_p_ws.adopt: generation must be positive";
    let s : t = Snapshot.decode sponsor in
    if s.cfg <> cfg then
      invalid_arg "Opt_p_ws.adopt: snapshot from a different config";
    let write_co = V.create cfg.n in
    let base = V.get0 s.apply_cnt me in
    if base > 0 then begin
      V.set write_co me base;
      V.set_gen write_co me (V.gen s.apply_cnt me)
    end;
    {
      cfg;
      me;
      my_gen = gen;
      store = s.store;
      apply_cnt = s.apply_cnt;
      write_co;
      last_write_on = s.last_write_on;
      buffer = B.create ();
      overwritten = s.overwritten;
      seen = s.seen;
      skipped_total = 0;
    }
end

include Make (Buffer.Indexed)
module Scan = Make (Buffer.Scan)
