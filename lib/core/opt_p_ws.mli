(** OptP extended with receiver-side writing semantics.

    The paper notes (§3.6, footnote 8) that the writing-semantics
    heuristic is orthogonal to write-delay optimality and "could be
    applied also to the protocol presented in the next section". This
    module is that combination — an extension the paper leaves on the
    table:

    - delivery conditions, read-time merging and [LastWriteOn] are
      exactly OptP's ({!Opt_p}), so only genuine [↦co] predecessors can
      delay a write;
    - additionally, a buffered write [w(x)] whose missing immediate
      predecessor [w'(x)] is on the {e same} variable (and no write on
      another variable is causally interposed — here checked against
      [Write_co], which characterizes [↦co] {e exactly} by Theorem 1,
      so the sender-side flag is precise rather than conservative) can
      be applied at once, skipping [w'].

    With OptP as the base, a skippable situation arises only when the
    delay was {e necessary} — so unlike [Ws_receiver]-over-ANBKH, every
    skip here removes a delay the optimality criterion itself cannot
    remove. Skipping still breaks the "every write applied everywhere"
    clause of class [𝒫]. *)

type message = {
  var : int;
  value : int;
  dot : Dsm_vclock.Dot.t;
  wco : Dsm_vclock.Vector_clock.t;
  prev : Dsm_vclock.Dot.t option;
  can_skip : bool;
}

module type IMPL = sig
  include Protocol.S with type msg = message

  val skipped_total : t -> int
  val last_write_on : t -> var:int -> Dsm_vclock.Vector_clock.t
  val deliverable : t -> src:int -> msg -> bool
end

include IMPL
(** Default instantiation over the counter-indexed
    {!Dsm_sim.Delivery_index}; skip-path advances of [Apply] notify the
    index exactly like ordinary applies. *)

module Scan : IMPL
(** Reference instantiation over the seed scanning {!Dsm_sim.Mailbox};
    behaviourally identical, kept for differential testing. *)

module Make (_ : Dsm_sim.Delivery_buffer.S) : IMPL
(** OptP-WS over an arbitrary delivery-buffer strategy. *)
