type config = { n : int; m : int }

let config ~n ~m =
  if n <= 0 then invalid_arg "Protocol.config: n must be positive";
  if m <= 0 then invalid_arg "Protocol.config: m must be positive";
  { n; m }

type apply_record = {
  adot : Dsm_vclock.Dot.t;
  avar : int;
  avalue : int;
  afrom_buffer : bool;
}

type 'msg outbound = Broadcast of 'msg | Unicast of { dst : int; msg : 'msg }

type 'msg effects = {
  applied : apply_record list;
  skipped : Dsm_vclock.Dot.t list;
  to_send : 'msg outbound list;
}

let no_effects = { applied = []; skipped = []; to_send = [] }

let effects ?(applied = []) ?(skipped = []) ?(to_send = []) () =
  { applied; skipped; to_send }

let merge_effects a b =
  {
    applied = a.applied @ b.applied;
    skipped = a.skipped @ b.skipped;
    to_send = a.to_send @ b.to_send;
  }

module type S = sig
  type t
  type msg

  val name : string
  val create : config -> me:int -> t
  val me : t -> int
  val grow : t -> n:int -> unit
  val write : t -> var:int -> value:int -> Dsm_vclock.Dot.t * msg effects
  val read : t -> var:int -> Dsm_memory.Operation.value * Dsm_vclock.Dot.t option
  val receive : t -> src:int -> msg -> msg effects
  val waiting_for : t -> src:int -> msg -> Dsm_vclock.Dot.t option
  val buffered : t -> int
  val buffer_high_watermark : t -> int
  val total_buffered : t -> int
  val buffer_wakeup_scans : t -> int
  val applied_vector : t -> Dsm_vclock.Vector_clock.t
  val local_clock : t -> Dsm_vclock.Vector_clock.t
  val msg_writes : msg -> (Dsm_vclock.Dot.t * int * int) list
  val pp_msg : Format.formatter -> msg -> unit
  val snapshot : t -> string
  val restore : config -> me:int -> string -> t
end

module Snapshot = struct
  let encode v = Marshal.to_string v []
  let decode s = (Marshal.from_string s 0 : 'a)

  let check_identity ~proto ~cfg ~me ~cfg' ~me' =
    if cfg' <> cfg then
      invalid_arg (proto ^ ".restore: snapshot from a different config");
    if me' <> me then
      invalid_arg (proto ^ ".restore: snapshot from a different process")
end

type packed = Packed : (module S with type t = 't and type msg = 'm) -> packed

let pp_apply_record ppf r =
  Format.fprintf ppf "apply(%a x%d:=%d%s)" Dsm_vclock.Dot.pp r.adot
    (r.avar + 1) r.avalue
    (if r.afrom_buffer then " delayed" else "")
