type config = { n : int; m : int }

let config ~n ~m =
  if n <= 0 then invalid_arg "Protocol.config: n must be positive";
  if m <= 0 then invalid_arg "Protocol.config: m must be positive";
  { n; m }

type apply_record = {
  adot : Dsm_vclock.Dot.t;
  avar : int;
  avalue : int;
  afrom_buffer : bool;
}

type 'msg outbound = Broadcast of 'msg | Unicast of { dst : int; msg : 'msg }

type 'msg effects = {
  applied : apply_record list;
  skipped : Dsm_vclock.Dot.t list;
  to_send : 'msg outbound list;
}

let no_effects = { applied = []; skipped = []; to_send = [] }

let effects ?(applied = []) ?(skipped = []) ?(to_send = []) () =
  { applied; skipped; to_send }

let merge_effects a b =
  {
    applied = a.applied @ b.applied;
    skipped = a.skipped @ b.skipped;
    to_send = a.to_send @ b.to_send;
  }

module type S = sig
  type t
  type msg

  val name : string
  val create : config -> me:int -> t
  val me : t -> int
  val grow : t -> n:int -> unit
  val set_generation : t -> gen:int -> unit
  val generation : t -> int
  val adopt : config -> me:int -> gen:int -> sponsor:string -> t
  val write : t -> var:int -> value:int -> Dsm_vclock.Dot.t * msg effects
  val read : t -> var:int -> Dsm_memory.Operation.value * Dsm_vclock.Dot.t option
  val receive : t -> src:int -> msg -> msg effects
  val waiting_for : t -> src:int -> msg -> Dsm_vclock.Dot.t option
  val buffered : t -> int
  val buffer_high_watermark : t -> int
  val total_buffered : t -> int
  val buffer_wakeup_scans : t -> int
  val applied_vector : t -> Dsm_vclock.Vector_clock.t
  val local_clock : t -> Dsm_vclock.Vector_clock.t
  val msg_writes : msg -> (Dsm_vclock.Dot.t * int * int) list
  val msg_frame : msg -> Dsm_obs.Wire.frame
  val pp_msg : Format.formatter -> msg -> unit
  val snapshot : t -> string
  val restore : config -> me:int -> string -> t
end

module Snapshot = struct
  let encode v = Marshal.to_string v []
  let decode s = (Marshal.from_string s 0 : 'a)

  let check_identity ~proto ~cfg ~me ~cfg' ~me' =
    if cfg' <> cfg then
      invalid_arg (proto ^ ".restore: snapshot from a different config");
    if me' <> me then
      invalid_arg (proto ^ ".restore: snapshot from a different process")
end

(* Shared receive/drain skeletons over a delivery buffer.

   Every buffer operation takes the wakeup oracle as a [~status]
   closure; building that closure per operation ([status t] is a
   partial application) used to be the dominant steady-state allocation
   of a receive cascade. The skeletons instead thread ONE hoisted
   closure through the whole cascade — the closure reads the protocol
   state through its captured [t], so it stays correct as applies
   advance the counters. The oracle-call sequence is exactly the seed
   protocols' (one status check on the incoming message, one
   [take_ready] per drain iteration, the [add] on the buffered path),
   so pinned wakeup-scan metrics are unchanged. *)
module Step (B : Dsm_sim.Delivery_buffer.S) = struct
  let drain buffer ~status ~apply =
    (* apply inside the loop: each apply can enable further buffered
       messages (chained unblocking); [note_advance] under [apply]
       re-checks exactly the messages subscribed to the advanced
       counter, so only genuinely enabled messages are re-examined *)
    let rec go acc =
      match B.take_ready buffer ~status with
      | Some (src, m) -> go (apply ~src m ~from_buffer:true :: acc)
      | None -> List.rev acc
    in
    go []

  let receive buffer ~status ~apply ~src m =
    match status (src, m) with
    | Dsm_sim.Delivery_buffer.Ready ->
        let first = apply ~src m ~from_buffer:false in
        effects ~applied:(first :: drain buffer ~status ~apply) ()
    | Wait_for _ | Stuck ->
        B.add buffer ~status (src, m);
        no_effects
end

type packed = Packed : (module S with type t = 't and type msg = 'm) -> packed

let pp_apply_record ppf r =
  Format.fprintf ppf "apply(%a x%d:=%d%s)" Dsm_vclock.Dot.pp r.adot
    (r.avar + 1) r.avalue
    (if r.afrom_buffer then " delayed" else "")
