(** Common interface of the protocol class [𝒫] (§3.2).

    Every protocol in the repository — OptP, ANBKH, the
    writing-semantics variants — implements {!S}: a per-process state
    machine with three entry points matching the paper's event
    vocabulary:

    - [write] produces the local apply plus messages to transmit (the
      [send] event);
    - [read] is wait-free and local, returning the value and the
      identity of the write that produced it (which the runtime uses to
      record the read-from relation exactly);
    - [receive] is the [receipt] event: it may apply the incoming write
      immediately, buffer it (a {e write delay}, Definition 3), unblock
      previously buffered writes, skip writes (writing semantics), and
      emit further messages (token protocols).

    Implementations are purely deterministic state machines: all
    communication is returned as {!effects} and performed by the caller
    (the simulation runtime), which keeps protocols directly
    unit-testable without a network. *)

type config = { n : int; m : int }
(** [n] processes, [m] memory locations. *)

val config : n:int -> m:int -> config
(** @raise Invalid_argument unless [n > 0] and [m > 0]. *)

type apply_record = {
  adot : Dsm_vclock.Dot.t;  (** which write was applied *)
  avar : int;
  avalue : int;
  afrom_buffer : bool;
      (** [true] when the write had been buffered before applying —
          i.e. it {e suffered a write delay} at this process. *)
}

type 'msg outbound =
  | Broadcast of 'msg  (** to all other processes *)
  | Unicast of { dst : int; msg : 'msg }

type 'msg effects = {
  applied : apply_record list;  (** applies performed, in order *)
  skipped : Dsm_vclock.Dot.t list;
      (** writes never applied here (overwritten) — only writing-
          semantics protocols produce these; non-empty values certify
          the protocol is outside the class [𝒫] *)
  to_send : 'msg outbound list;
}

val no_effects : 'msg effects
val effects :
  ?applied:apply_record list ->
  ?skipped:Dsm_vclock.Dot.t list ->
  ?to_send:'msg outbound list ->
  unit ->
  'msg effects

val merge_effects : 'msg effects -> 'msg effects -> 'msg effects
(** Concatenates in order (first argument's effects first). *)

module type S = sig
  type t
  type msg

  val name : string

  val create : config -> me:int -> t
  (** Fresh replica state for process [me] (0-based).
      @raise Invalid_argument if [me] is outside [0..n-1]. *)

  val me : t -> int

  val grow : t -> n:int -> unit
  (** [grow t ~n] widens the replica state to [n] processes in place —
      the membership view gained members. Vector components for the new
      slots start at zero (a process that had not joined had produced no
      events), so clocks captured before the growth remain comparable
      under the implicit-zero convention; messages already buffered stay
      buffered and are re-evaluated unchanged. No-op when [n] equals the
      current size.
      @raise Invalid_argument if [n] is smaller than the current size,
      or for protocols whose topology is static (token ring). *)

  val set_generation : t -> gen:int -> unit
  (** [set_generation t ~gen] declares that this process occupies its
      slot as the [gen]-th occupant (slot reuse). From then on every
      write stamps [gen] into the own entry of its [Write_co] vector —
      and thus into its dot — so receivers can distinguish this
      process's writes from a predecessor's in the same slot. Must be
      called before the first write; [gen = 0] (the default state) is
      the original occupant and keeps the dense generation-free fast
      path. *)

  val generation : t -> int
  (** The generation declared by {!set_generation} (0 if never
      called). *)

  val adopt : config -> me:int -> gen:int -> sponsor:string -> t
  (** [adopt cfg ~me ~gen ~sponsor] builds the state of a {e new}
      process taking over slot [me] at generation [gen], bootstrapped
      from a {!snapshot} of a live sponsor replica. Unlike {!restore}
      (same process resuming its own identity), the adopter keeps the
      sponsor's {e replica} image — store contents, Apply counters,
      last-write metadata — but none of the sponsor's {e process}
      identity: its [Write_co] claims nothing beyond the slot's own
      write counter (which continues from where the retired occupant
      stopped, so dots never collide), and the pending-message buffer
      starts empty. The reuse gate (see {!Dsm_runtime.Membership.free})
      guarantees the retired occupant's writes are already applied
      everywhere, so the adopter's first write is immediately
      deliverable at every replica.
      @raise Invalid_argument if the snapshot's config differs, or for
      protocols whose topology is static (token ring). *)

  val write : t -> var:int -> value:int -> Dsm_vclock.Dot.t * msg effects
  (** Perform a local write; returns the new write's identity. The
      effects always contain the local apply and normally one
      [Broadcast]. *)

  val read : t -> var:int -> Dsm_memory.Operation.value * Dsm_vclock.Dot.t option
  (** Wait-free local read: the current value of [var] and the dot of
      the write that produced it ([None] for the initial ⊥). *)

  val receive : t -> src:int -> msg -> msg effects
  (** Handle one delivered message. *)

  val waiting_for : t -> src:int -> msg -> Dsm_vclock.Dot.t option
  (** Delay provenance: when [receive t ~src msg] would buffer [msg]
      (and for as long as it stays buffered), the {e wakeup
      constraint} as a dot — the causal predecessor whose apply the
      buffer is waiting on; by construction it is one of the missing
      writes the checker lists for the resulting delay (Definition 3).
      [None] when the message is deliverable, a duplicate, or when the
      protocol cannot name a single write (round-based batching).
      Read-only: never mutates [t]. *)

  val buffered : t -> int
  (** Messages currently delayed at this process. *)

  val buffer_high_watermark : t -> int
  val total_buffered : t -> int
  (** Total messages that ever suffered a delay here. *)

  val buffer_wakeup_scans : t -> int
  (** Deliverability re-evaluations performed by the delivery buffer
      (oracle calls / rescan predicate evaluations) — the work metric
      behind the Scan-vs-Indexed comparison. *)

  val applied_vector : t -> Dsm_vclock.Vector_clock.t
  (** The paper's [Apply] array: per-issuer applied-write counts. *)

  val local_clock : t -> Dsm_vclock.Vector_clock.t
  (** The protocol's working vector ([Write_co] for OptP, the
      Fidge–Mattern vector for ANBKH). For introspection/figures. *)

  val msg_writes : msg -> (Dsm_vclock.Dot.t * int * int) list
  (** The writes a wire message carries, as [(dot, var, value)] — one
      entry for ordinary write messages, several for token batches,
      none for control messages. The runtime uses this to record
      [send]/[receipt] events per write without knowing the concrete
      message type. *)

  val msg_frame : msg -> Dsm_obs.Wire.frame
  (** The message's wire shape — scalar fields, dots, causal vectors —
      for byte-cost accounting (see {!Dsm_obs.Wire}). Pure: reads the
      message only; the vectors it lists are the live ones (the
      accountant copies what it retains). *)

  val pp_msg : Format.formatter -> msg -> unit

  (** {2 Durability}

      The crash–recovery model: a {!snapshot} is the process's entire
      durable image — for OptP that is [Apply], [Write_co],
      [LastWriteOn], the local store replica and the pending (buffered)
      messages; everything else a run holds for the process (network
      handlers, channel timers, unrecorded events) is volatile and dies
      with a crash. {!restore} rebuilds a working state from the last
      snapshot; the recovered process then catches up on writes it
      missed through the {e normal} receive path (anti-entropy replay),
      so delivery-buffer behaviour and optimality accounting are
      unchanged by recovery. *)

  val snapshot : t -> string
  (** Serialized durable state. The encoding is private to the
      implementation (only {!restore} of the same protocol reads it)
      and self-contained: no sharing with the live state survives, so
      mutating the process after [snapshot] does not alter the image. *)

  val restore : config -> me:int -> string -> t
  (** [restore cfg ~me s] rebuilds the state serialized by [snapshot].
      @raise Invalid_argument if the snapshot was taken by a different
      process or under a different configuration. *)
end

(** Shared receive/drain skeletons over a delivery buffer.

    The hot-path discipline for protocols built on
    {!Dsm_sim.Delivery_buffer}: hoist the wakeup-oracle closure
    ([status t]) {e once} per entry point and thread it through the
    whole receive cascade, instead of rebuilding the partial
    application at every buffer operation — the dominant steady-state
    allocation of the seed protocols. The oracle-call sequence (and so
    every pinned wakeup-scan metric) is identical to the seed shape. *)
module Step (B : Dsm_sim.Delivery_buffer.S) : sig
  val drain :
    (int * 'm) B.t ->
    status:(int * 'm -> Dsm_sim.Delivery_buffer.status) ->
    apply:(src:int -> 'm -> from_buffer:bool -> apply_record) ->
    apply_record list
  (** Repeatedly [take_ready] and apply until the buffer yields no
      ready message; returns the apply records in apply order. *)

  val receive :
    (int * 'm) B.t ->
    status:(int * 'm -> Dsm_sim.Delivery_buffer.status) ->
    apply:(src:int -> 'm -> from_buffer:bool -> apply_record) ->
    src:int ->
    'm ->
    'm effects
  (** The canonical receipt shape (OptP Figure 5 / causal broadcast):
      apply-then-drain when the incoming message is [Ready], buffer it
      otherwise. *)
end

(** Existential wrapper so heterogeneous protocols can be listed in
    experiment tables. *)
type packed = Packed : (module S with type t = 't and type msg = 'm) -> packed

(** Shared snapshot plumbing for implementations of {!S}.

    Every protocol state in the repository is closure-free plain data
    (vectors are int arrays, buffers are hashtables and lists; the
    delivery-buffer [status] closures are passed per-call, never
    stored), so the durable image is a [Marshal] round-trip — which is
    also a deep copy, giving {!S.snapshot} its no-sharing guarantee.
    [decode] must only be applied to a string produced by [encode] at
    the same state type; the protocols guard the public entry point by
    checking the embedded config and process id via [check_identity]. *)
module Snapshot : sig
  val encode : 'a -> string
  val decode : string -> 'a
  val check_identity :
    proto:string -> cfg:config -> me:int -> cfg':config -> me':int -> unit
end

val pp_apply_record : Format.formatter -> apply_record -> unit
