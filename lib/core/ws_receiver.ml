module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Mailbox = Dsm_sim.Mailbox
open Protocol

type message = {
  var : int;
  value : int;
  dot : Dot.t;
  vt : V.t;
  prev : Dot.t option;
  can_skip : bool;
}

type msg = message

type t = {
  mutable cfg : config;
  me : int;
  mutable my_gen : int;  (* occupancy generation of this slot (reuse) *)
  store : Replica_store.t;
  delivered : V.t;
  vclock : V.t;
  buffer : (int * msg) Mailbox.t;
  mutable overwritten : Dot.Set.t;
      (* writes logically applied by a skip; their messages are dropped *)
  seen : (Dot.t, int * V.t) Hashtbl.t;
      (* var and send-timestamp of every write applied or issued here;
         feeds the sender-side [can_skip] computation *)
  mutable skipped_total : int;
}

let name = "WS-recv"

let create cfg ~me =
  if me < 0 || me >= cfg.n then
    invalid_arg "Ws_receiver.create: process id out of range";
  {
    cfg;
    me;
    my_gen = 0;
    store = Replica_store.create ~m:cfg.m;
    delivered = V.create cfg.n;
    vclock = V.create cfg.n;
    buffer = Mailbox.create ();
    overwritten = Dot.Set.empty;
    seen = Hashtbl.create 64;
    skipped_total = 0;
  }

let me t = t.me

let set_generation t ~gen =
  if gen < 0 then
    invalid_arg "Ws_receiver.set_generation: negative generation";
  t.my_gen <- gen

let generation t = t.my_gen

let grow t ~n =
  if n < t.cfg.n then invalid_arg "Ws_receiver.grow: cannot shrink";
  if n > t.cfg.n then begin
    t.cfg <- { t.cfg with n };
    V.grow t.delivered n;
    V.grow t.vclock n
  end

(* no write w'' on another variable with prev.vt < w''.vt < w.vt;
   checked over every write this process has seen — by safety that
   includes the whole causal past of the write being sent *)
let compute_can_skip t ~var ~prev ~vt =
  match prev with
  | None -> false
  | Some prev_dot -> (
      match Hashtbl.find_opt t.seen prev_dot with
      | None -> false
      | Some (_, prev_vt) ->
          not
            (Hashtbl.fold
               (fun _ (var'', vt'') found ->
                 found
                 || var'' <> var
                    && V.lt prev_vt vt''
                    && V.lt vt'' vt)
               t.seen false))

let write t ~var ~value =
  V.tick t.vclock t.me;
  (* canonical-gen rule: stamp only alongside the counter advance *)
  if t.my_gen > 0 then V.set_gen t.vclock t.me t.my_gen;
  let vt = V.copy t.vclock in
  let dot = Dot.of_clock vt t.me in
  let prev = Replica_store.last_writer t.store ~var in
  let can_skip = compute_can_skip t ~var ~prev ~vt in
  let m = { var; value; dot; vt; prev; can_skip } in
  Replica_store.apply t.store ~var ~value ~dot;
  V.tick t.delivered t.me;
  Hashtbl.replace t.seen dot (var, vt);
  let applied =
    [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
  in
  (dot, effects ~applied ~to_send:[ Broadcast m ] ())

let read t ~var = Replica_store.read t.store ~var

let deliverable t ~src (m : msg) =
  let ok = ref (V.get0 t.delivered src = V.get0 m.vt src - 1) in
  for k = 0 to min t.cfg.n (V.size m.vt) - 1 do
    if k <> src && V.get m.vt k > V.get t.delivered k then ok := false
  done;
  !ok

(* first missing predecessor of the causal-broadcast wait condition;
   [None] for duplicates, skip-discarded writes, and deliverable
   messages *)
let waiting_for t ~src (m : msg) =
  if Dot.Set.mem m.dot t.overwritten then None
  else
    let d_src = V.get0 t.delivered src in
    let v_src = V.get0 m.vt src in
    if d_src > v_src - 1 then None (* duplicate *)
    else if d_src < v_src - 1 then
      Some (Dot.make ~replica:src ~seq:(v_src - 1))
    else
      let bound = min t.cfg.n (V.size m.vt) in
      let rec scan k =
        if k >= bound then None
        else if k <> src && V.get m.vt k > V.get t.delivered k then
          Some (Dot.make ~replica:k ~seq:(V.get m.vt k))
        else scan (k + 1)
      in
      scan 0

let apply_msg t ~src (m : msg) ~from_buffer =
  Replica_store.apply t.store ~var:m.var ~value:m.value ~dot:m.dot;
  V.tick t.delivered src;
  if Dot.gen m.dot > 0 then V.set_gen t.delivered src (Dot.gen m.dot);
  V.merge_into t.vclock m.vt;
  Hashtbl.replace t.seen m.dot (m.var, m.vt);
  { adot = m.dot; avar = m.var; avalue = m.value; afrom_buffer = from_buffer }

(* Is [m] from [src] deliverable once [d] is counted as applied?
   The skip and the apply of the overwriting message must be one atomic
   step: skipping [d] without immediately applying its overwriter would
   open a window in which a write depending on [d] gets applied while
   the store still holds a value older than [d] — an illegal read. *)
let deliverable_after_skip t ~src (m : msg) d =
  let bump k = V.get0 t.delivered k + if k = Dot.replica d then 1 else 0 in
  let ok = ref (bump src = V.get0 m.vt src - 1) in
  for k = 0 to min t.cfg.n (V.size m.vt) - 1 do
    if k <> src && V.get m.vt k > bump k then ok := false
  done;
  !ok

(* Find a buffered write [m] that names an undelivered immediate
   predecessor [d] on the same variable, certifies no interposition,
   and becomes deliverable once [d] is skipped. Returns the applies
   performed. *)
let try_skip t =
  let candidate =
    List.find_map
      (fun (src, (m : msg)) ->
        match m.prev with
        | Some d
          when m.can_skip
               && (not (Dot.Set.mem d t.overwritten))
               && V.get t.delivered (Dot.replica d) = Dot.seq d - 1
               && deliverable_after_skip t ~src m d ->
            Some (src, m, d)
        | Some _ | None -> None)
      (Mailbox.to_list t.buffer)
  in
  match candidate with
  | None -> None
  | Some (src, m, d) ->
      (* atomically: count d as logically applied, drop its message if
         present, and apply the overwriter *)
      V.tick t.delivered (Dot.replica d);
      t.overwritten <- Dot.Set.add d t.overwritten;
      t.skipped_total <- t.skipped_total + 1;
      ignore
        (Mailbox.remove_all t.buffer ~f:(fun (_, (b : msg)) ->
             Dot.equal b.dot d));
      ignore
        (Mailbox.remove_all t.buffer ~f:(fun (_, (b : msg)) ->
             Dot.equal b.dot m.dot));
      Some (apply_msg t ~src m ~from_buffer:true, d)


(* The incoming message itself may trigger a skip at receipt time: its
   named predecessor is the issuer's next undelivered write and skipping
   it makes the message deliverable at once. In that case the write
   never waits, so its apply is NOT a write delay (Definition 3). *)
let skip_for_incoming t ~src (m : msg) =
  match m.prev with
  | Some d
    when m.can_skip
         && (not (Dot.Set.mem d t.overwritten))
         && V.get t.delivered (Dot.replica d) = Dot.seq d - 1
         && deliverable_after_skip t ~src m d ->
      V.tick t.delivered (Dot.replica d);
      t.overwritten <- Dot.Set.add d t.overwritten;
      t.skipped_total <- t.skipped_total + 1;
      ignore
        (Mailbox.remove_all t.buffer ~f:(fun (_, (b : msg)) ->
             Dot.equal b.dot d));
      Some (apply_msg t ~src m ~from_buffer:false, d)
  | Some _ | None -> None

let drain t =
  let applied = ref [] and skipped = ref [] in
  (* hoisted once per drain (the [Protocol.Step] discipline), not
     rebuilt per scan iteration *)
  let f (src, m) = deliverable t ~src m in
  let rec loop () =
    match Mailbox.take_first t.buffer ~f with
    | Some (src, m) ->
        applied := apply_msg t ~src m ~from_buffer:true :: !applied;
        loop ()
    | None -> (
        match try_skip t with
        | Some (record, d) ->
            applied := record :: !applied;
            skipped := d :: !skipped;
            loop ()
        | None -> ())
  in
  loop ();
  (List.rev !applied, List.rev !skipped)

let receive t ~src m =
  if Dot.Set.mem m.dot t.overwritten then
    (* already logically applied by a skip: discard the late message *)
    no_effects
  else if deliverable t ~src m then begin
    let first = apply_msg t ~src m ~from_buffer:false in
    let applied, skipped = drain t in
    effects ~applied:(first :: applied) ~skipped ()
  end
  else
    match skip_for_incoming t ~src m with
    | Some (first, d) ->
        let applied, skipped = drain t in
        effects ~applied:(first :: applied) ~skipped:(d :: skipped) ()
    | None ->
        (* a buffered message changes no delivery state, so no other
           buffered message can have become ready: no drain needed *)
        Mailbox.add t.buffer (src, m);
        no_effects

let buffered t = Mailbox.length t.buffer
let buffer_high_watermark t = Mailbox.high_watermark t.buffer
let total_buffered t = Mailbox.total_buffered t.buffer
let buffer_wakeup_scans t = Mailbox.scans t.buffer
let applied_vector t = V.copy t.delivered
let local_clock t = V.copy t.vclock
let skipped_total t = t.skipped_total

let pp_msg ppf (m : msg) =
  Format.fprintf ppf "m(x%d, %d, %a%s)" (m.var + 1) m.value V.pp m.vt
    (match m.prev with
    | Some d when m.can_skip -> Printf.sprintf ", overwrites %s" (Dot.to_string d)
    | _ -> "")

let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

let msg_frame (m : msg) =
  {
    Dsm_obs.Wire.kind = "write";
    scalars = 3;  (* var, value, can_skip *)
    dots = (match m.prev with Some _ -> 2 | None -> 1);
    vectors = [ m.vt ];
  }

let snapshot t = Snapshot.encode t

let restore cfg ~me s =
  let t : t = Snapshot.decode s in
  Snapshot.check_identity ~proto:"Ws_receiver" ~cfg ~me ~cfg':t.cfg
    ~me':t.me;
  t

(* Slot reuse (see Anbkh.adopt): keep the sponsor's replica image; the
   working clock starts from the sponsor's delivered counts so it
   dominates everything in the adopted store. *)
let adopt cfg ~me ~gen ~sponsor =
  if me < 0 || me >= cfg.n then
    invalid_arg "Ws_receiver.adopt: process id out of range";
  if gen < 1 then
    invalid_arg "Ws_receiver.adopt: generation must be positive";
  let s : t = Snapshot.decode sponsor in
  if s.cfg <> cfg then
    invalid_arg "Ws_receiver.adopt: snapshot from a different config";
  {
    cfg;
    me;
    my_gen = gen;
    store = s.store;
    delivered = s.delivered;
    vclock = V.copy s.delivered;
    buffer = Mailbox.create ();
    overwritten = s.overwritten;
    seen = s.seen;
    skipped_total = 0;
  }
