module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Mailbox = Dsm_sim.Mailbox
open Protocol

type item = {
  var : int;
  value : int;
  dot : Dot.t;
  covered : Dot.t list;
      (* writes this item overwrote at the sender; they are never
         propagated, and receivers account them as skips (logical
         applies immediately before this item's apply) *)
}

type message =
  | Batch of { round : int; items : item list }
  | Token of { next_round : int; idle_hops : int }
  | Parked of { holder : int }
  | Nudge

type msg = message

type t = {
  cfg : config;
  me : int;
  store : Replica_store.t;
  applied : V.t;  (* per-issuer applied-write counts, for reporting *)
  mutable next_write_seq : int;
  mutable pending : (int * item) list;
      (* (var, last item) since the previous token hold, oldest first *)
  mutable has_token : bool;
  mutable parked : bool;
  mutable known_parked_holder : int option;
  mutable expected_round : int;  (* next batch round to apply *)
  mutable held_next_round : int;
      (* round the held token will assign to the next flush; only
         meaningful while [has_token] *)
  batch_buffer : (int * msg) Mailbox.t;  (* out-of-round batches *)
  mutable skipped_total : int;
  mutable rounds_flushed : int;
}

let name = "WS-token"

let create cfg ~me =
  if me < 0 || me >= cfg.n then
    invalid_arg "Ws_token.create: process id out of range";
  {
    cfg;
    me;
    store = Replica_store.create ~m:cfg.m;
    applied = V.create cfg.n;
    next_write_seq = 1;
    pending = [];
    (* the token starts parked at process 0, and everybody knows it *)
    has_token = me = 0;
    parked = me = 0;
    known_parked_holder = Some 0;
    expected_round = 0;
    held_next_round = 0;
    batch_buffer = Mailbox.create ();
    skipped_total = 0;
    rounds_flushed = 0;
  }

let me t = t.me

(* The token ring is a static topology: round numbering and token
   routing both assume the ring order never changes, so membership
   growth is not meaningful here. *)
let grow _t ~n:_ =
  invalid_arg "Ws_token.grow: token ring topology is static"

(* Static topology also rules out slot reuse: there is no membership
   change, so a slot is never retired and never recycled. *)
let set_generation _t ~gen =
  if gen <> 0 then
    invalid_arg "Ws_token.set_generation: token ring topology is static"

let generation _t = 0

let adopt _cfg ~me:_ ~gen:_ ~sponsor:_ =
  invalid_arg "Ws_token.adopt: token ring topology is static"

let next_on_ring t = (t.me + 1) mod t.cfg.n

(* Flush: broadcast the pending batch and pass the token on. Only the
   holder calls this, and only with a non-empty pending set. *)
let flush t ~next_round =
  (* items go out in write-sequence order: the pending list is ordered
     by first touch of each variable, but an in-place overwrite can give
     an earlier slot a later dot, and receivers must apply in process
     order *)
  let items =
    List.sort
      (fun a b -> Int.compare (Dot.seq a.dot) (Dot.seq b.dot))
      (List.map snd t.pending)
  in
  t.pending <- [];
  t.rounds_flushed <- t.rounds_flushed + 1;
  if t.cfg.n = 1 then
    (* sole process: nothing to propagate and nobody to pass the token
       to; it stays parked here *)
    []
  else begin
    t.has_token <- false;
    t.parked <- false;
    [
      Broadcast (Batch { round = next_round; items });
      Unicast
        {
          dst = next_on_ring t;
          msg = Token { next_round = next_round + 1; idle_hops = 0 };
        };
    ]
  end

let write t ~var ~value =
  let dot = Dot.make ~replica:t.me ~seq:t.next_write_seq in
  t.next_write_seq <- t.next_write_seq + 1;
  Replica_store.apply t.store ~var ~value ~dot;
  V.tick t.applied t.me;
  (* sender-side overwriting: replace a pending write on the same
     variable; the replaced write is never propagated and the new item
     inherits responsibility for announcing it as covered *)
  (match List.assoc_opt var t.pending with
  | Some old ->
      let item = { var; value; dot; covered = old.covered @ [ old.dot ] } in
      t.pending <-
        List.map (fun (v, it) -> if v = var then (v, item) else (v, it))
          t.pending;
      t.skipped_total <- t.skipped_total + 1
  | None ->
      t.pending <- t.pending @ [ (var, { var; value; dot; covered = [] }) ]);
  let applied =
    [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
  in
  let to_send =
    if t.has_token && t.parked && t.expected_round = t.held_next_round then begin
      (* we hold the parked token and are up to date: propagate now *)
      let next_round = t.held_next_round in
      let sends = flush t ~next_round in
      t.expected_round <- next_round + 1;
      sends
    end
    else if t.has_token then
      (* holding the token but still missing earlier batches: the
         arrival of those batches retries the flush *)
      []
    else
      match t.known_parked_holder with
      | Some h when h <> t.me -> [ Unicast { dst = h; msg = Nudge } ]
      | Some _ | None -> []
  in
  (dot, effects ~applied ~to_send ())

let read t ~var = Replica_store.read t.store ~var

(* returns (apply records, covered dots skipped here) *)
let apply_batch t ~round items ~from_buffer =
  assert (round = t.expected_round);
  t.expected_round <- round + 1;
  let skipped =
    List.concat_map
      (fun it ->
        (* the covered writes are logically applied just before [it] *)
        List.iter
          (fun d ->
            if Dot.seq d > V.get t.applied (Dot.replica d) then
              V.set t.applied (Dot.replica d) (Dot.seq d))
          it.covered;
        it.covered)
      items
  in
  let records =
    List.map
      (fun it ->
        Replica_store.apply t.store ~var:it.var ~value:it.value ~dot:it.dot;
        V.tick t.applied (Dot.replica it.dot);
        {
          adot = it.dot;
          avar = it.var;
          avalue = it.value;
          afrom_buffer = from_buffer;
        })
      items
  in
  (records, skipped)

let drain_batches t =
  (* hoisted once per drain (the [Protocol.Step] discipline), not
     rebuilt per scan iteration; reads [t.expected_round] through [t],
     so it tracks the advancing round *)
  let f (_, m) =
    match m with
    | Batch { round; _ } -> round = t.expected_round
    | Token _ | Parked _ | Nudge -> false
  in
  let rec loop (applied, skipped) =
    match Mailbox.take_first t.batch_buffer ~f with
    | Some (_, Batch { round; items }) ->
        let records, covered = apply_batch t ~round items ~from_buffer:true in
        loop (applied @ records, skipped @ covered)
    | Some (_, (Token _ | Parked _ | Nudge)) -> assert false
    | None -> (applied, skipped)
  in
  loop ([], [])

let receive_token t ~next_round ~idle_hops =
  t.has_token <- true;
  t.held_next_round <- next_round;
  (* a flush consumes round [next_round]: hold the token until every
     earlier batch has been applied locally so our batch extends what
     our replica already shows; with in-order rounds this is immediate
     unless batches are still in flight to us *)
  if t.pending <> [] && t.expected_round = next_round then begin
    let sends = flush t ~next_round in
    (* our own batch is round [next_round], applied locally already
       variable-wise; account the round as consumed *)
    t.expected_round <- next_round + 1;
    effects ~to_send:sends ()
  end
  else if t.pending <> [] (* wait for missing batches; re-nudge ourselves
                             by parking: batches in flight will arrive and
                             [drain_batches] runs on each; we keep the
                             token meanwhile *) then begin
    t.parked <- true;
    no_effects
  end
  else if idle_hops + 1 >= t.cfg.n then begin
    t.parked <- true;
    t.known_parked_holder <- Some t.me;
    effects ~to_send:[ Broadcast (Parked { holder = t.me }) ] ()
  end
  else begin
    t.has_token <- false;
    t.parked <- false;
    effects
      ~to_send:
        [
          Unicast
            {
              dst = next_on_ring t;
              msg = Token { next_round; idle_hops = idle_hops + 1 };
            };
        ]
      ()
  end

(* retry a parked-with-pending token holder once batches catch up *)
let retry_held_token t =
  if
    t.has_token && t.parked && t.pending <> []
    && t.expected_round = t.held_next_round
  then begin
    let next_round = t.held_next_round in
    let sends = flush t ~next_round in
    t.expected_round <- next_round + 1;
    sends
  end
  else []

let receive t ~src m =
  match m with
  | Batch { round; items } ->
      if round = t.expected_round then begin
        let first, first_skipped =
          apply_batch t ~round items ~from_buffer:false
        in
        let rest, rest_skipped = drain_batches t in
        let sends = retry_held_token t in
        effects ~applied:(first @ rest)
          ~skipped:(first_skipped @ rest_skipped) ~to_send:sends ()
      end
      else begin
        Mailbox.add t.batch_buffer (src, m);
        no_effects
      end
  | Token { next_round; idle_hops } -> receive_token t ~next_round ~idle_hops
  | Parked { holder } ->
      t.known_parked_holder <- Some holder;
      if t.pending <> [] && holder <> t.me then
        effects ~to_send:[ Unicast { dst = holder; msg = Nudge } ] ()
      else no_effects
  | Nudge ->
      if t.has_token && t.parked && t.pending = [] then begin
        t.parked <- false;
        t.has_token <- false;
        effects
          ~to_send:
            [
              Unicast
                {
                  dst = next_on_ring t;
                  msg =
                    Token { next_round = t.held_next_round; idle_hops = 0 };
                };
            ]
          ()
      end
      else no_effects

(* round-based ordering: an out-of-round batch waits for a whole token
   round, not for one nameable write — no dot-level provenance here *)
let waiting_for _t ~src:_ _m = None

let buffered t = Mailbox.length t.batch_buffer
let buffer_high_watermark t = Mailbox.high_watermark t.batch_buffer
let total_buffered t = Mailbox.total_buffered t.batch_buffer
let buffer_wakeup_scans t = Mailbox.scans t.batch_buffer
let applied_vector t = V.copy t.applied
let local_clock t = V.copy t.applied
let has_token t = t.has_token
let is_parked t = t.parked
let pending_count t = List.length t.pending
let skipped_total t = t.skipped_total
let rounds_flushed t = t.rounds_flushed

let pp_msg ppf = function
  | Batch { round; items } ->
      Format.fprintf ppf "batch(round=%d, %d items)" round
        (List.length items)
  | Token { next_round; idle_hops } ->
      Format.fprintf ppf "token(next_round=%d, idle=%d)" next_round idle_hops
  | Parked { holder } -> Format.fprintf ppf "parked(p%d)" (holder + 1)
  | Nudge -> Format.pp_print_string ppf "nudge"

let msg_writes = function
  | Batch { items; _ } -> List.map (fun it -> (it.dot, it.var, it.value)) items
  | Token _ | Parked _ | Nudge -> []

let msg_frame = function
  | Batch { items; _ } ->
      {
        Dsm_obs.Wire.kind = "batch";
        scalars = 1 + (2 * List.length items);  (* round + (var, value) each *)
        dots =
          List.fold_left (fun acc it -> acc + 1 + List.length it.covered) 0 items;
        vectors = [];
      }
  | Token _ -> { Dsm_obs.Wire.kind = "token"; scalars = 2; dots = 0; vectors = [] }
  | Parked _ ->
      { Dsm_obs.Wire.kind = "token"; scalars = 1; dots = 0; vectors = [] }
  | Nudge -> { Dsm_obs.Wire.kind = "token"; scalars = 0; dots = 0; vectors = [] }

let snapshot t = Snapshot.encode t

let restore cfg ~me s =
  let t : t = Snapshot.decode s in
  Snapshot.check_identity ~proto:"Ws_token" ~cfg ~me ~cfg':t.cfg ~me':t.me;
  t
