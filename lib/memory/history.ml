module Dot = Dsm_vclock.Dot

type t = {
  locals : Operation.t list array;  (* indexed by process id *)
  all : Operation.t list;
  writes : Operation.write list;
  by_dot : Operation.write Dot.Map.t;
  n_vars : int;
}

let of_locals locals_list =
  let n = List.length locals_list in
  let seen = Array.make (max n 1) false in
  List.iter
    (fun lh ->
      let p = Local_history.proc lh in
      if p < 0 || p >= n then
        invalid_arg
          (Printf.sprintf
             "History.of_locals: process id %d outside 0..%d" p (n - 1));
      if seen.(p) then
        invalid_arg
          (Printf.sprintf "History.of_locals: duplicate process id %d" p);
      seen.(p) <- true)
    locals_list;
  let locals = Array.make (max n 1) [] in
  List.iter
    (fun lh -> locals.(Local_history.proc lh) <- Local_history.ops lh)
    locals_list;
  let locals = if n = 0 then [||] else Array.sub locals 0 n in
  let all = List.concat (Array.to_list locals) in
  let writes = List.filter_map Operation.as_write all in
  let by_dot =
    List.fold_left
      (fun m (w : Operation.write) -> Dot.Map.add w.wdot w m)
      Dot.Map.empty writes
  in
  let n_vars =
    List.fold_left (fun acc op -> max acc (Operation.var op + 1)) 0 all
  in
  { locals; all; writes; by_dot; n_vars }

let n_processes t = Array.length t.locals
let n_variables t = t.n_vars

let local t i =
  if i < 0 || i >= Array.length t.locals then
    invalid_arg "History.local: process id out of range";
  t.locals.(i)

let ops t = t.all
let op_count t = List.length t.all
let writes t = t.writes
let write_count t = List.length t.writes
let find_write t dot = Dot.Map.find_opt dot t.by_dot
let reads t = List.filter_map Operation.as_read t.all

type violation =
  | Dangling_read_from of Operation.read
  | Read_from_wrong_variable of Operation.read * Operation.write
  | Read_from_wrong_value of Operation.read * Operation.write
  | Bot_read_with_value of Operation.read

let validate ?floor t =
  (* [floor] marks the writes of earlier windows, audited and compacted
     away: a read-from naming a dot at or below the floor is a pointer
     out of the window, not a dangling pointer *)
  let below_floor d =
    match floor with
    | None -> false
    | Some f ->
        Dsm_vclock.Dot.seq d
        <= Dsm_vclock.Vector_clock.get0 f (Dsm_vclock.Dot.replica d)
  in
  let check_read acc (r : Operation.read) =
    match r.read_from with
    | None -> (
        match r.rvalue with
        | Operation.Bot -> acc
        | Operation.Val _ -> Bot_read_with_value r :: acc)
    | Some dot -> (
        match find_write t dot with
        | None ->
            if below_floor dot then acc else Dangling_read_from r :: acc
        | Some w ->
            if w.wvar <> r.rvar then Read_from_wrong_variable (r, w) :: acc
            else if r.rvalue <> Operation.Val w.wvalue then
              Read_from_wrong_value (r, w) :: acc
            else acc)
  in
  match List.fold_left check_read [] (reads t) with
  | [] -> Ok ()
  | vs -> Error (List.rev vs)

let pp_violation ppf = function
  | Dangling_read_from r ->
      Format.fprintf ppf "read %a: read_from names an absent write"
        Operation.pp (Operation.Read r)
  | Read_from_wrong_variable (r, w) ->
      Format.fprintf ppf "read %a reads-from %a: different variables"
        Operation.pp (Operation.Read r) Operation.pp (Operation.Write w)
  | Read_from_wrong_value (r, w) ->
      Format.fprintf ppf "read %a reads-from %a: value mismatch"
        Operation.pp (Operation.Read r) Operation.pp (Operation.Write w)
  | Bot_read_with_value r ->
      Format.fprintf ppf "read %a has no read_from but a non-⊥ value"
        Operation.pp (Operation.Read r)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i ops ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "h%d : %a" (i + 1)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           Operation.pp)
        ops)
    t.locals;
  Format.fprintf ppf "@]"
