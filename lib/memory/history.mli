(** Global histories (the paper's [Ĥ = (H, ↦co)], data part).

    A history is the collection of the [n] local histories, one per
    process. This module stores the collection and provides lookup and
    well-formedness validation; the order-theoretic part ([↦co]) is
    computed by {!Causal_order}. *)

type t

val of_locals : Local_history.t list -> t
(** The local histories must carry distinct process ids exactly
    [0..n-1] (any list order).
    @raise Invalid_argument otherwise. *)

val n_processes : t -> int

val n_variables : t -> int
(** One more than the largest variable index mentioned; 0 for an empty
    history. *)

val local : t -> int -> Operation.t list
(** Operations of process [i] in process order.
    @raise Invalid_argument on bad process id. *)

val ops : t -> Operation.t list
(** All operations, deterministically ordered: by process id, then
    process order. *)

val op_count : t -> int
val writes : t -> Operation.write list
(** All writes, same deterministic order. *)

val write_count : t -> int

val find_write : t -> Dsm_vclock.Dot.t -> Operation.write option

val reads : t -> Operation.read list

type violation =
  | Dangling_read_from of Operation.read
      (** [read_from] names a write that is not in the history. *)
  | Read_from_wrong_variable of Operation.read * Operation.write
  | Read_from_wrong_value of Operation.read * Operation.write
  | Bot_read_with_value of Operation.read
      (** A read with no [read_from] must return ⊥ (the third clause of
          the paper's [↦ro] definition). *)

val validate :
  ?floor:Dsm_vclock.Vector_clock.t -> t -> (unit, violation list) result
(** Checks the structural conditions on [↦ro] from §2. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
(** All local histories, one per line, paper notation. *)
