type t = {
  proc : int;
  mutable rev_ops : Operation.t list;
  mutable next_write_seq : int;
  mutable next_read_slot : int;
}

let create ?(base = 0) ~proc () =
  if proc < 0 then invalid_arg "Local_history.create: negative process id";
  if base < 0 then invalid_arg "Local_history.create: negative base";
  { proc; rev_ops = []; next_write_seq = base + 1; next_read_slot = 0 }

let proc t = t.proc

let add_write ?dot t ~var ~value =
  let op =
    match dot with
    | None -> Operation.write ~proc:t.proc ~seq:t.next_write_seq ~var ~value
    | Some d ->
        (* dot passthrough: record the write under its actual identity —
           including a nonzero occupancy generation (slot reuse), which
           the synthesized [Dot.make] could not carry — as long as it
           sits where process order says the next write must sit *)
        if Dsm_vclock.Dot.replica d <> t.proc then
          invalid_arg "Local_history.add_write: dot from another process";
        if Dsm_vclock.Dot.seq d <> t.next_write_seq then
          invalid_arg "Local_history.add_write: dot out of sequence order";
        if var < 0 then
          invalid_arg "Local_history.add_write: negative variable index";
        Operation.Write { wdot = d; wvar = var; wvalue = value }
  in
  t.next_write_seq <- t.next_write_seq + 1;
  t.rev_ops <- op :: t.rev_ops;
  match Operation.as_write op with Some w -> w | None -> assert false

let add_read t ~var ~value ~read_from =
  let op =
    Operation.read ~proc:t.proc ~slot:t.next_read_slot ~var ~value ~read_from
  in
  t.next_read_slot <- t.next_read_slot + 1;
  t.rev_ops <- op :: t.rev_ops;
  match Operation.as_read op with Some r -> r | None -> assert false

let ops t = List.rev t.rev_ops
let length t = List.length t.rev_ops
let write_count t = t.next_write_seq - 1

let nth t i =
  let l = ops t in
  match List.nth_opt l i with
  | Some op -> op
  | None -> invalid_arg "Local_history.nth: index out of bounds"

let writes t = List.filter_map Operation.as_write (ops t)

let pp ppf t =
  Format.fprintf ppf "h%d : %a" (t.proc + 1)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Operation.pp)
    (ops t)
