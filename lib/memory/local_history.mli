(** Local history builder (the paper's [h_i]).

    A mutable builder that records the operations of one sequential
    process in process order ([↦poᵢ]), assigning write sequence numbers
    and read slots automatically. Builders are assembled into a global
    {!History.t}. *)

type t

val create : ?base:int -> proc:int -> unit -> t
(** [create ?base ~proc ()] starts a builder whose first write gets
    sequence number [base + 1] (default [base = 0]). A nonzero [base]
    records a {e window} of a longer history: [base] earlier writes
    were already audited and compacted away (see the [?floor]
    parameters of {!History.validate} and {!Write_vectors.compute}).
    @raise Invalid_argument on negative process id or base. *)

val proc : t -> int

val add_write :
  ?dot:Dsm_vclock.Dot.t -> t -> var:int -> value:int -> Operation.write
(** Appends the next write of this process; its dot sequence number is
    one more than the previous write's (1-based, per Observation 2).
    [?dot] records the write under that exact identity instead of a
    synthesized one — the way a slot-reuse occupant's generation stamp
    enters the history.
    @raise Invalid_argument if [dot] names another process or does not
    carry the expected next sequence number. *)

val add_read :
  t ->
  var:int ->
  value:Operation.value ->
  read_from:Dsm_vclock.Dot.t option ->
  Operation.read
(** Appends a read. [read_from] identifies the write whose value is
    returned ([None] for the initial value ⊥); consistency between
    [value] and the target write is checked by {!History.validate}, not
    here. *)

val ops : t -> Operation.t list
(** Process order. *)

val length : t -> int
val write_count : t -> int

val nth : t -> int -> Operation.t
(** @raise Invalid_argument if out of bounds. *)

val writes : t -> Operation.write list
(** Process order. *)

val pp : Format.formatter -> t -> unit
(** [h1 : w1(x1)a; r1(x2)b] — the paper's history notation. *)
