module Dot = Dsm_vclock.Dot

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Writes_follow_reads
  | Monotonic_writes

type violation = {
  guarantee : guarantee;
  proc : int;
  culprit : Dot.t option;
  anchor : Dot.t;
  detail : string;
}

let pp_guarantee ppf = function
  | Read_your_writes -> Format.pp_print_string ppf "read-your-writes"
  | Monotonic_reads -> Format.pp_print_string ppf "monotonic-reads"
  | Writes_follow_reads -> Format.pp_print_string ppf "writes-follow-reads"
  | Monotonic_writes -> Format.pp_print_string ppf "monotonic-writes"

let pp_violation ppf v =
  Format.fprintf ppf "%a at p%d [%s vs %a]: %s" pp_guarantee v.guarantee
    (v.proc + 1)
    (match v.culprit with
    | Some d -> Format.asprintf "%a" Dot.pp d
    | None -> "⊥")
    Dot.pp v.anchor v.detail

(* the stream state machine below is shared between the replica-side
   [check] and the client-session [check_streams]: in both cases a
   "process" is a sequence of operations whose writes and read sources
   name dots of the underlying history.  Two ordering oracles:

   - [must_precede] serves the {e obligation} checks (MW, WFR: "this
     write must follow that dot") — ground-truth [↦co], optionally
     extended with a caller witness for the cross-replica program-order
     edges a migrated session carries (a handoff means the new home
     applied the session's past before issuing for it, an edge [↦co]'s
     replica-local program order cannot see);
   - [older] serves the {e accusation} checks (RYW, MR: "the read
     returned something strictly older") — ground-truth [↦co] only.
     The witness must never accuse: two concurrent writes legitimately
     apply in different orders at different replicas, so "the issuer
     happened to apply src first" does not make src older. *)
let check_one_stream ~must_precede ~older ~m ~add proc ops =
  (* per-variable session state while scanning the stream *)
  let own_last_write = Array.make (max m 1) None in
  let last_read_from = Array.make (max m 1) None in
  let reads_so_far = ref [] in
  (* sources of all previous reads *)
  List.iter
    (fun op ->
      match op with
      | Operation.Write (w : Operation.write) ->
          (* MW: every earlier own write must causally precede this
             one (structural in this model, checked as an invariant) *)
          Array.iter
            (function
              | Some earlier
                when not
                       (Dot.equal earlier w.wdot
                       || must_precede earlier w.wdot) ->
                  add Monotonic_writes proc ~culprit:(Some w.wdot)
                    ~anchor:earlier
                    (Format.asprintf "%a does not follow own %a" Dot.pp
                       w.wdot Dot.pp earlier)
              | Some _ | None -> ())
            own_last_write;
          (* WFR: every read source so far must causally precede it *)
          List.iter
            (fun src ->
              if not (must_precede src w.wdot) then
                add Writes_follow_reads proc ~culprit:(Some w.wdot)
                  ~anchor:src
                  (Format.asprintf "%a not after read source %a" Dot.pp
                     w.wdot Dot.pp src))
            !reads_so_far;
          if w.wvar < Array.length own_last_write then
            own_last_write.(w.wvar) <- Some w.wdot
      | Operation.Read (r : Operation.read) ->
          (* RYW: the read must not return something strictly older
             than this stream's own last write on the variable *)
          (match (own_last_write.(r.rvar), r.read_from) with
          | Some own, None ->
              add Read_your_writes proc ~culprit:None ~anchor:own
                (Format.asprintf "read of x%d returned ⊥ after own write %a"
                   (r.rvar + 1) Dot.pp own)
          | Some own, Some src
            when (not (Dot.equal src own)) && older src own ->
              add Read_your_writes proc ~culprit:(Some src) ~anchor:own
                (Format.asprintf "read of x%d returned %a, older than own %a"
                   (r.rvar + 1) Dot.pp src Dot.pp own)
          | (Some _ | None), _ -> ());
          (* MR: successive reads of a variable never go backwards *)
          (match (last_read_from.(r.rvar), r.read_from) with
          | Some prev, None ->
              add Monotonic_reads proc ~culprit:None ~anchor:prev
                (Format.asprintf "read of x%d returned ⊥ after reading %a"
                   (r.rvar + 1) Dot.pp prev)
          | Some prev, Some src
            when (not (Dot.equal src prev)) && older src prev ->
              add Monotonic_reads proc ~culprit:(Some src) ~anchor:prev
                (Format.asprintf "read of x%d went backwards: %a after %a"
                   (r.rvar + 1) Dot.pp src Dot.pp prev)
          | (Some _ | None), _ -> ());
          (match r.read_from with
          | Some src ->
              last_read_from.(r.rvar) <- Some src;
              reads_so_far := src :: !reads_so_far
          | None -> ()))
    ops

let check_streams ?(also_precedes = fun _ _ -> false) co streams =
  let history = Causal_order.history co in
  let m =
    (* streams may mention variables beyond the history's width only if
       the history is empty; size defensively off both *)
    List.fold_left
      (fun acc (_, ops) ->
        List.fold_left (fun acc op -> max acc (Operation.var op + 1)) acc ops)
      (History.n_variables history)
      streams
  in
  (* strict ground-truth precedence: ↦co between two writes of the
     history; [must_precede] additionally admits the caller's witness *)
  let in_history d = History.find_write history d <> None in
  let older d1 d2 =
    (not (Dot.equal d1 d2))
    && in_history d1 && in_history d2
    && Causal_order.write_precedes co d1 d2
  in
  let must_precede d1 d2 = older d1 d2 || also_precedes d1 d2 in
  let violations = ref [] in
  let add guarantee proc ~culprit ~anchor detail =
    violations := { guarantee; proc; culprit; anchor; detail } :: !violations
  in
  List.iter
    (fun (proc, ops) -> check_one_stream ~must_precede ~older ~m ~add proc ops)
    streams;
  List.rev !violations

let check co =
  let history = Causal_order.history co in
  let n = History.n_processes history in
  check_streams co (List.init n (fun proc -> (proc, History.local history proc)))

let holds co guarantee =
  List.for_all (fun v -> v.guarantee <> guarantee) (check co)

let all_hold co = check co = []
