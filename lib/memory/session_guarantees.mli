(** Session guarantees (Terry et al. 1994) over a history.

    The four per-process session guarantees decompose causal
    consistency from the client's point of view:

    - {b Read Your Writes} (RYW): a read never returns a value older
      than a write the same process issued earlier on that variable;
    - {b Monotonic Reads} (MR): successive reads of a variable by one
      process never go backwards in [↦co];
    - {b Writes Follow Reads} (WFR): a write issued after a read is
      ordered after the read's source write in [↦co] (and every process
      applies them in that order);
    - {b Monotonic Writes} (MW): a process's writes are ordered in
      [↦co] in issue order.

    A causally consistent history satisfies all four — they are
    implied by Definitions 1–2 — so this module is a third,
    independently-coded validator for protocol runs (alongside
    per-read legality and serializations). Its real diagnostic value is
    on {e broken} runs: the violated guarantee names the anomaly
    (e.g. the eager protocol of [examples/social_timeline.ml] breaks
    RYW-across-processes style guarantees in a way this module pins
    down as an MR or RYW failure).

    {!check} audits the history's own per-process streams (the paper's
    model, where a process is its own client). {!check_streams} audits
    {e arbitrary} operation streams against the same ground truth — the
    session-tier checker re-attributes operations to client sessions
    whose ops were served by different replicas across migrations, and
    supplies an [?also_precedes] witness for the cross-replica ordering
    edges that [↦co]'s program order cannot see. *)

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Writes_follow_reads
  | Monotonic_writes

type violation = {
  guarantee : guarantee;
  proc : int;  (** stream index: process id, or session id for
                   re-attributed session streams *)
  culprit : Dsm_vclock.Dot.t option;
      (** the write the offending operation returned or issued;
          [None] when a read returned ⊥ *)
  anchor : Dsm_vclock.Dot.t;
      (** the dot the offender had to be ordered against: the own or
          previously-read write the guarantee names *)
  detail : string;
}
(** The violating operation pair is carried structurally
    ([culprit]/[anchor]) as well as rendered in [detail], so a shrunk
    nemesis reproducer names the exact dots without re-running with
    traces. *)

val check : Causal_order.t -> violation list
(** All violations across all processes (empty = all four hold). *)

val check_streams :
  ?also_precedes:(Dsm_vclock.Dot.t -> Dsm_vclock.Dot.t -> bool) ->
  Causal_order.t ->
  (int * Operation.t list) list ->
  violation list
(** [check_streams co streams] runs the same four audits over
    caller-attributed operation streams [(stream id, ops in stream
    order)]. Writes and read sources must name dots of [co]'s history
    (a session write {e is} the replica-issued write, under its replica
    dot). The base ordering oracle is ground-truth [↦co];
    [?also_precedes d1 d2] — a caller-supplied witness that [d1] was
    observed before [d2] was issued (the session tier passes "the
    issuer of [d2] applied [d1] before issuing [d2]", derived from the
    recorded execution) — extends it for the {e obligation} checks only
    (MW, WFR: a migrated session's consecutive writes at different
    replicas have no [↦co] program-order edge, but a handoff guarantees
    the witness edge). The {e accusation} checks (RYW, MR: "the read
    returned something strictly older") use plain [↦co]: concurrent
    writes legitimately apply in different orders at different
    replicas, so an apply-order witness must never accuse. [check] is
    [check_streams] over the history's own per-process streams with no
    witness. *)

val holds : Causal_order.t -> guarantee -> bool

val all_hold : Causal_order.t -> bool

val pp_guarantee : Format.formatter -> guarantee -> unit
val pp_violation : Format.formatter -> violation -> unit
