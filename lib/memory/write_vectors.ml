module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock

type t = {
  history : History.t;
  of_write : V.t Dot.Map.t;
  of_read : (int * int, V.t) Hashtbl.t;  (* (proc, slot) -> vector *)
}

let compute ?floor history =
  (match History.validate ?floor history with
  | Ok () -> ()
  | Error _ -> invalid_arg "Write_vectors.compute: ill-formed history");
  let n = History.n_processes history in
  let pending = Array.init n (fun p -> ref (History.local history p)) in
  (* windowed mode: the running vectors start from the floor — every
     process had applied all of the previous windows' writes at the
     convergence barrier that closed them, so the floor IS each
     process's causal past at the window boundary *)
  let base () =
    match floor with
    | None -> V.create (max n 1)
    | Some f ->
        let v = V.create (max n 1) in
        V.merge_into v f;
        v
  in
  let running = Array.init n (fun _ -> base ()) in
  let below_floor d =
    match floor with
    | None -> false
    | Some f -> Dot.seq d <= V.get0 f (Dot.replica d)
  in
  let of_write = ref Dot.Map.empty in
  let of_read = Hashtbl.create 64 in
  (* one step of process p: returns true on progress, false when p is
     exhausted or blocked on a not-yet-timestamped read-from write *)
  let step p =
    match !(pending.(p)) with
    | [] -> false
    | op :: rest -> (
        match op with
        | Operation.Write w ->
            V.tick running.(p) p;
            assert (V.get running.(p) p = Dot.seq w.wdot);
            of_write := Dot.Map.add w.wdot (V.copy running.(p)) !of_write;
            pending.(p) := rest;
            true
        | Operation.Read r -> (
            let ready =
              match r.read_from with
              | None -> Some ()
              | Some d ->
                  if Dot.Map.mem d !of_write then begin
                    V.merge_into running.(p) (Dot.Map.find d !of_write);
                    Some ()
                  end
                  else if below_floor d then
                    (* a compacted write from an earlier window: its
                       vector is dominated by the floor, which the
                       running vector already carries — ready, nothing
                       further to merge *)
                    Some ()
                  else None
            in
            match ready with
            | Some () ->
                Hashtbl.replace of_read (p, r.rslot) (V.copy running.(p));
                pending.(p) := rest;
                true
            | None -> false))
  in
  let rec round () =
    let progress = ref false in
    for p = 0 to n - 1 do
      while step p do
        progress := true
      done
    done;
    if Array.exists (fun l -> !l <> []) pending then
      if !progress then round ()
      else
        invalid_arg
          "Write_vectors.compute: cyclic read-from dependencies \
           (corrupt history)"
  in
  if n > 0 then round ();
  { history; of_write = !of_write; of_read }

let history t = t.history

let of_write t d =
  match Dot.Map.find_opt d t.of_write with
  | Some v -> V.copy v
  | None -> raise Not_found

let of_read t ~proc ~slot =
  match Hashtbl.find_opt t.of_read (proc, slot) with
  | Some v -> V.copy v
  | None -> raise Not_found

let raw_write t d =
  match Dot.Map.find_opt d t.of_write with
  | Some v -> v
  | None -> raise Not_found

(* Corollary 1: w' ↦co w  ⟺  seq w' <= w.Write_co[replica w'] *)
let write_precedes t d1 d2 =
  (not (Dot.equal d1 d2))
  && ignore (raw_write t d1) = ()
  && Dot.seq d1 <= V.get (raw_write t d2) (Dot.replica d1)

let write_concurrent t d1 d2 =
  (not (Dot.equal d1 d2))
  && (not (write_precedes t d1 d2))
  && not (write_precedes t d2 d1)

let write_precedes_read t d ~proc ~slot =
  ignore (raw_write t d);
  match Hashtbl.find_opt t.of_read (proc, slot) with
  | Some rv -> Dot.seq d <= V.get rv (Dot.replica d)
  | None -> raise Not_found
