(** Ground-truth [Write_co] timestamps, computed from the history alone.

    {!Causal_order} computes [↦co] exactly but needs O(ops²) space.
    This module exploits the paper's own result — [Write_co]
    characterizes [↦co] (Theorems 1–2) — to provide an O(ops·n)
    alternative: it {e re-derives} the vector of every write (and the
    causal-past vector of every read) directly from the history's
    process order and read-from edges, with no protocol involved. The
    checker uses it to audit arbitrarily large runs; the test-suite
    cross-validates it against the dense {!Causal_order} on small
    histories.

    Component [j] of a write's vector is the sequence number of the
    last write of [p_j] in its causal past (including itself for the
    issuer component) — so, by Corollary 1,
    [w' ↦co w  ⟺  seq w' ≤ (vector w).(replica w')] for [w' ≠ w]. *)

type t

val compute : ?floor:Dsm_vclock.Vector_clock.t -> History.t -> t
(** @raise Invalid_argument if the history fails {!History.validate}
    or its read-from edges are cyclic. *)

val history : t -> History.t

val of_write : t -> Dsm_vclock.Dot.t -> Dsm_vclock.Vector_clock.t
(** @raise Not_found for a dot that is not a write of the history. *)

val of_read : t -> proc:int -> slot:int -> Dsm_vclock.Vector_clock.t
(** Causal-past vector of a read: component [j] counts the writes of
    [p_j] that causally precede the read.
    @raise Not_found for an absent read. *)

val write_precedes : t -> Dsm_vclock.Dot.t -> Dsm_vclock.Dot.t -> bool
(** [w ↦co w'] via Corollary 1. O(1).
    @raise Not_found if either write is absent. *)

val write_concurrent : t -> Dsm_vclock.Dot.t -> Dsm_vclock.Dot.t -> bool

val write_precedes_read :
  t -> Dsm_vclock.Dot.t -> proc:int -> slot:int -> bool
(** [w ↦co r]. *)
