module Dot = Dsm_vclock.Dot

let fopt b = function
  | None -> Buffer.add_string b "null"
  | Some f -> Buffer.add_string b (Printf.sprintf "%.6g" f)

let jsonl b spans =
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"dot\":%S,\"issuer\":%d,\"var\":%d,\"value\":%d,\"issued_at\":%.6g,\"issue_seen\":%b,\"dests\":["
           (Dot.to_string (Span.dot s))
           (Span.issuer s) (Span.var s) (Span.value s) (Span.issued_at s)
           (Span.issue_seen s));
      List.iteri
        (fun i (d : Span.dest) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "{\"dst\":%d,\"receipt_at\":" d.dst);
          fopt b d.receipt_at;
          (match d.blocked_on with
          | None -> Buffer.add_string b ",\"blocked_on\":null,\"blocked_at\":null"
          | Some (w, at) ->
              Buffer.add_string b
                (Printf.sprintf ",\"blocked_on\":%S,\"blocked_at\":%.6g"
                   (Dot.to_string w) at));
          Buffer.add_string b ",\"applied_at\":";
          fopt b d.applied_at;
          Buffer.add_string b ",\"skipped_at\":";
          fopt b d.skipped_at;
          Buffer.add_string b (Printf.sprintf ",\"delayed\":%b}" d.delayed))
        (Span.dests s);
      Buffer.add_string b "]}\n")
    spans

(* Chrome trace-event format: a JSON array of event objects.
   ph="M" metadata names the tracks, ph="i" marks instants, ph="X"
   is a complete slice (ts + dur). *)
let chrome b ~n ~end_time spans =
  let first = ref true in
  let ev fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string b ",\n";
        Buffer.add_string b s)
      fmt
  in
  Buffer.add_string b "[\n";
  ev
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"causal-dsm\"}}";
  for p = 0 to n - 1 do
    ev
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"p%d\"}}"
      p (p + 1)
  done;
  List.iter
    (fun s ->
      let dot = Dot.to_string (Span.dot s) in
      if Span.issue_seen s then
        ev
          "{\"name\":\"issue %s x%d:=%d\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
          dot (Span.var s) (Span.value s) (Span.issued_at s) (Span.issuer s);
      List.iter
        (fun (d : Span.dest) ->
          (match d.blocked_on with
          | None -> ()
          | Some (w, since) ->
              let till, resolved =
                match d.applied_at with
                | Some at -> (at, true)
                | None -> (end_time, false)
              in
              ev
                "{\"name\":\"blocked %s <- %s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"dot\":%S,\"waiting_for\":%S,\"resolved\":%b}}"
                dot (Dot.to_string w) since
                (Float.max 0. (till -. since))
                d.dst dot (Dot.to_string w) resolved);
          (match d.applied_at with
          | Some at ->
              ev
                "{\"name\":\"apply %s%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
                dot
                (if d.delayed then " (delayed)" else "")
                at d.dst
          | None -> ());
          match d.skipped_at with
          | Some at ->
              ev
                "{\"name\":\"skip %s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
                dot at d.dst
          | None -> ())
        (Span.dests s))
    spans;
  Buffer.add_string b "\n]\n"

let write_file path render =
  let b = Buffer.create 4096 in
  render b;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b)
