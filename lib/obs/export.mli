(** Trace exporters over assembled {!Span.span}s.

    Two formats:

    - {!jsonl}: one JSON object per line per span — greppable, jq-able,
      stable field order.
    - {!chrome}: the Chrome trace-event array format, loadable in
      Perfetto / [chrome://tracing]. One track (tid) per process; every
      write delay appears as an explicit ["blocked <dot> <- <missing>"]
      duration slice on the delayed destination's track, ending at the
      apply — or at [end_time] (left visibly open) if the destination
      died first. Simulated time units are mapped 1:1 to microseconds. *)

val jsonl : Buffer.t -> Span.span list -> unit

val chrome : Buffer.t -> n:int -> end_time:float -> Span.span list -> unit
(** [n] is the process count (one metadata track per process is always
    emitted, even if idle). *)

val write_file : string -> (Buffer.t -> unit) -> unit
(** Render into a fresh buffer and write it to [path] atomically enough
    for our purposes (single [open_out]/[close_out]). *)
