type counter = { mutable c : int; c_live : bool }
type gauge = { mutable g : int; mutable g_max : int; g_live : bool }

type histogram = {
  h : Dsm_stats.Histogram.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
  h_live : bool;
}

type quantile = { q : Dsm_stats.Log_histogram.t; q_live : bool }

type instrument = C of counter | G of gauge | H of histogram | Q of quantile

type key = string * (string * string) list

type t = {
  live : bool;
  table : (key, instrument) Hashtbl.t;
  mutable order : key list;  (* registration order, reversed *)
}

let create () = { live = true; table = Hashtbl.create 64; order = [] }
let null () = { live = false; table = Hashtbl.create 1; order = [] }
let enabled t = t.live

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | H _ -> "histogram"
  | Q _ -> "quantile"

(* Register-or-merge: the same (name, labels) identity always resolves
   to the same instrument; a kind clash on the same name is a bug at the
   instrumentation site, not a runtime condition. *)
let register t name labels make match_kind =
  let key = (name, norm_labels labels) in
  match Hashtbl.find_opt t.table key with
  | Some ins -> (
      match match_kind ins with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S re-registered as a different kind (is a %s)"
               name (kind_name ins)))
  | None ->
      let x, ins = make () in
      Hashtbl.add t.table key ins;
      t.order <- key :: t.order;
      x

let counter t ?(labels = []) name =
  if not t.live then { c = 0; c_live = false }
  else
    register t name labels
      (fun () ->
        let c = { c = 0; c_live = true } in
        (c, C c))
      (function C c -> Some c | _ -> None)

let incr c = if c.c_live then c.c <- c.c + 1
let add c k = if c.c_live then c.c <- c.c + k
let counter_value c = c.c

let gauge t ?(labels = []) name =
  if not t.live then { g = 0; g_max = 0; g_live = false }
  else
    register t name labels
      (fun () ->
        let g = { g = 0; g_max = 0; g_live = true } in
        (g, G g))
      (function G g -> Some g | _ -> None)

let set g v =
  if g.g_live then begin
    g.g <- v;
    if v > g.g_max then g.g_max <- v
  end

let gauge_value g = g.g
let gauge_max g = g.g_max

let dead_histogram () =
  {
    h = Dsm_stats.Histogram.create ~lo:0. ~hi:1. ~bins:1;
    h_count = 0;
    h_sum = 0.;
    h_max = neg_infinity;
    h_live = false;
  }

let histogram t ?(labels = []) ~lo ~hi ~bins name =
  if not t.live then dead_histogram ()
  else
    register t name labels
      (fun () ->
        let h =
          {
            h = Dsm_stats.Histogram.create ~lo ~hi ~bins;
            h_count = 0;
            h_sum = 0.;
            h_max = neg_infinity;
            h_live = true;
          }
        in
        (h, H h))
      (function H h -> Some h | _ -> None)

let observe h v =
  if h.h_live then begin
    Dsm_stats.Histogram.add h.h v;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v > h.h_max then h.h_max <- v
  end

let dead_quantile =
  (* shared: inert handles never record, so one suffices *)
  let q = { q = Dsm_stats.Log_histogram.create (); q_live = false } in
  fun () -> q

let quantile t ?(labels = []) ?gamma ?base name =
  if not t.live then dead_quantile ()
  else
    register t name labels
      (fun () ->
        let q =
          { q = Dsm_stats.Log_histogram.create ?gamma ?base (); q_live = true }
        in
        (q, Q q))
      (function Q q -> Some q | _ -> None)

let observe_q q v = if q.q_live then Dsm_stats.Log_histogram.add q.q v
let quantile_count q = Dsm_stats.Log_histogram.count q.q
let quantile_sum q = Dsm_stats.Log_histogram.sum q.q
let quantile_max q = Dsm_stats.Log_histogram.max_value q.q
let quantile_value q p = Dsm_stats.Log_histogram.quantile q.q p

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_max h = if h.h_count = 0 then 0. else h.h_max
let histogram_mean h =
  if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count

type value =
  | Counter_v of int
  | Gauge_v of { current : int; max : int }
  | Histogram_v of { count : int; sum : float; max : float; mean : float }
  | Quantile_v of {
      count : int;
      sum : float;
      max : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

let value_of = function
  | C c -> Counter_v c.c
  | G g -> Gauge_v { current = g.g; max = g.g_max }
  | H h ->
      Histogram_v
        {
          count = h.h_count;
          sum = h.h_sum;
          max = histogram_max h;
          mean = histogram_mean h;
        }
  | Q q ->
      let open Dsm_stats.Log_histogram in
      Quantile_v
        {
          count = count q.q;
          sum = sum q.q;
          max = max_value q.q;
          p50 = quantile q.q 0.5;
          p95 = quantile q.q 0.95;
          p99 = quantile q.q 0.99;
        }

let reset t =
  Hashtbl.iter
    (fun _ ins ->
      match ins with
      | C c -> c.c <- 0
      | G g ->
          g.g <- 0;
          g.g_max <- 0
      | H h ->
          Dsm_stats.Histogram.reset h.h;
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_max <- neg_infinity
      | Q q -> Dsm_stats.Log_histogram.reset q.q)
    t.table

let rows t =
  List.rev_map
    (fun ((name, labels) as key) ->
      (name, labels, value_of (Hashtbl.find t.table key)))
    t.order

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let labels_json labels =
  labels
  |> List.map (fun (k, v) ->
         Printf.sprintf "%S:%S" (json_escape k) (json_escape v))
  |> String.concat ","

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"metrics\":[";
  List.iteri
    (fun i (name, labels, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":%S,\"labels\":{%s}," (json_escape name)
           (labels_json labels));
      (match v with
      | Counter_v c ->
          Buffer.add_string b
            (Printf.sprintf "\"kind\":\"counter\",\"value\":%d" c)
      | Gauge_v { current; max } ->
          Buffer.add_string b
            (Printf.sprintf "\"kind\":\"gauge\",\"value\":%d,\"max\":%d"
               current max)
      | Histogram_v { count; sum; max; mean } ->
          Buffer.add_string b
            (Printf.sprintf
               "\"kind\":\"histogram\",\"count\":%d,\"sum\":%.6g,\"max\":%.6g,\"mean\":%.6g"
               count sum max mean)
      | Quantile_v { count; sum; max; p50; p95; p99 } ->
          Buffer.add_string b
            (Printf.sprintf
               "\"kind\":\"quantile\",\"count\":%d,\"sum\":%.6g,\"max\":%.6g,\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g"
               count sum max p50 p95 p99));
      Buffer.add_char b '}')
    (rows t);
  Buffer.add_string b "]}\n";
  Buffer.contents b

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let summary_table ?(title = "metrics") t =
  let open Dsm_stats in
  let tbl =
    Table_fmt.create ~title ~header:[ "metric"; "kind"; "value"; "detail" ] ()
  in
  Table_fmt.set_align tbl [ Left; Left; Right; Left ];
  List.iter
    (fun (name, labels, v) ->
      let name = name ^ label_string labels in
      match v with
      | Counter_v c ->
          Table_fmt.add_row tbl [ name; "counter"; Table_fmt.cell_int c; "" ]
      | Gauge_v { current; max } ->
          Table_fmt.add_row tbl
            [ name; "gauge"; Table_fmt.cell_int current;
              Printf.sprintf "max=%d" max ]
      | Histogram_v { count; mean; max; _ } ->
          Table_fmt.add_row tbl
            [ name; "histogram"; Table_fmt.cell_int count;
              Printf.sprintf "mean=%.2f max=%.2f" mean max ]
      | Quantile_v { count; p50; p95; p99; max; _ } ->
          Table_fmt.add_row tbl
            [ name; "quantile"; Table_fmt.cell_int count;
              Printf.sprintf "p50=%.2f p95=%.2f p99=%.2f max=%.2f" p50 p95 p99
                max ])
    (rows t);
  tbl

let pp_summary ppf t =
  Dsm_stats.Table_fmt.pp ppf (summary_table t)
