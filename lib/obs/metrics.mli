(** Labelled metrics registry: counters, gauges, histograms.

    Every instrumented layer (network, reliable channel, delivery
    buffers, protocols, fault campaign) takes a registry and registers
    its instruments once at construction time; the hot path then updates
    a pre-resolved handle — a single branch plus a store, no hashing and
    no allocation. A {e null} registry ({!null}) hands out inert handles
    whose updates are a dead branch, so un-instrumented runs pay
    effectively nothing and stay on the exact same event schedule.

    Instruments are identified by [(name, labels)] (labels are sorted at
    registration). Registering the same identity twice returns the {e
    same} instrument — two call sites with equal name+labels merge their
    observations — while re-using a name across instrument kinds is a
    programming error. *)

type t

val create : unit -> t
(** A live registry: instruments register and record. *)

val null : unit -> t
(** An inert registry: handles are created but never register nor
    record. [enabled (null ())] is [false] — use it to gate any
    measurement whose mere computation is costly (e.g. [Marshal]
    payload sizing). *)

val enabled : t -> bool

val reset : t -> unit
(** Zero every registered instrument in place (registrations and handle
    identities survive). Call between back-to-back runs that share one
    registry — repeated bench reps, campaign iterations — so tallies
    from one run cannot leak into the next. No-op on {!null}. *)

(** {1 Counters} — monotone event counts. *)

type counter

val counter : t -> ?labels:(string * string) list -> string -> counter
(** @raise Invalid_argument if [name] is already a gauge or histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — instantaneous levels; the high watermark is kept. *)

type gauge

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int
val gauge_max : gauge -> int

(** {1 Histograms} — distributions, binned via {!Dsm_stats.Histogram}.
    Count, sum and max are tracked exactly alongside the bins. *)

type histogram

val histogram :
  t ->
  ?labels:(string * string) list ->
  lo:float ->
  hi:float ->
  bins:int ->
  string ->
  histogram
(** On re-registration the existing instrument is returned and the
    [lo]/[hi]/[bins] of the first registration win. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_max : histogram -> float
val histogram_mean : histogram -> float
(** 0. when empty. *)

(** {1 Quantiles} — long-tailed distributions, log-bucketed via
    {!Dsm_stats.Log_histogram}. Unlike {!histogram} no range needs
    declaring up front; p50/p95/p99 queries carry a bounded relative
    error of [gamma - 1] (~9% at the default gamma). *)

type quantile

val quantile :
  t ->
  ?labels:(string * string) list ->
  ?gamma:float ->
  ?base:float ->
  string ->
  quantile
(** On re-registration the existing instrument is returned and the
    [gamma]/[base] of the first registration win. *)

val observe_q : quantile -> float -> unit
val quantile_count : quantile -> int
val quantile_sum : quantile -> float
val quantile_max : quantile -> float
(** Exact observed maximum; 0. when empty. *)

val quantile_value : quantile -> float -> float
(** [quantile_value q p] for [p] in [[0,1]]; see
    {!Dsm_stats.Log_histogram.quantile} for the error contract. *)

(** {1 Export} *)

type value =
  | Counter_v of int
  | Gauge_v of { current : int; max : int }
  | Histogram_v of { count : int; sum : float; max : float; mean : float }
  | Quantile_v of {
      count : int;
      sum : float;
      max : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

val rows : t -> (string * (string * string) list * value) list
(** Registration order; labels sorted by key. Empty for {!null}. *)

val to_json : t -> string
(** One self-contained JSON document [{"metrics": [...]}]. *)

val summary_table : ?title:string -> t -> Dsm_stats.Table_fmt.t
val pp_summary : Format.formatter -> t -> unit
