module Dot = Dsm_vclock.Dot

type event =
  | Issue of { dot : Dot.t; proc : int; var : int; value : int; at : float }
  | Receipt of { dot : Dot.t; dst : int; at : float }
  | Blocked of { dot : Dot.t; dst : int; waiting_for : Dot.t; at : float }
  | Apply of { dot : Dot.t; dst : int; at : float; delayed : bool }
  | Skip of { dot : Dot.t; dst : int; at : float }

type sink = event -> unit

let null_sink (_ : event) = ()

type dest = {
  dst : int;
  mutable receipt_at : float option;
  mutable blocked_on : (Dot.t * float) option;
  mutable applied_at : float option;
  mutable skipped_at : float option;
  mutable delayed : bool;
}

type span = {
  s_dot : Dot.t;
  mutable issuer : int;
  mutable var : int;
  mutable value : int;
  mutable issued_at : float;
  mutable issue_seen : bool;
  dests_tbl : (int, dest) Hashtbl.t;
}

let dot s = s.s_dot
let issuer s = s.issuer
let var s = s.var
let value s = s.value
let issued_at s = s.issued_at
let issue_seen s = s.issue_seen

let dests s =
  Hashtbl.fold (fun _ d acc -> d :: acc) s.dests_tbl []
  |> List.sort (fun a b -> compare a.dst b.dst)

let dest_open d =
  (d.receipt_at <> None || d.blocked_on <> None)
  && d.applied_at = None && d.skipped_at = None

let open_dests s = List.filter dest_open (dests s)
let is_open s = open_dests s <> []

type collector = {
  spans : (Dot.t, span) Hashtbl.t;
  mutable order : Dot.t list;  (* first-observation order, reversed *)
  mutable blocked : int;
}

let collector () = { spans = Hashtbl.create 256; order = []; blocked = 0 }

(* A receipt can precede the issue in observation order only when the
   issue event was evicted from a bounded trace; the span is then
   reconstructed with placeholder payload fields. *)
let span_for c dot ~at =
  match Hashtbl.find_opt c.spans dot with
  | Some s -> s
  | None ->
      let s =
        {
          s_dot = dot;
          issuer = Dot.replica dot;
          var = -1;
          value = 0;
          issued_at = at;
          issue_seen = false;
          dests_tbl = Hashtbl.create 8;
        }
      in
      Hashtbl.add c.spans dot s;
      c.order <- dot :: c.order;
      s

let dest_for s dst =
  match Hashtbl.find_opt s.dests_tbl dst with
  | Some d -> d
  | None ->
      let d =
        {
          dst;
          receipt_at = None;
          blocked_on = None;
          applied_at = None;
          skipped_at = None;
          delayed = false;
        }
      in
      Hashtbl.add s.dests_tbl dst d;
      d

let sink c event =
  match event with
  | Issue { dot; proc; var; value; at } ->
      let s = span_for c dot ~at in
      s.issuer <- proc;
      s.var <- var;
      s.value <- value;
      s.issued_at <- at;
      s.issue_seen <- true
  | Receipt { dot; dst; at } ->
      let d = dest_for (span_for c dot ~at) dst in
      (* keep the first receipt: retransmissions re-deliver the frame *)
      if d.receipt_at = None then d.receipt_at <- Some at
  | Blocked { dot; dst; waiting_for; at } ->
      let d = dest_for (span_for c dot ~at) dst in
      if d.blocked_on = None then begin
        d.blocked_on <- Some (waiting_for, at);
        c.blocked <- c.blocked + 1
      end
  | Apply { dot; dst; at; delayed } ->
      let d = dest_for (span_for c dot ~at) dst in
      d.applied_at <- Some at;
      d.delayed <- d.delayed || delayed
  | Skip { dot; dst; at } ->
      let d = dest_for (span_for c dot ~at) dst in
      d.skipped_at <- Some at

let spans c = List.rev_map (fun dot -> Hashtbl.find c.spans dot) c.order
let find c dot = Hashtbl.find_opt c.spans dot
let span_count c = Hashtbl.length c.spans
let blocked_count c = c.blocked
