(** Causal trace spans: one span per write lifecycle.

    A write is born at its issuer ([Issue]), travels to every other
    process ([Receipt]), possibly waits in a delivery buffer ([Blocked]
    — the paper's {e write delay}, annotated with the predecessor dot
    the buffer is waiting on), and ends with a per-destination [Apply]
    (or [Skip] under writing semantics). All phases are linked by the
    write's dot.

    Producers emit {!event}s through a {!sink}; the {!collector} is the
    standard sink, assembling events into {!span}s for the exporters
    ({!Export}). A destination that crashed mid-flight simply never
    closes: its span stays open, which is itself the observation. *)

type event =
  | Issue of { dot : Dsm_vclock.Dot.t; proc : int; var : int; value : int; at : float }
  | Receipt of { dot : Dsm_vclock.Dot.t; dst : int; at : float }
  | Blocked of {
      dot : Dsm_vclock.Dot.t;
      dst : int;
      waiting_for : Dsm_vclock.Dot.t;
      at : float;
    }
  | Apply of { dot : Dsm_vclock.Dot.t; dst : int; at : float; delayed : bool }
  | Skip of { dot : Dsm_vclock.Dot.t; dst : int; at : float }

type sink = event -> unit

val null_sink : sink

(** {1 Assembled spans} *)

type dest = {
  dst : int;
  mutable receipt_at : float option;
  mutable blocked_on : (Dsm_vclock.Dot.t * float) option;
      (** which predecessor the buffer waited on, and since when *)
  mutable applied_at : float option;
  mutable skipped_at : float option;
  mutable delayed : bool;
}

type span

val dot : span -> Dsm_vclock.Dot.t
val issuer : span -> int

val var : span -> int
(** -1 when the issue event was never observed (truncated trace). *)

val value : span -> int
val issued_at : span -> float

val issue_seen : span -> bool
(** [false] for spans reconstructed from a receipt whose issue event was
    evicted (ring-buffer traces) — timings then start at first sight. *)

val dests : span -> dest list
(** Sorted by destination id. *)

val open_dests : span -> dest list
(** Destinations with a receipt (or blocked record) but neither apply
    nor skip — e.g. the destination crashed while the write sat in its
    buffer. *)

val is_open : span -> bool

(** {1 Collector} *)

type collector

val collector : unit -> collector

val sink : collector -> sink

val spans : collector -> span list
(** In order of first observation of each dot. *)

val find : collector -> Dsm_vclock.Dot.t -> span option
val span_count : collector -> int
val blocked_count : collector -> int
(** Total blocked records across all spans and destinations. *)
