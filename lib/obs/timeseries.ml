(* Flight recorder: periodic scrapes of a metrics registry into
   ring-buffered time series.

   The driver arms a sim-clock periodic event (Engine.schedule_every)
   that calls [scrape] at each tick; the recorder flattens every
   registered instrument into one or more float series and appends the
   sample to a per-series ring of the last [capacity] scrapes. Series
   that appear mid-run (instruments registered after the first tick)
   are backfilled with NaN so every retained scrape stays rectangular.

   The recorder itself never touches the engine — it only reads the
   registry — so it composes with any driver and cannot perturb the
   event schedule beyond the tick events themselves (which are pure
   reads: no RNG draw, no protocol mutation). *)

type series = { values : float array; mutable born : int (* scrape index *) }

type t = {
  live : bool;
  capacity : int;
  metrics : Metrics.t;
  table : (string, series) Hashtbl.t;
  mutable names : string list;  (* registration order, reversed *)
  times : float array;
  mutable scrapes : int;
}

let create ?(capacity = 256) ~metrics () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  {
    live = true;
    capacity;
    metrics;
    table = Hashtbl.create 32;
    names = [];
    times = Array.make capacity nan;
    scrapes = 0;
  }

let null () =
  {
    live = false;
    capacity = 1;
    metrics = Metrics.null ();
    table = Hashtbl.create 1;
    names = [];
    times = [| nan |];
    scrapes = 0;
  }

let enabled t = t.live
let capacity t = t.capacity
let scrapes t = t.scrapes
let series_count t = Hashtbl.length t.table

let label_suffix = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let sample t name v =
  let slot = t.scrapes mod t.capacity in
  let s =
    match Hashtbl.find_opt t.table name with
    | Some s -> s
    | None ->
        let s = { values = Array.make t.capacity nan; born = t.scrapes } in
        Hashtbl.add t.table name s;
        t.names <- name :: t.names;
        s
  in
  s.values.(slot) <- v

let scrape t ~now =
  if t.live then begin
    let slot = t.scrapes mod t.capacity in
    t.times.(slot) <- now;
    (* overwrite the slot being recycled for every known series first:
       a series with no sample this scrape must not show a stale value
       from [capacity] scrapes ago *)
    Hashtbl.iter (fun _ s -> s.values.(slot) <- nan) t.table;
    List.iter
      (fun (name, labels, v) ->
        let base = name ^ label_suffix labels in
        match v with
        | Metrics.Counter_v c -> sample t base (float_of_int c)
        | Metrics.Gauge_v { current; _ } -> sample t base (float_of_int current)
        | Metrics.Histogram_v { count; _ } ->
            sample t (base ^ "_count") (float_of_int count)
        | Metrics.Quantile_v { count; p99; _ } ->
            sample t (base ^ "_count") (float_of_int count);
            sample t (base ^ "_p99") p99)
      (Metrics.rows t.metrics);
    t.scrapes <- t.scrapes + 1
  end

let retained t = min t.scrapes t.capacity

(* absolute scrape index of the i-th retained scrape, oldest first *)
let nth_index t i = t.scrapes - retained t + i

let slot_of t idx = idx mod t.capacity

let names t = List.rev t.names

let series t name =
  match Hashtbl.find_opt t.table name with
  | None -> None
  | Some s ->
      Some
        (List.init (retained t) (fun i ->
             let idx = nth_index t i in
             if idx < s.born then nan else s.values.(slot_of t idx)))

let to_jsonl t =
  let b = Buffer.create 4096 in
  let names = names t in
  for i = 0 to retained t - 1 do
    let idx = nth_index t i in
    let slot = slot_of t idx in
    Buffer.add_string b "{\"scrape\":";
    Buffer.add_string b (string_of_int idx);
    Buffer.add_string b ",\"t\":";
    Buffer.add_string b (Dsm_stats.Json.number t.times.(slot));
    List.iter
      (fun name ->
        let s = Hashtbl.find t.table name in
        if idx >= s.born then begin
          let v = s.values.(slot) in
          if not (Float.is_nan v) then begin
            Buffer.add_string b ",\"";
            Buffer.add_string b (Dsm_stats.Json.escape name);
            Buffer.add_string b "\":";
            Buffer.add_string b (Dsm_stats.Json.number v)
          end
        end)
      names;
    Buffer.add_string b "}\n"
  done;
  Buffer.contents b
