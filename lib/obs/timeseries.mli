(** Flight recorder: sim-clock periodic scrapes of a {!Metrics}
    registry into ring-buffered time series.

    The recorder is engine-agnostic — a driver arms a periodic event
    (e.g. [Engine.schedule_every]) whose callback invokes {!scrape}
    with the current sim time. Each scrape flattens every registered
    instrument to floats (counters and gauges directly, histograms as
    [name_count], quantile sketches as [name_count] and [name_p99]) and
    appends one sample per series, retaining the last [capacity]
    scrapes.

    Scrapes are pure reads of the registry: no RNG, no protocol state,
    no engine mutation — runs stay byte-identical with the recorder on
    or off. *)

type t

val create : ?capacity:int -> metrics:Metrics.t -> unit -> t
(** Ring capacity defaults to 256 scrapes.
    @raise Invalid_argument if [capacity <= 0]. *)

val null : unit -> t
(** Inert recorder: {!scrape} is a dead branch. *)

val enabled : t -> bool
val capacity : t -> int

val scrape : t -> now:float -> unit
(** Record one sample of every instrument at sim time [now]. *)

val scrapes : t -> int
(** Total scrapes taken (may exceed [capacity]; only the last
    [capacity] are retained). *)

val series_count : t -> int

val names : t -> string list
(** Flattened series names, first-seen order. *)

val series : t -> string -> float list option
(** Retained samples for one series, oldest first; NaN marks scrapes
    before the series existed or where it produced no sample. *)

val to_jsonl : t -> string
(** One JSON object per retained scrape (oldest first):
    [{"scrape":i,"t":<sim time>,"<series>":v,...}] — NaN samples are
    omitted from their line. *)
