(* Wire-cost accountant.

   Every frame a protocol puts on the network is described by a [frame]
   — a shape, not the bytes themselves: how many scalar fields, how many
   dots, which causal-metadata vectors it carries. The accountant prices
   that shape under a fixed cost model and aggregates per (src,dst)
   edge, per frame kind, and in total, splitting header / payload /
   causal-metadata bytes so the O(n) vector tax is visible on its own
   line.

   Alongside the dense price it keeps a counterfactual: what the
   causal metadata *would* cost under a delta-vs-last-sent-to-peer
   encoding (send only the vector entries that changed since the last
   frame on that edge, as (index, value) pairs). This is computed purely
   observationally — the protocol still sends dense vectors, the RNG
   stream is untouched — and exists to let future sparse-encoding PRs
   be judged against a measured baseline (ROADMAP: breaking the O(n)
   metadata barrier).

   Cost model (bytes): 16/frame header (src, dst, kind tag, length),
   8/scalar field (boxed 63-bit int), 12/dot (proc + seq + tag), dense
   vector 4 + 8·size (length prefix + entries), delta vector 4 + 12·
   changed (length prefix + (varint index, value) pairs). A vector
   carrying a generation lane (slot reuse: per-entry occupancy
   generations, small counters) pays 2 extra bytes per entry — only
   when the lane is materialized; generation-free vectors price exactly
   as before. The constants are a model, not a serializer — comparisons
   across protocols and encodings are what matter, not absolute
   bytes. *)

module V = Dsm_vclock.Vector_clock

type frame = { kind : string; scalars : int; dots : int; vectors : V.t list }

let header_cost = 16
let scalar_cost = 8
let dot_cost = 12
let vec_base_cost = 4
let vec_entry_cost = 8
let gen_entry_cost = 2
let delta_entry_cost = 12

let payload_bytes f = scalar_cost * f.scalars

let vec_bytes v =
  let lane = if V.has_generations v then gen_entry_cost * V.size v else 0 in
  vec_base_cost + (vec_entry_cost * V.size v) + lane

let meta_bytes f =
  List.fold_left (fun acc v -> acc + vec_bytes v) (dot_cost * f.dots) f.vectors

let frame_bytes f = header_cost + payload_bytes f + meta_bytes f

type stats = {
  frames : int;
  header : int;
  payload : int;
  meta : int;
  delta_meta : int;
}

type agg = {
  mutable a_frames : int;
  mutable a_header : int;
  mutable a_payload : int;
  mutable a_meta : int;
  mutable a_delta : int;
}

let fresh_agg () =
  { a_frames = 0; a_header = 0; a_payload = 0; a_meta = 0; a_delta = 0 }

let stats_of a =
  {
    frames = a.a_frames;
    header = a.a_header;
    payload = a.a_payload;
    meta = a.a_meta;
    delta_meta = a.a_delta;
  }

let bump a ~header ~payload ~meta ~delta =
  a.a_frames <- a.a_frames + 1;
  a.a_header <- a.a_header + header;
  a.a_payload <- a.a_payload + payload;
  a.a_meta <- a.a_meta + meta;
  a.a_delta <- a.a_delta + delta

(* per-edge delta state: last vector sent on this edge, per vector
   position within the frame (position 1 is rare — only multi-vector
   frames like state-transfer use it) *)
type edge = { e : agg; mutable last : V.t option array }

type t = {
  live : bool;
  n : int;
  proto : string;
  total : agg;
  kinds : (string, agg) Hashtbl.t;
  mutable kind_order : string list;  (* registration order, reversed *)
  edges : edge array;  (* src * n + dst *)
}

let create ?(proto = "") ~n () =
  if n <= 0 then invalid_arg "Wire.create: n must be positive";
  {
    live = true;
    n;
    proto;
    total = fresh_agg ();
    kinds = Hashtbl.create 8;
    kind_order = [];
    edges =
      Array.init (n * n) (fun _ -> { e = fresh_agg (); last = [||] });
  }

let null () =
  {
    live = false;
    n = 0;
    proto = "";
    total = fresh_agg ();
    kinds = Hashtbl.create 1;
    kind_order = [];
    edges = [||];
  }

let enabled t = t.live
let protocol t = t.proto
let n t = t.n

(* delta cost of [v] vs the last vector at [edge] position [pos]; stores
   a copy of [v] as the new last. With no prior frame the baseline is
   the all-zero vector, so the first delta prices the nonzero entries. *)
let delta_vec_bytes edge pos v =
  let cap = Array.length edge.last in
  if pos >= cap then begin
    let grown = Array.make (max (pos + 1) (max 2 (2 * cap))) None in
    Array.blit edge.last 0 grown 0 cap;
    edge.last <- grown
  end;
  let size = V.size v in
  let changed = ref 0 in
  (match edge.last.(pos) with
  | Some prev when V.size prev = size ->
      for i = 0 to size - 1 do
        if V.unsafe_get v i <> V.unsafe_get prev i then incr changed
      done;
      (* reuse the stored vector as scratch for the next comparison *)
      V.copy_into ~src:v prev
  | _ ->
      for i = 0 to size - 1 do
        if V.unsafe_get v i <> 0 then incr changed
      done;
      edge.last.(pos) <- Some (V.copy v));
  (* the generation lane is priced dense on the delta counterfactual
     too: its entries are tiny and change only at slot reuse, so a
     sparse encoding would add bookkeeping for negligible savings *)
  let lane = if V.has_generations v then gen_entry_cost * V.size v else 0 in
  vec_base_cost + (delta_entry_cost * !changed) + lane

let kind_agg t kind =
  match Hashtbl.find_opt t.kinds kind with
  | Some a -> a
  | None ->
      let a = fresh_agg () in
      Hashtbl.add t.kinds kind a;
      t.kind_order <- kind :: t.kind_order;
      a

let record t ~src ~dst f =
  if t.live then begin
    let header = header_cost in
    let payload = payload_bytes f in
    let meta = meta_bytes f in
    let in_range = src >= 0 && src < t.n && dst >= 0 && dst < t.n in
    let delta =
      if in_range then begin
        let edge = t.edges.((src * t.n) + dst) in
        let pos = ref 0 in
        let d =
          List.fold_left
            (fun acc v ->
              let b = delta_vec_bytes edge !pos v in
              incr pos;
              acc + b)
            (dot_cost * f.dots) f.vectors
        in
        bump edge.e ~header ~payload ~meta ~delta:d;
        d
      end
      else
        (* out-of-universe endpoint (should not happen): price the
           delta as dense so totals still conserve *)
        meta
    in
    bump t.total ~header ~payload ~meta ~delta;
    bump (kind_agg t f.kind) ~header ~payload ~meta ~delta
  end

let totals t = stats_of t.total
let frames t = t.total.a_frames

let total_bytes t =
  t.total.a_header + t.total.a_payload + t.total.a_meta

let by_kind t =
  List.rev_map
    (fun kind -> (kind, stats_of (Hashtbl.find t.kinds kind)))
    t.kind_order

let edges t =
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      let edge = t.edges.((src * t.n) + dst) in
      if edge.e.a_frames > 0 then acc := (src, dst, stats_of edge.e) :: !acc
    done
  done;
  !acc

let reset t =
  let clear a =
    a.a_frames <- 0;
    a.a_header <- 0;
    a.a_payload <- 0;
    a.a_meta <- 0;
    a.a_delta <- 0
  in
  clear t.total;
  Hashtbl.iter (fun _ a -> clear a) t.kinds;
  Array.iter
    (fun edge ->
      clear edge.e;
      Array.fill edge.last 0 (Array.length edge.last) None)
    t.edges

let per_frame total frames =
  if frames = 0 then 0. else float_of_int total /. float_of_int frames

let to_json ?(max_edges = 64) t =
  let open Dsm_stats.Json in
  let stats_fields s =
    [
      ("frames", Num (float_of_int s.frames));
      ("header_bytes", Num (float_of_int s.header));
      ("payload_bytes", Num (float_of_int s.payload));
      ("meta_bytes", Num (float_of_int s.meta));
      ("delta_meta_bytes", Num (float_of_int s.delta_meta));
    ]
  in
  let tot = totals t in
  let edge_list = edges t in
  let shown = ref 0 in
  let edge_json =
    List.filter_map
      (fun (src, dst, s) ->
        if !shown >= max_edges then None
        else begin
          incr shown;
          Some
            (Obj
               (("src", Num (float_of_int src))
               :: ("dst", Num (float_of_int dst))
               :: stats_fields s))
        end)
      edge_list
  in
  Obj
    [
      ("schema", Str "causal-dsm-wire/v1");
      ("protocol", Str t.proto);
      ("n", Num (float_of_int t.n));
      ( "total",
        Obj
          (stats_fields tot
          @ [
              ( "meta_bytes_per_frame",
                Num (per_frame tot.meta tot.frames) );
              ( "delta_meta_bytes_per_frame",
                Num (per_frame tot.delta_meta tot.frames) );
            ]) );
      ( "by_kind",
        Arr
          (List.map
             (fun (kind, s) -> Obj (("kind", Str kind) :: stats_fields s))
             (by_kind t)) );
      ("edges_total", Num (float_of_int (List.length edge_list)));
      ("edges_shown", Num (float_of_int !shown));
      ("edges", Arr edge_json);
    ]

let summary_table ?(title = "wire") t =
  let open Dsm_stats in
  let tbl =
    Table_fmt.create ~title
      ~header:
        [ "cause"; "frames"; "header B"; "payload B"; "meta B";
          "meta B/frame"; "delta B/frame" ]
      ()
  in
  Table_fmt.set_align tbl [ Left; Right; Right; Right; Right; Right; Right ];
  let row name s =
    Table_fmt.add_row tbl
      [
        name;
        Table_fmt.cell_int s.frames;
        Table_fmt.cell_int s.header;
        Table_fmt.cell_int s.payload;
        Table_fmt.cell_int s.meta;
        Printf.sprintf "%.1f" (per_frame s.meta s.frames);
        Printf.sprintf "%.1f" (per_frame s.delta_meta s.frames);
      ]
  in
  List.iter (fun (kind, s) -> row kind s) (by_kind t);
  row "total" (totals t);
  tbl

let pp_summary ppf t = Dsm_stats.Table_fmt.pp ppf (summary_table t)
