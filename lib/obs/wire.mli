(** Wire-cost accountant: byte-level price of every frame on the
    network, split into header / payload / causal-metadata, aggregated
    per (src,dst) edge, per frame kind ("cause"), and in total.

    A {!frame} describes a message's {e shape} — scalar fields, dots,
    causal vectors — and the accountant prices it under a fixed cost
    model (16 B header, 8 B per scalar, 12 B per dot, dense vector
    [4 + 8·size] B, plus a [2·size] B generation side lane only when
    the vector materializes one — slot reuse; generation-free vectors
    price exactly as before). The constants model a compact binary
    codec; the point is comparability across protocols and system
    sizes, not absolute bytes.

    The [delta_meta] column is a {e counterfactual}: what the causal
    metadata would cost under a delta-vs-last-sent-to-peer encoding
    ([4 + 12·changed] B per vector, baseline all-zeros), computed
    observationally against per-edge memory of the last vector sent.
    The protocol still sends dense frames and the RNG stream is
    untouched — same-seed runs are byte-identical with accounting on or
    off (pinned by the differential suite). *)

module V = Dsm_vclock.Vector_clock

type frame = { kind : string; scalars : int; dots : int; vectors : V.t list }
(** [kind] groups frames in per-cause aggregation ("write", "ack",
    "sync", ...); [scalars] counts fixed-size payload fields; [dots]
    counts dot-sized metadata entries; [vectors] lists the causal
    vectors carried. *)

val payload_bytes : frame -> int
val meta_bytes : frame -> int

val frame_bytes : frame -> int
(** [header + payload + meta] — the analytic sizer {!Dsm_sim.Network}
    uses for its [net_payload_bytes] counter when a measurer is
    installed (replacing [Marshal]-based sizing). *)

type t

val create : ?proto:string -> n:int -> unit -> t
(** Accountant for an [n]-process universe; [proto] is carried into
    exports. @raise Invalid_argument if [n <= 0]. *)

val null : unit -> t
(** Inert accountant: {!record} is a dead branch. *)

val enabled : t -> bool
val protocol : t -> string
val n : t -> int

val record : t -> src:int -> dst:int -> frame -> unit
(** Price one frame sent [src] → [dst]. Out-of-range endpoints are
    priced into the totals (delta = dense) but not into any edge. *)

(** {1 Aggregates} *)

type stats = {
  frames : int;
  header : int;
  payload : int;
  meta : int;
  delta_meta : int;  (** counterfactual delta-encoded metadata bytes *)
}

val totals : t -> stats
val frames : t -> int
val total_bytes : t -> int
(** Dense bytes on the wire: header + payload + meta. *)

val by_kind : t -> (string * stats) list
(** First-seen order. *)

val edges : t -> (int * int * stats) list
(** Edges with at least one frame, ordered by (src, dst). *)

val reset : t -> unit
(** Zero all aggregates and forget per-edge delta baselines. *)

(** {1 Export} *)

val to_json : ?max_edges:int -> t -> Dsm_stats.Json.t
(** Embeddable object. At most [max_edges] (default 64) edge rows are
    emitted; [edges_total] vs [edges_shown] records the truncation. *)

val summary_table : ?title:string -> t -> Dsm_stats.Table_fmt.t
val pp_summary : Format.formatter -> t -> unit
