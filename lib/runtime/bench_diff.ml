module Json = Dsm_stats.Json

type direction = Lower_better | Higher_better | Info

type entry = {
  path : string;
  dir : direction;
  old_v : float;
  new_v : float;
  ratio : float option;
  regressed : bool;
}

type t = {
  schema_old : string option;
  schema_new : string option;
  section_old : string option;
  section_new : string option;
  fail_over : float;
  entries : entry list;
  only_old : (string * float) list;
  only_new : (string * float) list;
}

(* ---- flattening ------------------------------------------------- *)

(* Numeric fields that identify an array element's configuration
   rather than measure it; string fields always identify. *)
let identity_nums = [ "n"; "events"; "size"; "procs"; "seed" ]

(* Join array elements by what they ARE, not where they sit: two runs
   that swept different sizes still align on matching configurations,
   and configurations present in only one run surface as only-in-one
   rather than as false regressions. *)
let element_label = function
  | Json.Obj fields ->
      let parts =
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.Str s -> Some (Printf.sprintf "%s=%s" k s)
            | Json.Num f when List.mem k identity_nums ->
                Some
                  (if Float.is_integer f then
                     Printf.sprintf "%s=%d" k (int_of_float f)
                   else Printf.sprintf "%s=%g" k f)
            | _ -> None)
          fields
      in
      if parts = [] then None else Some (String.concat "," parts)
  | _ -> None

let flatten doc =
  let out = ref [] in
  let rec go path = function
    | Json.Num f -> out := (path, f) :: !out
    | Json.Obj fields ->
        List.iter
          (fun (k, v) ->
            let p = if path = "" then k else path ^ "." ^ k in
            go p v)
          fields
    | Json.Arr items ->
        (* A label shared by several elements identifies none of them:
           pairing the first occurrence by label and the rest by index
           would join different elements across the two documents. *)
        let labels = List.map element_label items in
        let counts = Hashtbl.create 8 in
        List.iter
          (function
            | Some l ->
                Hashtbl.replace counts l
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts l))
            | None -> ())
          labels;
        (* Unlabeled elements are numbered among unlabeled elements
           only, so a labeled section added in one document (a new
           bench section, say) cannot shift the keys of everything
           after it and turn an informational addition into a sheaf of
           false regressions. *)
        let unlabeled = ref 0 in
        List.iter2
          (fun v label ->
            let key =
              match label with
              | Some l when Hashtbl.find counts l = 1 -> l
              | _ ->
                  let k = string_of_int !unlabeled in
                  incr unlabeled;
                  k
            in
            go (Printf.sprintf "%s[%s]" path key) v)
          items labels
    | Json.Null | Json.Bool _ | Json.Str _ -> ()
  in
  go "" doc;
  List.rev !out

(* ---- direction heuristics --------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let last_segment path =
  let seg =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  match String.index_opt seg '[' with Some i -> String.sub seg 0 i | None -> seg

let lower_tokens =
  [
    "ns"; "ms"; "us"; "pct"; "bytes"; "latency"; "overhead"; "words";
    "watermark"; "depth"; "delays"; "violations"; "dropped"; "lost";
  ]

let direction_of path =
  let seg = last_segment path in
  if
    contains seg "per_sec" || contains seg "throughput"
    || contains seg "speedup" || contains seg "reduction"
  then Higher_better
  else
    let tokens = String.split_on_char '_' seg in
    if List.exists (fun t -> List.mem t lower_tokens) tokens then Lower_better
    else Info

let direction_name = function
  | Lower_better -> "lower"
  | Higher_better -> "higher"
  | Info -> "info"

(* ---- comparison -------------------------------------------------- *)

let eps = 1e-9

let compare_entry ~fail_over path old_v new_v =
  let dir = direction_of path in
  let ratio, regressed =
    match dir with
    | Info ->
        let r = if Float.abs old_v > eps then Some (new_v /. old_v) else None in
        (r, false)
    | Lower_better ->
        if Float.abs old_v > eps then
          let r = new_v /. old_v in
          (Some r, r > fail_over)
        else (None, new_v > eps)
    | Higher_better ->
        if Float.abs new_v > eps then
          let r = old_v /. new_v in
          (Some r, r > fail_over)
        else (None, Float.abs old_v > eps)
  in
  { path; dir; old_v; new_v; ratio; regressed }

let str_member k doc =
  match Json.member k doc with Some v -> Json.to_str v | None -> None

let diff ?(fail_over = 2.0) ~old_doc ~new_doc () =
  if fail_over <= 1.0 then
    invalid_arg "Bench_diff.diff: fail_over must exceed 1.0";
  let olds = flatten old_doc and news = flatten new_doc in
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace old_tbl p v) olds;
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (p, v) -> Hashtbl.replace new_tbl p v) news;
  let entries =
    List.filter_map
      (fun (p, old_v) ->
        match Hashtbl.find_opt new_tbl p with
        | Some new_v -> Some (compare_entry ~fail_over p old_v new_v)
        | None -> None)
      olds
  in
  let only_old =
    List.filter (fun (p, _) -> not (Hashtbl.mem new_tbl p)) olds
  in
  let only_new =
    List.filter (fun (p, _) -> not (Hashtbl.mem old_tbl p)) news
  in
  {
    schema_old = str_member "schema" old_doc;
    schema_new = str_member "schema" new_doc;
    section_old = str_member "section" old_doc;
    section_new = str_member "section" new_doc;
    fail_over;
    entries;
    only_old;
    only_new;
  }

let regressions t = List.filter (fun e -> e.regressed) t.entries

let schema_mismatch t =
  (match (t.schema_old, t.schema_new) with
  | Some a, Some b when a <> b -> Some (a, b)
  | _ -> None)
  |> function
  | Some _ as m -> m
  | None -> (
      match (t.section_old, t.section_new) with
      | Some a, Some b when a <> b -> Some (a, b)
      | _ -> None)

(* ---- rendering --------------------------------------------------- *)

let cell_metric f =
  if Float.is_integer f && Float.abs f < 1e12 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.4g" f

let summary_table ?(all = false) t =
  let tbl =
    Dsm_stats.Table_fmt.create
      ~title:(Printf.sprintf "bench diff (fail-over %.2fx)" t.fail_over)
      ~header:[ "metric"; "dir"; "old"; "new"; "ratio"; "verdict" ]
      ()
  in
  Dsm_stats.Table_fmt.set_align tbl
    Dsm_stats.Table_fmt.[ Left; Left; Right; Right; Right; Left ];
  let shown =
    if all then t.entries
    else
      List.filter (fun e -> e.regressed || e.dir <> Info) t.entries
  in
  List.iter
    (fun e ->
      Dsm_stats.Table_fmt.add_row tbl
        [
          e.path;
          direction_name e.dir;
          cell_metric e.old_v;
          cell_metric e.new_v;
          (match e.ratio with
          | Some r -> Printf.sprintf "%.3fx" r
          | None -> "n/a");
          (if e.regressed then "REGRESSED"
           else if e.dir = Info then "-"
           else "ok");
        ])
    shown;
  tbl

let pp ?(all = false) ppf t =
  (match schema_mismatch t with
  | Some (a, b) ->
      Format.fprintf ppf "warning: comparing %s against %s@." a b
  | None -> ());
  Format.fprintf ppf "%s@."
    (Dsm_stats.Table_fmt.render (summary_table ~all t));
  if t.only_old <> [] then
    Format.fprintf ppf "only in OLD: %s@."
      (String.concat ", " (List.map fst t.only_old));
  if t.only_new <> [] then
    Format.fprintf ppf "only in NEW: %s@."
      (String.concat ", " (List.map fst t.only_new));
  let regs = regressions t in
  if regs = [] then
    Format.fprintf ppf "no regressions over %.2fx across %d shared metrics@."
      t.fail_over (List.length t.entries)
  else
    Format.fprintf ppf "%d regression(s) over %.2fx across %d shared metrics@."
      (List.length regs) t.fail_over (List.length t.entries)
