(** Schema-aware benchmark comparator: [dsm-sim bench diff OLD NEW].

    Both documents (any [causal-dsm-bench/v1] section file) are
    flattened to [(path, number)] pairs — ["sweep[0].ns_per_event"],
    ["overhead[1].overhead_pct"] — and every path present in both is
    compared under a direction inferred from its name:

    - {e lower is better}: segments mentioning [ns]/[ms]/[pct]/[bytes]/
      [latency]/[overhead]/[words]/[delays]/... — a regression when
      [new/old > fail_over];
    - {e higher is better}: [per_sec]/[throughput]/[speedup]/
      [reduction] — a regression when [old/new > fail_over];
    - {e info}: counts and identifiers ([n], [messages], [events]) —
      reported, never fatal.

    Paths present in only one document are listed but never fatal, so
    adding a metric to a bench section does not break CI against an old
    baseline. This replaces the former inline [awk]-threshold check in
    the workflow. *)

type direction = Lower_better | Higher_better | Info

type entry = {
  path : string;
  dir : direction;
  old_v : float;
  new_v : float;
  ratio : float option;
      (** worsening factor ([new/old] for lower-better, [old/new] for
          higher-better, [new/old] for info); [None] when the
          denominator is ~0 *)
  regressed : bool;
}

type t = {
  schema_old : string option;
  schema_new : string option;
  section_old : string option;
  section_new : string option;
  fail_over : float;
  entries : entry list;  (** shared paths, OLD-document order *)
  only_old : (string * float) list;
  only_new : (string * float) list;
}

val flatten : Dsm_stats.Json.t -> (string * float) list
(** Numeric leaves with dotted/indexed paths, document order. Array
    elements are keyed by their identifying fields when unique, and
    unlabeled elements are numbered {e among unlabeled elements only} —
    a section present in just one document surfaces as only-in-one
    (informational) instead of shifting later keys into false
    regressions. *)

val direction_of : string -> direction

val diff :
  ?fail_over:float ->
  old_doc:Dsm_stats.Json.t ->
  new_doc:Dsm_stats.Json.t ->
  unit ->
  t
(** Default [fail_over = 2.0] (fail when a metric worsens by more than
    2x). @raise Invalid_argument if [fail_over <= 1.0]. *)

val regressions : t -> entry list

val schema_mismatch : t -> (string * string) option
(** [Some (old, new)] when the [schema] (or failing that [section])
    fields disagree — a warning, not a failure. *)

val summary_table : ?all:bool -> t -> Dsm_stats.Table_fmt.t
(** By default info rows that did not regress are elided; [~all:true]
    shows every shared metric. *)

val pp : ?all:bool -> Format.formatter -> t -> unit
