module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock
module History = Dsm_memory.History
module Operation = Dsm_memory.Operation
module Write_vectors = Dsm_memory.Write_vectors

type violation =
  | Safety of { proc : int; applied : Dot.t; missing : Dot.t }
  | Illegal_read of { proc : int; detail : string }
  | Immediate_apply_marked_delayed of { proc : int; dot : Dot.t }

type delay_class = Necessary | Unnecessary

type delay = {
  dproc : int;
  ddot : Dot.t;
  dclass : delay_class;
  dblocking : Dot.t list;
}

type report = {
  total_applies : int;
  total_delays : int;
  necessary_delays : int;
  unnecessary_delays : int;
  delays : delay list;
  delays_per_proc : int array;
  violations : violation list;
  complete : bool;
  missing : (int * Dot.t) list;
  lost : (int * Dot.t) list;
  skipped : int;
}

let check ?replication ?expected ?floor exec =
  let history = Execution.to_history ?floor exec in
  let wv = Write_vectors.compute ?floor history in
  let n = Execution.n_processes exec in
  (* windowed mode: per-issuer counts below the floor were applied
     everywhere before the window opened (the convergence barrier that
     closed the previous window), so every audit baseline starts there *)
  let floor_at j = match floor with None -> 0 | Some f -> V.get0 f j in
  let below_floor d = Dot.seq d <= floor_at (Dot.replica d) in
  let all_writes = History.writes history in
  let writes_by_var = Hashtbl.create 16 in
  List.iter
    (fun (w : Operation.write) ->
      let cur = Option.value (Hashtbl.find_opt writes_by_var w.wvar) ~default:[] in
      Hashtbl.replace writes_by_var w.wvar (w :: cur))
    all_writes;
  let violations = ref [] in
  let delays = ref [] in
  let delays_per_proc = Array.make n 0 in
  let applied_at = Array.init n (fun _ -> Hashtbl.create 64) in
  let replicated ~proc ~var =
    match replication with None -> true | Some f -> f ~proc ~var
  in
  (* membership filter for completeness: under dynamic membership, only
     processes expected to hold a write (live members at the end of the
     run, for writes issued while they were in the view) owe an apply *)
  let expected_at ~proc ~dot =
    match expected with None -> true | Some f -> f ~proc ~dot
  in
  (* var of every write, for replication filtering *)
  let var_of_dot = Hashtbl.create 64 in
  List.iter
    (fun (w : Operation.write) -> Hashtbl.replace var_of_dot w.wdot w.wvar)
    all_writes;
  (* audit one process's event sequence *)
  let audit proc =
    let events = Array.of_list (Execution.events_of exec proc) in
    (* per-issuer logically-applied high mark, from the floor up *)
    let cnt = Array.init n floor_at in
    (* snapshot of [cnt] taken at each receipt, for delay classification *)
    let receipt_snapshot = Hashtbl.create 64 in
    let receipt_pos = Hashtbl.create 64 in
    let read_slot = ref 0 in
    let record_logical_apply d =
      let j = Dot.replica d in
      if Dot.seq d > cnt.(j) then cnt.(j) <- Dot.seq d
    in
    (* partial mode records each apply's position for the exact check *)
    let apply_pos = Hashtbl.create 64 in
    let in_past vec d =
      (* d ↦co the write whose ground-truth vector is vec (Cor. 1) *)
      Dot.seq d <= V.get vec (Dot.replica d)
    in
    let check_safety_full dot vec =
      let issuer = Dot.replica dot in
      for j = 0 to n - 1 do
        let need = if j = issuer then V.get vec j - 1 else V.get vec j in
        if cnt.(j) < need then
          violations :=
            Safety
              {
                proc;
                applied = dot;
                missing = Dot.make ~replica:j ~seq:(cnt.(j) + 1);
              }
            :: !violations
      done
    in
    (* exact (and slower) form used under partial replication: every
       write in the causal past on a location this process replicates
       must already be applied here *)
    let check_safety_partial dot vec =
      List.iter
        (fun (w' : Operation.write) ->
          if
            (not (Dot.equal w'.wdot dot))
            && in_past vec w'.wdot
            && replicated ~proc ~var:w'.wvar
            && not (Hashtbl.mem apply_pos w'.wdot)
          then
            violations :=
              Safety { proc; applied = dot; missing = w'.wdot }
              :: !violations)
        all_writes
    in
    let check_safety ~pos:_ dot vec =
      match replication with
      | None -> check_safety_full dot vec
      | Some _ -> check_safety_partial dot vec
    in
    let classify_delay ~pos dot vec =
      let issuer = Dot.replica dot in
      match Hashtbl.find_opt receipt_snapshot dot with
      | None ->
          (* a delayed apply without receipt can only be a driver bug *)
          violations :=
            Immediate_apply_marked_delayed { proc; dot } :: !violations
      | Some snap ->
          (match Hashtbl.find_opt receipt_pos dot with
          | Some rp when rp + 1 = pos ->
              (* applied in the very step that received it: not a delay *)
              violations :=
                Immediate_apply_marked_delayed { proc; dot } :: !violations
          | Some _ | None -> ());
          let blocking = ref [] in
          (match replication with
          | None ->
              for j = n - 1 downto 0 do
                let need =
                  if j = issuer then V.get vec j - 1 else V.get vec j
                in
                for s = snap.(j) + 1 to need do
                  blocking := Dot.make ~replica:j ~seq:s :: !blocking
                done
              done
          | Some _ ->
              (* blocking = replicated causal predecessors not yet
                 applied at receipt time *)
              let rpos =
                Option.value (Hashtbl.find_opt receipt_pos dot)
                  ~default:max_int
              in
              List.iter
                (fun (w' : Operation.write) ->
                  if
                    (not (Dot.equal w'.wdot dot))
                    && in_past vec w'.wdot
                    && replicated ~proc ~var:w'.wvar
                    &&
                    match Hashtbl.find_opt apply_pos w'.wdot with
                    | Some p' -> p' > rpos
                    | None -> true
                  then blocking := w'.wdot :: !blocking)
                all_writes);
          let dclass = if !blocking = [] then Unnecessary else Necessary in
          delays_per_proc.(proc) <- delays_per_proc.(proc) + 1;
          delays :=
            { dproc = proc; ddot = dot; dclass; dblocking = !blocking }
            :: !delays
    in
    let check_read ~var ~read_from =
      let rvec = Write_vectors.of_read wv ~proc ~slot:!read_slot in
      let candidates =
        Option.value (Hashtbl.find_opt writes_by_var var) ~default:[]
      in
      let in_read_past (w : Operation.write) =
        Dot.seq w.wdot <= V.get rvec (Dot.replica w.wdot)
      in
      match read_from with
      | None ->
          List.iter
            (fun (w : Operation.write) ->
              if in_read_past w then
                violations :=
                  Illegal_read
                    {
                      proc;
                      detail =
                        Format.asprintf
                          "read of x%d returned ⊥ although %a causally \
                           precedes it"
                          (var + 1) Dot.pp w.wdot;
                    }
                  :: !violations)
            candidates
      | Some d ->
          List.iter
            (fun (w : Operation.write) ->
              if
                (not (Dot.equal w.wdot d))
                && in_read_past w
                && (* a compacted write from an earlier window precedes
                      every window write: the barrier that closed its
                      window made it part of everyone's causal past *)
                (below_floor d || Write_vectors.write_precedes wv d w.wdot)
              then
                violations :=
                  Illegal_read
                    {
                      proc;
                      detail =
                        Format.asprintf
                          "read of x%d from %a is stale: %a is causally \
                           interposed"
                          (var + 1) Dot.pp d Dot.pp w.wdot;
                    }
                  :: !violations)
            candidates
    in
    Array.iteri
      (fun pos (e : Execution.event) ->
        match e.kind with
        | Execution.Receipt { dot; _ } ->
            Hashtbl.replace receipt_snapshot dot (Array.copy cnt);
            Hashtbl.replace receipt_pos dot pos
        | Execution.Apply { dot; delayed; _ } ->
            let vec = Write_vectors.of_write wv dot in
            check_safety ~pos dot vec;
            if delayed then classify_delay ~pos dot vec;
            record_logical_apply dot;
            Hashtbl.replace apply_pos dot pos;
            Hashtbl.replace applied_at.(proc) dot ()
        | Execution.Skip { dot } ->
            (* a writing-semantics logical apply: counted for ordering
               but intentionally unordered w.r.t. its own causal past *)
            record_logical_apply dot
        | Execution.Return { var; read_from; _ } ->
            check_read ~var ~read_from;
            incr read_slot
        | Execution.Send _ | Execution.Blocked _ -> ())
      events
  in
  for proc = 0 to n - 1 do
    audit proc
  done;
  let missing =
    List.concat_map
      (fun (w : Operation.write) ->
        List.filter_map
          (fun proc ->
            if
              Hashtbl.mem applied_at.(proc) w.wdot
              || (not (replicated ~proc ~var:w.wvar))
              || not (expected_at ~proc ~dot:w.wdot)
            then None
            else Some (proc, w.wdot))
          (List.init n Fun.id))
      all_writes
  in
  (* a missing apply is benign only if it was a writing-semantics skip;
     anything else is a lost write — a liveness failure *)
  let lost =
    List.filter
      (fun (proc, dot) ->
        Execution.skip_position exec ~proc ~dot = None)
      missing
  in
  let delays = List.rev !delays in
  let necessary =
    List.length (List.filter (fun d -> d.dclass = Necessary) delays)
  in
  {
    total_applies = Execution.apply_count exec;
    total_delays = List.length delays;
    necessary_delays = necessary;
    unnecessary_delays = List.length delays - necessary;
    delays;
    delays_per_proc;
    violations = List.rev !violations;
    complete = missing = [];
    missing;
    lost;
    skipped = Execution.skip_count exec;
  }

let is_clean r = r.violations = [] && r.lost = []

let pp_violation ppf = function
  | Safety { proc; applied; missing } ->
      Format.fprintf ppf
        "SAFETY at p%d: %a applied before causal predecessor %a" (proc + 1)
        Dot.pp applied Dot.pp missing
  | Illegal_read { proc; detail } ->
      Format.fprintf ppf "LEGALITY at p%d: %s" (proc + 1) detail
  | Immediate_apply_marked_delayed { proc; dot } ->
      Format.fprintf ppf
        "ACCOUNTING at p%d: %a marked delayed but applied at its receipt"
        (proc + 1) Dot.pp dot

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>applies=%d delays=%d (necessary=%d, unnecessary=%d) skips=%d \
     complete=%b lost=%d@,violations=%d%a@]"
    r.total_applies r.total_delays r.necessary_delays r.unnecessary_delays
    r.skipped r.complete (List.length r.lost)
    (List.length r.violations)
    (fun ppf vs ->
      List.iter (fun v -> Format.fprintf ppf "@,  %a" pp_violation v) vs)
    r.violations
