(** Protocol-independent run auditor.

    Takes a recorded {!Execution.t}, reconstructs the abstract history,
    re-derives the ground-truth causal order ([↦co]) with
    {!Dsm_memory.Write_vectors} — never trusting the protocol's own
    clocks — and checks each of the paper's properties:

    - {b safety} (§3.4): at every process, a write is applied only
      after every write of its causal past has been applied (or
      logically applied by a writing-semantics skip);
    - {b legality / causal consistency} (Definitions 1–2): every read
      returns the most recent causally preceding write on its variable;
    - {b delay accounting} (Definition 3): which applies were delayed,
      and — the optimality question — whether each delay was
      {e necessary} (some causal predecessor genuinely missing at
      receipt time) or {e unnecessary} ("false causality": everything
      needed was already applied, the protocol was just
      over-conservative). Theorem 4 says OptP's unnecessary count is
      identically 0; the tests enforce exactly that;
    - {b completeness} (class 𝒫 membership, §3.2): every write is
      applied at every process — writing-semantics protocols fail this
      by design, with each miss accounted as a skip or a lost write. *)

type violation =
  | Safety of {
      proc : int;
      applied : Dsm_vclock.Dot.t;
      missing : Dsm_vclock.Dot.t;
          (** in the causal past of [applied], not yet applied *)
    }
  | Illegal_read of { proc : int; detail : string }
  | Immediate_apply_marked_delayed of {
      proc : int;
      dot : Dsm_vclock.Dot.t;
    }
      (** bookkeeping bug: flagged delayed but applied at its receipt *)

type delay_class = Necessary | Unnecessary

type delay = {
  dproc : int;
  ddot : Dsm_vclock.Dot.t;
  dclass : delay_class;
  dblocking : Dsm_vclock.Dot.t list;
      (** causal predecessors missing at receipt time (empty iff
          [Unnecessary]) *)
}

type report = {
  total_applies : int;
  total_delays : int;
  necessary_delays : int;
  unnecessary_delays : int;
  delays : delay list;
  delays_per_proc : int array;
  violations : violation list;
  complete : bool;  (** class-𝒫 completeness *)
  missing : (int * Dsm_vclock.Dot.t) list;
      (** (proc, write) never applied there: skips and losses *)
  lost : (int * Dsm_vclock.Dot.t) list;
      (** the subset of [missing] with no skip event either — writes
          that simply never arrived at their destination state, i.e. a
          liveness failure of the protocol or driver *)
  skipped : int;
}

val check :
  ?replication:(proc:int -> var:int -> bool) ->
  ?expected:(proc:int -> dot:Dsm_vclock.Dot.t -> bool) ->
  ?floor:Dsm_vclock.Vector_clock.t ->
  Execution.t ->
  report
(** [?replication] switches on partial-replication auditing: a process
    is only expected to apply writes on locations it replicates, safety
    requires only the {e replicated} part of a write's causal past to
    be applied first, and delay classification counts only replicated
    predecessors as blocking. Omitted = full replication (the paper's
    model).

    [?expected] switches on membership-aware completeness: process
    [proc] owes an apply of write [dot] only when the predicate holds.
    Churn drivers pass the final membership view — a process that left
    the view (or a write issued after a process departed) is excused
    from the completeness audit, while {e safety} and read-legality
    remain unconditional per process across every epoch: no filter ever
    excuses applying a write before its causal predecessors. Omitted =
    every process owes every write (the static-membership model).

    [?floor] switches on {e windowed} auditing for endurance runs whose
    full execution cannot be retained: the execution holds only the
    events after a convergence barrier, and [floor] gives the
    per-issuer write counts audited in earlier windows (every process
    had applied all of them at the barrier). Baseline counters start
    from the floor, read-froms naming compacted writes are resolved
    against it, and the completeness audit covers the window's writes
    only. Omitted = audit everything (the default everywhere outside
    the soak driver). *)

val is_clean : report -> bool
(** No violations and no lost writes (incompleteness by documented
    writing-semantics skips is reported, not judged — it is a protocol
    property, not a bug). *)

val pp_report : Format.formatter -> report -> unit
val pp_violation : Format.formatter -> violation -> unit
