module Protocol = Dsm_core.Protocol
module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Reliable_channel = Dsm_sim.Reliable_channel
module Fault_plan = Dsm_sim.Fault_plan
module Sim_time = Dsm_sim.Sim_time
module Rng = Dsm_sim.Rng
module Spec = Dsm_workload.Spec
module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Metrics = Dsm_obs.Metrics

type 'msg wire =
  | Proto of 'msg
  | Sync_request of { vec : int array }
  | Sync_reply of { vec : int array; writes : 'msg list }
  | Transfer of { vec : int array; writes : 'msg list }
      (* the sponsor's delta state transfer: its durable write log cut
         at the joiner's Apply vector, replayed at the joiner through
         the normal receive path *)
  | Heartbeat of { sent : float }
      (* gossip liveness beacon; [sent] lets a refutation prove the
         sender was alive after the suspicion, retransmissions
         notwithstanding *)

(* frame-shape measurer over the churn envelope; anti-entropy and state
   transfer are priced like Fault_campaign's "sync" cause, transfers
   under their own cause (they carry whole log suffixes — the dominant
   churn wire cost), heartbeats as one scalar *)
let wire_of_env msg_frame env =
  let vec_plus_writes ~kind ~scalars vec writes =
    List.fold_left
      (fun acc m ->
        let f = msg_frame m in
        {
          acc with
          Dsm_obs.Wire.scalars =
            acc.Dsm_obs.Wire.scalars + f.Dsm_obs.Wire.scalars;
          dots = acc.Dsm_obs.Wire.dots + f.Dsm_obs.Wire.dots;
          vectors = acc.Dsm_obs.Wire.vectors @ f.Dsm_obs.Wire.vectors;
        })
      {
        Dsm_obs.Wire.kind;
        scalars;
        dots = 0;
        vectors = [ Dsm_vclock.Vector_clock.of_array vec ];
      }
      writes
  in
  match env with
  | Proto m -> msg_frame m
  | Sync_request { vec } ->
      {
        Dsm_obs.Wire.kind = "sync";
        scalars = 0;
        dots = 0;
        vectors = [ Dsm_vclock.Vector_clock.of_array vec ];
      }
  | Sync_reply { vec; writes } ->
      vec_plus_writes ~kind:"sync" ~scalars:1 vec writes
  | Transfer { vec; writes } ->
      vec_plus_writes ~kind:"transfer" ~scalars:1 vec writes
  | Heartbeat _ ->
      { Dsm_obs.Wire.kind = "heartbeat"; scalars = 1; dots = 0; vectors = [] }

type catch_up_kind = Fresh_join | Rejoin | Recover

type catch_up = {
  cproc : int;
  ckind : catch_up_kind;
  started_at : float;
  mutable transfer_writes : int;
  mutable transfer_gap : int;
      (* componentwise vector gap sponsor - joiner at transfer time;
         bounds transfer_writes (one single-write message per dot) *)
  mutable transfer_bytes : int;
  mutable replayed : int;
  mutable target : int array option;
      (* componentwise max of peer vectors seen in replies; caught up
         once the local applied vector dominates it *)
  mutable converged_at : float option;
}

type suspicion = {
  speer : int;
  sobserver : int;
  sphi : float;
  sat : float;
  strue : bool;  (* the peer really was down when suspected *)
  slatency : float option;  (* crash-to-suspicion, when [strue] *)
  mutable srefuted_at : float option;
      (* a heartbeat sent after [sat] arrived: false (or outdated)
         suspicion, survived via the rejoin path *)
}

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  report : Checker.report;
  protocol_name : string;
  plan : Fault_plan.t;
  membership : Membership.t;
  final_epoch : int;
  joins : int;
  rejoins : int;
  leaves : int;
  catch_ups : catch_up list;
  detector : Failure_detector.config option;
  heartbeats_sent : int;
  suspicions : suspicion list;
  false_suspicions : int;
  refutations : int;
  view_reasons : (int * float * string) list;
  transfer_bytes : int;
  quarantine_leaks : int;
  sessions : Session_tier.report option;
  active_at_end : int list;
  final_states : Fault_campaign.replica_state list;
  live_equal : bool;
  clean : bool;
  commits : int;
  snapshot_bytes : int;
  rolled_back_events : int;
  ops_skipped_inactive : int;
  sync_requests : int;
  sync_replies : int;
  replayed_writes : int;
  stale_deliveries_dropped : int;
  chan_stale_quarantined : int;
  net_stale_dropped : int;
  net_nonmember_dropped : int;
  net_oneway_dropped : int;
  net_flap_dropped : int;
  net_delay_inflated : int;
  corrupt_dropped : int;
  aborted_payloads : int;
  payloads_sent : int;
  frames_sent : int;
  retransmissions : int;
  duplicates_discarded : int;
  engine_steps : int;
  end_time : float;
}

(* per-slot runtime wrapper; [proto = None] until the slot joins *)
type ('proto, 'msg) node = {
  id : int;
  mutable proto : 'proto option;
  mutable down : bool;
  mutable ever_crashed : bool;
  mutable leaving : bool;  (* flushing; still in the view *)
  mutable durable : (Protocol.config * string * string) option;
      (* (config at checkpoint, protocol snapshot, serialized write
         log) — restore needs the exact config the image was taken
         under, then re-grows to the current view width *)
  mutable log : (Dot.t, 'msg) Hashtbl.t;
  mutable staged : (Sim_time.t * Execution.kind) list;  (* newest first *)
  mutable staged_count : int;
  mutable write_seq : int;
  mutable last_crash : float;
  mutable cur : catch_up option;  (* open catch-up, until converged *)
}

(* ghost-dot audit: the quarantine must keep stale incarnation traffic
   out of [Apply].  Two independently checkable symptoms of a leak:
   the same dot applied twice at one process (a stale retransmission
   slipping past the post-crash dedup reset), or one dot observed with
   two different (var, value) bindings anywhere (a forged or corrupted
   write surviving the checksum layer). *)
let count_quarantine_leaks execution =
  let seen_value : (Dot.t, int * int) Hashtbl.t = Hashtbl.create 256 in
  let applied : (int * Dot.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let leaks = ref 0 in
  List.iter
    (fun (ev : Execution.event) ->
      let check_value dot var value =
        match Hashtbl.find_opt seen_value dot with
        | None -> Hashtbl.add seen_value dot (var, value)
        | Some (var', value') ->
            if var <> var' || value <> value' then incr leaks
      in
      match ev.Execution.kind with
      | Execution.Send { dot; var; value } -> check_value dot var value
      | Execution.Apply { dot; var; value; _ } ->
          check_value dot var value;
          if Hashtbl.mem applied (ev.Execution.proc, dot) then incr leaks
          else Hashtbl.add applied (ev.Execution.proc, dot) ()
      | Execution.Receipt _ | Execution.Blocked _ | Execution.Skip _
      | Execution.Return _ ->
          ())
    (Execution.events execution);
  !leaks

let run (type pt pm)
    (module P : Protocol.S with type t = pt and type msg = pm) ~spec
    ~latency ?(faults = Network.no_faults) ~plan ~initial ?detector
    ?(mixed = false) ?sessions ?(checkpoint_every = 50.) ?(sync_rounds = 2)
    ?(sync_interval = 100.) ?(flush_poll = 10.) ?(settle = true)
    ?(retransmit_after = 50.) ?(seed = 1) ?(max_steps = 20_000_000)
    ?(metrics = Metrics.null ()) ?(wire = Dsm_obs.Wire.null ())
    ?(recorder = Dsm_obs.Timeseries.null ()) ?(scrape_every = 25.)
    ?(queue = Engine.Indexed) ?(arena = true) ?(batch = false) () =
  let universe = spec.Spec.n and m = spec.Spec.m in
  if initial < 2 || initial > universe then
    invalid_arg "Churn_campaign.run: need 2 <= initial <= spec.n slots";
  let fd_on = detector <> None in
  if fd_on && (not mixed) && Fault_plan.has_churn plan then
    invalid_arg
      "Churn_campaign.run: emergent mode scripts no membership — drop the \
       Join/Leave events; crashes and partitions are the only inputs, the \
       detector produces the view history (pass ~mixed:true — the nemesis \
       driver does — to combine both)";
  let initial_slots = List.init initial Fun.id in
  Fault_plan.validate ~n:universe ~initial:initial_slots plan;
  if checkpoint_every <= 0. then
    invalid_arg "Churn_campaign.run: checkpoint_every must be positive";
  let schedule = Dsm_workload.Generator.generate spec in
  let engine = Engine.create ~queue () in
  let rng = Rng.create seed in
  let measure = Reliable_channel.wire_frame (wire_of_env P.msg_frame) in
  let network =
    Network.create ~engine ~rng ~n:universe
      ~latency:(fun ~src:_ ~dst:_ -> latency)
      ~arena ~batch ~faults ~mangle:Reliable_channel.corrupt_frame ~metrics
      ~wire ~measure
      ~sizer:(fun f -> Dsm_obs.Wire.frame_bytes (measure f))
      ()
  in
  if Dsm_obs.Timeseries.enabled recorder then begin
    let horizon =
      let ops_horizon =
        Array.fold_left
          (fun acc ops ->
            List.fold_left
              (fun acc { Spec.at; _ } -> Float.max acc at)
              acc ops)
          0. schedule
      in
      List.fold_left
        (fun acc ev ->
          Float.max acc (Sim_time.to_float (Fault_plan.time ev)))
        ops_horizon plan
    in
    if horizon >= scrape_every then
      Engine.schedule_every engine ~every:scrape_every
        ~until:(Sim_time.of_float horizon) (fun () ->
          Dsm_obs.Timeseries.scrape recorder
            ~now:(Sim_time.to_float (Engine.now engine)))
  end;
  let channel =
    Reliable_channel.create ~engine ~network ~retransmit_after ~rng
      ~metrics ()
  in
  let membership = Membership.create ~universe ~initial:initial_slots () in
  Network.set_membership network (Membership.is_member membership);
  let probe_epoch = Metrics.gauge metrics "membership_epoch" in
  let probe_active = Metrics.gauge metrics "membership_active" in
  let probe_joins = Metrics.counter metrics "membership_joins_total" in
  let probe_rejoins = Metrics.counter metrics "membership_rejoins_total" in
  let probe_leaves = Metrics.counter metrics "membership_leaves_total" in
  let probe_transfer_bytes =
    Metrics.counter metrics "membership_transfer_bytes"
  in
  let probe_join_latency =
    Metrics.histogram metrics "membership_join_latency" ~lo:0. ~hi:512.
      ~bins:16
  in
  let probe_checkpoints = Metrics.counter metrics "campaign_checkpoints" in
  let probe_checkpoint_bytes =
    Metrics.counter metrics "campaign_checkpoint_bytes"
  in
  let probe_replayed = Metrics.counter metrics "campaign_replayed_writes" in
  let probe_sync_requests =
    Metrics.counter metrics "campaign_sync_requests"
  in
  let probe_sync_replies = Metrics.counter metrics "campaign_sync_replies" in
  let probe_fd_heartbeats = Metrics.counter metrics "fd_heartbeats_total" in
  let probe_fd_suspicions = Metrics.counter metrics "fd_suspicions_total" in
  let probe_fd_false =
    Metrics.counter metrics "fd_false_positives_total"
  in
  let probe_fd_refutations =
    Metrics.counter metrics "fd_refutations_total"
  in
  let probe_fd_phi =
    Metrics.histogram metrics "fd_phi_at_suspicion" ~lo:0. ~hi:16. ~bins:16
  in
  let probe_fd_latency = Metrics.gauge metrics "fd_detection_latency" in
  Metrics.set probe_active initial;
  let execution = Execution.create ~n:universe ~m () in
  let nodes =
    Array.init universe (fun id ->
        {
          id;
          proto =
            (if id < initial then
               Some (P.create (Protocol.config ~n:initial ~m) ~me:id)
             else None);
          down = false;
          ever_crashed = false;
          leaving = false;
          durable = None;
          log = Hashtbl.create 256;
          staged = [];
          staged_count = 0;
          write_seq = 0;
          last_crash = 0.;
          cur = None;
        })
  in
  let proto_of node =
    match node.proto with
    | Some t -> t
    | None ->
        invalid_arg
          (Printf.sprintf "Churn_campaign: slot %d has no protocol state"
             node.id)
  in
  (* the view width: every live protocol state is kept grown to it, so
     a message vector is never wider than its receiver's clock by the
     time the issuer may broadcast (the growth-before-traffic
     invariant the protocols' [grow] contract requires) *)
  let width = ref initial in
  let grow_all () =
    Array.iter
      (fun node ->
        match node.proto with
        | Some t -> P.grow t ~n:!width
        | None -> ())
      nodes
  in
  let sync_view () =
    Network.set_epoch network (Membership.epoch membership);
    Metrics.set probe_epoch (Membership.epoch membership);
    Metrics.set probe_active (List.length (Membership.active membership))
  in
  (* detector state: one accrual observer per slot, a per-pair clock of
     the last payload sent (standalone heartbeats are suppressed while
     protocol traffic piggybacks as liveness evidence), and the time
     each slot was suspected (a refutation must postdate it) *)
  let detectors =
    match detector with
    | None -> [||]
    | Some cfg ->
        Array.init universe (fun me ->
            Failure_detector.create cfg ~universe ~me)
  in
  let last_sent =
    if fd_on then Array.make_matrix universe universe neg_infinity
    else [||]
  in
  let suspected_at = Array.make universe infinity in
  let nowf () = Sim_time.to_float (Engine.now engine) in
  (* the membership view is the addressing oracle: senders talk only to
     currently active members; everyone else catches up by transfer or
     anti-entropy when (re)entering the view *)
  let ch_send ~src ~dst msg =
    if Membership.is_active membership dst then begin
      if fd_on then last_sent.(src).(dst) <- nowf ();
      Reliable_channel.send channel ~src ~dst msg
    end
  in
  let ch_broadcast ~src msg =
    List.iter
      (fun dst -> if dst <> src then ch_send ~src ~dst msg)
      (Membership.active membership)
  in
  let catch_ups = ref [] in
  let joins = ref 0 in
  let rejoins = ref 0 in
  let leaves = ref 0 in
  let transfer_bytes = ref 0 in
  let commits = ref 0 in
  let snapshot_bytes = ref 0 in
  let rolled_back = ref 0 in
  let ops_skipped = ref 0 in
  let sync_requests = ref 0 in
  let sync_replies = ref 0 in
  let replayed_writes = ref 0 in
  let stale_dropped = ref 0 in
  let aborted = ref 0 in
  let heartbeats = ref 0 in
  let suspicions = ref [] in
  let false_suspicions = ref 0 in
  let refutations = ref 0 in
  let reasons = ref [] in
  (* view-change provenance: one line per epoch bump, recorded right
     after the transition so the epoch stamp is the view it produced *)
  let push_reason fmt =
    Printf.ksprintf
      (fun why ->
        reasons := (Membership.epoch membership, nowf (), why) :: !reasons)
      fmt
  in

  let record node kind =
    node.staged <- (Engine.now engine, kind) :: node.staged;
    node.staged_count <- node.staged_count + 1
  in
  (* same durability discipline as {!Fault_campaign}: a write commits
     before its broadcast leaves, so no dot is ever reissued *)
  let commit node =
    List.iter
      (fun (time, kind) ->
        Execution.record execution ~proc:node.id ~time kind)
      (List.rev node.staged);
    node.staged <- [];
    node.staged_count <- 0;
    let image = P.snapshot (proto_of node) in
    let log_image = Protocol.Snapshot.encode node.log in
    node.durable <- Some (Protocol.config ~n:!width ~m, image, log_image);
    incr commits;
    Metrics.incr probe_checkpoints;
    Metrics.add probe_checkpoint_bytes
      (String.length image + String.length log_image);
    snapshot_bytes := !snapshot_bytes + String.length image
                      + String.length log_image
  in
  let log_outbound node msg =
    List.iter
      (fun (dot, _, _) -> Hashtbl.replace node.log dot msg)
      (P.msg_writes msg)
  in
  let covered node dot =
    let v = P.applied_vector (proto_of node) in
    V.get0 v (Dot.replica dot) >= Dot.seq dot
  in
  let check_converged node =
    match node.cur with
    | Some c when c.converged_at = None -> (
        match c.target with
        | None -> ()
        | Some target ->
            let v = P.applied_vector (proto_of node) in
            let ok = ref true in
            Array.iteri
              (fun i want -> if V.get0 v i < want then ok := false)
              target;
            if !ok then begin
              c.converged_at <- Some (nowf ());
              Metrics.observe probe_join_latency (nowf () -. c.started_at);
              node.cur <- None
            end)
    | _ -> ()
  in
  let rec process node (eff : pm Protocol.effects) =
    List.iter (fun dot -> record node (Execution.Skip { dot })) eff.skipped;
    List.iter
      (fun (a : Protocol.apply_record) ->
        record node
          (Execution.Apply
             {
               dot = a.adot;
               var = a.avar;
               value = a.avalue;
               delayed = a.afrom_buffer;
             }))
      eff.applied;
    List.iter
      (fun outbound ->
        let msg =
          match outbound with
          | Protocol.Broadcast msg -> msg
          | Protocol.Unicast { msg; _ } -> msg
        in
        log_outbound node msg;
        List.iter
          (fun (dot, var, value) ->
            record node (Execution.Send { dot; var; value }))
          (P.msg_writes msg);
        match outbound with
        | Protocol.Broadcast msg -> ch_broadcast ~src:node.id (Proto msg)
        | Protocol.Unicast { dst; msg } ->
            ch_send ~src:node.id ~dst (Proto msg))
      eff.to_send
  and deliver_proto node ~src msg =
    log_outbound node msg;
    let writes = P.msg_writes msg in
    if writes <> [] && List.for_all (fun (dot, _, _) -> covered node dot)
                         writes
    then incr stale_dropped
    else begin
      List.iter
        (fun (dot, _, _) -> record node (Execution.Receipt { dot; src }))
        writes;
      let eff = P.receive (proto_of node) ~src msg in
      (match writes with
      | [] -> ()
      | _ when eff.Protocol.applied = [] && eff.Protocol.skipped = [] -> (
          match P.waiting_for (proto_of node) ~src msg with
          | Some waiting_for ->
              List.iter
                (fun (dot, _, _) ->
                  record node (Execution.Blocked { dot; waiting_for }))
                writes
          | None -> ())
      | _ -> ());
      process node eff;
      check_converged node
    end
  in
  let send_sync_request node =
    let vec = V.to_array (P.applied_vector (proto_of node)) in
    List.iter
      (fun dst ->
        if dst <> node.id then begin
          incr sync_requests;
          Metrics.incr probe_sync_requests;
          Reliable_channel.send channel ~src:node.id ~dst
            (Sync_request { vec })
        end)
      (Membership.active membership)
  in
  let issuer_of msg =
    match P.msg_writes msg with
    | (dot, _, _) :: _ -> Dot.replica dot
    | [] ->
        invalid_arg
          "Churn_campaign: control message in the anti-entropy log"
  in
  (* the writes this node holds beyond [vec]; [vec] may be narrower or
     wider than this node's own clock — out-of-range components are
     implicit zeros on both sides *)
  let collect_since node ~vec =
    let mine = V.to_array (P.applied_vector (proto_of node)) in
    let out = ref [] in
    for u = Array.length mine - 1 downto 0 do
      let have = if u < Array.length vec then vec.(u) else 0 in
      for s = mine.(u) downto have + 1 do
        let dot = Dot.make ~replica:u ~seq:s in
        match Hashtbl.find_opt node.log dot with
        | Some msg -> out := msg :: !out
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Churn_campaign: %s applied %s but its durable log \
                  cannot re-supply it (protocol outside the \
                  complete-broadcast class?)"
                 P.name (Dot.to_string dot))
      done
    done;
    (V.to_array (P.applied_vector (proto_of node)), !out)
  in
  let serve_sync node ~peer ~vec =
    let mine, out = collect_since node ~vec in
    incr sync_replies;
    Metrics.incr probe_sync_replies;
    ch_send ~src:node.id ~dst:peer (Sync_reply { vec = mine; writes = out })
  in
  let merge_target c vec =
    c.target <-
      Some
        (match c.target with
        | None -> Array.copy vec
        | Some t ->
            let len = max (Array.length t) (Array.length vec) in
            Array.init len (fun i ->
                let a = if i < Array.length t then t.(i) else 0 in
                let b = if i < Array.length vec then vec.(i) else 0 in
                max a b))
  in
  let absorb_sync node writes ~vec =
    (match node.cur with
    | Some c -> merge_target c vec
    | None -> ());
    List.iter
      (fun msg ->
        let fresh =
          List.exists (fun (dot, _, _) -> not (covered node dot))
            (P.msg_writes msg)
        in
        if fresh then begin
          incr replayed_writes;
          Metrics.incr probe_replayed;
          (match node.cur with
          | Some c -> c.replayed <- c.replayed + 1
          | None -> ());
          deliver_proto node ~src:(issuer_of msg) msg
        end)
      writes;
    check_converged node
  in
  (* refutation-driven rejoin, installed by the emergent wiring below:
     a heartbeat sent after the suspicion proves the slot alive *)
  let refute_hook :
      (peer:int -> witness:int -> sent:float -> unit) ref =
    ref (fun ~peer:_ ~witness:_ ~sent:_ -> ())
  in
  for dst = 0 to universe - 1 do
    Reliable_channel.set_handler channel dst (fun ~src ~at:_ w ->
        let node = nodes.(dst) in
        if (not node.down) && node.proto <> None then begin
          if fd_on then begin
            (* piggyback: any frame from [src] is liveness evidence *)
            Failure_detector.observe detectors.(dst) ~peer:src
              ~at:(nowf ());
            match w with
            | Heartbeat { sent }
              when Membership.is_member membership src
                   && (not (Membership.is_active membership src))
                   && (not nodes.(src).down)
                   && sent > suspected_at.(src) ->
                !refute_hook ~peer:src ~witness:dst ~sent
            | _ -> ()
          end;
          match w with
          | Heartbeat _ -> ()
          | Proto msg -> deliver_proto node ~src msg
          | Sync_request { vec } -> serve_sync node ~peer:src ~vec
          | Sync_reply { vec; writes } | Transfer { vec; writes } ->
              absorb_sync node writes ~vec
        end)
  done;

  (* anti-entropy rounds for a node that just (re)entered the view *)
  let schedule_catch_up node =
    send_sync_request node;
    for k = 1 to sync_rounds - 1 do
      Engine.schedule_after engine (float_of_int k *. sync_interval)
        (fun () ->
          if (not node.down) && Membership.is_active membership node.id then
            send_sync_request node)
    done
  in
  (* group-wide rounds: every active member asks around — needed after
     a crash-rejoin, when the rejoiner's own pre-crash broadcasts may
     have died quarantined on the wire and only it can re-supply them *)
  let schedule_group_sync () =
    for k = 1 to sync_rounds do
      Engine.schedule_after engine
        (float_of_int k *. sync_interval)
        (fun () ->
          List.iter
            (fun p ->
              let node = nodes.(p) in
              if not node.down then send_sync_request node)
            (Membership.active membership))
    done
  in

  (* ---- churn and fault plan wiring --------------------------------- *)
  (* The one plan peek: whether a crashed slot ever re-enters the view
     is a fact about the future.  It only gates the corpse's send-queue
     abandonment — a slot that will rejoin keeps its armed timers, and
     those zombie retransmissions are exactly the stale-incarnation
     traffic the channel quarantine must eat. *)
  let permanently_down = Fault_plan.down_at_end plan in
  let on_crash p =
    let node = nodes.(p) in
    if not fd_on then begin
      (* scripted mode: the plan is the membership oracle.  In emergent
         mode a crash is a purely physical event — the view only
         changes when a detector's accrued suspicion says so *)
      Membership.crash membership ~at:(Engine.now engine) p;
      sync_view ();
      push_reason "p%d crashed (plan)" (p + 1)
    end
    else if mixed && Membership.is_active membership p then begin
      (* mixed mode: a scripted crash is operator knowledge — the view
         reflects it immediately, and the detector (which only judges
         active peers) never has to discover it.  Skipped when a
         suspicion already marked the slot down. *)
      Membership.crash membership ~at:(Engine.now engine) p;
      sync_view ();
      push_reason "p%d crashed (plan)" (p + 1)
    end;
    node.down <- true;
    node.ever_crashed <- true;
    node.last_crash <- nowf ();
    rolled_back := !rolled_back + node.staged_count;
    node.staged <- [];
    node.staged_count <- 0;
    node.cur <- None;
    Network.mark_crashed network p;
    aborted := !aborted + Reliable_channel.abort_peer channel ~peer:p;
    if List.mem p permanently_down then begin
      aborted := !aborted + Reliable_channel.abort_sender channel ~peer:p;
      schedule_group_sync ()
    end
  in
  let start_catch_up node ckind =
    let c =
      {
        cproc = node.id;
        ckind;
        started_at = nowf ();
        transfer_writes = 0;
        transfer_gap = 0;
        transfer_bytes = 0;
        replayed = 0;
        target = None;
        converged_at = None;
      }
    in
    node.cur <- Some c;
    catch_ups := c :: !catch_ups;
    c
  in
  (* delta state transfer: the sponsor (lowest-id other active member)
     ships its durable log cut at the joiner's Apply vector — a fresh
     joiner's zeros degenerate to the whole log, a rejoiner only pays
     for the gap its crash (or false suspicion) opened *)
  let send_delta_transfer c joiner =
    match
      List.find_opt (fun q -> q <> joiner.id) (Membership.active membership)
    with
    | None -> ()
    | Some sponsor ->
        let snode = nodes.(sponsor) in
        let jvec = V.to_array (P.applied_vector (proto_of joiner)) in
        let vec, out = collect_since snode ~vec:jvec in
        c.transfer_writes <- List.length out;
        c.transfer_gap <-
          (let gap = ref 0 in
           Array.iteri
             (fun u s ->
               let have = if u < Array.length jvec then jvec.(u) else 0 in
               if s > have then gap := !gap + (s - have))
             vec;
           !gap);
        c.transfer_bytes <- String.length (Marshal.to_string out []);
        transfer_bytes := !transfer_bytes + c.transfer_bytes;
        Metrics.add probe_transfer_bytes c.transfer_bytes;
        ch_send ~src:sponsor ~dst:joiner.id (Transfer { vec; writes = out })
  in
  let restore_node node =
    match node.durable with
    | Some (cfg0, image, log_image) ->
        let t = P.restore cfg0 ~me:node.id image in
        P.grow t ~n:!width;
        node.proto <- Some t;
        node.log <- Protocol.Snapshot.decode log_image
    | None ->
        node.proto <- Some (P.create (Protocol.config ~n:!width ~m) ~me:node.id);
        node.log <- Hashtbl.create 256
  in
  let on_recover p =
    let node = nodes.(p) in
    if not fd_on then begin
      Membership.recover membership ~at:(Engine.now engine) p;
      sync_view ();
      push_reason "p%d recovered (plan)" (p + 1)
    end
    else if mixed && not (Membership.is_active membership p) then begin
      (* mixed mode: the scripted crash put the slot down in the view
         (or a suspicion did); a scripted recover re-admits it under
         the same incarnation, PR 2 style *)
      Membership.recover membership ~at:(Engine.now engine) p;
      sync_view ();
      push_reason "p%d recovered (plan)" (p + 1)
    end;
    node.down <- false;
    Network.mark_recovered network p;
    restore_node node;
    if fd_on then begin
      (* the slot heard nothing while down: re-arm its own arrival
         clocks or it would instantly suspect every peer *)
      for q = 0 to universe - 1 do
        if q <> p then begin
          Failure_detector.forget detectors.(p) ~peer:q;
          Failure_detector.observe detectors.(p) ~peer:q ~at:(nowf ());
          if mixed then begin
            (* and the peers heard nothing from it while it was down
               but outside the view: without a re-arm its pre-crash
               silence would be suspected on the next accrual tick *)
            Failure_detector.forget detectors.(q) ~peer:p;
            Failure_detector.observe detectors.(q) ~peer:p ~at:(nowf ())
          end
        end
      done;
      (* if a detector already turned this crash into a [Down], the
         catch-up belongs to the refutation-driven rejoin: the slot's
         resumed heartbeats will re-admit it *)
      if Membership.is_active membership p then begin
        ignore (start_catch_up node Recover);
        schedule_catch_up node
      end
    end
    else begin
      ignore (start_catch_up node Recover);
      schedule_catch_up node
    end
  in
  let on_join p =
    let node = nodes.(p) in
    let fresh = not (Membership.is_member membership p) in
    Membership.join membership ~at:(Engine.now engine) p;
    width := max !width (p + 1);
    grow_all ();
    sync_view ();
    if fd_on then begin
      (* mixed mode: the detectors were seeded at t=0, so without a
         re-arm a scripted joiner entering mid-run would look silent
         since the beginning of time and be suspected on the next
         accrual tick.  Fresh clocks on both sides, exactly as the
         refutation-driven rejoin does. *)
      suspected_at.(p) <- infinity;
      for q = 0 to universe - 1 do
        if q <> p then begin
          Failure_detector.forget detectors.(q) ~peer:p;
          Failure_detector.observe detectors.(q) ~peer:p ~at:(nowf ());
          Failure_detector.forget detectors.(p) ~peer:q;
          Failure_detector.observe detectors.(p) ~peer:q ~at:(nowf ())
        end
      done
    end;
    if fresh then begin
      (* bootstrap: empty state, then the sponsor's transfer (the full
         log: a fresh joiner's vector is all zeros) arrives through the
         normal receive path *)
      push_reason "p%d joined (plan)" (p + 1);
      node.proto <-
        Some (P.create (Protocol.config ~n:!width ~m) ~me:p);
      node.log <- Hashtbl.create 256;
      incr joins;
      Metrics.incr probe_joins;
      let c = start_catch_up node Fresh_join in
      send_delta_transfer c node;
      schedule_catch_up node
    end
    else begin
      (* crash-rejoin: same slot, fresh incarnation — everything this
         slot's previous life still has on the wire is now stale *)
      push_reason "p%d rejoined (plan)" (p + 1);
      Network.bump_incarnation network p;
      Reliable_channel.bump_incarnation channel p;
      Network.mark_recovered network p;
      node.down <- false;
      restore_node node;
      incr rejoins;
      Metrics.incr probe_rejoins;
      let c = start_catch_up node Rejoin in
      send_delta_transfer c node;
      schedule_catch_up node;
      schedule_group_sync ()
    end
  in
  let on_leave p =
    let node = nodes.(p) in
    node.leaving <- true;
    (* graceful departure: stop issuing, flush — wait until every
       payload this slot originated has been acknowledged, so its
       writes are all delivered somewhere durable — then leave *)
    let depart () =
      if not (Membership.is_active membership p) then
        (* mixed mode: a detector suspicion (or refutation still in
           flight) won the race with this scripted leave — the slot is
           not a live member, so there is nothing to depart from.  The
           slot stays flushing/quiet; the detector pipeline owns its
           fate now. *)
        push_reason "p%d leave skipped: not active when the flush drained"
          (p + 1)
      else begin
      commit node;
      (* record the departing occupant's final write counter: the
         retired-generation ledger needs it to resolve this occupant's
         dots, and the slot-reuse gate compares the cluster Apply floor
         against it before recycling the slot *)
      let final = V.get0 (P.applied_vector (proto_of node)) p in
      Membership.leave membership ~at:(Engine.now engine) ~final p;
      sync_view ();
      push_reason "p%d left gracefully (plan)" (p + 1);
      (* frames still in flight toward the retired slot would
         retransmit forever against nonmember drops *)
      aborted := !aborted + Reliable_channel.abort_peer channel ~peer:p;
      incr leaves;
      Metrics.incr probe_leaves
      end
    in
    let rec poll tries =
      if tries > 10_000 then
        failwith
          (Printf.sprintf
             "Churn_campaign: p%d leave flush did not drain" (p + 1))
      else if Reliable_channel.unacked_from channel ~peer:p = 0 then
        depart ()
      else
        Engine.schedule_after engine flush_poll (fun () -> poll (tries + 1))
    in
    poll 0
  in
  Fault_plan.install plan ~engine ~on_join ~on_leave ~on_crash ~on_recover
    ~on_cut:(fun groups -> Network.partition network groups)
    ~on_heal:(fun () -> Network.heal_all network)
    ~on_cut_oneway:(fun ~src ~dst -> Network.cut_oneway network ~src ~dst)
    ~on_heal_oneway:(fun ~src ~dst -> Network.heal_oneway network ~src ~dst)
    ~on_flap:(fun ~a ~b ~period ~until_ ->
      Network.flap network ~a ~b ~period ~until_)
    ~on_inflate:(fun ~src ~dst ~factor ~until_ ->
      Network.inflate network ~src ~dst ~factor ~until_)
    ();

  (* ---- workload ---------------------------------------------------- *)
  (* every slot has an op stream; ops land only while the slot is an
     active, non-flushing member — the rest are counted skips *)
  Array.iteri
    (fun proc ops ->
      let node = nodes.(proc) in
      List.iter
        (fun { Spec.at; op } ->
          Engine.schedule_at engine (Sim_time.of_float at) (fun () ->
              if
                node.down || node.leaving
                || not (Membership.is_active membership proc)
              then incr ops_skipped
              else
                match op with
                | Spec.Do_write { var } ->
                    node.write_seq <- node.write_seq + 1;
                    let value =
                      Sim_run.write_value ~proc ~seq:node.write_seq
                    in
                    let _, eff = P.write (proto_of node) ~var ~value in
                    process node eff;
                    commit node
                | Spec.Do_read { var } ->
                    let value, read_from = P.read (proto_of node) ~var in
                    record node
                      (Execution.Return { var; value; read_from })))
        ops)
    schedule;

  let horizon =
    let plan_end =
      List.fold_left
        (fun acc ev ->
          Float.max acc (Sim_time.to_float (Fault_plan.time ev)))
        0. plan
    in
    let base = Float.max (Dsm_workload.Generator.end_time schedule) plan_end in
    (* the session tier keeps issuing past the replica op streams; fold
       its nominal duration in so detector gossip outlasts the sessions *)
    match sessions with
    | None -> base
    | Some (sc : Session_tier.config) ->
        Float.max base
          (sc.Session_tier.think_mean
          *. float_of_int (sc.Session_tier.ops_per_session + 2))
  in
  (* ---- emergent membership: gossip + accrual detection ------------- *)
  (match detector with
  | None -> ()
  | Some cfg ->
      (* seed every pair's arrival clock at t=0: silence accrues from
         the start even for a slot that crashes before ever speaking *)
      Array.iter
        (fun det ->
          for q = 0 to universe - 1 do
            Failure_detector.observe det ~peer:q ~at:0.
          done)
        detectors;
      let suspect ~observer ~peer ~phi =
        let node = nodes.(peer) in
        let now = nowf () in
        let was_down = node.down in
        Membership.crash membership ~at:(Engine.now engine) peer;
        sync_view ();
        push_reason "p%d suspected by p%d (phi=%.2f)" (peer + 1)
          (observer + 1) phi;
        suspected_at.(peer) <- now;
        let slatency =
          if was_down then Some (now -. node.last_crash) else None
        in
        suspicions :=
          {
            speer = peer;
            sobserver = observer;
            sphi = phi;
            sat = now;
            strue = was_down;
            slatency;
            srefuted_at = None;
          }
          :: !suspicions;
        Metrics.incr probe_fd_suspicions;
        Metrics.observe probe_fd_phi phi;
        (match slatency with
        | Some l -> Metrics.set probe_fd_latency (int_of_float (l +. 0.5))
        | None ->
            incr false_suspicions;
            Metrics.incr probe_fd_false);
        (* payloads queued toward the silent slot (heartbeats included)
           would retransmit forever against crash drops *)
        aborted := !aborted + Reliable_channel.abort_peer channel ~peer
      in
      (refute_hook :=
         fun ~peer ~witness ~sent ->
           let node = nodes.(peer) in
           incr refutations;
           Metrics.incr probe_fd_refutations;
           (match
              List.find_opt
                (fun s -> s.speer = peer && s.srefuted_at = None)
                !suspicions
            with
           | Some s -> s.srefuted_at <- Some (nowf ())
           | None -> ());
           suspected_at.(peer) <- infinity;
           (* the refuted suspicion reuses the crash-rejoin path: fresh
              incarnation, quarantined leftovers, delta transfer +
              anti-entropy — false suspicions are survivable because
              rejoin already is *)
           Membership.join membership ~at:(Engine.now engine) peer;
           sync_view ();
           push_reason
             "p%d rejoined: heartbeat sent@%.1f to p%d refuted the \
              suspicion"
             (peer + 1) sent (witness + 1);
           Network.bump_incarnation network peer;
           Reliable_channel.bump_incarnation channel peer;
           Network.mark_recovered network peer;
           incr rejoins;
           Metrics.incr probe_rejoins;
           (* fresh incarnation: stale arrival history on either side
              must not poison the new estimates *)
           for q = 0 to universe - 1 do
             if q <> peer then begin
               Failure_detector.forget detectors.(q) ~peer;
               Failure_detector.observe detectors.(q) ~peer ~at:(nowf ());
               Failure_detector.forget detectors.(peer) ~peer:q;
               Failure_detector.observe detectors.(peer) ~peer:q
                 ~at:(nowf ())
             end
           done;
           let c = start_catch_up node Rejoin in
           send_delta_transfer c node;
           schedule_catch_up node;
           schedule_group_sync ());
      (* gossip + accrual run past the plan so a crash near the horizon
         is still detected; the bound is the worst-case silence a
         clamped window can demand before phi crosses the threshold *)
      let detection_span =
        (* adaptive scaling can raise a link's threshold by at most
           1 + 2 * adaptive (the interval clamp bounds cv below 2), so
           the worst-case silence before crossing grows by the same
           factor; with adaptive = 0 this is the fixed-threshold bound *)
        cfg.Failure_detector.threshold
        *. (1. +. (2. *. cfg.Failure_detector.adaptive))
        *. Float.log 10.
        *. (4. *. cfg.Failure_detector.heartbeat_every)
      in
      (* suspicion stops before gossip does: a slot falsely suspected
         at the very last accrual tick still gets gossip ticks of its
         own afterwards, so its refuting heartbeat is always
         originated (delivery needs no ticks — the channel retransmits
         until acked) *)
      let accrual_until = horizon +. detection_span in
      let hb_horizon =
        accrual_until
        +. (4. *. cfg.Failure_detector.heartbeat_every)
        +. (2. *. sync_interval)
      in
      Engine.schedule_every engine
        ~every:cfg.Failure_detector.heartbeat_every
        ~until:(Sim_time.of_float hb_horizon)
        (fun () ->
          let now = nowf () in
          (* gossip: a standalone beacon only where no recent protocol
             traffic already piggybacked as evidence *)
          for p = 0 to universe - 1 do
            let node = nodes.(p) in
            (* a flushing slot is still alive and still judged by every
               peer's accrual loop below — it must keep gossiping until
               it actually departs, or a scripted leave under an armed
               detector (mixed mode) turns into an unrefutable false
               suspicion *)
            if
              (not node.down)
              && node.proto <> None
              && Membership.is_member membership p
            then
              List.iter
                (fun dst ->
                  if
                    dst <> p
                    && now -. last_sent.(p).(dst)
                       >= cfg.Failure_detector.heartbeat_every
                  then begin
                    incr heartbeats;
                    Metrics.incr probe_fd_heartbeats;
                    ch_send ~src:p ~dst (Heartbeat { sent = now })
                  end)
                (Membership.active membership)
          done;
          (* accrue: every live active observer judges every active
             peer; first threshold crossing wins the view change *)
          if now <= accrual_until then
          for p = 0 to universe - 1 do
            let node = nodes.(p) in
            if (not node.down) && Membership.is_active membership p then
              List.iter
                (fun q ->
                  if q <> p && Membership.is_active membership q then begin
                    let phi =
                      Failure_detector.phi detectors.(p) ~peer:q ~at:now
                    in
                    if
                      phi
                      >= Failure_detector.effective_threshold detectors.(p)
                           ~peer:q
                    then suspect ~observer:p ~peer:q ~phi
                  end)
                (Membership.active membership)
          done);
      (* liveness backstop: once gossip stops, nothing new will suspect
         a still-down slot, so abandon any payloads queued toward the
         remaining corpses *)
      Engine.schedule_at engine (Sim_time.of_float (hb_horizon +. 1.))
        (fun () ->
          for p = 0 to universe - 1 do
            if nodes.(p).down then
              aborted :=
                !aborted + Reliable_channel.abort_peer channel ~peer:p
          done));

  let rec schedule_checkpoints at =
    if at <= horizon +. checkpoint_every then begin
      Engine.schedule_at engine (Sim_time.of_float at) (fun () ->
          List.iter
            (fun p ->
              let node = nodes.(p) in
              if not node.down then commit node)
            (Membership.active membership));
      schedule_checkpoints (at +. checkpoint_every)
    end
  in
  schedule_checkpoints checkpoint_every;

  (* ---- session tier ------------------------------------------------ *)
  (* lightweight client sessions in front of the replicas: each carries
     a session vector ([dep]) joined from the dots it wrote and the dots
     its reads returned, and a replica serves it only when its applied
     vector dominates [dep].  The RPC model is deterministic: a request
     arriving at a down / absent / flushing home gets a definitive
     Unavailable reply, a dep-gate miss a definitive Blocked reply (the
     op is never parked server-side), and only an executed op's reply
     leg is lossy — lost iff the home crashes before it drains.  A lost
     write reply is resolved by {e probing} for the op id in a home's
     durable log, never by blind reissue, so writes are at-most-once by
     construction. *)
  let session_finalize :
      (Dsm_memory.History.t -> Session_tier.report option) ref =
    ref (fun _ -> None)
  in
  (match sessions with
  | None -> ()
  | Some scfg ->
      let module ST = Session_tier in
      ST.validate_config scfg;
      (* independent stream: session traffic must not perturb the
         network/fault RNG draws of a session-free run *)
      let srng = Rng.create (scfg.ST.seed + (seed * 7919)) in
      let p_ops = Metrics.counter metrics "session_ops_total" in
      let p_writes = Metrics.counter metrics "session_writes_total" in
      let p_reads = Metrics.counter metrics "session_reads_total" in
      let p_migr = Metrics.counter metrics "session_migrations_total" in
      let p_retries = Metrics.counter metrics "session_retries_total" in
      let p_blocked = Metrics.counter metrics "session_blocked_total" in
      let p_unavail =
        Metrics.counter metrics "session_unavailable_total"
      in
      let p_degraded = Metrics.counter metrics "session_degraded_total" in
      let p_dedup = Metrics.counter metrics "session_dedup_hits_total" in
      let p_lost =
        Metrics.counter metrics "session_replies_lost_total"
      in
      let p_lat =
        Metrics.histogram metrics "session_op_latency" ~lo:0. ~hi:1024.
          ~bins:16
      in
      let sess =
        Array.init scfg.ST.count (fun sid ->
            ST.make_session ~sid ~universe)
      in
      let spans = ref [] in
      let migrations = ref [] in
      let s_writes = ref 0 and s_reads = ref 0 in
      let s_retries = ref 0 and s_blocked = ref 0 in
      let s_unavail = ref 0 in
      let s_dedup = ref 0 and s_lost = ref 0 in
      let wlat = ref [] and rlat = ref [] in
      let candidates () =
        List.filter
          (fun p ->
            let node = nodes.(p) in
            (not node.down) && (not node.leaving) && node.proto <> None)
          (Membership.active membership)
      in
      (* first dot of [dep] the home has not applied, if any *)
      let frontier_gap node (s : ST.session) =
        let v = P.applied_vector (proto_of node) in
        let missing = ref None in
        Array.iteri
          (fun u want ->
            if !missing = None && want > 0 && V.get0 v u < want then
              missing := Some (Dot.make ~replica:u ~seq:want))
          s.ST.dep;
        !missing
      in
      (* at-most-once probe: the op id, durable in this home's log and
         applied there *)
      let find_committed node value =
        Hashtbl.fold
          (fun dot msg acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if
                  List.exists
                    (fun (d, _, v) -> Dot.equal d dot && v = value)
                    (P.msg_writes msg)
                  && covered node dot
                then Some dot
                else None)
          node.log None
      in
      let join_dot (s : ST.session) dot =
        let r = Dot.replica dot in
        if r < Array.length s.ST.dep then
          s.ST.dep.(r) <- max s.ST.dep.(r) (Dot.seq dot)
      in
      let observe_latency span =
        match span.ST.odone_at with
        | None -> ()
        | Some t ->
            let l = t -. span.ST.oissued_at in
            Metrics.observe p_lat l;
            (match span.ST.okind with
            | ST.Op_write -> wlat := l :: !wlat
            | ST.Op_read -> rlat := l :: !rlat)
      in
      let rec start_op (s : ST.session) =
        if s.ST.op_seq < scfg.ST.ops_per_session then begin
          s.ST.op_seq <- s.ST.op_seq + 1;
          let okind =
            if Rng.float srng < scfg.ST.write_ratio then ST.Op_write
            else ST.Op_read
          in
          let span =
            {
              ST.osid = s.ST.sid;
              oseq = s.ST.op_seq;
              okind;
              ovar = Rng.int srng m;
              oissued_at = nowf ();
              oattempts = 0;
              owaiting_for = None;
              oclaim_home = -1;
              oclaim_at = 0.;
              odot = None;
              oserved_by = -1;
              oserved_at = -1.;
              odone_at = None;
              ooutcome = None;
            }
          in
          spans := span :: !spans;
          attempt s span ~probe:false ~retries_left:scfg.ST.max_retries
        end
      and next_op s =
        Engine.schedule_after engine
          (Rng.exponential srng scfg.ST.think_mean)
          (fun () -> start_op s)
      and degrade s span kind =
        span.ST.ooutcome <- Some kind;
        span.ST.odone_at <- Some (nowf ());
        Metrics.incr p_degraded;
        next_op s
      and reject s span ~probe ~retries_left ~deg =
        if retries_left <= 0 then degrade s span deg
        else begin
          incr s_retries;
          Metrics.incr p_retries;
          Engine.schedule_after engine
            (ST.backoff_delay scfg ~rng:srng ~attempt:span.ST.oattempts)
            (fun () -> attempt s span ~probe ~retries_left:(retries_left - 1))
        end
      and attempt s span ~probe ~retries_left =
        span.ST.oattempts <- span.ST.oattempts + 1;
        match
          ST.choose_home scfg.ST.placement ~sid:s.ST.sid ~universe
            ~rng:srng ~active:(candidates ()) ~current:s.ST.home
        with
        | None ->
            incr s_unavail;
            Metrics.incr p_unavail;
            reject s span ~probe ~retries_left ~deg:ST.Deg_unreachable
        | Some h ->
            (match s.ST.home with
            | Some h0 when h0 <> h && not scfg.ST.handoff ->
                (* canary: the session vector is dropped on retarget *)
                Array.fill s.ST.dep 0 (Array.length s.ST.dep) 0
            | _ -> ());
            s.ST.home <- Some h;
            let t_send = nowf () in
            Engine.schedule_after engine
              (Dsm_sim.Latency.sample latency srng)
              (fun () -> arrive s span ~h ~t_send ~probe ~retries_left)
      and arrive s span ~h ~t_send ~probe ~retries_left =
        let node = nodes.(h) in
        let t_handled = nowf () in
        (* one reply leg; [lossy] marks executed ops, whose reply dies
           with a crashing home — the only in-doubt window.  The client
           notices at its RPC timeout and runs [on_lost]. *)
        let reply ~lossy ~on_lost k =
          Engine.schedule_after engine
            (Dsm_sim.Latency.sample latency srng)
            (fun () ->
              if lossy && node.last_crash > t_handled then begin
                incr s_lost;
                Metrics.incr p_lost;
                let wake =
                  Float.max 0. (t_send +. scfg.ST.rpc_timeout -. nowf ())
                in
                Engine.schedule_after engine wake on_lost
              end
              else k ())
        in
        let no_loss k =
          reply ~lossy:false ~on_lost:(fun () -> assert false) k
        in
        if
          node.down || node.leaving || node.proto = None
          || not (Membership.is_active membership h)
        then begin
          incr s_unavail;
          Metrics.incr p_unavail;
          no_loss (fun () ->
              reject s span ~probe ~retries_left ~deg:ST.Deg_unreachable)
        end
        else if probe then
          match
            find_committed node (ST.op_value ~sid:s.ST.sid ~op:span.ST.oseq)
          with
          | Some dot ->
              incr s_dedup;
              Metrics.incr p_dedup;
              no_loss (fun () ->
                  serve_write s span ~h ~dot ~outcome:ST.Ok_dedup)
          | None ->
              no_loss (fun () ->
                  reject s span ~probe:true ~retries_left
                    ~deg:ST.Deg_in_doubt)
        else
          match frontier_gap node s with
          | Some wf ->
              span.ST.owaiting_for <- Some wf;
              span.ST.oclaim_home <- h;
              span.ST.oclaim_at <- t_handled;
              incr s_blocked;
              Metrics.incr p_blocked;
              no_loss (fun () ->
                  reject s span ~probe:false ~retries_left
                    ~deg:ST.Deg_blocked)
          | None -> (
              match span.ST.okind with
              | ST.Op_read ->
                  let value, read_from =
                    P.read (proto_of node) ~var:span.ST.ovar
                  in
                  span.ST.oserved_at <- t_handled;
                  record node
                    (Execution.Return { var = span.ST.ovar; value; read_from });
                  reply ~lossy:true
                    ~on_lost:(fun () ->
                      (* an unacknowledged read is idempotent: retry *)
                      reject s span ~probe:false ~retries_left
                        ~deg:ST.Deg_unreachable)
                    (fun () -> serve_read s span ~h ~value ~read_from)
              | ST.Op_write -> (
                  let value = ST.op_value ~sid:s.ST.sid ~op:span.ST.oseq in
                  match find_committed node value with
                  | Some dot ->
                      incr s_dedup;
                      Metrics.incr p_dedup;
                      reply ~lossy:true
                        ~on_lost:(fun () ->
                          reject s span ~probe:true ~retries_left
                            ~deg:ST.Deg_in_doubt)
                        (fun () ->
                          serve_write s span ~h ~dot ~outcome:ST.Ok_dedup)
                  | None ->
                      node.write_seq <- node.write_seq + 1;
                      let dot, eff =
                        P.write (proto_of node) ~var:span.ST.ovar ~value
                      in
                      span.ST.oserved_at <- t_handled;
                      process node eff;
                      commit node;
                      reply ~lossy:true
                        ~on_lost:(fun () ->
                          reject s span ~probe:true ~retries_left
                            ~deg:ST.Deg_in_doubt)
                        (fun () ->
                          serve_write s span ~h ~dot ~outcome:ST.Ok_served)))
      and note_served s span h =
        span.ST.oserved_by <- h;
        span.ST.odone_at <- Some (nowf ());
        (match s.ST.served_home with
        | Some prev when prev <> h ->
            migrations :=
              {
                ST.msid = s.ST.sid;
                mat = nowf ();
                mfrom = prev;
                mto = h;
                mcarried = scfg.ST.handoff;
              }
              :: !migrations;
            Metrics.incr p_migr
        | _ -> ());
        s.ST.served_home <- Some h;
        Metrics.incr p_ops;
        observe_latency span
      and serve_write s span ~h ~dot ~outcome =
        span.ST.odot <- Some dot;
        span.ST.ooutcome <- Some outcome;
        note_served s span h;
        join_dot s dot;
        s.ST.acked <-
          Dsm_memory.Operation.write ~proc:(Dot.replica dot)
            ~seq:(Dot.seq dot) ~var:span.ST.ovar
            ~value:(ST.op_value ~sid:s.ST.sid ~op:span.ST.oseq)
          :: s.ST.acked;
        incr s_writes;
        Metrics.incr p_writes;
        next_op s
      and serve_read s span ~h ~value ~read_from =
        span.ST.odot <- read_from;
        span.ST.ooutcome <- Some ST.Ok_served;
        note_served s span h;
        (match read_from with Some d -> join_dot s d | None -> ());
        s.ST.acked <-
          Dsm_memory.Operation.read ~proc:s.ST.sid ~slot:s.ST.reads_done
            ~var:span.ST.ovar ~value ~read_from
          :: s.ST.acked;
        s.ST.reads_done <- s.ST.reads_done + 1;
        incr s_reads;
        Metrics.incr p_reads;
        next_op s
      in
      Array.iter next_op sess;
      session_finalize :=
        fun history ->
          let streams =
            Array.to_list
              (Array.map (fun s -> (s.ST.sid, List.rev s.ST.acked)) sess)
          in
          let all_spans = List.rev !spans in
          let violations =
            ST.audit ~execution ~history ~spans:all_spans
              ~home_crashed_after:(fun ~home ~t ->
                nodes.(home).last_crash > t)
              ~streams ()
          in
          let duplicate_writes = ST.duplicate_writes history in
          let degraded =
            List.filter
              (fun sp ->
                match sp.ST.ooutcome with
                | Some
                    ( ST.Deg_blocked | ST.Deg_in_doubt
                    | ST.Deg_unreachable ) ->
                    true
                | _ -> false)
              all_spans
          in
          Some
            {
              ST.cfg = scfg;
              streams;
              spans = all_spans;
              migrations = List.rev !migrations;
              ops_done = !s_writes + !s_reads;
              writes_done = !s_writes;
              reads_done = !s_reads;
              retries = !s_retries;
              blocked_rejections = !s_blocked;
              unavailable_rejections = !s_unavail;
              dedup_hits = !s_dedup;
              replies_lost = !s_lost;
              degraded;
              duplicate_writes;
              violations;
              write_latencies = List.rev !wlat;
              read_latencies = List.rev !rlat;
            });

  let drain phase =
    match Engine.run ~max_steps engine with
    | Engine.Drained -> ()
    | Engine.Hit_step_limit ->
        failwith
          (Printf.sprintf
             "Churn_campaign: %s did not quiesce within %d events (%s)"
             P.name max_steps phase)
    | Engine.Hit_time_limit -> assert false
  in
  drain "main phase";

  (* ---- final anti-entropy fixpoint --------------------------------- *)
  (* sync until nothing new moves.  Under churn every active member
     asks around — joiners pick up writes that raced their view change,
     survivors pick up a rejoiner's re-supplied pre-crash writes.
     Without churn only recovered crashers ask, exactly as
     {!Fault_campaign} does (keeping churn-free runs byte-identical). *)
  (* detector-driven view changes count as churn: rejoiners with
     quarantined pre-bump traffic need every active member to ask *)
  let churny = Fault_plan.has_churn plan || fd_on in
  let rec final_sync iter =
    let before = !replayed_writes in
    let asked = ref false in
    List.iter
      (fun p ->
        let node = nodes.(p) in
        if (not node.down) && (churny || node.ever_crashed) then begin
          asked := true;
          Engine.schedule_after engine 1. (fun () ->
              if not node.down then send_sync_request node)
        end)
      (Membership.active membership);
    if !asked then begin
      drain "final sync";
      if !replayed_writes > before && iter < 32 then final_sync (iter + 1)
    end
  in
  final_sync 0;

  (* ---- settle phase ------------------------------------------------ *)
  let live () =
    List.filter_map
      (fun p ->
        let node = nodes.(p) in
        if node.down then None else Some node)
      (Membership.active membership)
  in
  if settle then begin
    List.iter
      (fun node ->
        Engine.schedule_after engine 1. (fun () ->
            if not node.down then begin
              for var = 0 to m - 1 do
                let value, read_from = P.read (proto_of node) ~var in
                record node (Execution.Return { var; value; read_from })
              done;
              for var = 0 to m - 1 do
                node.write_seq <- node.write_seq + 1;
                let value =
                  Sim_run.write_value ~proc:node.id ~seq:node.write_seq
                in
                let _, eff = P.write (proto_of node) ~var ~value in
                process node eff
              done;
              commit node
            end);
        drain "settle")
      (live ());
    List.iter
      (fun node ->
        Engine.schedule_after engine 1. (fun () ->
            if not node.down then begin
              for var = 0 to m - 1 do
                let value, read_from = P.read (proto_of node) ~var in
                record node (Execution.Return { var; value; read_from })
              done;
              commit node
            end))
      (live ());
    drain "settle reads"
  end;
  List.iter (fun node -> commit node) (live ());

  if Metrics.enabled metrics then begin
    let live_protos = List.map proto_of (live ()) in
    let sum f = List.fold_left (fun acc t -> acc + f t) 0 live_protos in
    let max_of f = List.fold_left (fun acc t -> max acc (f t)) 0 live_protos in
    Metrics.add (Metrics.counter metrics "buffer_wakeup_scans")
      (sum P.buffer_wakeup_scans);
    Metrics.add (Metrics.counter metrics "buffer_total_buffered")
      (sum P.total_buffered);
    Metrics.set (Metrics.gauge metrics "buffer_high_watermark")
      (max_of P.buffer_high_watermark)
  end;

  (* ---- verification ------------------------------------------------ *)
  let final_states =
    List.map
      (fun node ->
        {
          Fault_campaign.sproc = node.id;
          sapplied = V.to_array (P.applied_vector (proto_of node));
          sclock = V.to_array (P.local_clock (proto_of node));
          sstore = List.init m (fun var -> P.read (proto_of node) ~var);
        })
      (live ())
  in
  let live_equal =
    match final_states with
    | [] | [ _ ] -> true
    | first :: rest ->
        List.for_all
          (fun (s : Fault_campaign.replica_state) ->
            s.sapplied = first.Fault_campaign.sapplied
            && s.sstore = first.Fault_campaign.sstore
            && ((not settle) || s.sclock = first.Fault_campaign.sclock))
          rest
  in
  let active_at_end = Membership.active membership in
  (* completeness is owed by the final view's active members; safety
     and read legality stay unconditional for every slot that ever ran *)
  let report =
    Checker.check
      ~expected:(fun ~proc ~dot:_ ->
        Membership.is_active membership proc
        && not nodes.(proc).down)
      execution
  in
  let quarantine_leaks = count_quarantine_leaks execution in
  let history = Execution.to_history execution in
  let session_report = !session_finalize history in
  {
    execution;
    history;
    report;
    protocol_name = P.name;
    plan;
    membership;
    final_epoch = Membership.epoch membership;
    joins = !joins;
    rejoins = !rejoins;
    leaves = !leaves;
    catch_ups = List.rev !catch_ups;
    detector;
    heartbeats_sent = !heartbeats;
    suspicions = List.rev !suspicions;
    false_suspicions = !false_suspicions;
    refutations = !refutations;
    view_reasons = List.rev !reasons;
    transfer_bytes = !transfer_bytes;
    quarantine_leaks;
    sessions = session_report;
    active_at_end;
    final_states;
    live_equal;
    clean = Checker.is_clean report && quarantine_leaks = 0;
    commits = !commits;
    snapshot_bytes = !snapshot_bytes;
    rolled_back_events = !rolled_back;
    ops_skipped_inactive = !ops_skipped;
    sync_requests = !sync_requests;
    sync_replies = !sync_replies;
    replayed_writes = !replayed_writes;
    stale_deliveries_dropped = !stale_dropped;
    chan_stale_quarantined = Reliable_channel.stale_quarantined channel;
    net_stale_dropped = Network.messages_stale_dropped network;
    net_nonmember_dropped = Network.messages_nonmember_dropped network;
    net_oneway_dropped = Network.messages_oneway_dropped network;
    net_flap_dropped = Network.messages_flap_dropped network;
    net_delay_inflated = Network.messages_delay_inflated network;
    corrupt_dropped = Reliable_channel.corrupt_dropped channel;
    aborted_payloads = !aborted;
    payloads_sent = Reliable_channel.payloads_sent channel;
    frames_sent = Network.messages_sent network;
    retransmissions = Reliable_channel.retransmissions channel;
    duplicates_discarded = Reliable_channel.duplicates_discarded channel;
    engine_steps = Engine.steps_executed engine;
    end_time = nowf ();
  }

let catch_up_latency c =
  Option.map (fun t -> t -. c.started_at) c.converged_at

let pp_catch_up_kind ppf = function
  | Fresh_join -> Format.pp_print_string ppf "join"
  | Rejoin -> Format.pp_print_string ppf "rejoin"
  | Recover -> Format.pp_print_string ppf "recover"

let pp_catch_up ppf c =
  Format.fprintf ppf "p%d %a@%.1f transfer=%d(%dB) replayed=%d%s"
    (c.cproc + 1) pp_catch_up_kind c.ckind c.started_at c.transfer_writes
    c.transfer_bytes c.replayed
    (match catch_up_latency c with
    | Some l -> Printf.sprintf " converged=+%.1f" l
    | None -> " never converged")

let pp_suspicion ppf s =
  Format.fprintf ppf "p%d suspected by p%d@%.1f phi=%.2f %s%s"
    (s.speer + 1) (s.sobserver + 1) s.sat s.sphi
    (if s.strue then
       match s.slatency with
       | Some l -> Printf.sprintf "(down, detected +%.1f)" l
       | None -> "(down)"
     else "(false positive)")
    (match s.srefuted_at with
    | Some t -> Printf.sprintf " refuted@%.1f" t
    | None -> "")

let pp_view_reason ppf (epoch, at, why) =
  Format.fprintf ppf "epoch %d @%.1f: %s" epoch at why

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%s churn campaign: %d joins / %d rejoins / %d leaves over %d \
     epochs, %d transfer bytes, sync %d req / %d replies, %d replayed \
     writes, %d stale quarantined, %d stale-dropped, %d nonmember-dropped \
     frames, %d quarantine leaks; live_equal=%b clean=%b t_end=%.1f@,%a"
    o.protocol_name o.joins o.rejoins o.leaves o.final_epoch
    o.transfer_bytes o.sync_requests o.sync_replies o.replayed_writes
    o.chan_stale_quarantined o.net_stale_dropped o.net_nonmember_dropped
    o.quarantine_leaks o.live_equal o.clean o.end_time
    (Format.pp_print_list pp_catch_up)
    o.catch_ups;
  (match o.detector with
  | None -> ()
  | Some cfg ->
      if o.catch_ups <> [] then Format.fprintf ppf "@,";
      Format.fprintf ppf
        "fd: threshold=%.1f heartbeat=%.1f — %d heartbeats, %d \
         suspicions (%d false), %d refutations"
        cfg.Failure_detector.threshold
        cfg.Failure_detector.heartbeat_every o.heartbeats_sent
        (List.length o.suspicions)
        o.false_suspicions o.refutations;
      if o.suspicions <> [] then
        Format.fprintf ppf "@,%a"
          (Format.pp_print_list pp_suspicion)
          o.suspicions;
      if o.view_reasons <> [] then
        Format.fprintf ppf "@,%a"
          (Format.pp_print_list pp_view_reason)
          o.view_reasons);
  Format.fprintf ppf "@]"
