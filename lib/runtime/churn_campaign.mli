(** Dynamic-membership campaigns: node churn under a causal-consistency
    audit.

    Extends {!Fault_campaign}'s crash–recovery harness to a replica set
    that changes while the run is in flight, over a fixed {e universe}
    of slots (see {!Membership}):

    - {b join}: a fresh slot enters the view. All live protocol states
      {e grow} their clocks to cover the new slot first (the
      growth-before-traffic invariant of {!Dsm_core.Protocol.S.grow}),
      then a sponsor — the lowest-id active member — ships its whole
      durable write log as a bootstrap {e state transfer}, which the
      joiner replays through the normal receive path: [Write_co]
      merge-on-read semantics and Theorem 4's delay accounting are
      untouched because the joiner's applies are ordinary protocol
      receives. Writes that raced the view change are picked up by
      anti-entropy sync rounds and the final fixpoint.
    - {b graceful leave}: the slot stops issuing at its [Leave] event,
      {e flushes} — polls until every payload it originated has been
      acknowledged, so each of its writes is durable somewhere else —
      and then departs, retiring its slot for good.
    - {b crash-rejoin}: a [Join] of a crashed slot restores the durable
      snapshot under a {e fresh incarnation}
      ({!Dsm_sim.Network.bump_incarnation},
      {!Dsm_sim.Reliable_channel.bump_incarnation}): the previous
      life's in-flight and retransmitted frames are stale and must be
      quarantined, never applied. Group-wide sync rounds re-supply the
      rejoiner's own pre-crash writes that died on the wire.

    The audit is {!Checker.check} with the final membership view as the
    [?expected] completeness domain — every slot active at the end owes
    an apply of {e every} write, including writes issued before it
    joined — plus an independent {e ghost-dot} scan
    ({!outcome.quarantine_leaks}): a dot applied twice at one process,
    or observed under two different values, would mean stale or forged
    traffic leaked into [Apply]. *)

type 'msg wire =
  | Proto of 'msg
  | Sync_request of { vec : int array }
  | Sync_reply of { vec : int array; writes : 'msg list }
  | Transfer of { vec : int array; writes : 'msg list }
      (** delta state transfer: the sponsor's durable log cut at the
          joiner's Apply vector (a fresh joiner's zeros degenerate to
          the whole log) *)
  | Heartbeat of { sent : float }
      (** gossip liveness beacon ({!Failure_detector}); [sent] is the
          origination time, kept across retransmissions, so a
          refutation can prove the sender outlived the suspicion *)

type catch_up_kind = Fresh_join | Rejoin | Recover

type catch_up = {
  cproc : int;
  ckind : catch_up_kind;
  started_at : float;
  mutable transfer_writes : int;
  mutable transfer_gap : int;
      (** componentwise sponsor-minus-joiner Apply gap at transfer
          time; bounds [transfer_writes] (one single-write message per
          missing dot) *)
  mutable transfer_bytes : int;
  mutable replayed : int;
  mutable target : int array option;
  mutable converged_at : float option;
}
(** One slot's catch-up episode: a fresh join, a crash-rejoin, or a
    plain PR 2 recovery. [converged_at] is set once the slot's applied
    vector dominates every peer vector it has heard
    (join-to-converged latency = [converged_at - started_at]). *)

type suspicion = {
  speer : int;  (** who was suspected *)
  sobserver : int;  (** whose detector crossed the threshold *)
  sphi : float;
  sat : float;
  strue : bool;  (** the peer really was down at [sat] *)
  slatency : float option;
      (** crash-to-suspicion detection latency, when [strue] *)
  mutable srefuted_at : float option;
      (** set when a heartbeat sent after [sat] re-admitted the peer
          through the rejoin path *)
}
(** One accrual-detector verdict (emergent mode only). A refuted
    suspicion is the survivable false-positive path: the slot rejoins
    under a fresh incarnation exactly as a crash-rejoin would. *)

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  report : Checker.report;
  protocol_name : string;
  plan : Dsm_sim.Fault_plan.t;
  membership : Membership.t;  (** final view and full transition history *)
  final_epoch : int;
  joins : int;
  rejoins : int;
  leaves : int;
  catch_ups : catch_up list;  (** chronological *)
  detector : Failure_detector.config option;
      (** [Some _] iff the run was emergent (detector-driven) *)
  heartbeats_sent : int;  (** standalone [Heartbeat] frames originated *)
  suspicions : suspicion list;  (** chronological *)
  false_suspicions : int;
      (** suspicions of a slot that was in fact alive *)
  refutations : int;
      (** suspicions cancelled by a later heartbeat; each one re-admits
          the slot through the rejoin path *)
  view_reasons : (int * float * string) list;
      (** provenance: one [(epoch, at, why)] per membership transition,
          chronological — in emergent mode this is the detector's view
          history *)
  transfer_bytes : int;  (** total sponsor state-transfer volume *)
  quarantine_leaks : int;
      (** ghost dots: double applies or conflicting values — 0 on every
          healthy run *)
  sessions : Session_tier.report option;
      (** [Some _] iff the run drove a client-session tier
          ([?sessions]): per-session spans, migrations, and the
          re-attributed session-guarantee audit *)
  active_at_end : int list;
  final_states : Fault_campaign.replica_state list;
      (** active replicas, ascending id *)
  live_equal : bool;
  clean : bool;
      (** checker clean (membership-aware completeness, unconditional
          safety/legality) {e and} zero quarantine leaks *)
  commits : int;
  snapshot_bytes : int;
  rolled_back_events : int;
  ops_skipped_inactive : int;
      (** scheduled ops that found their slot down, flushing, or out of
          the view *)
  sync_requests : int;
  sync_replies : int;
  replayed_writes : int;
  stale_deliveries_dropped : int;
      (** echo drops at the driver: writes already covered on arrival *)
  chan_stale_quarantined : int;
      (** data frames from a superseded sender incarnation, acked but
          never delivered *)
  net_stale_dropped : int;
      (** envelopes addressed to a superseded destination incarnation *)
  net_nonmember_dropped : int;
      (** deliveries to slots outside the view (raced a leave, or
          never joined) *)
  net_oneway_dropped : int;
      (** transmissions lost to an asymmetric (one-way) link cut *)
  net_flap_dropped : int;
      (** transmissions lost to a flapping link's cut phase *)
  net_delay_inflated : int;
      (** transmissions delivered late under a delay-inflation spike *)
  corrupt_dropped : int;
  aborted_payloads : int;
  payloads_sent : int;
  frames_sent : int;
  retransmissions : int;
  duplicates_discarded : int;
  engine_steps : int;
  end_time : float;
}

val run :
  (module Dsm_core.Protocol.S with type t = 'pt and type msg = 'pm) ->
  spec:Dsm_workload.Spec.t ->
  latency:Dsm_sim.Latency.t ->
  ?faults:Dsm_sim.Network.faults ->
  plan:Dsm_sim.Fault_plan.t ->
  initial:int ->
  ?detector:Failure_detector.config ->
  ?mixed:bool ->
  ?sessions:Session_tier.config ->
  ?checkpoint_every:float ->
  ?sync_rounds:int ->
  ?sync_interval:float ->
  ?flush_poll:float ->
  ?settle:bool ->
  ?retransmit_after:float ->
  ?seed:int ->
  ?max_steps:int ->
  ?metrics:Dsm_obs.Metrics.t ->
  ?wire:Dsm_obs.Wire.t ->
  ?recorder:Dsm_obs.Timeseries.t ->
  ?scrape_every:float ->
  ?queue:Dsm_sim.Engine.queue_impl ->
  ?arena:bool ->
  ?batch:bool ->
  unit ->
  outcome
(** [run (module P) ~spec ~latency ~plan ~initial ()] — [spec.n] is the
    {e universe} (slot count; every slot gets an op stream, executed
    only while it is an active member), [initial] of which (slots
    [0..initial-1]) are members at time 0. The plan is validated
    against that membership; [Join]/[Leave] events drive the view.
    Corruption faults are armed automatically with
    {!Dsm_sim.Reliable_channel.corrupt_frame} as the mangle.

    Requires a complete-broadcast protocol (every write eventually
    applied everywhere, single-write messages): OptP, ANBKH or
    OptP-direct. Writing-semantics protocols cannot serve anti-entropy
    catch-up and fail loudly.

    [?detector] switches the campaign to {e emergent} mode: no
    [Join]/[Leave] event may appear in the plan (crashes and partitions
    are the only scripted inputs) and {e every} view change is produced
    by the failure-detection pipeline instead — active slots gossip
    [Heartbeat] frames every [heartbeat_every] (suppressed towards
    peers that recently received other traffic; every delivered frame
    counts as liveness evidence), each slot runs a {!Failure_detector},
    and the first observer whose [phi] crosses the threshold marks the
    peer [Down]. A heartbeat originated after the suspicion refutes it
    and re-admits the slot through the crash-rejoin path (incarnation
    bump, sponsor delta transfer, group sync) — false positives are
    survivable by construction.

    [?sessions] drives a {!Session_tier} of lightweight client sessions
    on top of the replica set: each session routes reads and writes to
    a home replica chosen by its placement policy, carries its session
    vector on every request (handoff-on-migration), retries rejected
    operations with capped backoff, and resolves lost write replies by
    at-most-once probing. The re-attributed session-guarantee audit
    lands in {!outcome.sessions}; replica-side checking ([report],
    Theorem 4 accounting) is unchanged — session operations are
    ordinary protocol writes/reads at their serving replica.

    [?mixed] (default [false]) lifts the emergent-mode restriction and
    lets a detector run {e alongside} scripted [Join]/[Leave] events —
    the adversarial composition the {!Nemesis} driver exercises. A
    scripted join re-arms the joiner's detector clocks on both sides
    (otherwise its t=0-seeded silence would be suspected on the next
    accrual tick) and a scripted leave that loses a race with a
    suspicion is skipped with a recorded view reason.
    @raise Invalid_argument if [initial < 2] or [initial > spec.n], or
    the plan is invalid for that universe, or [?detector] is combined
    with a plan containing [Join]/[Leave] events without [~mixed:true]. *)

val catch_up_latency : catch_up -> float option

val pp_catch_up : Format.formatter -> catch_up -> unit
val pp_suspicion : Format.formatter -> suspicion -> unit
val pp_view_reason : Format.formatter -> int * float * string -> unit
val pp_outcome : Format.formatter -> outcome -> unit
