module Dot = Dsm_vclock.Dot
module Sim_time = Dsm_sim.Sim_time
module Trace = Dsm_sim.Trace
module Operation = Dsm_memory.Operation

type kind =
  | Send of { dot : Dot.t; var : int; value : int }
  | Receipt of { dot : Dot.t; src : int }
  | Blocked of { dot : Dot.t; waiting_for : Dot.t }
  | Apply of { dot : Dot.t; var : int; value : int; delayed : bool }
  | Skip of { dot : Dot.t }
  | Return of {
      var : int;
      value : Operation.value;
      read_from : Dot.t option;
    }

type event = { proc : int; time : Sim_time.t; kind : kind }

type t = {
  n : int;
  m : int;
  trace : event Trace.t;
  per_proc : event Trace.t array;
}

let create ?capacity_limit ~n ~m () =
  if n <= 0 then invalid_arg "Execution.create: n must be positive";
  if m <= 0 then invalid_arg "Execution.create: m must be positive";
  {
    n;
    m;
    trace = Trace.create ?capacity_limit ();
    per_proc = Array.init n (fun _ -> Trace.create ?capacity_limit ());
  }

let dropped_events t = Trace.dropped t.trace

let n_processes t = t.n
let n_variables t = t.m

let record t ~proc ~time kind =
  if proc < 0 || proc >= t.n then
    invalid_arg "Execution.record: process id out of range";
  let e = { proc; time; kind } in
  Trace.record t.trace e;
  Trace.record t.per_proc.(proc) e

let events t = Trace.to_list t.trace

let events_of t proc =
  if proc < 0 || proc >= t.n then
    invalid_arg "Execution.events_of: process id out of range";
  Trace.to_list t.per_proc.(proc)

let event_count t = Trace.length t.trace

let apply_order t proc =
  if proc < 0 || proc >= t.n then
    invalid_arg "Execution.apply_order: process id out of range";
  Trace.fold
    (fun acc e ->
      match e.kind with Apply { dot; _ } -> dot :: acc | _ -> acc)
    [] t.per_proc.(proc)
  |> List.rev

let position t ~proc p =
  if proc < 0 || proc >= t.n then
    invalid_arg "Execution.position: process id out of range";
  Trace.find_index (fun e -> p e.kind) t.per_proc.(proc)

let apply_position t ~proc ~dot =
  position t ~proc (function
    | Apply { dot = d; _ } -> Dot.equal d dot
    | _ -> false)

let receipt_position t ~proc ~dot =
  position t ~proc (function
    | Receipt { dot = d; _ } -> Dot.equal d dot
    | _ -> false)

let skip_position t ~proc ~dot =
  position t ~proc (function
    | Skip { dot = d } -> Dot.equal d dot
    | _ -> false)

let time_at t ~proc pos =
  (Trace.get t.per_proc.(proc) pos).time

let apply_time t ~proc ~dot =
  Option.map (time_at t ~proc) (apply_position t ~proc ~dot)

let receipt_time t ~proc ~dot =
  Option.map (time_at t ~proc) (receipt_position t ~proc ~dot)

let delayed_applies t =
  Trace.fold
    (fun acc e ->
      match e.kind with
      | Apply { delayed = true; dot; _ } -> (e.proc, dot) :: acc
      | _ -> acc)
    [] t.trace
  |> List.rev

let delay_count t =
  Trace.count
    (fun e ->
      match e.kind with Apply { delayed = true; _ } -> true | _ -> false)
    t.trace

let delay_count_at t proc =
  if proc < 0 || proc >= t.n then
    invalid_arg "Execution.delay_count_at: process id out of range";
  Trace.count
    (fun e ->
      match e.kind with Apply { delayed = true; _ } -> true | _ -> false)
    t.per_proc.(proc)

let skip_count t =
  Trace.count (fun e -> match e.kind with Skip _ -> true | _ -> false) t.trace

let apply_count t =
  Trace.count (fun e -> match e.kind with Apply _ -> true | _ -> false) t.trace

let writes t =
  (* own-apply at the issuer is the canonical record of a write: every
     protocol applies its own writes immediately, even those that
     writing semantics later hides from other processes *)
  Trace.fold
    (fun acc e ->
      match e.kind with
      | Apply { dot; var; value; _ } when Dot.replica dot = e.proc ->
          (dot, var, value) :: acc
      | _ -> acc)
    [] t.trace
  |> List.sort (fun (a, _, _) (b, _, _) -> Dot.compare a b)

let to_history ?floor t =
  let base proc =
    match floor with
    | None -> 0
    | Some f -> Dsm_vclock.Vector_clock.get0 f proc
  in
  let locals =
    List.init t.n (fun proc ->
        let lh = Dsm_memory.Local_history.create ~base:(base proc) ~proc () in
        Trace.iter
          (fun e ->
            match e.kind with
            | Apply { dot; var; value; _ } when Dot.replica dot = proc ->
                (* dot passthrough keeps the occupancy generation on the
                   recorded write; the builder still enforces that own
                   applies arrive in sequence order from the base *)
                ignore
                  (Dsm_memory.Local_history.add_write ~dot lh ~var ~value)
            | Return { var; value; read_from } ->
                ignore
                  (Dsm_memory.Local_history.add_read lh ~var ~value
                     ~read_from)
            | Apply _ | Send _ | Receipt _ | Blocked _ | Skip _ -> ())
          t.per_proc.(proc);
        lh)
  in
  Dsm_memory.History.of_locals locals

let pp_kind_at proc ppf kind =
  let p = proc + 1 in
  match kind with
  | Send { dot; var; value } ->
      Format.fprintf ppf "send_%d(%a:x%d:=%d)" p Dot.pp dot (var + 1) value
  | Receipt { dot; _ } -> Format.fprintf ppf "receipt_%d(%a)" p Dot.pp dot
  | Blocked { dot; waiting_for } ->
      Format.fprintf ppf "blocked_%d(%a<-%a)" p Dot.pp dot Dot.pp waiting_for
  | Apply { dot; delayed; _ } ->
      Format.fprintf ppf "apply_%d(%a)%s" p Dot.pp dot
        (if delayed then "*" else "")
  | Skip { dot } -> Format.fprintf ppf "skip_%d(%a)" p Dot.pp dot
  | Return { var; value; _ } ->
      Format.fprintf ppf "return_%d(x%d, %a)" p (var + 1)
        Operation.pp_value value

let pp_event ppf e =
  Format.fprintf ppf "[%a] %a" Sim_time.pp e.time (pp_kind_at e.proc) e.kind

let pp_process t proc ppf () =
  let evs = events_of t proc in
  Format.fprintf ppf "@[<hov 2>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf " <%d@ " (proc + 1);
      pp_kind_at proc ppf e.kind)
    evs;
  Format.fprintf ppf "@]"

let apply_latencies t =
  (* single pass per process: receipts stamp a table, applies consume it *)
  let out = ref [] in
  for proc = 0 to t.n - 1 do
    let receipt_at = Hashtbl.create 64 in
    Trace.iter
      (fun e ->
        match e.kind with
        | Receipt { dot; _ } -> Hashtbl.replace receipt_at dot e.time
        | Apply { dot; _ } -> (
            match Hashtbl.find_opt receipt_at dot with
            | Some r -> out := Sim_time.diff e.time r :: !out
            | None -> () (* own write: no receipt *))
        | Send _ | Blocked _ | Skip _ | Return _ -> ())
      t.per_proc.(proc)
  done;
  List.rev !out

let blocked_events t =
  Trace.fold
    (fun acc e ->
      match e.kind with
      | Blocked { dot; waiting_for } ->
          (e.proc, dot, waiting_for, e.time) :: acc
      | _ -> acc)
    [] t.trace
  |> List.rev

let blocked_count t =
  Trace.count
    (fun e -> match e.kind with Blocked _ -> true | _ -> false)
    t.trace
