(** Recorded protocol runs.

    An execution is the sequence [E_i] of events at each process,
    §3.2's vocabulary: [send], [receipt], [apply], [return] — plus
    [skip] for writing-semantics protocols. Drivers record events as
    the simulation progresses; the {!Checker} and the experiment
    reports read them afterwards.

    Event order within a process is the paper's [<_i]; it is the
    recording order, which the engine guarantees is timestamp-ordered. *)

type kind =
  | Send of { dot : Dsm_vclock.Dot.t; var : int; value : int }
      (** start of propagation of a write (once per write; a token
          batch yields one [Send] per item at flush time) *)
  | Receipt of { dot : Dsm_vclock.Dot.t; src : int }
  | Blocked of { dot : Dsm_vclock.Dot.t; waiting_for : Dsm_vclock.Dot.t }
      (** the write entered the delivery buffer; [waiting_for] is the
          wakeup constraint — the causal predecessor whose apply the
          protocol is waiting on (delay provenance, Definition 3) *)
  | Apply of {
      dot : Dsm_vclock.Dot.t;
      var : int;
      value : int;
      delayed : bool;  (** applied from the buffer — suffered a delay *)
    }
  | Skip of { dot : Dsm_vclock.Dot.t }
      (** the write was logically overwritten here, never applied *)
  | Return of {
      var : int;
      value : Dsm_memory.Operation.value;
      read_from : Dsm_vclock.Dot.t option;
    }

type event = { proc : int; time : Dsm_sim.Sim_time.t; kind : kind }

type t

val create : ?capacity_limit:int -> n:int -> m:int -> unit -> t
(** [capacity_limit] bounds the underlying {!Dsm_sim.Trace}s as rings
    (live monitoring of long campaigns); leave it unset for checkable
    runs — the checker and span reconstruction need the full log. *)

val n_processes : t -> int
val n_variables : t -> int

val dropped_events : t -> int
(** Events evicted from the global trace by the ring (0 unbounded). *)

val record : t -> proc:int -> time:Dsm_sim.Sim_time.t -> kind -> unit
(** @raise Invalid_argument on bad process id. *)

val events : t -> event list
(** Global recording order (timestamp order). *)

val events_of : t -> int -> event list
(** The sequence [E_i] of one process. *)

val event_count : t -> int

(** {1 Queries used by the checker and reports} *)

val apply_order : t -> int -> Dsm_vclock.Dot.t list
(** Dots applied at a process, in apply order. *)

val position :
  t -> proc:int -> (kind -> bool) -> int option
(** Index (within [events_of proc]) of the first matching event. *)

val apply_position : t -> proc:int -> dot:Dsm_vclock.Dot.t -> int option
val receipt_position : t -> proc:int -> dot:Dsm_vclock.Dot.t -> int option
val skip_position : t -> proc:int -> dot:Dsm_vclock.Dot.t -> int option

val apply_time : t -> proc:int -> dot:Dsm_vclock.Dot.t -> Dsm_sim.Sim_time.t option
val receipt_time : t -> proc:int -> dot:Dsm_vclock.Dot.t -> Dsm_sim.Sim_time.t option

val delayed_applies : t -> (int * Dsm_vclock.Dot.t) list
(** All [(proc, dot)] whose apply was delayed. *)

val delay_count : t -> int
val delay_count_at : t -> int -> int

val blocked_events :
  t -> (int * Dsm_vclock.Dot.t * Dsm_vclock.Dot.t * Dsm_sim.Sim_time.t) list
(** All [(proc, dot, waiting_for, time)] buffering records, in global
    recording order — the raw material of delay provenance. *)

val blocked_count : t -> int
val skip_count : t -> int
val apply_count : t -> int

val writes : t -> (Dsm_vclock.Dot.t * int * int) list
(** All writes issued in the run, as [(dot, var, value)], from the local
    applies at their issuers; deterministic order (issuer, then seq). *)

val to_history :
  ?floor:Dsm_vclock.Vector_clock.t -> t -> Dsm_memory.History.t
(** Reconstructs the abstract history [Ĥ]: per process, its writes (the
    applies at the issuer) and reads (the returns) in process order.
    @raise Invalid_argument if a process's own-write applies are not in
    dot-sequence order (would indicate a broken driver). *)

val pp_event : Format.formatter -> event -> unit
val pp_process : t -> int -> Format.formatter -> unit -> unit
(** One process's event sequence in the style of the paper's Figures
    1–2: [receipt_3(w2(x2)b) <3 apply_3(...) <3 ...]. *)

val apply_latencies : t -> float list
(** Receipt→apply latency of every remote apply that has a matching
    receipt, in time units; immediate applies contribute 0. Single pass. *)
