module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock
module Latency = Dsm_sim.Latency
module Spec = Dsm_workload.Spec
module Table_fmt = Dsm_stats.Table_fmt
module Series = Dsm_stats.Series
module Summary = Dsm_stats.Summary
module History = Dsm_memory.History
module Causal_order = Dsm_memory.Causal_order
module Enabling = Dsm_memory.Enabling
module PS = Paper_scenarios

let optp = (module Dsm_core.Opt_p : Dsm_core.Protocol.S)
let anbkh = (module Dsm_core.Anbkh : Dsm_core.Protocol.S)
let ws_recv = (module Dsm_core.Ws_receiver : Dsm_core.Protocol.S)
let optp_ws = (module Dsm_core.Opt_p_ws : Dsm_core.Protocol.S)
let ws_token = (module Dsm_core.Ws_token : Dsm_core.Protocol.S)

let class_p_protocols = [ optp; anbkh ]
let all_protocols = [ optp; anbkh; ws_recv; optp_ws; ws_token ]

let name_of (module P : Dsm_core.Protocol.S) = P.name

(* ------------------------------------------------------------------ *)
(* Send-event vector timestamps recomputed from the message pattern    *)
(* ------------------------------------------------------------------ *)

let send_vectors exec =
  let n = Execution.n_processes exec in
  let clocks = Array.init n (fun _ -> V.create n) in
  let stamped = ref Dot.Map.empty in
  List.iter
    (fun (e : Execution.event) ->
      match e.kind with
      | Execution.Send { dot; _ } ->
          V.tick clocks.(e.proc) e.proc;
          stamped := Dot.Map.add dot (V.copy clocks.(e.proc)) !stamped
      | Execution.Receipt { dot; _ } -> (
          match Dot.Map.find_opt dot !stamped with
          | Some v -> V.merge_into clocks.(e.proc) v
          | None -> () (* receipt without recorded send: driver bug *))
      | Execution.Apply _ | Execution.Blocked _ | Execution.Skip _
      | Execution.Return _ -> ())
    (Execution.events exec);
  !stamped

(* ------------------------------------------------------------------ *)
(* Paper tables                                                        *)
(* ------------------------------------------------------------------ *)

let enabling_table ~title ~history ~set_of =
  let co = Causal_order.compute history in
  let table =
    Table_fmt.create ~title ~header:[ "event e"; "enabling set X(e)" ] ()
  in
  List.iter
    (fun (ev : Enabling.apply_event) ->
      Table_fmt.add_row table
        [
          Format.asprintf "%a" (Enabling.pp_apply_event ~history) ev;
          Format.asprintf "%a"
            (Enabling.pp_set ~history ~at_proc:ev.at_proc)
            (set_of co ev);
        ])
    (Enabling.all_apply_events co);
  table

let table1 () =
  enabling_table
    ~title:
      "Table 1: X_co-safe(e) of each apply event of H1 (paper Table 1)"
    ~history:PS.h1_reference
    ~set_of:(fun co ev -> Enabling.co_safe co ev)

let table2 () =
  let outcome = PS.run anbkh PS.figure3 in
  let vectors = send_vectors outcome.execution in
  let send_vt dot =
    match Dot.Map.find_opt dot vectors with
    | Some v -> v
    | None -> invalid_arg "table2: write without send timestamp"
  in
  let writes =
    List.map
      (fun (w : Dsm_memory.Operation.write) -> w.wdot)
      (History.writes outcome.history)
  in
  enabling_table
    ~title:
      "Table 2: X_ANBKH(e) for the run of Figure 3 (paper Table 2)"
    ~history:outcome.history
    ~set_of:(fun _co ev -> Enabling.anbkh ~send_vt ~writes ev)

(* ------------------------------------------------------------------ *)
(* Paper figures                                                       *)
(* ------------------------------------------------------------------ *)

let sequences_of outcome procs =
  let buf = Buffer.create 256 in
  List.iter
    (fun proc ->
      Buffer.add_string buf
        (Format.asprintf "  p%d: %a@." (proc + 1)
           (Execution.pp_process outcome.Scripted_run.execution proc)
           ()))
    procs;
  Buffer.contents buf

let delay_line outcome =
  let report = Checker.check outcome.Scripted_run.execution in
  Printf.sprintf
    "  delays: %d (necessary %d, unnecessary %d); checker: %s\n"
    report.Checker.total_delays report.Checker.necessary_delays
    report.Checker.unnecessary_delays
    (if Checker.is_clean report then "clean" else "VIOLATIONS")

let figure1 () =
  let buf = Buffer.create 512 in
  List.iter
    (fun scenario ->
      let outcome = PS.run optp scenario in
      Buffer.add_string buf (scenario.PS.label ^ "\n");
      Buffer.add_string buf (sequences_of outcome [ 2 ]);
      Buffer.add_string buf (delay_line outcome))
    [ PS.figure1_run1; PS.figure1_run2 ];
  Buffer.contents buf

let figure2 () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (PS.figure2.PS.label ^ "\n");
  List.iter
    (fun ((module P : Dsm_core.Protocol.S) as p) ->
      let outcome = PS.run p PS.figure2 in
      Buffer.add_string buf (Printf.sprintf "under %s:\n" P.name);
      Buffer.add_string buf (sequences_of outcome [ 2 ]);
      Buffer.add_string buf (delay_line outcome))
    [ anbkh; optp ];
  Buffer.contents buf

let figure3 () =
  let outcome = PS.run anbkh PS.figure3 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (PS.figure3.PS.label ^ "\n");
  Buffer.add_string buf (sequences_of outcome [ 0; 1; 2 ]);
  Buffer.add_string buf
    (Timeline.render ~width:64 outcome.Scripted_run.execution);
  Buffer.add_string buf (delay_line outcome);
  Buffer.contents buf

let figure6 () =
  let outcome = PS.run optp PS.figure6 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (PS.figure6.PS.label ^ "\n");
  Buffer.add_string buf (sequences_of outcome [ 0; 1; 2 ]);
  Buffer.add_string buf
    (Timeline.render ~width:64 outcome.Scripted_run.execution);
  let wv = Dsm_memory.Write_vectors.compute outcome.history in
  List.iter
    (fun (w : Dsm_memory.Operation.write) ->
      Buffer.add_string buf
        (Format.asprintf "  %a.Write_co = %a@." Dsm_memory.Operation.pp
           (Dsm_memory.Operation.Write w) V.pp
           (Dsm_memory.Write_vectors.of_write wv w.wdot)))
    (History.writes outcome.history);
  Buffer.add_string buf (delay_line outcome);
  Buffer.contents buf

let figure7 () =
  let co = Causal_order.compute PS.h1_reference in
  let graph = Dsm_memory.Causality_graph.compute co in
  Format.asprintf
    "Figure 7: write causality graph of H1@.%a@.@.%s"
    Dsm_memory.Causality_graph.pp graph
    (Dsm_memory.Causality_graph.to_graphviz graph)

(* ------------------------------------------------------------------ *)
(* Quantitative experiments                                            *)
(* ------------------------------------------------------------------ *)

type run_metrics = {
  protocol : string;
  delays : int;
  necessary : int;
  unnecessary : int;
  applies : int;
  skips : int;
  messages : int;
  buffer_high : int;
  mean_apply_latency : float;
  clean : bool;
}

let measure ((module P : Dsm_core.Protocol.S) as p) ~spec ~latency ?(seed = 1)
    () =
  let outcome = Sim_run.run p ~spec ~latency ~seed () in
  let report = Checker.check outcome.execution in
  if not (Checker.is_clean report) then
    failwith
      (Format.asprintf "experiment run of %s is not clean:@ %a" P.name
         Checker.pp_report report);
  let latencies = Execution.apply_latencies outcome.execution in
  {
    protocol = P.name;
    delays = report.Checker.total_delays;
    necessary = report.Checker.necessary_delays;
    unnecessary = report.Checker.unnecessary_delays;
    applies = report.Checker.total_applies;
    skips = report.Checker.skipped;
    messages = outcome.messages_sent;
    buffer_high =
      Array.fold_left max 0 outcome.buffer_high_watermarks;
    mean_apply_latency =
      (match latencies with
      | [] -> 0.
      | l -> Summary.mean (Summary.of_list l));
    clean = true;
  }

(* default network for the sweeps: log-normal with mean 10 time units —
   enough variance that message overtaking is routine *)
let lognormal_mean10 sigma =
  Latency.Lognormal { mu = log 10. -. (sigma *. sigma /. 2.); sigma }

let default_latency = lognormal_mean10 1.0

let per_100_applies metrics count =
  if metrics.applies = 0 then 0.
  else 100. *. float_of_int count /. float_of_int metrics.applies

let q1_sweep_processes ?(ns = [ 2; 4; 6; 8; 12 ]) ?(seeds = [ 1; 2; 3 ])
    ?(ops = 120) () =
  let series = Series.create ~x_label:"processes" () in
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let spec =
            Spec.make ~n ~m:8 ~ops_per_process:ops ~write_ratio:0.5
              ~think:(Latency.Exponential { mean = 5. })
              ~seed ()
          in
          List.iter
            (fun p ->
              let r = measure p ~spec ~latency:default_latency ~seed () in
              Series.add_point series ~series:r.protocol ~x:(float_of_int n)
                ~y:(per_100_applies r r.delays))
            all_protocols)
        seeds)
    ns;
  Series.to_table
    ~title:
      "Q1: write delays per 100 applies vs number of processes \
       (lognormal latency, sigma=1)"
    series

let q2_sweep_latency_variance ?(sigmas = [ 0.0; 0.5; 1.0; 1.5; 2.0 ])
    ?(seeds = [ 1; 2; 3 ]) ?(ops = 150) () =
  let series = Series.create ~x_label:"sigma" () in
  List.iter
    (fun sigma ->
      List.iter
        (fun seed ->
          let spec =
            Spec.make ~n:6 ~m:8 ~ops_per_process:ops ~write_ratio:0.5
              ~think:(Latency.Exponential { mean = 5. })
              ~seed ()
          in
          List.iter
            (fun p ->
              let r =
                measure p ~spec ~latency:(lognormal_mean10 sigma) ~seed ()
              in
              Series.add_point series ~series:r.protocol ~x:sigma
                ~y:(per_100_applies r r.unnecessary))
            class_p_protocols)
        seeds)
    sigmas;
  Series.to_table
    ~title:
      "Q2: unnecessary delays (false causality) per 100 applies vs \
       latency variance (OptP must be identically 0 - Theorem 4)"
    series

let q3_sweep_write_ratio ?(ratios = [ 0.1; 0.3; 0.5; 0.7; 0.9 ])
    ?(seeds = [ 1; 2; 3 ]) ?(ops = 150) () =
  let series = Series.create ~x_label:"write ratio" () in
  List.iter
    (fun ratio ->
      List.iter
        (fun seed ->
          let spec =
            Spec.make ~n:6 ~m:8 ~ops_per_process:ops ~write_ratio:ratio
              ~think:(Latency.Exponential { mean = 5. })
              ~seed ()
          in
          List.iter
            (fun p ->
              let r = measure p ~spec ~latency:default_latency ~seed () in
              Series.add_point series ~series:r.protocol ~x:ratio
                ~y:(per_100_applies r r.delays))
            all_protocols)
        seeds)
    ratios;
  Series.to_table
    ~title:"Q3: write delays per 100 applies vs write ratio" series

let q4_buffer_occupancy ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(ops = 150) () =
  let table =
    Table_fmt.create
      ~title:
        "Q4: buffered messages under a hot-spot workload (Zipf s=1.2, \
         n=6)"
      ~header:
        [ "protocol"; "peak buffer (max proc)"; "lifetime buffered"; "msgs" ]
      ()
  in
  Table_fmt.set_align table
    [ Table_fmt.Left; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right ];
  List.iter
    (fun ((module P : Dsm_core.Protocol.S) as p) ->
      let peaks, totals, msgs =
        List.fold_left
          (fun (peaks, totals, msgs) seed ->
            let spec =
              Spec.make ~n:6 ~m:8 ~ops_per_process:ops ~write_ratio:0.6
                ~var_dist:(Spec.Zipf_vars 1.2)
                ~think:(Latency.Exponential { mean = 5. })
                ~seed ()
            in
            let outcome =
              Sim_run.run p ~spec ~latency:default_latency ~seed ()
            in
            ( float_of_int
                (Array.fold_left max 0 outcome.buffer_high_watermarks)
              :: peaks,
              float_of_int (Array.fold_left ( + ) 0 outcome.total_buffered)
              :: totals,
              float_of_int outcome.messages_sent :: msgs ))
          ([], [], []) seeds
      in
      let s l = Format.asprintf "%a" Summary.pp_brief (Summary.of_list l) in
      Table_fmt.add_row table [ P.name; s peaks; s totals; s msgs ])
    all_protocols;
  table

let q5_apply_latency ?(seeds = [ 1; 2; 3 ]) ?(ops = 150) () =
  let table =
    Table_fmt.create
      ~title:
        "Q5: receipt-to-apply latency (time units; n=6, lognormal \
         sigma=1)"
      ~header:[ "protocol"; "mean"; "p95"; "max" ]
      ()
  in
  Table_fmt.set_align table
    [ Table_fmt.Left; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right ];
  List.iter
    (fun ((module P : Dsm_core.Protocol.S) as p) ->
      let latencies =
        List.concat_map
          (fun seed ->
            let spec =
              Spec.make ~n:6 ~m:8 ~ops_per_process:ops ~write_ratio:0.5
                ~think:(Latency.Exponential { mean = 5. })
                ~seed ()
            in
            let outcome =
              Sim_run.run p ~spec ~latency:default_latency ~seed ()
            in
            Execution.apply_latencies outcome.execution)
          seeds
      in
      let s = Summary.of_list latencies in
      Table_fmt.add_row table
        [
          P.name;
          Table_fmt.cell_float ~digits:3 (Summary.mean s);
          Table_fmt.cell_float ~digits:3 (Summary.percentile s 95.);
          Table_fmt.cell_float ~digits:3 (Summary.max s);
        ])
    all_protocols;
  table

let q6_ws_skips ?(seeds = [ 1; 2; 3 ]) ?(ops = 150) () =
  let dists =
    [
      ("uniform", Spec.Uniform_vars);
      ("zipf s=0.8", Spec.Zipf_vars 0.8);
      ("zipf s=1.5", Spec.Zipf_vars 1.5);
      ("single variable", Spec.Single_var);
    ]
  in
  let ws_protocols = [ ws_recv; optp_ws; ws_token ] in
  let table =
    Table_fmt.create
      ~title:
        "Q6: writes skipped by writing-semantics protocols vs variable \
         locality (writes never applied at some process)"
      ~header:
        ("variable distribution"
        :: List.map name_of ws_protocols)
      ()
  in
  List.iter
    (fun (label, var_dist) ->
      let row =
        List.map
          (fun p ->
            let skips =
              List.map
                (fun seed ->
                  let spec =
                    Spec.make ~n:6 ~m:8 ~ops_per_process:ops
                      ~write_ratio:0.7 ~var_dist
                      ~think:(Latency.Exponential { mean = 5. })
                      ~seed ()
                  in
                  let outcome =
                    Sim_run.run p ~spec ~latency:default_latency ~seed ()
                  in
                  float_of_int outcome.skipped_writes)
                seeds
            in
            Format.asprintf "%a" Summary.pp_brief (Summary.of_list skips))
          ws_protocols
      in
      Table_fmt.add_row table (label :: row))
    dists;
  table

let q7_fifo_ablation ?(seeds = [ 1; 2; 3 ]) ?(ops = 150) () =
  let table =
    Table_fmt.create
      ~title:
        "Q7 (ablation): write delays per 100 applies, reordering \
         channels vs per-channel FIFO (n=6, lognormal sigma=1)"
      ~header:[ "protocol"; "reordering"; "FIFO" ]
      ()
  in
  Table_fmt.set_align table
    [ Table_fmt.Left; Table_fmt.Right; Table_fmt.Right ];
  List.iter
    (fun ((module P : Dsm_core.Protocol.S) as p) ->
      let cell fifo =
        let samples =
          List.map
            (fun seed ->
              let spec =
                Spec.make ~n:6 ~m:8 ~ops_per_process:ops ~write_ratio:0.5
                  ~think:(Latency.Exponential { mean = 5. })
                  ~seed ()
              in
              let outcome =
                Sim_run.run p ~spec ~latency:default_latency ~fifo ~seed ()
              in
              let report = Checker.check outcome.execution in
              if not (Checker.is_clean report) then
                failwith ("q7: unclean run of " ^ P.name);
              if report.Checker.total_applies = 0 then 0.
              else
                100.
                *. float_of_int report.Checker.total_delays
                /. float_of_int report.Checker.total_applies)
            seeds
        in
        Format.asprintf "%a" Summary.pp_brief (Summary.of_list samples)
      in
      Table_fmt.add_row table [ P.name; cell false; cell true ])
    all_protocols;
  table

let q8_lossy_links ?(drops = [ 0.0; 0.1; 0.2; 0.4 ]) ?(seeds = [ 1; 2; 3 ])
    ?(ops = 100) () =
  let table =
    Table_fmt.create
      ~title:
        "Q8: OptP over lossy links with the reliable-channel substrate \
         (duplicate prob = drop/2; n=5)"
      ~header:
        [
          "drop prob";
          "frames/payload";
          "retransmissions";
          "t_end (vs lossless)";
          "delays/100 applies";
        ]
      ()
  in
  Table_fmt.set_align table
    [ Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
      Table_fmt.Right ];
  let baseline_end = ref 1. in
  List.iter
    (fun drop ->
      let amp = ref [] and retrans = ref [] and ends = ref [] in
      let delays = ref [] in
      List.iter
        (fun seed ->
          let spec =
            Spec.make ~n:5 ~m:6 ~ops_per_process:ops ~write_ratio:0.5
              ~think:(Latency.Exponential { mean = 5. })
              ~seed ()
          in
          let o =
            Reliable_run.run optp ~spec ~latency:default_latency
              ~faults:{ Dsm_sim.Network.drop; duplicate = drop /. 2.; corrupt = 0. }
              ~retransmit_after:80. ~seed ()
          in
          let report = Checker.check o.Reliable_run.execution in
          if not (Checker.is_clean report) then
            failwith "q8: unclean run over reliable channels";
          amp :=
            (float_of_int o.Reliable_run.frames_sent
            /. float_of_int (max 1 o.Reliable_run.payloads_sent))
            :: !amp;
          retrans := float_of_int o.Reliable_run.retransmissions :: !retrans;
          ends := o.Reliable_run.end_time :: !ends;
          delays :=
            (if report.Checker.total_applies = 0 then 0.
             else
               100.
               *. float_of_int report.Checker.total_delays
               /. float_of_int report.Checker.total_applies)
            :: !delays)
        seeds;
      let mean l = Summary.mean (Summary.of_list l) in
      if drop = 0. then baseline_end := mean !ends;
      Table_fmt.add_row table
        [
          Printf.sprintf "%g" drop;
          Printf.sprintf "%.2f" (mean !amp);
          Printf.sprintf "%.0f" (mean !retrans);
          Printf.sprintf "%.2fx" (mean !ends /. !baseline_end);
          Printf.sprintf "%.1f" (mean !delays);
        ])
    drops;
  table

(* final last-writer per variable at each process, from the trace *)
let final_stores exec =
  let n = Execution.n_processes exec in
  let m = Execution.n_variables exec in
  let stores = Array.init n (fun _ -> Array.make m None) in
  List.iter
    (fun (e : Execution.event) ->
      match e.kind with
      | Execution.Apply { dot; var; _ } -> stores.(e.proc).(var) <- Some dot
      | _ -> ())
    (Execution.events exec);
  stores

let divergent_fraction exec =
  let stores = final_stores exec in
  let n = Array.length stores in
  let m = if n = 0 then 0 else Array.length stores.(0) in
  if m = 0 then 0.
  else begin
    let divergent = ref 0 in
    for var = 0 to m - 1 do
      let distinct =
        List.sort_uniq compare
          (List.map (fun p -> stores.(p).(var)) (List.init n Fun.id))
      in
      if List.length distinct > 1 then incr divergent
    done;
    float_of_int !divergent /. float_of_int m
  end

let q9_divergence ?(ratios = [ 0.2; 0.5; 0.8 ]) ?(seeds = [ 1; 2; 3; 4; 5 ])
    ?(ops = 150) () =
  let series = Series.create ~x_label:"write ratio" () in
  List.iter
    (fun ratio ->
      List.iter
        (fun seed ->
          let spec =
            Spec.make ~n:6 ~m:8 ~ops_per_process:ops ~write_ratio:ratio
              ~think:(Latency.Exponential { mean = 5. })
              ~seed ()
          in
          List.iter
            (fun ((module P : Dsm_core.Protocol.S) as p) ->
              let o = Sim_run.run p ~spec ~latency:default_latency ~seed () in
              Series.add_point series ~series:P.name ~x:ratio
                ~y:(100. *. divergent_fraction o.Sim_run.execution))
            all_protocols)
        seeds)
    ratios;
  Series.to_table
    ~title:
      "Q9: % of variables with divergent final replicas vs write ratio \
       (causal consistency permits permanent divergence on concurrent \
       writes; even the token protocol diverges at senders, which apply \
       their own writes ahead of their round position)"
    series

(* average immediate-predecessor count per write, from the ground-truth
   vectors (protocol-independent; equals the causality graph's mean
   in-degree) *)
let mean_dependency_count history =
  let wv = Dsm_memory.Write_vectors.compute history in
  let writes = History.writes history in
  let n = History.n_processes history in
  let dep_count (w : Dsm_memory.Operation.write) =
    let vec = Dsm_memory.Write_vectors.of_write wv w.wdot in
    let candidates =
      List.filter_map
        (fun p ->
          let seq =
            if p = Dot.replica w.wdot then V.get vec p - 1 else V.get vec p
          in
          if seq > 0 then Some (Dot.make ~replica:p ~seq) else None)
        (List.init n Fun.id)
    in
    List.length
      (List.filter
         (fun d ->
           not
             (List.exists
                (fun d' ->
                  (not (Dot.equal d d'))
                  && Dot.seq d
                     <= V.get
                          (Dsm_memory.Write_vectors.of_write wv d')
                          (Dot.replica d))
                candidates))
         candidates)
  in
  match writes with
  | [] -> 0.
  | _ ->
      float_of_int (List.fold_left (fun acc w -> acc + dep_count w) 0 writes)
      /. float_of_int (List.length writes)

let q10_metadata_size ?(ns = [ 3; 6; 9; 12 ]) ?(seeds = [ 1; 2; 3 ])
    ?(ops = 80) () =
  let table =
    Table_fmt.create
      ~title:
        "Q10: wire metadata per write message - full vector (OptP) vs \
         direct dependencies (OptP-direct); identical delay behaviour"
      ~header:
        [ "processes"; "vector entries"; "mean deps/message"; "saving" ]
      ()
  in
  Table_fmt.set_align table
    [ Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right ];
  List.iter
    (fun n ->
      let means =
        List.map
          (fun seed ->
            let spec =
              Spec.make ~n ~m:8 ~ops_per_process:ops ~write_ratio:0.5
                ~think:(Latency.Exponential { mean = 5. })
                ~seed ()
            in
            let o =
              Sim_run.run
                (module Dsm_core.Opt_p_direct)
                ~spec ~latency:default_latency ~seed ()
            in
            let report = Checker.check o.Sim_run.execution in
            if not (Checker.is_clean report) then
              failwith "q10: unclean OptP-direct run";
            mean_dependency_count o.Sim_run.history)
          seeds
      in
      let mean = Summary.mean (Summary.of_list means) in
      Table_fmt.add_row table
        [
          string_of_int n;
          string_of_int n;
          Printf.sprintf "%.2f" mean;
          Printf.sprintf "%.1fx" (float_of_int n /. Float.max mean 1e-9);
        ])
    ns;
  table

let q5_histogram ?(seed = 1) ?(ops = 200) () =
  let spec =
    Spec.make ~n:6 ~m:8 ~ops_per_process:ops ~write_ratio:0.5
      ~think:(Latency.Exponential { mean = 5. })
      ~seed ()
  in
  let latencies p =
    let o = Sim_run.run p ~spec ~latency:default_latency ~seed () in
    Execution.apply_latencies o.Sim_run.execution
  in
  let optp_lat = latencies optp in
  let anbkh_lat = latencies anbkh in
  (* a shared range so the two panels are comparable *)
  let hi =
    List.fold_left Float.max 1. (optp_lat @ anbkh_lat) *. (1. +. 1e-9)
  in
  let render label samples =
    let h = Dsm_stats.Histogram.create ~lo:0. ~hi ~bins:12 in
    Dsm_stats.Histogram.add_all h samples;
    Printf.sprintf "%s (n=%d):\n%s" label (List.length samples)
      (Dsm_stats.Histogram.render ~width:40 h)
  in
  render "OptP receipt->apply latency" optp_lat
  ^ "\n"
  ^ render "ANBKH receipt->apply latency" anbkh_lat

let q11_partial_replication ?(degrees = [ 6; 4; 3; 2 ]) ?(seeds = [ 1; 2; 3 ])
    ?(ops = 100) () =
  let n = 6 and m = 12 in
  let table =
    Table_fmt.create
      ~title:
        "Q11: partial replication (matrix-clock OptP, n=6, m=12) - wire \
         and delay cost vs copies per location"
      ~header:
        [
          "degree";
          "messages";
          "delays/100 applies";
          "peak buffer";
          "audit";
        ]
      ()
  in
  Table_fmt.set_align table
    [ Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
      Table_fmt.Left ];
  List.iter
    (fun degree ->
      let msgs = ref [] and delays = ref [] and peaks = ref [] in
      let all_clean = ref true in
      List.iter
        (fun seed ->
          let repl = Dsm_core.Replication.ring ~n ~m ~degree in
          let spec =
            Spec.make ~n ~m ~ops_per_process:ops ~write_ratio:0.5
              ~think:(Latency.Exponential { mean = 5. })
              ~seed ()
          in
          let o =
            Partial_run.run ~replication:repl ~spec
              ~latency:default_latency ~seed ()
          in
          let r = Partial_run.check o in
          if not (Checker.is_clean r) then all_clean := false;
          msgs := float_of_int o.Partial_run.messages_sent :: !msgs;
          delays :=
            (if r.Checker.total_applies = 0 then 0.
             else
               100.
               *. float_of_int r.Checker.total_delays
               /. float_of_int r.Checker.total_applies)
            :: !delays;
          peaks :=
            float_of_int
              (Array.fold_left max 0 o.Partial_run.buffer_high_watermarks)
            :: !peaks)
        seeds;
      let mean l = Summary.mean (Summary.of_list l) in
      Table_fmt.add_row table
        [
          (if degree = n then Printf.sprintf "%d (full)" degree
           else string_of_int degree);
          Printf.sprintf "%.0f" (mean !msgs);
          Printf.sprintf "%.1f" (mean !delays);
          Printf.sprintf "%.1f" (mean !peaks);
          (if !all_clean then "clean" else "VIOLATIONS");
        ])
    degrees;
  table

(* ------------------------------------------------------------------ *)
(* Q12: crash-recovery fault campaigns                                 *)
(* ------------------------------------------------------------------ *)

module Fault_plan = Dsm_sim.Fault_plan

let plan_time f = Dsm_sim.Sim_time.of_float f

(* the acceptance schedule: 8 replicas, a 500-time-unit partition, two
   crashes in its shadow, heal, recover, quiesce *)
let acceptance_plan =
  Fault_plan.make
    [
      Fault_plan.Cut
        { groups = [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ]; at = plan_time 300. };
      Fault_plan.Crash { proc = 2; at = plan_time 400. };
      Fault_plan.Crash { proc = 5; at = plan_time 500. };
      Fault_plan.Heal { at = plan_time 800. };
      Fault_plan.Recover { proc = 2; at = plan_time 1000. };
      Fault_plan.Recover { proc = 5; at = plan_time 1100. };
    ]

let acceptance_spec ops =
  Spec.make ~n:8 ~m:4 ~ops_per_process:ops ~write_ratio:0.4
    ~think:(Latency.Exponential { mean = 20. })
    ~seed:2026 ()

let run_campaign (Dsm_core.Protocol.Packed (module P)) ~spec ~plan ~seed =
  Fault_campaign.run
    (module P)
    ~spec
    ~latency:(Latency.Exponential { mean = 10. })
    ~plan ~seed ()

let acceptance_campaign ?(protocol = Dsm_core.Protocol.Packed (module Dsm_core.Opt_p))
    ?(seed = 5) ?(ops = 60) () =
  run_campaign protocol ~spec:(acceptance_spec ops) ~plan:acceptance_plan
    ~seed

let q12_crash_recovery ?(seeds = [ 1; 2; 3 ]) ?(ops = 40) () =
  let single_crash =
    Fault_plan.make
      [
        Fault_plan.Crash { proc = 1; at = plan_time 120. };
        Fault_plan.Recover { proc = 1; at = plan_time 320. };
      ]
  in
  let crash_and_cut =
    Fault_plan.make
      [
        Fault_plan.Crash { proc = 1; at = plan_time 120. };
        Fault_plan.Cut { groups = [ [ 0; 1 ]; [ 2; 3 ] ]; at = plan_time 150. };
        Fault_plan.Heal { at = plan_time 260. };
        Fault_plan.Recover { proc = 1; at = plan_time 320. };
      ]
  in
  let plans =
    [ ("1 crash", single_crash); ("crash + partition", crash_and_cut) ]
  in
  let packed =
    [
      ("OptP", Dsm_core.Protocol.Packed (module Dsm_core.Opt_p));
      ("ANBKH", Dsm_core.Protocol.Packed (module Dsm_core.Anbkh));
    ]
  in
  let table =
    Table_fmt.create
      ~title:
        "Q12: crash-recovery campaigns (n=4) - checkpoint rollback, \
         anti-entropy catch-up and recovery latency"
      ~header:
        [
          "protocol";
          "fault plan";
          "rolled back";
          "replayed";
          "recovery latency";
          "sync frames";
          "audit";
        ]
      ()
  in
  Table_fmt.set_align table
    [
      Table_fmt.Left; Table_fmt.Left; Table_fmt.Right; Table_fmt.Right;
      Table_fmt.Right; Table_fmt.Right; Table_fmt.Left;
    ];
  List.iter
    (fun (pname, p) ->
      List.iter
        (fun (plan_name, plan) ->
          let rolled = ref [] and replayed = ref [] and lat = ref [] in
          let sync = ref [] in
          let all_ok = ref true in
          List.iter
            (fun seed ->
              let spec =
                Spec.make ~n:4 ~m:3 ~ops_per_process:ops ~write_ratio:0.5
                  ~think:(Latency.Exponential { mean = 10. })
                  ~seed ()
              in
              let o = run_campaign p ~spec ~plan ~seed in
              if not (o.Fault_campaign.clean && o.Fault_campaign.live_equal)
              then all_ok := false;
              rolled :=
                float_of_int o.Fault_campaign.rolled_back_events :: !rolled;
              replayed :=
                float_of_int o.Fault_campaign.replayed_writes :: !replayed;
              sync :=
                float_of_int
                  (o.Fault_campaign.sync_requests
                  + o.Fault_campaign.sync_replies)
                :: !sync;
              List.iter
                (fun r ->
                  match Fault_campaign.recovery_latency r with
                  | Some l -> lat := l :: !lat
                  | None -> all_ok := false)
                o.Fault_campaign.recoveries)
            seeds;
          let mean l = Summary.mean (Summary.of_list l) in
          Table_fmt.add_row table
            [
              pname;
              plan_name;
              Printf.sprintf "%.1f" (mean !rolled);
              Printf.sprintf "%.1f" (mean !replayed);
              Printf.sprintf "%.0f" (mean !lat);
              Printf.sprintf "%.0f" (mean !sync);
              (if !all_ok then "clean+converged" else "VIOLATIONS");
            ])
        plans)
    packed;
  table
