(** The experiment harness: one entry point per table and figure.

    The paper has no quantitative evaluation section; its "results" are
    Tables 1–2 (enabling-event sets over [Ĥ₁]) and the runs of Figures
    1, 2, 3, 6 plus the causality graph of Figure 7. Each [t*]/[f*]
    function below regenerates one of those artifacts. The [q*]
    functions are the quantitative companion experiments DESIGN.md
    §5 specifies: they measure the paper's headline claim — OptP delays
    a write only when necessary, causal-broadcast protocols delay more —
    across parameter sweeps, with every run audited by the checker.

    All functions are deterministic (fixed seeds) and return rendered
    tables/strings; the bench harness and the CLI only choose which to
    print. *)

(** {1 Protocol rosters} *)

val class_p_protocols : (module Dsm_core.Protocol.S) list
(** OptP and ANBKH — the members of class [𝒫]. *)

val all_protocols : (module Dsm_core.Protocol.S) list
(** Adds the writing-semantics variants (outside [𝒫]). *)

(** {1 Paper tables and figures} *)

val table1 : unit -> Dsm_stats.Table_fmt.t
(** Table 1: [𝒳_co-safe(e)] for every apply event of [Ĥ₁]. *)

val table2 : unit -> Dsm_stats.Table_fmt.t
(** Table 2: [𝒳_ANBKH(e)] for the events of the Figure 3 run,
    derived from Fidge–Mattern send timestamps recomputed from the
    recorded execution (not from the protocol's own clocks). *)

val figure1 : unit -> string
(** Both admissible sequences at [p₃] with their delay counts. *)

val figure2 : unit -> string
(** The non-optimal run: causal delivery pays one unnecessary delay,
    OptP pays none. *)

val figure3 : unit -> string
(** The ANBKH run with false causality, with per-process sequences. *)

val figure6 : unit -> string
(** The OptP run: per-process sequences plus each write's [Write_co]
    timestamp. *)

val figure7 : unit -> string
(** The write causality graph of [Ĥ₁] (edge list + Graphviz). *)

(** {1 Quantitative experiments (DESIGN.md §5)} *)

val q1_sweep_processes :
  ?ns:int list -> ?seeds:int list -> ?ops:int -> unit -> Dsm_stats.Table_fmt.t
(** Mean write delays per 100 applies vs number of processes. *)

val q2_sweep_latency_variance :
  ?sigmas:float list -> ?seeds:int list -> ?ops:int -> unit ->
  Dsm_stats.Table_fmt.t
(** Unnecessary delays (false causality) vs log-normal latency σ. *)

val q3_sweep_write_ratio :
  ?ratios:float list -> ?seeds:int list -> ?ops:int -> unit ->
  Dsm_stats.Table_fmt.t
(** Delays vs fraction of writes in the workload. *)

val q4_buffer_occupancy :
  ?seeds:int list -> ?ops:int -> unit -> Dsm_stats.Table_fmt.t
(** Peak and lifetime buffered messages under a hot-spot workload. *)

val q5_apply_latency :
  ?seeds:int list -> ?ops:int -> unit -> Dsm_stats.Table_fmt.t
(** Receipt→apply latency (mean / p95 / max) per protocol. *)

val q6_ws_skips :
  ?seeds:int list -> ?ops:int -> unit -> Dsm_stats.Table_fmt.t
(** Writes skipped by the writing-semantics variants vs variable
    locality, and the resulting message savings. *)

(** {1 Plumbing (exposed for tests and the CLI)} *)

type run_metrics = {
  protocol : string;
  delays : int;
  necessary : int;
  unnecessary : int;
  applies : int;
  skips : int;
  messages : int;
  buffer_high : int;  (** max over processes *)
  mean_apply_latency : float;
  clean : bool;  (** checker found no violations *)
}

val measure :
  (module Dsm_core.Protocol.S) ->
  spec:Dsm_workload.Spec.t ->
  latency:Dsm_sim.Latency.t ->
  ?seed:int ->
  unit ->
  run_metrics
(** One audited run. @raise Failure if the checker finds a violation
    (an experiment on a broken run would be meaningless). *)

val send_vectors :
  Execution.t -> Dsm_vclock.Vector_clock.t Dsm_vclock.Dot.Map.t
(** Fidge–Mattern timestamps of every write's send event, recomputed
    from the execution's message pattern (write-sends are the counted
    events, as in ANBKH). *)

val q7_fifo_ablation :
  ?seeds:int list -> ?ops:int -> unit -> Dsm_stats.Table_fmt.t
(** Ablation: per-channel FIFO delivery vs unconstrained reordering.
    FIFO removes the per-sender-gap delays but not cross-process causal
    waits — quantifying how much of each protocol's buffering is due to
    plain channel reordering. *)

val q8_lossy_links :
  ?drops:float list -> ?seeds:int list -> ?ops:int -> unit ->
  Dsm_stats.Table_fmt.t
(** OptP over faulty links healed by the reliable-channel substrate:
    wire amplification (frames per protocol payload), retransmissions
    and completion-time dilation vs drop probability. Every run must
    still be checker-clean — the §3.1 channel abstraction is validated,
    not assumed. *)

val q9_divergence :
  ?ratios:float list -> ?seeds:int list -> ?ops:int -> unit ->
  Dsm_stats.Table_fmt.t
(** Replica divergence at quiescence: fraction of variables whose final
    value differs between some pair of replicas. Causal consistency
    permits permanent divergence on concurrent writes (there is no
    arbitration rule), and every protocol here exhibits it — including
    the token protocol, whose receivers share a total order but whose
    senders apply their own writes immediately, ahead of their round
    position. This quantifies the paper's intro point that causal
    memory "admits more executions" than stronger criteria. *)

val q10_metadata_size :
  ?ns:int list -> ?seeds:int list -> ?ops:int -> unit ->
  Dsm_stats.Table_fmt.t
(** Wire metadata per write message: the full [Write_co] vector (n
    entries, OptP) vs the direct-dependency list (the write causality
    graph's in-edges, [Opt_p_direct]). Both protocols have identical
    delay behaviour; the question is bytes on the wire as n grows. *)

val q5_histogram : ?seed:int -> ?ops:int -> unit -> string
(** ASCII histogram of OptP vs ANBKH receipt→apply latencies on one
    seed — the distributional view behind Q5's summary rows. *)

val q11_partial_replication :
  ?degrees:int list -> ?seeds:int list -> ?ops:int -> unit ->
  Dsm_stats.Table_fmt.t
(** Partial replication (Raynal–Singhal, the paper's [14]): messages on
    the wire, delays and buffer pressure as the replication degree
    shrinks from full (paper model) to 2 copies per location, under the
    matrix-clock OptP variant. Every run passes the replication-aware
    audit. *)

val q12_crash_recovery :
  ?seeds:int list -> ?ops:int -> unit -> Dsm_stats.Table_fmt.t
(** Crash–recovery campaigns ({!Fault_campaign}): OptP and ANBKH under
    a single crash and a crash-plus-partition plan, measuring
    checkpoint rollback, anti-entropy replay volume, recovery latency
    and sync traffic. Every run must end checker-clean with all live
    replicas converged. *)

val acceptance_plan : Dsm_sim.Fault_plan.t
(** The headline schedule: 8 replicas, a 500-time-unit partition
    ([t=300–800]) splitting them 4/4, processes 2 and 5 crashing in its
    shadow ([t=400], [t=500]) and recovering after heal ([t=1000],
    [t=1100]). *)

val acceptance_campaign :
  ?protocol:Dsm_core.Protocol.packed ->
  ?seed:int ->
  ?ops:int ->
  unit ->
  Fault_campaign.outcome
(** One full run of {!acceptance_plan} over an 8-process workload
    (default protocol OptP, [ops = 60] per process). The bench harness
    serializes the outcome to [BENCH_crash_recovery.json]. *)
