type config = {
  threshold : float;
  heartbeat_every : float;
  window : int;
  adaptive : float;
}

let config ?(threshold = 3.) ?(heartbeat_every = 20.) ?(window = 16)
    ?(adaptive = 0.) () =
  if (not (Float.is_finite threshold)) || threshold <= 0. then
    invalid_arg "Failure_detector.config: threshold must be positive";
  if (not (Float.is_finite heartbeat_every)) || heartbeat_every <= 0. then
    invalid_arg "Failure_detector.config: heartbeat_every must be positive";
  if window < 2 then
    invalid_arg "Failure_detector.config: window must be >= 2";
  if (not (Float.is_finite adaptive)) || adaptive < 0. then
    invalid_arg "Failure_detector.config: adaptive must be non-negative";
  { threshold; heartbeat_every; window; adaptive }

(* per-peer sliding window of inter-arrival intervals, as a ring;
   [sum_sq] tracks the second moment so the per-link coefficient of
   variation (the adaptive-threshold input) is O(1) per observation *)
type peer_state = {
  intervals : float array;
  mutable count : int;  (* samples held, <= window *)
  mutable next : int;  (* ring write cursor *)
  mutable sum : float;  (* running sum of held samples *)
  mutable sum_sq : float;  (* running sum of squared samples *)
  mutable last : float;  (* last arrival; NaN until armed *)
}

type t = { cfg : config; me : int; peers : peer_state array }

let create cfg ~universe ~me =
  if universe <= 0 then
    invalid_arg "Failure_detector.create: universe must be positive";
  if me < 0 || me >= universe then
    invalid_arg "Failure_detector.create: me outside the universe";
  {
    cfg;
    me;
    peers =
      Array.init universe (fun _ ->
          {
            intervals = Array.make cfg.window 0.;
            count = 0;
            next = 0;
            sum = 0.;
            sum_sq = 0.;
            last = Float.nan;
          });
  }

let config_of t = t.cfg
let me t = t.me

let state t peer =
  if peer < 0 || peer >= Array.length t.peers then
    invalid_arg "Failure_detector: peer outside the universe";
  t.peers.(peer)

let observe t ~peer ~at =
  if peer <> t.me then begin
    let p = state t peer in
    if Float.is_nan p.last then p.last <- at
    else if at > p.last then begin
      (* clamp: bursts must not collapse mu, one long gap must not
         inflate it past recovery *)
      let lo = 0.5 *. t.cfg.heartbeat_every
      and hi = 4. *. t.cfg.heartbeat_every in
      let interval = Float.min hi (Float.max lo (at -. p.last)) in
      if p.count = Array.length p.intervals then begin
        let evicted = p.intervals.(p.next) in
        p.sum <- p.sum -. evicted;
        p.sum_sq <- p.sum_sq -. (evicted *. evicted)
      end
      else p.count <- p.count + 1;
      p.intervals.(p.next) <- interval;
      p.sum <- p.sum +. interval;
      p.sum_sq <- p.sum_sq +. (interval *. interval);
      p.next <- (p.next + 1) mod Array.length p.intervals;
      p.last <- at
    end
  end

let forget t ~peer =
  let p = state t peer in
  p.count <- 0;
  p.next <- 0;
  p.sum <- 0.;
  p.sum_sq <- 0.;
  p.last <- Float.nan

let last_heard t ~peer =
  let p = state t peer in
  if Float.is_nan p.last then None else Some p.last

let mean_interval t ~peer =
  let p = state t peer in
  (* heartbeat-period prior as one extra sample: a freshly armed peer
     is judged against the configured gossip rate *)
  (p.sum +. t.cfg.heartbeat_every) /. float_of_int (p.count + 1)

(* Sample coefficient of variation of the held window (stddev / mean),
   0 until two samples are held. The clamp in [observe] bounds every
   sample to [hb/2, 4hb], so cv is bounded (< 2) and a single outlier
   cannot blow the adaptive threshold up without bound. *)
let interval_cv t ~peer =
  let p = state t peer in
  if p.count < 2 then 0.
  else begin
    let n = float_of_int p.count in
    let mean = p.sum /. n in
    let var = Float.max 0. ((p.sum_sq /. n) -. (mean *. mean)) in
    Float.sqrt var /. mean
  end

(* Per-peer adaptive threshold: a link whose inter-arrival times are
   noisy (heavy-tailed latency, piggyback bursts alternating with
   heartbeat-paced silence) legitimately produces long gaps, so its
   threshold is raised in proportion to the observed coefficient of
   variation; a metronomic link keeps the configured base and so keeps
   the base detection time. [adaptive = 0.] (the default) disables the
   scaling — every pinned campaign keeps seed behaviour. *)
let effective_threshold t ~peer =
  if t.cfg.adaptive = 0. then t.cfg.threshold
  else t.cfg.threshold *. (1. +. (t.cfg.adaptive *. interval_cv t ~peer))

let ln10 = Float.log 10.

let phi t ~peer ~at =
  let p = state t peer in
  if Float.is_nan p.last || at <= p.last then 0.
  else (at -. p.last) /. (mean_interval t ~peer *. ln10)

let suspicious t ~peer ~at = phi t ~peer ~at >= effective_threshold t ~peer
