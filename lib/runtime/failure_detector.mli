(** Phi-accrual failure detection over gossip heartbeats.

    The paper's §3.1 model assumes reliable channels and a fixed
    process set; PR 4 made the set dynamic but every view change was
    {e scripted}. This module supplies the missing reactive half: each
    active slot observes the arrival times of its peers' traffic —
    standalone [Heartbeat] frames, or any protocol frame piggybacking
    as liveness evidence — and accrues {e suspicion} from silence.

    The detector is the accrual style of Hayashibara et al. (as
    simplified in Cassandra): per peer, a sliding window of
    inter-arrival intervals estimates the arrival rate, and the
    suspicion level for a silence of [t] time units is

    {[  phi = t / (mu * ln 10)  ]}

    where [mu] is the smoothed window mean — i.e. [phi >= k] means the
    observed silence is [k] decades less likely than the expected
    inter-arrival under an exponential model. Crossing a configurable
    threshold emits a [Suspect] that the campaign driver turns into a
    membership [Down] transition; a heartbeat sent {e after} the
    suspicion refutes it and re-admits the slot through the ordinary
    crash-rejoin path (see {!Churn_campaign}).

    Determinism: the detector never reads a wall clock. Every [at] is
    the caller's {!Dsm_sim.Engine} virtual time, every computation is
    pure float arithmetic over it, and iteration order is fixed — two
    runs from the same seed produce byte-identical suspicion and view
    histories.

    Two guards keep the estimate sane under the simulator's bursty
    arrival patterns (retransmission floods after a heal compress
    intervals; piggybacked protocol traffic arrives much faster than
    the heartbeat period):
    - each recorded interval is clamped to
      [[heartbeat_every / 2, 4 * heartbeat_every]], so dense traffic
      cannot collapse [mu] to near zero and one partition-length gap
      cannot inflate it without bound;
    - [mu] is smoothed with the heartbeat period as a one-sample
      prior, so a peer that crashes before ever producing a full
      window is still eventually suspected.

    {b Adaptive per-peer thresholds.} A single global threshold forces
    a trade-off across heterogeneous links: tuned for a jittery WAN
    link it is sluggish on a quiet LAN link, tuned for the LAN link it
    false-suspects across the WAN. With [adaptive > 0] each peer's
    threshold is scaled by that link's own observed inter-arrival
    {e coefficient of variation} (cv = stddev / mean over the window):

    {[  effective_threshold(peer) = threshold * (1 + adaptive * cv)  ]}

    A metronomic link has cv ≈ 0 and keeps the base threshold (and so
    the base detection time); a noisy link earns headroom proportional
    to its measured noise. The interval clamp bounds cv, so the scaled
    threshold cannot run away. [adaptive = 0.] (the default) disables
    the scaling entirely and reproduces the fixed-threshold detector
    bit for bit. *)

type config = {
  threshold : float;  (** suspect when [phi] reaches this; decades *)
  heartbeat_every : float;  (** gossip period, virtual time units *)
  window : int;  (** inter-arrival samples kept per peer *)
  adaptive : float;
      (** per-peer threshold scaling gain; [0.] = fixed threshold *)
}

val config :
  ?threshold:float ->
  ?heartbeat_every:float ->
  ?window:int ->
  ?adaptive:float ->
  unit ->
  config
(** Defaults: [threshold = 3.], [heartbeat_every = 20.], [window = 16],
    [adaptive = 0.].
    @raise Invalid_argument unless [threshold > 0], [heartbeat_every]
    positive and finite, [window >= 2], and [adaptive] finite and
    non-negative. *)

type t
(** One observer's accrued evidence about every peer in the universe. *)

val create : config -> universe:int -> me:int -> t
(** No peer is monitored yet; the first {!observe} per peer only arms
    its clock (records no interval). *)

val config_of : t -> config
val me : t -> int

val observe : t -> peer:int -> at:float -> unit
(** Liveness evidence from [peer] arrived at [at]: push the (clamped)
    interval since the previous observation into the window. Evidence
    arriving out of order (at or before the previous observation) is
    ignored. Self-observations are ignored. *)

val forget : t -> peer:int -> unit
(** Drop everything known about [peer]. Used when a slot re-enters the
    view under a fresh incarnation: its previous life's arrival
    history must not poison the new estimate. *)

val last_heard : t -> peer:int -> float option

val mean_interval : t -> peer:int -> float
(** The smoothed [mu] (window mean with the heartbeat period as a
    one-sample prior); [heartbeat_every] when nothing was observed. *)

val interval_cv : t -> peer:int -> float
(** Sample coefficient of variation (stddev / mean) of [peer]'s held
    interval window; [0.] until at least two samples are held. Bounded
    by the interval clamp. *)

val effective_threshold : t -> peer:int -> float
(** [threshold * (1 + adaptive * interval_cv)] — the per-peer suspicion
    bar actually applied by {!suspicious}. Equal to [threshold] when
    [adaptive = 0.]. *)

val phi : t -> peer:int -> at:float -> float
(** Suspicion level for the silence [at - last_heard]; [0.] while no
    observation has armed the peer's clock, and never negative. *)

val suspicious : t -> peer:int -> at:float -> bool
(** [phi >= effective_threshold]. *)
