module Protocol = Dsm_core.Protocol
module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Reliable_channel = Dsm_sim.Reliable_channel
module Fault_plan = Dsm_sim.Fault_plan
module Sim_time = Dsm_sim.Sim_time
module Rng = Dsm_sim.Rng
module Spec = Dsm_workload.Spec
module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Metrics = Dsm_obs.Metrics

type 'msg wire =
  | Proto of 'msg
  | Sync_request of { vec : int array }
  | Sync_reply of { vec : int array; writes : 'msg list }

(* frame-shape measurer over the campaign envelope, for the byte-cost
   accountant: protocol messages keep their own shape, anti-entropy
   traffic appears under a "sync" cause — a request is one vector, a
   reply is its vector plus every carried write's shape *)
let wire_of_env msg_frame = function
  | Proto m -> msg_frame m
  | Sync_request { vec } ->
      {
        Dsm_obs.Wire.kind = "sync";
        scalars = 0;
        dots = 0;
        vectors = [ V.of_array vec ];
      }
  | Sync_reply { vec; writes } ->
      List.fold_left
        (fun acc m ->
          let f = msg_frame m in
          {
            acc with
            Dsm_obs.Wire.scalars = acc.Dsm_obs.Wire.scalars + f.Dsm_obs.Wire.scalars;
            dots = acc.Dsm_obs.Wire.dots + f.Dsm_obs.Wire.dots;
            vectors = acc.Dsm_obs.Wire.vectors @ f.Dsm_obs.Wire.vectors;
          })
        {
          Dsm_obs.Wire.kind = "sync";
          scalars = 1;  (* reply round tag *)
          dots = 0;
          vectors = [ V.of_array vec ];
        }
        writes

type recovery = {
  rproc : int;
  crashed_at : float;
  recovered_at : float;
  rolled_back_events : int;
  mutable caught_up_at : float option;
  mutable replayed : int;
  mutable sync_target : int array option;
}

type replica_state = {
  sproc : int;
  sapplied : int array;
  sclock : int array;
  sstore : (Dsm_memory.Operation.value * Dot.t option) list;
}

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  report : Checker.report;
  protocol_name : string;
  plan : Fault_plan.t;
  recoveries : recovery list;
  down_at_end : int list;
  final_states : replica_state list;  (** live replicas, ascending id *)
  live_equal : bool;
  clean : bool;
  commits : int;
  snapshot_bytes : int;
  rolled_back_events : int;
  ops_skipped_down : int;
  sync_requests : int;
  sync_replies : int;
  replayed_writes : int;
  stale_deliveries_dropped : int;
  aborted_payloads : int;
  payloads_sent : int;
  frames_sent : int;
  frames_dropped : int;
  frames_partition_dropped : int;
  frames_crash_dropped : int;
  retransmissions : int;
  duplicates_discarded : int;
  engine_steps : int;
  end_time : float;
}

(* per-process runtime wrapper around the protocol state *)
type ('proto, 'msg) node = {
  id : int;
  mutable proto : 'proto;
  mutable down : bool;
  mutable ever_crashed : bool;
  mutable durable : (string * string) option;
      (* (protocol snapshot, serialized write log) — the checkpoint *)
  mutable log : (Dot.t, 'msg) Hashtbl.t;
      (* every write message this process issued or received; feeds the
         anti-entropy replies it serves.  Checkpointed with the
         protocol snapshot, so it never claims more than the durable
         state can back. *)
  mutable staged : (Sim_time.t * Execution.kind) list;  (* newest first *)
  mutable staged_count : int;
  mutable write_seq : int;
  mutable last_crash : float;
  mutable cur : recovery option;  (* open recovery, until caught up *)
}

(* this harness keeps the replica set static for its whole lifetime;
   membership is Churn_campaign's job, so a churny plan is rejected up
   front with a pointer at the right driver rather than silently
   ignoring the view changes *)
let validate_plan ~n plan =
  (* the churn check comes first: a churny plan is usually well-formed
     for the churn driver, and the useful answer is "wrong driver", not
     whichever state-machine complaint full-membership validation hits *)
  (if Fault_plan.has_churn plan then
    let ev =
      List.find
        (function
          | Fault_plan.Join _ | Fault_plan.Leave _ -> true | _ -> false)
        plan
    in
    invalid_arg
      (Format.asprintf
         "Fault_campaign.run: static membership only, but the plan contains \
          %a — membership changes need a churn-aware driver: \
          Nemesis.run for combined fault schedules (CLI: dsm-sim \
          nemesis), or Churn_campaign.run for churn alone (CLI: dsm-sim run \
          --join/--leave/--churn, or --fd for detector-driven views)"
         Fault_plan.pp_event ev));
  Fault_plan.validate ~n plan

let run (type pt pm)
    (module P : Protocol.S with type t = pt and type msg = pm) ~spec
    ~latency ?(faults = Network.no_faults) ~plan ?(checkpoint_every = 50.)
    ?(sync_rounds = 2) ?(sync_interval = 100.) ?(settle = true)
    ?(retransmit_after = 50.) ?(seed = 1) ?(max_steps = 20_000_000)
    ?(metrics = Metrics.null ()) ?(wire = Dsm_obs.Wire.null ())
    ?(recorder = Dsm_obs.Timeseries.null ()) ?(scrape_every = 25.)
    ?(queue = Engine.Indexed) ?(arena = true) ?(batch = false) () =
  let n = spec.Spec.n and m = spec.Spec.m in
  let cfg = Protocol.config ~n ~m in
  validate_plan ~n plan;
  if checkpoint_every <= 0. then
    invalid_arg "Fault_campaign.run: checkpoint_every must be positive";
  let schedule = Dsm_workload.Generator.generate spec in
  let engine = Engine.create ~queue () in
  let rng = Rng.create seed in
  let measure = Reliable_channel.wire_frame (wire_of_env P.msg_frame) in
  let network =
    Network.create ~engine ~rng ~n
      ~latency:(fun ~src:_ ~dst:_ -> latency)
      ~arena ~batch ~faults ~mangle:Reliable_channel.corrupt_frame ~metrics
      ~wire ~measure
      ~sizer:(fun f -> Dsm_obs.Wire.frame_bytes (measure f))
      ()
  in
  if Dsm_obs.Timeseries.enabled recorder then begin
    let horizon =
      let ops_horizon =
        Array.fold_left
          (fun acc ops ->
            List.fold_left
              (fun acc { Spec.at; _ } -> Float.max acc at)
              acc ops)
          0. schedule
      in
      List.fold_left
        (fun acc ev ->
          Float.max acc (Sim_time.to_float (Fault_plan.time ev)))
        ops_horizon plan
    in
    if horizon >= scrape_every then
      Engine.schedule_every engine ~every:scrape_every
        ~until:(Sim_time.of_float horizon) (fun () ->
          Dsm_obs.Timeseries.scrape recorder
            ~now:(Sim_time.to_float (Engine.now engine)))
  end;
  let channel =
    Reliable_channel.create ~engine ~network ~retransmit_after ~rng
      ~metrics ()
  in
  let probe_checkpoints = Metrics.counter metrics "campaign_checkpoints" in
  let probe_checkpoint_bytes =
    Metrics.counter metrics "campaign_checkpoint_bytes"
  in
  let probe_rollback_depth =
    (* events lost per recovery: durable-state restore distance *)
    Metrics.histogram metrics "campaign_rollback_depth" ~lo:0. ~hi:64.
      ~bins:16
  in
  let probe_replayed = Metrics.counter metrics "campaign_replayed_writes" in
  let probe_sync_requests =
    Metrics.counter metrics "campaign_sync_requests"
  in
  let probe_sync_replies = Metrics.counter metrics "campaign_sync_replies" in
  let execution = Execution.create ~n ~m () in
  let nodes =
    Array.init n (fun id ->
        {
          id;
          proto = P.create cfg ~me:id;
          down = false;
          ever_crashed = false;
          durable = None;
          log = Hashtbl.create 256;
          staged = [];
          staged_count = 0;
          write_seq = 0;
          last_crash = 0.;
          cur = None;
        })
  in
  (* The driver's membership oracle is the live {!Membership} view, not
     a peek into the plan's future: senders address only currently
     {e active} members.  A down process is not addressed at all — no
     retransmission timers accumulate toward it (they would keep the
     simulation alive forever for a corpse), and on recovery it pulls
     everything it missed through its anti-entropy sync rounds instead
     of relying on frames parked across the outage. *)
  let membership =
    Membership.create ~universe:n ~initial:(List.init n Fun.id) ()
  in
  Network.set_membership network (Membership.is_member membership);
  let ch_send ~src ~dst msg =
    if Membership.is_active membership dst then
      Reliable_channel.send channel ~src ~dst msg
  in
  let ch_broadcast ~src msg =
    for dst = 0 to n - 1 do
      if dst <> src then ch_send ~src ~dst msg
    done
  in
  let recoveries = ref [] in
  let commits = ref 0 in
  let snapshot_bytes = ref 0 in
  let rolled_back = ref 0 in
  let ops_skipped = ref 0 in
  let sync_requests = ref 0 in
  let sync_replies = ref 0 in
  let replayed_writes = ref 0 in
  let stale_dropped = ref 0 in
  let aborted = ref 0 in
  let nowf () = Sim_time.to_float (Engine.now engine) in

  let record node kind =
    node.staged <- (Engine.now engine, kind) :: node.staged;
    node.staged_count <- node.staged_count + 1
  in
  (* commit = make everything since the last commit durable: flush the
     staged events into the recorded execution and serialize protocol
     state + write log.  Called after every local write (so a write is
     durable before its broadcast leaves — no dot is ever reissued) and
     at the periodic checkpoints (so received writes also become
     durable without waiting for the next local write). *)
  let commit node =
    List.iter
      (fun (time, kind) ->
        Execution.record execution ~proc:node.id ~time kind)
      (List.rev node.staged);
    node.staged <- [];
    node.staged_count <- 0;
    let image = P.snapshot node.proto in
    let log_image = Protocol.Snapshot.encode node.log in
    node.durable <- Some (image, log_image);
    incr commits;
    Metrics.incr probe_checkpoints;
    Metrics.add probe_checkpoint_bytes
      (String.length image + String.length log_image);
    snapshot_bytes := !snapshot_bytes + String.length image
                      + String.length log_image
  in
  let log_outbound node msg =
    List.iter
      (fun (dot, _, _) -> Hashtbl.replace node.log dot msg)
      (P.msg_writes msg)
  in
  let covered node dot =
    let v = P.applied_vector node.proto in
    V.get v (Dot.replica dot) >= Dot.seq dot
  in
  let check_caught_up node =
    match node.cur with
    | Some r when r.caught_up_at = None -> (
        match r.sync_target with
        | None -> ()
        | Some target ->
            let v = P.applied_vector node.proto in
            let ok = ref true in
            Array.iteri (fun i want -> if V.get v i < want then ok := false)
              target;
            if !ok then begin
              r.caught_up_at <- Some (nowf ());
              node.cur <- None
            end)
    | _ -> ()
  in
  let rec process node (eff : pm Protocol.effects) =
    List.iter (fun dot -> record node (Execution.Skip { dot })) eff.skipped;
    List.iter
      (fun (a : Protocol.apply_record) ->
        record node
          (Execution.Apply
             {
               dot = a.adot;
               var = a.avar;
               value = a.avalue;
               delayed = a.afrom_buffer;
             }))
      eff.applied;
    List.iter
      (fun outbound ->
        let msg =
          match outbound with
          | Protocol.Broadcast msg -> msg
          | Protocol.Unicast { msg; _ } -> msg
        in
        log_outbound node msg;
        List.iter
          (fun (dot, var, value) ->
            record node (Execution.Send { dot; var; value }))
          (P.msg_writes msg);
        match outbound with
        | Protocol.Broadcast msg ->
            ch_broadcast ~src:node.id (Proto msg)
        | Protocol.Unicast { dst; msg } ->
            ch_send ~src:node.id ~dst (Proto msg))
      eff.to_send
  (* one protocol message into the normal receive path.  [src] is the
     semantic sender recorded in the receipt: the channel peer on the
     live path, the original issuer on the anti-entropy replay path. *)
  and deliver_proto node ~src msg =
    log_outbound node msg;
    let writes = P.msg_writes msg in
    if writes <> [] && List.for_all (fun (dot, _, _) -> covered node dot)
                         writes
    then
      (* an echo of a write this state already holds: possible only
         after a crash cleared the channel's dedup tables, or when a
         sync reply races the normal delivery *)
      incr stale_dropped
    else begin
      List.iter
        (fun (dot, _, _) -> record node (Execution.Receipt { dot; src }))
        writes;
      let eff = P.receive node.proto ~src msg in
      (* same rule as {!Node.Make}: a carried write that neither applied
         nor skipped was buffered — name the predecessor it waits on *)
      (match writes with
      | [] -> ()
      | _ when eff.Protocol.applied = [] && eff.Protocol.skipped = [] -> (
          match P.waiting_for node.proto ~src msg with
          | Some waiting_for ->
              List.iter
                (fun (dot, _, _) ->
                  record node (Execution.Blocked { dot; waiting_for }))
                writes
          | None -> ())
      | _ -> ());
      process node eff;
      check_caught_up node
    end
  in
  let send_sync_request node =
    let vec = V.to_array (P.applied_vector node.proto) in
    for dst = 0 to n - 1 do
      (* a down peer cannot answer; if it recovers it will run its own
         sync rounds, so skipping it loses nothing *)
      if dst <> node.id && not nodes.(dst).down then begin
        incr sync_requests;
        Metrics.incr probe_sync_requests;
        Reliable_channel.send channel ~src:node.id ~dst
          (Sync_request { vec })
      end
    done
  in
  let issuer_of msg =
    match P.msg_writes msg with
    | (dot, _, _) :: _ -> Dot.replica dot
    | [] ->
        invalid_arg
          "Fault_campaign: control message in the anti-entropy log"
  in
  let serve_sync node ~peer ~vec =
    let mine = V.to_array (P.applied_vector node.proto) in
    let out = ref [] in
    for u = n - 1 downto 0 do
      for s = mine.(u) downto vec.(u) + 1 do
        let dot = Dot.make ~replica:u ~seq:s in
        match Hashtbl.find_opt node.log dot with
        | Some msg -> out := msg :: !out
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Fault_campaign: %s applied %s but its durable log \
                  cannot re-supply it (protocol outside the \
                  complete-broadcast class?)"
                 P.name (Dot.to_string dot))
      done
    done;
    incr sync_replies;
    Metrics.incr probe_sync_replies;
    ch_send ~src:node.id ~dst:peer
      (Sync_reply { vec = mine; writes = !out })
  in
  let absorb_sync node writes ~vec =
    (match node.cur with
    | Some r ->
        r.sync_target <-
          Some
            (match r.sync_target with
            | None -> Array.copy vec
            | Some t -> Array.mapi (fun i x -> max x vec.(i)) t)
    | None -> ());
    List.iter
      (fun msg ->
        let fresh =
          List.exists (fun (dot, _, _) -> not (covered node dot))
            (P.msg_writes msg)
        in
        if fresh then begin
          incr replayed_writes;
          Metrics.incr probe_replayed;
          (match node.cur with
          | Some r -> r.replayed <- r.replayed + 1
          | None -> ());
          deliver_proto node ~src:(issuer_of msg) msg
        end)
      writes;
    check_caught_up node
  in
  for dst = 0 to n - 1 do
    Reliable_channel.set_handler channel dst (fun ~src ~at:_ w ->
        let node = nodes.(dst) in
        if not node.down then
          match w with
          | Proto msg -> deliver_proto node ~src msg
          | Sync_request { vec } -> serve_sync node ~peer:src ~vec
          | Sync_reply { vec; writes } -> absorb_sync node writes ~vec)
  done;

  (* ---- fault plan wiring ------------------------------------------ *)
  (* The one remaining plan peek: whether a crashed process ever
     restarts is a fact about the future, which no live view can
     answer.  It only gates the corpse's own send-queue abandonment
     below — addressing decisions never consult it. *)
  let permanently_down = Fault_plan.down_at_end plan in
  let on_crash p =
    let node = nodes.(p) in
    Membership.crash membership ~at:(Engine.now engine) p;
    Network.set_epoch network (Membership.epoch membership);
    node.down <- true;
    node.ever_crashed <- true;
    node.last_crash <- nowf ();
    (* the un-checkpointed suffix dies with the process *)
    rolled_back := !rolled_back + node.staged_count;
    node.staged <- [];
    node.staged_count <- 0;
    node.cur <- None;
    Network.mark_crashed network p;
    aborted := !aborted + Reliable_channel.abort_peer channel ~peer:p;
    (* a corpse can never process the acks its pre-crash sends earn
       (the network crash-drops them), so abandon its send queue too —
       but only if the plan never restarts it: for a recovering process
       those armed timers are the durable send queue.  Abandoning the
       queue means its pre-crash broadcasts may have reached only some
       of the live replicas, so the survivors gossip among themselves to
       re-disseminate whatever any of them already applied. *)
    if List.mem p permanently_down then begin
      aborted := !aborted + Reliable_channel.abort_sender channel ~peer:p;
      for k = 1 to sync_rounds do
        Engine.schedule_after engine (float_of_int k *. sync_interval)
          (fun () ->
            Array.iter
              (fun node -> if not node.down then send_sync_request node)
              nodes)
      done
    end
  in
  let on_recover p =
    let node = nodes.(p) in
    Membership.recover membership ~at:(Engine.now engine) p;
    Network.set_epoch network (Membership.epoch membership);
    node.down <- false;
    Network.mark_recovered network p;
    let rolled =
      match node.durable with
      | Some (image, log_image) ->
          let before = V.sum (P.applied_vector node.proto) in
          node.proto <- P.restore cfg ~me:p image;
          node.log <- Protocol.Snapshot.decode log_image;
          before - V.sum (P.applied_vector node.proto)
      | None ->
          let before = V.sum (P.applied_vector node.proto) in
          node.proto <- P.create cfg ~me:p;
          node.log <- Hashtbl.create 256;
          before
    in
    Metrics.observe probe_rollback_depth (float_of_int rolled);
    let r =
      {
        rproc = p;
        crashed_at = node.last_crash;
        recovered_at = nowf ();
        rolled_back_events = rolled;
        caught_up_at = None;
        replayed = 0;
        sync_target = None;
      }
    in
    node.cur <- Some r;
    recoveries := r :: !recoveries;
    (* anti-entropy: ask every peer for the writes this state misses,
       then a few follow-up rounds to cover writes that were still
       buffered (not yet applied) at the peers the first time *)
    send_sync_request node;
    for k = 1 to sync_rounds - 1 do
      Engine.schedule_after engine (float_of_int k *. sync_interval)
        (fun () -> if not node.down then send_sync_request node)
    done
  in
  Fault_plan.install plan ~engine
    ~on_crash ~on_recover
    ~on_cut:(fun groups -> Network.partition network groups)
    ~on_heal:(fun () -> Network.heal_all network)
    ~on_cut_oneway:(fun ~src ~dst -> Network.cut_oneway network ~src ~dst)
    ~on_heal_oneway:(fun ~src ~dst -> Network.heal_oneway network ~src ~dst)
    ~on_flap:(fun ~a ~b ~period ~until_ ->
      Network.flap network ~a ~b ~period ~until_)
    ~on_inflate:(fun ~src ~dst ~factor ~until_ ->
      Network.inflate network ~src ~dst ~factor ~until_)
    ();

  (* ---- workload ---------------------------------------------------- *)
  Array.iteri
    (fun proc ops ->
      let node = nodes.(proc) in
      List.iter
        (fun { Spec.at; op } ->
          Engine.schedule_at engine (Sim_time.of_float at) (fun () ->
              if node.down then incr ops_skipped
              else
                match op with
                | Spec.Do_write { var } ->
                    node.write_seq <- node.write_seq + 1;
                    let value =
                      Sim_run.write_value ~proc ~seq:node.write_seq
                    in
                    let _, eff = P.write node.proto ~var ~value in
                    process node eff;
                    commit node
                | Spec.Do_read { var } ->
                    let value, read_from = P.read node.proto ~var in
                    record node (Execution.Return { var; value; read_from })))
        ops)
    schedule;

  (* periodic checkpoints, up to the end of scripted activity (after
     that every write commits itself and nothing else needs to become
     durable) *)
  let horizon =
    let plan_end =
      List.fold_left
        (fun acc ev -> Float.max acc (Sim_time.to_float (Fault_plan.time ev)))
        0. plan
    in
    Float.max (Dsm_workload.Generator.end_time schedule) plan_end
  in
  let rec schedule_checkpoints at =
    if at <= horizon +. checkpoint_every then begin
      Engine.schedule_at engine (Sim_time.of_float at) (fun () ->
          Array.iter (fun node -> if not node.down then commit node) nodes);
      schedule_checkpoints (at +. checkpoint_every)
    end
  in
  schedule_checkpoints checkpoint_every;

  let drain phase =
    match Engine.run ~max_steps engine with
    | Engine.Drained -> ()
    | Engine.Hit_step_limit ->
        failwith
          (Printf.sprintf
             "Fault_campaign: %s did not quiesce within %d events (%s)"
             P.name max_steps phase)
    | Engine.Hit_time_limit -> assert false
  in
  drain "main phase";

  (* ---- final anti-entropy fixpoint --------------------------------- *)
  (* in-run sync rounds measure recovery latency; this pass guarantees
     completeness: a write still buffered at every peer when the last
     round fired is picked up here, after everything quiesced *)
  let rec final_sync iter =
    let before = !replayed_writes in
    let asked = ref false in
    Array.iter
      (fun node ->
        if node.ever_crashed && not node.down then begin
          asked := true;
          Engine.schedule_after engine 1. (fun () ->
              if not node.down then send_sync_request node)
        end)
      nodes;
    if !asked then begin
      drain "final sync";
      if !replayed_writes > before && iter < 32 then final_sync (iter + 1)
    end
  in
  final_sync 0;

  (* ---- settle phase ------------------------------------------------ *)
  (* Causal consistency permits live replicas to disagree forever on
     concurrent writes (experiment Q9 measures exactly that), and OptP's
     Write_co only grows on reads.  To make "all live replicas
     byte-identical" a checkable property, each live replica in turn
     reads everything and overwrites everything — chaining the sentinel
     writes causally, so the last replica's sentinels dominate every
     variable — and finally every live replica reads everything,
     absorbing the same LastWriteOn vectors into Write_co. *)
  let live () =
    Array.to_list nodes |> List.filter (fun node -> not node.down)
  in
  if settle then begin
    List.iter
      (fun node ->
        Engine.schedule_after engine 1. (fun () ->
            if not node.down then begin
              for var = 0 to m - 1 do
                let value, read_from = P.read node.proto ~var in
                record node (Execution.Return { var; value; read_from })
              done;
              for var = 0 to m - 1 do
                node.write_seq <- node.write_seq + 1;
                let value =
                  Sim_run.write_value ~proc:node.id ~seq:node.write_seq
                in
                let _, eff = P.write node.proto ~var ~value in
                process node eff
              done;
              commit node
            end);
        drain "settle")
      (live ());
    List.iter
      (fun node ->
        Engine.schedule_after engine 1. (fun () ->
            if not node.down then begin
              for var = 0 to m - 1 do
                let value, read_from = P.read node.proto ~var in
                record node (Execution.Return { var; value; read_from })
              done;
              commit node
            end))
      (live ());
    drain "settle reads"
  end;
  Array.iter (fun node -> if not node.down then commit node) nodes;

  (* end-of-run scrape of the counters the protocols keep internally *)
  if Metrics.enabled metrics then begin
    let sum f =
      Array.fold_left (fun acc node -> acc + f node.proto) 0 nodes
    in
    let max_of f =
      Array.fold_left (fun acc node -> max acc (f node.proto)) 0 nodes
    in
    Metrics.add (Metrics.counter metrics "buffer_wakeup_scans")
      (sum P.buffer_wakeup_scans);
    Metrics.add (Metrics.counter metrics "buffer_total_buffered")
      (sum P.total_buffered);
    Metrics.set (Metrics.gauge metrics "buffer_high_watermark")
      (max_of P.buffer_high_watermark)
  end;

  (* ---- verification ------------------------------------------------ *)
  let final_states =
    List.map
      (fun node ->
        {
          sproc = node.id;
          sapplied = V.to_array (P.applied_vector node.proto);
          sclock = V.to_array (P.local_clock node.proto);
          sstore =
            List.init m (fun var -> P.read node.proto ~var);
        })
      (live ())
  in
  let live_equal =
    match final_states with
    | [] | [ _ ] -> true
    | first :: rest ->
        List.for_all
          (fun s ->
            s.sapplied = first.sapplied
            && s.sstore = first.sstore
            && ((not settle) || s.sclock = first.sclock))
          rest
  in
  let down_at_end =
    Array.to_list nodes
    |> List.filter_map (fun node -> if node.down then Some node.id else None)
  in
  let report = Checker.check execution in
  let clean =
    report.Checker.violations = []
    && List.for_all (fun (p, _) -> List.mem p down_at_end)
         report.Checker.lost
  in
  {
    execution;
    history = Execution.to_history execution;
    report;
    protocol_name = P.name;
    plan;
    recoveries = List.rev !recoveries;
    down_at_end;
    final_states;
    live_equal;
    clean;
    commits = !commits;
    snapshot_bytes = !snapshot_bytes;
    rolled_back_events = !rolled_back;
    ops_skipped_down = !ops_skipped;
    sync_requests = !sync_requests;
    sync_replies = !sync_replies;
    replayed_writes = !replayed_writes;
    stale_deliveries_dropped = !stale_dropped;
    aborted_payloads = !aborted;
    payloads_sent = Reliable_channel.payloads_sent channel;
    frames_sent = Network.messages_sent network;
    frames_dropped = Network.messages_dropped network;
    frames_partition_dropped = Network.messages_partition_dropped network;
    frames_crash_dropped = Network.messages_crash_dropped network;
    retransmissions = Reliable_channel.retransmissions channel;
    duplicates_discarded = Reliable_channel.duplicates_discarded channel;
    engine_steps = Engine.steps_executed engine;
    end_time = nowf ();
  }

let recovery_latency r =
  Option.map (fun t -> t -. r.recovered_at) r.caught_up_at

let pp_recovery ppf r =
  Format.fprintf ppf
    "p%d crash@%.1f recover@%.1f rolled_back=%d replayed=%d%s" (r.rproc + 1)
    r.crashed_at r.recovered_at r.rolled_back_events r.replayed
    (match recovery_latency r with
    | Some l -> Printf.sprintf " caught_up=+%.1f" l
    | None -> " never caught up")

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%s fault campaign: %d recoveries, %d commits (%d bytes), %d \
     rolled-back events, sync %d req / %d replies, %d replayed writes, \
     %d aborted payloads, %d partition-dropped, %d crash-dropped \
     frames; live_equal=%b clean=%b t_end=%.1f@,%a@]"
    o.protocol_name
    (List.length o.recoveries)
    o.commits o.snapshot_bytes o.rolled_back_events o.sync_requests
    o.sync_replies o.replayed_writes o.aborted_payloads
    o.frames_partition_dropped o.frames_crash_dropped o.live_equal o.clean
    o.end_time
    (Format.pp_print_list pp_recovery)
    o.recoveries
