(** Crash–recovery fault campaigns.

    Drives a {!Dsm_core.Protocol.S} protocol through a workload over a
    {!Dsm_sim.Reliable_channel} while a {!Dsm_sim.Fault_plan} crashes
    and restarts processes and cuts/heals partitions. The paper's §3.1
    model has neither failure; the campaign shows OptP's causal
    consistency survives both once the protocol state is made durable.

    {2 The recovery model}

    - {b Durable}: whatever {!Dsm_core.Protocol.S.snapshot} captures
      (for OptP: [Apply], [Write_co], [LastWriteOn], the store, the
      pending buffer) plus the write log that feeds anti-entropy
      replies. A commit happens after {e every local write} — so a
      write is durable before its broadcast leaves and no dot is ever
      reissued — and at a periodic checkpoint ([checkpoint_every]),
      which bounds how many {e received} writes a crash can undo.
    - {b Volatile}: everything since the last commit. A crash discards
      the protocol's un-checkpointed progress and the staged execution
      events of that window (the run's record keeps exactly what the
      durable state can vouch for), and
      {!Dsm_sim.Reliable_channel.abort_peer} abandons retransmissions
      toward the corpse.
    - {b Recovery}: the state is rebuilt with [restore], then the node
      broadcasts its [Apply] vector in a [Sync_request]; peers answer
      with the original wire messages of every applied write the
      vector misses (per-issuer FIFO apply makes vector coverage exact:
      dot [(u,s)] is applied iff [Apply[u] >= s]). Replies replay
      through the {e normal} receive path, so the delivery buffer and
      the delay accounting are untouched — every replayed delay is
      {e necessary} by construction, and OptP keeps its Theorem-4 zero
      unnecessary delays across crashes.

    After the engine quiesces, a final anti-entropy fixpoint pass picks
    up writes that were still buffered at every peer during the in-run
    sync rounds, and an optional {e settle phase} (reads + sentinel
    writes round-robin over live replicas, then reads everywhere) makes
    live replicas comparable field-by-field: causal consistency alone
    permits eternal divergence on concurrent writes (experiment Q9),
    and OptP's [Write_co] only grows on reads. *)

type 'msg wire =
  | Proto of 'msg
  | Sync_request of { vec : int array }
      (** "my [Apply] vector is [vec]; send what I miss" *)
  | Sync_reply of { vec : int array; writes : 'msg list }
      (** the peer's own vector and the original messages of the gap *)

val wire_of_env :
  ('msg -> Dsm_obs.Wire.frame) -> 'msg wire -> Dsm_obs.Wire.frame
(** Frame-shape measurer over the campaign envelope: protocol messages
    keep their shape, anti-entropy traffic is priced under a ["sync"]
    cause (request = one vector; reply = its vector plus every carried
    write's shape). *)

type recovery = {
  rproc : int;
  crashed_at : float;
  recovered_at : float;
  rolled_back_events : int;
      (** applies the crash undid (volatile window) *)
  mutable caught_up_at : float option;
      (** first moment [Apply] covered every peer vector seen in sync
          replies; [None] = never (e.g. crashed again first) *)
  mutable replayed : int;  (** writes replayed into this recovery *)
  mutable sync_target : int array option;
}

type replica_state = {
  sproc : int;
  sapplied : int array;  (** final [Apply] *)
  sclock : int array;  (** final [Write_co] (or protocol equivalent) *)
  sstore : (Dsm_memory.Operation.value * Dsm_vclock.Dot.t option) list;
      (** per variable: value and writer identity *)
}

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  report : Checker.report;
  protocol_name : string;
  plan : Dsm_sim.Fault_plan.t;
  recoveries : recovery list;
  down_at_end : int list;
  final_states : replica_state list;  (** live replicas, ascending id *)
  live_equal : bool;
      (** all live replicas agree on store and [Apply] (and on the
          local clock too when the settle phase ran) *)
  clean : bool;
      (** no checker violations, and every lost write is at a process
          that is still down — i.e. the global history of what actually
          executed is causally consistent *)
  commits : int;
  snapshot_bytes : int;  (** cumulative serialized-state volume *)
  rolled_back_events : int;
  ops_skipped_down : int;  (** workload ops that hit a crashed process *)
  sync_requests : int;
  sync_replies : int;
  replayed_writes : int;
  stale_deliveries_dropped : int;
      (** duplicate protocol deliveries filtered after dedup-state loss *)
  aborted_payloads : int;
  payloads_sent : int;
  frames_sent : int;
  frames_dropped : int;
  frames_partition_dropped : int;
  frames_crash_dropped : int;
  retransmissions : int;
  duplicates_discarded : int;
  engine_steps : int;
  end_time : float;
}

val validate_plan : n:int -> Dsm_sim.Fault_plan.t -> unit
(** The acceptance check {!run} applies to its plan: well-formed for a
    universe of [n] ({!Dsm_sim.Fault_plan.validate}) and {e static} —
    this harness never changes the replica set, so a plan with
    [Join]/[Leave] events is refused with a message pointing at the
    drivers that own membership: {!Nemesis} for combined fault
    schedules, {!Churn_campaign} (and the CLI's churn/detector flags)
    for churn alone. Link-level fault events ([Cut_oneway], [Flap],
    [Inflate]) are static-membership faults and are accepted.
    @raise Invalid_argument otherwise. *)

val run :
  (module Dsm_core.Protocol.S with type t = 'pt and type msg = 'pm) ->
  spec:Dsm_workload.Spec.t ->
  latency:Dsm_sim.Latency.t ->
  ?faults:Dsm_sim.Network.faults ->
  plan:Dsm_sim.Fault_plan.t ->
  ?checkpoint_every:float ->
  ?sync_rounds:int ->
  ?sync_interval:float ->
  ?settle:bool ->
  ?retransmit_after:float ->
  ?seed:int ->
  ?max_steps:int ->
  ?metrics:Dsm_obs.Metrics.t ->
  ?wire:Dsm_obs.Wire.t ->
  ?recorder:Dsm_obs.Timeseries.t ->
  ?scrape_every:float ->
  ?queue:Dsm_sim.Engine.queue_impl ->
  ?arena:bool ->
  ?batch:bool ->
  unit ->
  outcome
(** Requires a complete broadcast protocol (every write reaches every
    process as its own wire message — OptP, ANBKH, OptP-direct): the
    anti-entropy reply re-supplies original messages by dot, which a
    writing-semantics or token-batching protocol cannot always do; the
    run fails with [Invalid_argument] if the log cannot serve a gap.
    Defaults: [checkpoint_every = 50.], [sync_rounds = 2] spaced
    [sync_interval = 100.] apart, [settle = true],
    [retransmit_after = 50.], [seed = 1].

    [?metrics] (default: the null registry) is threaded to the network
    and reliable channel and additionally receives
    [campaign_checkpoints], [campaign_checkpoint_bytes],
    [campaign_rollback_depth] (events lost per recovery),
    [campaign_replayed_writes], [campaign_sync_requests] and
    [campaign_sync_replies]; probes are pure observation, the campaign
    is byte-identical with and without them.
    [?wire]/[?recorder]/[?scrape_every] as in {!Sim_run.run}: the
    accountant prices channel frames over the campaign envelope
    ({!wire_of_env}), so anti-entropy traffic shows up under a "sync"
    cause; the recorder runs to the later of the workload horizon and
    the last plan event.
    @raise Invalid_argument on an invalid plan or non-positive
    [checkpoint_every]. *)

val recovery_latency : recovery -> float option
(** [caught_up_at - recovered_at]. *)

val pp_recovery : Format.formatter -> recovery -> unit
val pp_outcome : Format.formatter -> outcome -> unit
