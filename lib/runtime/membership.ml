(* Epoch-stamped membership views over a fixed universe of slots.

   The universe (the physical fabric: network endpoints, channel state,
   execution columns) is sized once; the *view* — which slots are live
   members, under which incarnation — evolves by join / leave / crash /
   rejoin transitions, each view change bumping the epoch.
   Vector-clock components are indexed by slot. Within one occupancy a
   slot is never recycled for a different logical process: a rejoining
   crashed member keeps its slot (and its durable writes stay
   attributed correctly). A departed slot sits in [Left] until the
   driver proves the departed process's writes have propagated
   everywhere (the reclamation gate), at which point {!free} recycles
   it under a bumped *generation* — the dot-space coordinate that keeps
   the new occupant's writes distinguishable from its predecessor's. *)

module Sim_time = Dsm_sim.Sim_time

type slot_state =
  | Free of { gen : int }  (* gen 0: never joined; gen > 0: recycled *)
  | Active of { inc : int; gen : int }
  | Down of { inc : int; gen : int }  (* crashed; may Recover or rejoin *)
  | Left of { gen : int; final : int }
    (* departed gracefully; [final] is the departing occupant's last
       write counter — the reclamation gate compares the cluster-wide
       Apply floor against it before recycling the slot *)

type view = { epoch : int; members : (int * int) list }

type transition =
  | Joined of int
  | Rejoined of int
  | Left_gracefully of int
  | Crashed of int
  | Recovered of int
  | Freed of int

type summary = {
  total : int;
  retained : int;
  dropped : int;
  joins : int;
  rejoins : int;
  leaves : int;
  crashes : int;
  recoveries : int;
  frees : int;
}

(* Per-slot ledger of retired generations, newest first, as
   [(gen, final)] pairs: generation [g]'s writes are exactly the seqs
   in [(final of g's predecessor, final of g]] because counters
   continue monotonically across generations. Compacted to the most
   recent [ledger_keep] entries per slot; [floor] is the final of the
   newest dropped entry, so seqs at or below it resolve to [None]
   (reclaimed long ago) while the retained entries stay exact. *)
let ledger_keep = 8

type ledger = { mutable items : (int * int) list; mutable floor : int }

type t = {
  universe : int;
  slots : slot_state array;
  mutable epoch : int;
  mutable history : (Sim_time.t * transition * view) list;  (* newest first *)
  mutable hist_len : int;
  history_limit : int option;
  mutable summary : summary;
  retired : (int, ledger) Hashtbl.t;
}

let create ?history_limit ~universe ~initial () =
  if universe <= 0 then
    invalid_arg "Membership.create: universe must be positive";
  (match history_limit with
  | Some k when k < 1 ->
      invalid_arg "Membership.create: history_limit must be positive"
  | _ -> ());
  let slots = Array.make universe (Free { gen = 0 }) in
  List.iter
    (fun p ->
      if p < 0 || p >= universe then
        invalid_arg "Membership.create: initial member out of universe";
      slots.(p) <- Active { inc = 0; gen = 0 })
    initial;
  {
    universe;
    slots;
    epoch = 0;
    history = [];
    hist_len = 0;
    history_limit;
    summary =
      {
        total = 0;
        retained = 0;
        dropped = 0;
        joins = 0;
        rejoins = 0;
        leaves = 0;
        crashes = 0;
        recoveries = 0;
        frees = 0;
      };
    retired = Hashtbl.create 16;
  }

let universe t = t.universe
let epoch t = t.epoch

let state t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.state: slot out of universe";
  t.slots.(p)

let is_active t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.is_active: slot out of universe";
  match t.slots.(p) with
  | Active _ -> true
  | Free _ | Down _ | Left _ -> false

let is_member t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.is_member: slot out of universe";
  match t.slots.(p) with
  | Active _ | Down _ -> true
  | Free _ | Left _ -> false

let incarnation t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.incarnation: slot out of universe";
  match t.slots.(p) with
  | Active { inc; _ } | Down { inc; _ } -> Some inc
  | Free _ | Left _ -> None

let generation t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.generation: slot out of universe";
  match t.slots.(p) with
  | Active { gen; _ } | Down { gen; _ } | Left { gen; _ } | Free { gen } -> gen

let active t =
  let acc = ref [] in
  for p = t.universe - 1 downto 0 do
    match t.slots.(p) with
    | Active _ -> acc := p :: !acc
    | Free _ | Down _ | Left _ -> ()
  done;
  !acc

let view t =
  {
    epoch = t.epoch;
    members =
      List.filter_map
        (fun p ->
          match t.slots.(p) with
          | Active { inc; _ } -> Some (p, inc)
          | Free _ | Down _ | Left _ -> None)
        (List.init t.universe Fun.id);
  }

(* Every slot that is or ever was a member up to now: the checker's
   completeness domain must include crashed members (their writes are
   real) but not never-occupied slots. A [Free] slot at generation > 0
   has had occupants, so it counts. *)
let ever_member t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.ever_member: slot out of universe";
  match t.slots.(p) with
  | Active _ | Down _ | Left _ -> true
  | Free { gen } -> gen > 0

let bump_summary t transition =
  let s = t.summary in
  t.summary <-
    (match transition with
    | Joined _ -> { s with total = s.total + 1; joins = s.joins + 1 }
    | Rejoined _ -> { s with total = s.total + 1; rejoins = s.rejoins + 1 }
    | Left_gracefully _ -> { s with total = s.total + 1; leaves = s.leaves + 1 }
    | Crashed _ -> { s with total = s.total + 1; crashes = s.crashes + 1 }
    | Recovered _ ->
        { s with total = s.total + 1; recoveries = s.recoveries + 1 }
    | Freed _ -> { s with total = s.total + 1; frees = s.frees + 1 })

(* Compaction: when a limit K is set and the log exceeds 2K entries,
   drop the oldest down to K (amortized O(1) per transition). Dropped
   transitions stay counted in the summary. *)
let compact t =
  match t.history_limit with
  | Some k when t.hist_len > 2 * k ->
      let kept = ref [] and n = ref 0 in
      (try
         List.iter
           (fun e ->
             if !n >= k then raise Exit;
             kept := e :: !kept;
             incr n)
           t.history
       with Exit -> ());
      let dropped = t.hist_len - !n in
      t.history <- List.rev !kept;
      t.hist_len <- !n;
      t.summary <- { t.summary with dropped = t.summary.dropped + dropped }
  | _ -> ()

let record t ~at transition =
  t.epoch <- t.epoch + 1;
  t.history <- (at, transition, view t) :: t.history;
  t.hist_len <- t.hist_len + 1;
  bump_summary t transition;
  compact t

let join t ~at p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.join: slot out of universe";
  match t.slots.(p) with
  | Free { gen } ->
      t.slots.(p) <- Active { inc = 0; gen };
      record t ~at (Joined p)
  | Down { inc; gen } ->
      (* crash-rejoin: same slot, fresh incarnation — stale pre-crash
         traffic is detected by the incarnation stamp and quarantined *)
      t.slots.(p) <- Active { inc = inc + 1; gen };
      record t ~at (Rejoined p)
  | Active _ -> invalid_arg "Membership.join: slot is already a live member"
  | Left _ -> invalid_arg "Membership.join: slot was retired by a leave"

let leave t ~at ?(final = 0) p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.leave: slot out of universe";
  if final < 0 then invalid_arg "Membership.leave: negative final counter";
  match t.slots.(p) with
  | Active { gen; _ } ->
      t.slots.(p) <- Left { gen; final };
      let l =
        match Hashtbl.find_opt t.retired p with
        | Some l -> l
        | None ->
            let l = { items = []; floor = 0 } in
            Hashtbl.add t.retired p l;
            l
      in
      l.items <- (gen, final) :: l.items;
      if List.length l.items > ledger_keep then begin
        (* drop the oldest entry; its final becomes the floor below
           which dot_gen no longer resolves exactly *)
        let rec split acc = function
          | [ (_, f) ] ->
              l.items <- List.rev acc;
              l.floor <- max l.floor f
          | x :: rest -> split (x :: acc) rest
          | [] -> ()
        in
        split [] l.items
      end;
      record t ~at (Left_gracefully p)
  | Free _ | Down _ | Left _ ->
      invalid_arg "Membership.leave: slot is not a live member"

let free t ~at p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.free: slot out of universe";
  match t.slots.(p) with
  | Left { gen; _ } ->
      (* the generation bump: the next occupant of this slot gets
         [gen + 1], so its dots can never collide with the departed
         process's even though the write counter continues from where
         it left off. The caller is responsible for the reclamation
         gate (every live replica's Apply vector has passed the retired
         occupant's [final]) — membership stays mechanical. *)
      t.slots.(p) <- Free { gen = gen + 1 };
      record t ~at (Freed p)
  | Free _ | Active _ | Down _ ->
      invalid_arg "Membership.free: slot is not retired"

let crash t ~at p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.crash: slot out of universe";
  match t.slots.(p) with
  | Active { inc; gen } ->
      t.slots.(p) <- Down { inc; gen };
      record t ~at (Crashed p)
  | Free _ | Down _ | Left _ ->
      invalid_arg "Membership.crash: slot is not a live member"

let recover t ~at p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.recover: slot out of universe";
  match t.slots.(p) with
  | Down { inc; gen } ->
      (* PR 2 recovery: same incarnation — the process resumes its old
         identity from its durable snapshot, so nothing is stale *)
      t.slots.(p) <- Active { inc; gen };
      record t ~at (Recovered p)
  | Free _ | Active _ | Left _ ->
      invalid_arg "Membership.recover: slot is not a crashed member"

let retired_final t ~slot ~gen =
  if slot < 0 || slot >= t.universe then
    invalid_arg "Membership.retired_final: slot out of universe";
  match Hashtbl.find_opt t.retired slot with
  | None -> None
  | Some l -> List.assoc_opt gen l.items

let dot_gen t ~slot ~seq =
  if slot < 0 || slot >= t.universe then
    invalid_arg "Membership.dot_gen: slot out of universe";
  if seq < 1 then invalid_arg "Membership.dot_gen: seq < 1";
  match Hashtbl.find_opt t.retired slot with
  | None ->
      (* never retired: everything belongs to the current occupancy *)
      Some (generation t slot)
  | Some l ->
      if seq <= l.floor then None  (* below the compaction floor *)
      else
        (* retirements are consecutive occupancies of this slot, so
           walking oldest→newest, the owner is the first retired
           generation whose final covers the seq; beyond the newest
           final the write is the current occupant's *)
        let rec go = function
          | [] -> Some (generation t slot)
          | (g, f) :: newer -> if seq <= f then Some g else go newer
        in
        go (List.rev l.items)

let history t = List.rev t.history
let history_summary t = { t.summary with retained = t.hist_len }

let pp_transition ppf = function
  | Joined p -> Format.fprintf ppf "join p%d" (p + 1)
  | Rejoined p -> Format.fprintf ppf "rejoin p%d" (p + 1)
  | Left_gracefully p -> Format.fprintf ppf "leave p%d" (p + 1)
  | Crashed p -> Format.fprintf ppf "crash p%d" (p + 1)
  | Recovered p -> Format.fprintf ppf "recover p%d" (p + 1)
  | Freed p -> Format.fprintf ppf "free p%d" (p + 1)

let pp_view ppf (v : view) =
  Format.fprintf ppf "epoch %d {%a}" v.epoch
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (p, inc) ->
         if inc = 0 then Format.fprintf ppf "p%d" (p + 1)
         else Format.fprintf ppf "p%d#%d" (p + 1) inc))
    v.members
