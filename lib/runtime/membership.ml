(* Epoch-stamped membership views over a fixed universe of slots.

   The universe (the physical fabric: network endpoints, channel state,
   execution columns) is sized once; the *view* — which slots are live
   members, under which incarnation — evolves by join / leave / crash /
   rejoin transitions, each view change bumping the epoch. Vector-clock
   components are indexed by slot, so a slot is never recycled for a
   different logical process within one run: a rejoining crashed member
   keeps its slot (and its durable writes stay attributed correctly),
   while a departed slot stays [Left] forever. *)

module Sim_time = Dsm_sim.Sim_time

type slot_state =
  | Free  (* never joined *)
  | Active of { inc : int }
  | Down of { inc : int }  (* crashed member; may Recover or rejoin *)
  | Left  (* departed gracefully; the slot is retired *)

type view = { epoch : int; members : (int * int) list }

type transition =
  | Joined of int
  | Rejoined of int
  | Left_gracefully of int
  | Crashed of int
  | Recovered of int

type t = {
  universe : int;
  slots : slot_state array;
  mutable epoch : int;
  mutable history : (Sim_time.t * transition * view) list;  (* newest first *)
}

let create ~universe ~initial =
  if universe <= 0 then
    invalid_arg "Membership.create: universe must be positive";
  let slots = Array.make universe Free in
  List.iter
    (fun p ->
      if p < 0 || p >= universe then
        invalid_arg "Membership.create: initial member out of universe";
      slots.(p) <- Active { inc = 0 })
    initial;
  { universe; slots; epoch = 0; history = [] }

let universe t = t.universe
let epoch t = t.epoch

let is_active t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.is_active: slot out of universe";
  match t.slots.(p) with Active _ -> true | Free | Down _ | Left -> false

let is_member t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.is_member: slot out of universe";
  match t.slots.(p) with
  | Active _ | Down _ -> true
  | Free | Left -> false

let incarnation t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.incarnation: slot out of universe";
  match t.slots.(p) with
  | Active { inc } | Down { inc } -> Some inc
  | Free | Left -> None

let active t =
  let acc = ref [] in
  for p = t.universe - 1 downto 0 do
    match t.slots.(p) with
    | Active _ -> acc := p :: !acc
    | Free | Down _ | Left -> ()
  done;
  !acc

let view t =
  {
    epoch = t.epoch;
    members =
      List.filter_map
        (fun p ->
          match t.slots.(p) with
          | Active { inc } -> Some (p, inc)
          | Free | Down _ | Left -> None)
        (List.init t.universe Fun.id);
  }

(* Every slot that is or ever was a member up to now: the checker's
   completeness domain must include crashed members (their writes are
   real) but not Free slots. *)
let ever_member t p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.ever_member: slot out of universe";
  match t.slots.(p) with
  | Active _ | Down _ | Left -> true
  | Free -> false

let record t ~at transition =
  t.epoch <- t.epoch + 1;
  t.history <- (at, transition, view t) :: t.history

let join t ~at p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.join: slot out of universe";
  match t.slots.(p) with
  | Free ->
      t.slots.(p) <- Active { inc = 0 };
      record t ~at (Joined p)
  | Down { inc } ->
      (* crash-rejoin: same slot, fresh incarnation — stale pre-crash
         traffic is detected by the incarnation stamp and quarantined *)
      t.slots.(p) <- Active { inc = inc + 1 };
      record t ~at (Rejoined p)
  | Active _ -> invalid_arg "Membership.join: slot is already a live member"
  | Left -> invalid_arg "Membership.join: slot was retired by a leave"

let leave t ~at p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.leave: slot out of universe";
  match t.slots.(p) with
  | Active _ ->
      t.slots.(p) <- Left;
      record t ~at (Left_gracefully p)
  | Free | Down _ | Left ->
      invalid_arg "Membership.leave: slot is not a live member"

let crash t ~at p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.crash: slot out of universe";
  match t.slots.(p) with
  | Active { inc } ->
      t.slots.(p) <- Down { inc };
      record t ~at (Crashed p)
  | Free | Down _ | Left ->
      invalid_arg "Membership.crash: slot is not a live member"

let recover t ~at p =
  if p < 0 || p >= t.universe then
    invalid_arg "Membership.recover: slot out of universe";
  match t.slots.(p) with
  | Down { inc } ->
      (* PR 2 recovery: same incarnation — the process resumes its old
         identity from its durable snapshot, so nothing is stale *)
      t.slots.(p) <- Active { inc };
      record t ~at (Recovered p)
  | Free | Active _ | Left ->
      invalid_arg "Membership.recover: slot is not a crashed member"

let history t = List.rev t.history

let pp_transition ppf = function
  | Joined p -> Format.fprintf ppf "join p%d" (p + 1)
  | Rejoined p -> Format.fprintf ppf "rejoin p%d" (p + 1)
  | Left_gracefully p -> Format.fprintf ppf "leave p%d" (p + 1)
  | Crashed p -> Format.fprintf ppf "crash p%d" (p + 1)
  | Recovered p -> Format.fprintf ppf "recover p%d" (p + 1)

let pp_view ppf (v : view) =
  Format.fprintf ppf "epoch %d {%a}" v.epoch
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (p, inc) ->
         if inc = 0 then Format.fprintf ppf "p%d" (p + 1)
         else Format.fprintf ppf "p%d#%d" (p + 1) inc))
    v.members
