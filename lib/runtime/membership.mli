(** Epoch-stamped membership views for dynamic replica sets.

    OptP as published fixes [P = {p1..pn}] up front. This module is the
    bookkeeping that lets the replica set change while the protocol and
    checker keep working: a fixed {e universe} of slots (the physical
    fabric — network endpoints, channel state, execution columns — is
    sized once at the universe), over which a {e view} evolves:

    - a [Free] slot {!join}s as a fresh member (incarnation 0);
    - an [Active] member {!crash}es, then either {!recover}s under the
      {e same} incarnation (PR 2's model: it resumes its old identity
      from its durable snapshot) or re-{!join}s under a {e fresh}
      incarnation (the crash-rejoin path: its pre-crash in-flight
      traffic is stale and must be quarantined);
    - an [Active] member {!leave}s gracefully, retiring its slot;
    - a [Left] slot is {!free}d for reuse under a bumped {e generation}
      once the driver has proved the reclamation gate (every live
      replica's Apply vector has passed the departed occupant's final
      write counter).

    Every transition bumps the {e epoch} — the counter the drivers
    stamp into {!Dsm_sim.Network.set_epoch} and the checker uses to
    segment its audit. Vector-clock components are indexed by slot;
    within one generation a slot always denotes the same logical
    process. Reuse extends the dot space to
    [(slot, generation, counter)]: the write counter continues
    monotonically across generations (so counter arithmetic everywhere
    is untouched), while the generation stamp keeps a reused slot's new
    occupant distinguishable from its predecessor in dots, vectors and
    staleness checks. *)

module Sim_time := Dsm_sim.Sim_time

type slot_state =
  | Free of { gen : int }
      (** [gen = 0]: never occupied; [gen > 0]: recycled — the next
          joiner adopts this generation. *)
  | Active of { inc : int; gen : int }
  | Down of { inc : int; gen : int }
  | Left of { gen : int; final : int }
      (** [final] is the departed occupant's last write counter — what
          the reclamation gate compares the cluster-wide Apply floor
          against before {!free} recycles the slot. *)

type view = { epoch : int; members : (int * int) list }
(** Live members as [(slot, incarnation)], ascending by slot. *)

type transition =
  | Joined of int
  | Rejoined of int
  | Left_gracefully of int
  | Crashed of int
  | Recovered of int
  | Freed of int

type summary = {
  total : int;  (** transitions ever recorded *)
  retained : int;  (** currently in the history log *)
  dropped : int;  (** compacted away under [history_limit] *)
  joins : int;
  rejoins : int;
  leaves : int;
  crashes : int;
  recoveries : int;
  frees : int;
}

type t

val create : ?history_limit:int -> universe:int -> initial:int list -> unit -> t
(** [create ~universe ~initial ()] — [initial] slots start [Active] at
    incarnation 0, generation 0, epoch 0. [history_limit] bounds the
    transition log: when set to [K], the log is compacted back to the
    newest [K] entries whenever it exceeds [2K] (dropped transitions
    stay counted in {!history_summary}) — unbounded when omitted.
    @raise Invalid_argument if [universe <= 0], an initial member is
    outside it, or [history_limit < 1]. *)

val universe : t -> int
val epoch : t -> int

val state : t -> int -> slot_state
(** Raw slot state — what the soak driver's reclamation gate inspects
    ([Left { final; _ }] vs the cluster Apply floor). *)

val is_active : t -> int -> bool
(** Live member right now. *)

val is_member : t -> int -> bool
(** Live or crashed member — a crashed member is still in the view
    (its writes are owed to it on recovery); [Free] and [Left] slots
    are not. *)

val ever_member : t -> int -> bool
(** Was ever in the view — the checker's completeness domain: writes of
    crashed or departed members are real and must have propagated. A
    [Free] slot at generation > 0 has had occupants, so it counts. *)

val incarnation : t -> int -> int option
(** Current incarnation of a member slot, [None] for [Free]/[Left]. *)

val generation : t -> int -> int
(** Current generation of the slot, in any state. For a [Free] slot
    this is the generation its {e next} occupant will adopt. *)

val active : t -> int list
(** Live member slots, ascending — the broadcast set. *)

val view : t -> view

(** {1 Transitions}

    Each bumps the epoch and appends to {!history}.
    @raise Invalid_argument on a transition the slot state forbids. *)

val join : t -> at:Sim_time.t -> int -> unit
(** [Free] slot → fresh member at the slot's current generation;
    [Down] slot → crash-rejoin under a bumped incarnation (same
    generation — it is the same logical process). *)

val leave : t -> at:Sim_time.t -> ?final:int -> int -> unit
(** [leave t ~at ~final p] retires [p]'s slot. [final] (default 0) is
    the departing occupant's last write counter, recorded in the
    retired-generation ledger for {!dot_gen} and the reclamation
    gate. *)

val crash : t -> at:Sim_time.t -> int -> unit

val recover : t -> at:Sim_time.t -> int -> unit
(** PR 2 recovery: same incarnation. *)

val free : t -> at:Sim_time.t -> int -> unit
(** [Left] slot → [Free] under a bumped generation. The caller must
    have established the reclamation gate first (the departed
    occupant's writes have propagated to every live replica) —
    membership stays mechanical and does not verify it. *)

(** {1 Retired-generation ledger} *)

val dot_gen : t -> slot:int -> seq:int -> int option
(** [dot_gen t ~slot ~seq] resolves which generation's occupant issued
    the [seq]-th write of [slot] (write counters continue monotonically
    across generations, so seq ranges between retirement finals
    identify the occupant). [None] when [seq] falls below the ledger's
    compaction floor — such writes were reclaimed long ago. *)

val retired_final : t -> slot:int -> gen:int -> int option
(** Final write counter recorded when generation [gen] of [slot]
    retired; [None] if not retired or compacted away. *)

(** {1 History} *)

val history : t -> (Sim_time.t * transition * view) list
(** Retained transitions oldest-first, each with the view it produced.
    Bounded when [history_limit] was given to {!create}. *)

val history_summary : t -> summary
(** Counts of every transition ever recorded, including compacted-away
    entries. *)

val pp_transition : Format.formatter -> transition -> unit
val pp_view : Format.formatter -> view -> unit
