(** Epoch-stamped membership views for dynamic replica sets.

    OptP as published fixes [P = {p1..pn}] up front. This module is the
    bookkeeping that lets the replica set change while the protocol and
    checker keep working: a fixed {e universe} of slots (the physical
    fabric — network endpoints, channel state, execution columns — is
    sized once at the universe), over which a {e view} evolves:

    - a [Free] slot {!join}s as a fresh member (incarnation 0);
    - an [Active] member {!crash}es, then either {!recover}s under the
      {e same} incarnation (PR 2's model: it resumes its old identity
      from its durable snapshot) or re-{!join}s under a {e fresh}
      incarnation (the crash-rejoin path: its pre-crash in-flight
      traffic is stale and must be quarantined);
    - an [Active] member {!leave}s gracefully, retiring its slot for
      the rest of the run (vector-clock components are indexed by slot,
      so slots are never recycled — a departed process's writes stay
      attributed to it forever).

    Every transition bumps the {e epoch} — the generation counter the
    drivers stamp into {!Dsm_sim.Network.set_epoch} and the checker
    uses to segment its audit. Views only grow in clock width, never
    shrink: a leave removes the member from the broadcast set but its
    clock component remains (frozen), which is what keeps old vectors
    comparable across epochs. *)

module Sim_time := Dsm_sim.Sim_time

type slot_state =
  | Free
  | Active of { inc : int }
  | Down of { inc : int }
  | Left

type view = { epoch : int; members : (int * int) list }
(** Live members as [(slot, incarnation)], ascending by slot. *)

type transition =
  | Joined of int
  | Rejoined of int
  | Left_gracefully of int
  | Crashed of int
  | Recovered of int

type t

val create : universe:int -> initial:int list -> t
(** [create ~universe ~initial] — [initial] slots start [Active] at
    incarnation 0 and epoch 0.
    @raise Invalid_argument if [universe <= 0] or an initial member is
    outside it. *)

val universe : t -> int
val epoch : t -> int

val is_active : t -> int -> bool
(** Live member right now. *)

val is_member : t -> int -> bool
(** Live or crashed member — a crashed member is still in the view
    (its writes are owed to it on recovery); [Free] and [Left] slots
    are not. *)

val ever_member : t -> int -> bool
(** Was ever in the view — the checker's completeness domain: writes of
    crashed or departed members are real and must have propagated. *)

val incarnation : t -> int -> int option
(** Current incarnation of a member slot, [None] for [Free]/[Left]. *)

val active : t -> int list
(** Live member slots, ascending — the broadcast set. *)

val view : t -> view

(** {1 Transitions}

    Each bumps the epoch and appends to {!history}.
    @raise Invalid_argument on a transition the slot state forbids. *)

val join : t -> at:Sim_time.t -> int -> unit
(** [Free] slot → fresh member; [Down] slot → crash-rejoin under a
    bumped incarnation. *)

val leave : t -> at:Sim_time.t -> int -> unit
val crash : t -> at:Sim_time.t -> int -> unit

val recover : t -> at:Sim_time.t -> int -> unit
(** PR 2 recovery: same incarnation. *)

val history : t -> (Sim_time.t * transition * view) list
(** All transitions oldest-first, each with the view it produced. *)

val pp_transition : Format.formatter -> transition -> unit
val pp_view : Format.formatter -> view -> unit
