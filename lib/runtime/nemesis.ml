module Latency = Dsm_sim.Latency
module Network = Dsm_sim.Network
module Fault_plan = Dsm_sim.Fault_plan
module Sim_time = Dsm_sim.Sim_time
module Rng = Dsm_sim.Rng
module Spec = Dsm_workload.Spec
module Protocol = Dsm_core.Protocol

(* ---------------------------------------------------------------- *)
(* Verdicts                                                          *)
(* ---------------------------------------------------------------- *)

type verdict =
  | Clean
  | Refuted_suspicion
  | Degraded_session
  | Unnecessary_delay
  | Ghost_leak
  | Session_anomaly
  | Diverged
  | Violation
  | Stuck

let all_verdicts =
  [
    Clean;
    Refuted_suspicion;
    Degraded_session;
    Unnecessary_delay;
    Ghost_leak;
    Session_anomaly;
    Diverged;
    Violation;
    Stuck;
  ]

let verdict_name = function
  | Clean -> "clean"
  | Refuted_suspicion -> "refuted-suspicion"
  | Degraded_session -> "degraded-session"
  | Unnecessary_delay -> "unnecessary-delay"
  | Ghost_leak -> "ghost-leak"
  | Session_anomaly -> "session-anomaly"
  | Diverged -> "diverged"
  | Violation -> "violation"
  | Stuck -> "stuck"

let verdict_of_name s =
  List.find_opt (fun v -> verdict_name v = s) all_verdicts

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_name v)

let accepted = function
  | Clean | Refuted_suspicion | Degraded_session -> true
  | Unnecessary_delay | Ghost_leak | Session_anomaly | Diverged | Violation
  | Stuck ->
      false

let classify ~optimal (o : Churn_campaign.outcome) =
  let r = o.report in
  (* a false suspicion is resolved when a later heartbeat refuted it,
     when the slot re-entered the view anyway (scripted recover or
     rejoin — it is active at the end), or when the plan meant for the
     slot to be gone regardless (left down, or scheduled to leave);
     only a live slot left permanently ejected is divergence *)
  let gone_by_plan p =
    List.mem p (Fault_plan.down_at_end o.plan)
    || List.exists
         (function
           | Fault_plan.Leave { proc; _ } -> proc = p
           | _ -> false)
         o.plan
  in
  let unrefuted_false_suspicion =
    List.exists
      (fun (s : Churn_campaign.suspicion) ->
        (not s.strue)
        && s.srefuted_at = None
        && (not (List.mem s.speer o.active_at_end))
        && not (gone_by_plan s.speer))
      o.suspicions
  in
  let session_anomaly, session_degraded =
    match o.sessions with
    | None -> (false, false)
    | Some (sr : Session_tier.report) ->
        ( sr.Session_tier.violations <> []
          || sr.Session_tier.duplicate_writes > 0,
          sr.Session_tier.degraded <> [] )
  in
  if r.violations <> [] then Violation
  else if session_anomaly then Session_anomaly
  else if o.quarantine_leaks > 0 then Ghost_leak
  else if
    r.lost <> [] || (not r.complete) || (not o.live_equal)
    || unrefuted_false_suspicion
  then Diverged
  else if optimal && r.unnecessary_delays > 0 then Unnecessary_delay
  else if o.false_suspicions > 0 then Refuted_suspicion
  else if session_degraded then Degraded_session
  else Clean

(* ---------------------------------------------------------------- *)
(* Schedules                                                         *)
(* ---------------------------------------------------------------- *)

type schedule = {
  name : string;
  protocol : string;
  universe : int;
  initial : int;
  vars : int;
  ops_per_process : int;
  write_ratio : float;
  latency : Latency.t;
  faults : Network.faults option;
  detector : Failure_detector.config option;
  sessions : Session_tier.config option;
  plan : Fault_plan.t;
  seed : int;
}

let protocol_names = [ "optp"; "anbkh"; "optp-direct"; "canary" ]

let protocol_by_name = function
  | "optp" -> Some (Protocol.Packed (module Dsm_core.Opt_p))
  | "anbkh" -> Some (Protocol.Packed (module Dsm_core.Anbkh))
  | "optp-direct" -> Some (Protocol.Packed (module Dsm_core.Opt_p_direct))
  | "canary" -> Some (Protocol.Packed (module Dsm_core.Canary))
  | _ -> None

(* the canary masquerades as OptP, so it also inherits the optimality
   audit — a buggy protocol must not dodge any judgement *)
let optimal_protocol = function
  | "optp" | "optp-direct" | "canary" -> true
  | _ -> false

let think_mean = 10.

let horizon s = float_of_int s.ops_per_process *. think_mean

let validate_schedule s =
  let fail fmt = Format.kasprintf invalid_arg ("Nemesis: " ^^ fmt) in
  if protocol_by_name s.protocol = None then
    fail "unknown protocol %S (expected one of %s)" s.protocol
      (String.concat ", " protocol_names);
  if s.universe < 2 then fail "universe %d < 2" s.universe;
  if s.initial < 2 || s.initial > s.universe then
    fail "initial %d outside [2, %d]" s.initial s.universe;
  if s.vars < 1 then fail "vars %d < 1" s.vars;
  if s.ops_per_process < 1 then
    fail "ops_per_process %d < 1" s.ops_per_process;
  if not (s.write_ratio >= 0. && s.write_ratio <= 1.) then
    fail "write_ratio %g outside [0, 1]" s.write_ratio;
  (match Latency.validate s.latency with
  | Ok () -> ()
  | Error msg -> fail "latency: %s" msg);
  Option.iter Session_tier.validate_config s.sessions;
  Fault_plan.validate ~n:s.universe
    ~initial:(List.init s.initial Fun.id)
    s.plan

(* ---------------------------------------------------------------- *)
(* Running and judging                                               *)
(* ---------------------------------------------------------------- *)

type result = {
  sched : schedule;
  verdict : verdict;
  detail : string;
  outcome : Churn_campaign.outcome option;
}

let detail_of (o : Churn_campaign.outcome) =
  let r = o.report in
  let base =
    Printf.sprintf
      "applies=%d delays=%d (necessary=%d unnecessary=%d) violations=%d \
       lost=%d ghost=%d false-suspicions=%d refuted=%d live_equal=%b \
       complete=%b"
      r.total_applies r.total_delays r.necessary_delays
      r.unnecessary_delays
      (List.length r.violations)
      (List.length r.lost) o.quarantine_leaks o.false_suspicions
      o.refutations o.live_equal r.complete
  in
  match o.sessions with
  | None -> base
  | Some (sr : Session_tier.report) ->
      Printf.sprintf
        "%s sessions: ops=%d migrations=%d retries=%d degraded=%d \
         dedup=%d dup-writes=%d session-violations=%d"
        base sr.Session_tier.ops_done
        (List.length sr.Session_tier.migrations)
        sr.Session_tier.retries
        (List.length sr.Session_tier.degraded)
        sr.Session_tier.dedup_hits sr.Session_tier.duplicate_writes
        (List.length sr.Session_tier.violations)

let run ?metrics (s : schedule) : result =
  validate_schedule s;
  match protocol_by_name s.protocol with
  | None -> assert false (* validate_schedule checked *)
  | Some (Protocol.Packed (module P)) -> (
      let spec =
        Spec.make ~n:s.universe ~m:s.vars
          ~ops_per_process:s.ops_per_process ~write_ratio:s.write_ratio
          ~seed:s.seed ()
      in
      try
        let o =
          Churn_campaign.run
            (module P)
            ~spec ~latency:s.latency ?faults:s.faults ~plan:s.plan
            ~initial:s.initial ?detector:s.detector ~mixed:true
            ?sessions:s.sessions ~seed:s.seed ?metrics ()
        in
        let verdict = classify ~optimal:(optimal_protocol s.protocol) o in
        { sched = s; verdict; detail = detail_of o; outcome = Some o }
      with e ->
        {
          sched = s;
          verdict = Stuck;
          detail = Printexc.to_string e;
          outcome = None;
        })

(* ---------------------------------------------------------------- *)
(* Scenario corpus                                                   *)
(* ---------------------------------------------------------------- *)

type scenario = {
  sched_ : schedule;
  expected : verdict list;
  about : string;
}

let t = Sim_time.of_float

let default_latency = Latency.Lognormal { mu = log 10. -. 0.5; sigma = 1.0 }

let base ~name ?(protocol = "optp") ?(universe = 4) ?initial ?(vars = 4)
    ?(ops = 40) ?(write_ratio = 0.5) ?(latency = default_latency) ?faults
    ?detector ?sessions ?(seed = 1) events =
  let initial = Option.value initial ~default:universe in
  {
    name;
    protocol;
    universe;
    initial;
    vars;
    ops_per_process = ops;
    write_ratio;
    latency;
    faults;
    detector;
    sessions;
    plan = Fault_plan.make events;
    seed;
  }

(* the session scenarios mirror the tier's own regression campaigns:
   a twitchy detector so suspicion (not just scripted death) drives
   migration, and the partition-home shape where the victim keeps
   serving its sticky sessions while its writes cannot propagate *)
let session_cfg ?(count = 16) ?(handoff = true) ?(placement = Session_tier.Sticky)
    ~seed () =
  {
    (Session_tier.default_config ~count) with
    Session_tier.placement;
    ops_per_session = 24;
    think_mean = 4.;
    write_ratio = 0.5;
    handoff;
    seed;
  }

let scenarios =
  [
    {
      sched_ = base ~name:"clean-baseline" [];
      expected = [ Clean ];
      about = "no faults at all — the paper's §3.1 model, must be clean";
    };
    {
      sched_ =
        base ~name:"partition-heal"
          [
            Fault_plan.Cut { groups = [ [ 0; 1 ]; [ 2; 3 ] ]; at = t 80. };
            Fault_plan.Heal { at = t 180. };
          ];
      expected = [ Clean ];
      about = "one symmetric partition episode; retransmission heals it";
    };
    {
      sched_ =
        base ~name:"crash-recover"
          [
            Fault_plan.Crash { proc = 1; at = t 60. };
            Fault_plan.Recover { proc = 1; at = t 140. };
            Fault_plan.Crash { proc = 3; at = t 180. };
            Fault_plan.Recover { proc = 3; at = t 260. };
          ];
      expected = [ Clean ];
      about = "two crash/recover episodes with anti-entropy catch-up";
    };
    {
      sched_ =
        base ~name:"asym-cut"
          [
            Fault_plan.Cut_oneway { src = 0; dst = 2; at = t 70. };
            Fault_plan.Cut_oneway { src = 3; dst = 1; at = t 90. };
            Fault_plan.Heal_oneway { src = 0; dst = 2; at = t 200. };
            Fault_plan.Heal_oneway { src = 3; dst = 1; at = t 220. };
          ];
      expected = [ Clean ];
      about =
        "one-way link cuts: acks flow, data does not — retransmission \
         must still converge";
    };
    {
      sched_ =
        base ~name:"flap-storm"
          [
            Fault_plan.Flap
              { a = 0; b = 1; period = 7.; until_ = 150.; at = t 50. };
            Fault_plan.Flap
              { a = 2; b = 3; period = 5.; until_ = 260.; at = t 120. };
          ];
      expected = [ Clean ];
      about = "links oscillating cut/healed faster than retransmission";
    };
    {
      sched_ =
        base ~name:"tail-inflation"
          [
            Fault_plan.Inflate
              { src = 1; dst = 2; factor = 6.; until_ = 220.; at = t 60. };
            Fault_plan.Inflate
              { src = 0; dst = 3; factor = 4.; until_ = 300.; at = t 100. };
          ];
      expected = [ Clean ];
      about =
        "per-link tail-latency spikes reorder messages aggressively; \
         OptP must stay at zero unnecessary delays";
    };
    {
      sched_ =
        base ~name:"churn-storm" ~universe:6 ~initial:4
          [
            Fault_plan.Join { proc = 4; at = t 80. };
            Fault_plan.Crash { proc = 1; at = t 100. };
            Fault_plan.Join { proc = 1; at = t 170. };
            Fault_plan.Join { proc = 5; at = t 190. };
            Fault_plan.Leave { proc = 2; at = t 280. };
          ];
      expected = [ Clean ];
      about =
        "fresh joins, a crash-rejoin under a new incarnation, and a \
         graceful leave in one run";
    };
    {
      sched_ =
        base ~name:"false-suspicion-storm"
          ~detector:
            (Failure_detector.config ~threshold:1.1 ~heartbeat_every:20.
               ())
          [
            Fault_plan.Cut { groups = [ [ 0; 1 ]; [ 2; 3 ] ]; at = t 90. };
            Fault_plan.Heal { at = t 170. };
          ];
      expected = [ Refuted_suspicion ];
      about =
        "hair-trigger accrual detector under a partition: live slots \
         are falsely suspected, heartbeats after the heal must refute \
         every suspicion";
    };
    {
      sched_ =
        base ~name:"corrupt-storm"
          ~faults:{ Network.drop = 0.02; duplicate = 0.02; corrupt = 0.05 }
          [];
      expected = [ Clean ];
      about =
        "probabilistic drop/duplicate/corrupt frames; checksumming and \
         retransmission must mask all of it";
    };
    {
      sched_ =
        base ~name:"kitchen-sink" ~universe:6 ~initial:5
          ~faults:{ Network.drop = 0.01; duplicate = 0.01; corrupt = 0.02 }
          ~detector:(Failure_detector.config ~threshold:3. ())
          [
            Fault_plan.Join { proc = 5; at = t 60. };
            Fault_plan.Crash { proc = 1; at = t 80. };
            Fault_plan.Cut_oneway { src = 0; dst = 2; at = t 100. };
            Fault_plan.Join { proc = 1; at = t 150. };
            Fault_plan.Flap
              { a = 2; b = 4; period = 6.; until_ = 230.; at = t 160. };
            Fault_plan.Heal_oneway { src = 0; dst = 2; at = t 190. };
            Fault_plan.Cut { groups = [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]; at = t 200. };
            Fault_plan.Inflate
              { src = 3; dst = 0; factor = 5.; until_ = 320.; at = t 210. };
            Fault_plan.Heal { at = t 260. };
            Fault_plan.Leave { proc = 4; at = t 300. };
          ];
      expected = [ Clean; Refuted_suspicion ];
      about =
        "every fault family at once: churn + crash-rejoin + symmetric \
         and asymmetric cuts + flap + inflation + corruption + an armed \
         detector";
    };
    {
      sched_ =
        base ~name:"session-kill-home" ~universe:5 ~vars:3 ~ops:20
          ~latency:(Latency.Exponential { mean = 8. })
          ~detector:
            (Failure_detector.config ~threshold:1.2 ~heartbeat_every:10.
               ())
          ~sessions:(session_cfg ~seed:1 ())
          [ Fault_plan.Crash { proc = 0; at = t 60. } ]
          ~seed:1;
      expected = [ Clean; Refuted_suspicion; Degraded_session ];
      about =
        "sticky sessions homed on a replica that dies and stays dead: \
         the detector ejects it, every session must migrate with its \
         vector and keep all four guarantees";
    };
    {
      sched_ =
        base ~name:"session-partition-home" ~universe:5 ~vars:3 ~ops:20
          ~latency:(Latency.Exponential { mean = 8. })
          ~detector:
            (Failure_detector.config ~threshold:1.2 ~heartbeat_every:8. ())
          ~sessions:(session_cfg ~seed:100 ())
          [
            Fault_plan.Cut
              { groups = [ [ 0 ]; [ 1; 2; 3; 4 ] ]; at = t 40. };
            Fault_plan.Heal { at = t 400. };
          ]
          ~seed:100;
      expected = [ Clean; Refuted_suspicion; Degraded_session ];
      about =
        "the home keeps serving its sticky sessions while partitioned \
         away — its committed writes cannot propagate; handoff of the \
         session vector is what keeps the migrants correct";
    };
    {
      sched_ =
        base ~name:"session-migrate-storm" ~universe:5 ~vars:3 ~ops:20
          ~latency:(Latency.Exponential { mean = 8. })
          ~detector:
            (Failure_detector.config ~threshold:1.1 ~heartbeat_every:8. ())
          ~sessions:(session_cfg ~count:24 ~placement:Session_tier.Nearest
                       ~seed:7 ())
          [
            Fault_plan.Crash { proc = 1; at = t 50. };
            Fault_plan.Recover { proc = 1; at = t 160. };
            Fault_plan.Cut
              { groups = [ [ 0; 3 ]; [ 1; 2; 4 ] ]; at = t 200. };
            Fault_plan.Heal { at = t 280. };
            Fault_plan.Crash { proc = 3; at = t 330. };
            Fault_plan.Recover { proc = 3; at = t 420. };
          ]
          ~seed:7;
      expected = [ Clean; Refuted_suspicion; Degraded_session ];
      about =
        "nearest-placement sessions failing over and back through \
         crash/recover and partition episodes under a hair-trigger \
         detector — a migration storm, every hop a handoff";
    };
    {
      sched_ =
        base ~name:"session-dropped-handoff" ~universe:5 ~vars:3 ~ops:20
          ~latency:(Latency.Exponential { mean = 8. })
          ~detector:
            (Failure_detector.config ~threshold:1.2 ~heartbeat_every:8. ())
          ~sessions:(session_cfg ~handoff:false ~seed:100 ())
          [
            Fault_plan.Cut
              { groups = [ [ 0 ]; [ 1; 2; 3; 4 ] ]; at = t 40. };
            Fault_plan.Heal { at = t 400. };
          ]
          ~seed:100;
      expected = [ Session_anomaly ];
      about =
        "the canary: same failover as session-partition-home but the \
         session vector is dropped on migration — the re-attributed \
         checker must catch the stale reads; keep it expected-failing";
    };
    {
      sched_ =
        base ~name:"canary-reorder" ~protocol:"canary"
          [
            Fault_plan.Inflate
              { src = 0; dst = 2; factor = 10.; until_ = 350.; at = t 10. };
          ];
      expected = [ Violation ];
      about =
        "the deliberately buggy per-sender-FIFO protocol under a delay \
         spike: cross-issuer reordering must be caught as a safety \
         violation — the swarm's self-test";
    };
  ]

let find_scenario name =
  List.find_opt (fun s -> s.sched_.name = name) scenarios

(* ---------------------------------------------------------------- *)
(* Swarm                                                             *)
(* ---------------------------------------------------------------- *)

let random_schedule ?(protocol = "optp") ~seed () =
  let rng = Rng.create seed in
  let universe = 4 + Rng.int rng 3 in
  let fresh_joins = if Rng.bernoulli rng 0.4 then 1 else 0 in
  let initial = universe - fresh_joins in
  let ops = 20 + Rng.int rng 21 in
  let horizon = float_of_int ops *. think_mean in
  let hi = 0.85 *. horizon in
  let span a b = Rng.uniform rng (a *. horizon) (b *. horizon) in
  (* disjoint victim sets over the initial members; order.(0) is the
     stable member that stays up throughout *)
  let order = Array.init initial Fun.id in
  Rng.shuffle rng order;
  let avail = initial - 1 in
  let rejoins = if avail >= 1 && Rng.bernoulli rng 0.5 then 1 else 0 in
  let leaves =
    if avail - rejoins >= 1 && Rng.bernoulli rng 0.4 then 1 else 0
  in
  let crashes =
    let room = min 2 (avail - rejoins - leaves) in
    if room <= 0 then 0 else Rng.int rng (room + 1)
  in
  let vi = ref 1 in
  let take () =
    let p = order.(!vi) in
    incr vi;
    p
  in
  let events = ref [] in
  let push e = events := e :: !events in
  for slot = initial to universe - 1 do
    push (Fault_plan.Join { proc = slot; at = t (span 0.1 0.45) })
  done;
  for _ = 1 to rejoins do
    let p = take () in
    let c = span 0.15 0.4 in
    let back = Float.min (c +. span 0.1 0.25) hi in
    push (Fault_plan.Crash { proc = p; at = t c });
    push (Fault_plan.Join { proc = p; at = t back })
  done;
  for _ = 1 to leaves do
    push (Fault_plan.Leave { proc = take (); at = t (span 0.55 0.85) })
  done;
  for _ = 1 to crashes do
    let p = take () in
    let c = span 0.1 0.5 in
    let back = Float.min (c +. span 0.1 0.3) hi in
    push (Fault_plan.Crash { proc = p; at = t c });
    push (Fault_plan.Recover { proc = p; at = t back })
  done;
  (* sequential two-sided partitions: episodes never overlap, so each
     Heal tears down exactly its own Cut *)
  let partitions = Rng.int rng 3 in
  let cursor = ref (0.1 *. horizon) in
  for _ = 1 to partitions do
    let start = !cursor +. Rng.uniform rng 0. (0.1 *. horizon) in
    let stop =
      start +. Rng.uniform rng (0.05 *. horizon) (0.2 *. horizon)
    in
    let ids = Array.init universe Fun.id in
    Rng.shuffle rng ids;
    let k = 1 + Rng.int rng (universe - 1) in
    if stop < hi then begin
      let g1 = Array.to_list (Array.sub ids 0 k) in
      let g2 = Array.to_list (Array.sub ids k (universe - k)) in
      push (Fault_plan.Cut { groups = [ g1; g2 ]; at = t start });
      push (Fault_plan.Heal { at = t stop })
    end;
    cursor := stop +. Rng.uniform rng 0. (0.05 *. horizon)
  done;
  let pair () =
    let src = Rng.int rng universe in
    let dst = (src + 1 + Rng.int rng (universe - 1)) mod universe in
    (src, dst)
  in
  let oneways = Rng.int rng 3 in
  for _ = 1 to oneways do
    let src, dst = pair () in
    let c = span 0.1 0.5 in
    let h = Float.min (c +. span 0.05 0.3) hi in
    push (Fault_plan.Cut_oneway { src; dst; at = t c });
    push (Fault_plan.Heal_oneway { src; dst; at = t h })
  done;
  let flaps = Rng.int rng 3 in
  for _ = 1 to flaps do
    let a, b = pair () in
    let period = span 0.01 0.05 in
    let start = span 0.1 0.6 in
    let until_ = Float.min (start +. span 0.1 0.3) hi in
    push (Fault_plan.Flap { a; b; period; until_; at = t start })
  done;
  let inflations = Rng.int rng 3 in
  for _ = 1 to inflations do
    let src, dst = pair () in
    let factor = 2. +. (6. *. Rng.float rng) in
    let start = span 0.1 0.55 in
    let until_ = Float.min (start +. span 0.1 0.4) hi in
    push (Fault_plan.Inflate { src; dst; factor; until_; at = t start })
  done;
  let faults =
    if Rng.bernoulli rng 0.3 then
      Some
        {
          Network.drop = Rng.uniform rng 0. 0.03;
          duplicate = Rng.uniform rng 0. 0.02;
          corrupt = Rng.uniform rng 0. 0.03;
        }
    else None
  in
  let detector =
    if Rng.bernoulli rng 0.3 then
      Some
        (Failure_detector.config
           ~threshold:(2. +. (2. *. Rng.float rng))
           ())
    else None
  in
  (* ~30% of swarms multiplex a session tier on top; the handoff is
     always armed — the swarm hunts for real bugs, the dropped-vector
     canary lives in the scenario corpus *)
  let sessions =
    if Rng.bernoulli rng 0.3 then
      let placement =
        List.nth
          [ Session_tier.Sticky; Session_tier.Random; Session_tier.Nearest ]
          (Rng.int rng 3)
      in
      Some
        {
          (Session_tier.default_config ~count:(4 + Rng.int rng 9)) with
          Session_tier.placement;
          ops_per_session = 10 + Rng.int rng 11;
          write_ratio = 0.5;
          think_mean = 6.;
          handoff = true;
          seed = (seed * 31) + 7;
        }
    else None
  in
  {
    name = Printf.sprintf "swarm-%d" seed;
    protocol;
    universe;
    initial;
    vars = 4;
    ops_per_process = ops;
    write_ratio = 0.5;
    latency = default_latency;
    faults;
    detector;
    sessions;
    plan = Fault_plan.make (List.rev !events);
    seed;
  }

type swarm_report = {
  total : int;
  accepted_count : int;
  counts : (verdict * int) list;
  failures : result list;
}

let swarm ?protocol ?on_result ~seed ~count () =
  let tally = Hashtbl.create 7 in
  let bump v =
    Hashtbl.replace tally v
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally v))
  in
  let failures = ref [] in
  let accepted_count = ref 0 in
  for i = 0 to count - 1 do
    let sched = random_schedule ?protocol ~seed:(seed + i) () in
    let r = run sched in
    bump r.verdict;
    if accepted r.verdict then incr accepted_count
    else failures := r :: !failures;
    Option.iter (fun f -> f i r) on_result
  done;
  {
    total = count;
    accepted_count = !accepted_count;
    counts =
      List.map
        (fun v ->
          (v, Option.value ~default:0 (Hashtbl.find_opt tally v)))
        all_verdicts;
    failures = List.rev !failures;
  }

(* ---------------------------------------------------------------- *)
(* Shrinking                                                         *)
(* ---------------------------------------------------------------- *)

(* Atomic removal units: a fault and the event that undoes it must
   leave or stay together, or removal would turn a valid plan invalid
   (a Join of an active member) or change unrelated episodes' meaning
   (a Heal tearing down a different Cut). *)
let episodes (plan : Fault_plan.t) : Fault_plan.event list list =
  let evs = Array.of_list plan in
  let n = Array.length evs in
  let used = Array.make n false in
  let find_next i pred =
    let rec go j = if j >= n then None else if (not used.(j)) && pred evs.(j) then Some j else go (j + 1) in
    go (i + 1)
  in
  let out = ref [] in
  for i = 0 to n - 1 do
    if not used.(i) then begin
      used.(i) <- true;
      let partner =
        match evs.(i) with
        | Fault_plan.Crash { proc; _ } ->
            find_next i (function
              | Fault_plan.Recover { proc = p; _ }
              | Fault_plan.Join { proc = p; _ } ->
                  p = proc
              | _ -> false)
        | Fault_plan.Cut _ ->
            find_next i (function Fault_plan.Heal _ -> true | _ -> false)
        | Fault_plan.Cut_oneway { src; dst; _ } ->
            find_next i (function
              | Fault_plan.Heal_oneway { src = s; dst = d; _ } ->
                  s = src && d = dst
              | _ -> false)
        | _ -> None
      in
      match partner with
      | Some j ->
          used.(j) <- true;
          out := [ evs.(i); evs.(j) ] :: !out
      | None -> out := [ evs.(i) ] :: !out
    end
  done;
  List.rev !out

type shrink_report = {
  target : verdict;
  original : schedule;
  minimal : schedule;
  attempts : int;
  events_before : int;
  events_after : int;
}

let shrink ?(max_attempts = 256) (s : schedule) ~target =
  let attempts = ref 0 in
  let reproduces cand =
    !attempts < max_attempts
    &&
    (incr attempts;
     (run cand).verdict = target)
  in
  let valid cand =
    match validate_schedule cand with
    | () -> true
    | exception Invalid_argument _ -> false
  in
  let cur = ref s in
  let try_take cand = if valid cand && reproduces cand then cur := cand in
  let disarm () =
    if !cur.detector <> None then try_take { !cur with detector = None };
    if !cur.faults <> None then try_take { !cur with faults = None };
    if !cur.sessions <> None then try_take { !cur with sessions = None }
  in
  disarm ();
  (* ddmin over episodes: try removing chunks, halving the chunk size,
     restarting from the largest granularity after every success *)
  let rec ddmin () =
    let eps = Array.of_list (episodes !cur.plan) in
    let n = Array.length eps in
    if n > 0 then begin
      let improved = ref false in
      let size = ref n in
      while (not !improved) && !size >= 1 do
        let k = !size in
        let i = ref 0 in
        while (not !improved) && !i < n do
          let hi_excl = min n (!i + k) in
          let kept = ref [] in
          Array.iteri
            (fun j ep -> if j < !i || j >= hi_excl then kept := ep :: !kept)
            eps;
          let plan = Fault_plan.make (List.concat (List.rev !kept)) in
          let cand = { !cur with plan } in
          if valid cand && reproduces cand then begin
            cur := cand;
            improved := true
          end;
          i := !i + k
        done;
        size := !size / 2
      done;
      if !improved && !attempts < max_attempts then ddmin ()
    end
  in
  ddmin ();
  disarm ();
  {
    target;
    original = s;
    minimal = !cur;
    attempts = !attempts;
    events_before = List.length s.plan;
    events_after = List.length !cur.plan;
  }

(* ---------------------------------------------------------------- *)
(* JSON (schema causal-dsm-nemesis-plan/v1)                          *)
(* ---------------------------------------------------------------- *)

let schema = "causal-dsm-nemesis-plan/v1"

(* shortest float string that round-trips exactly *)
let fstr f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let latency_to_string = function
  | Latency.Constant c -> Printf.sprintf "const:%s" (fstr c)
  | Latency.Uniform { lo; hi } ->
      Printf.sprintf "uniform:%s,%s" (fstr lo) (fstr hi)
  | Latency.Exponential { mean } -> Printf.sprintf "exp:%s" (fstr mean)
  | Latency.Lognormal { mu; sigma } ->
      Printf.sprintf "lognormal:%s,%s" (fstr mu) (fstr sigma)
  | Latency.Pareto { scale; shape } ->
      Printf.sprintf "pareto:%s,%s" (fstr scale) (fstr shape)
  | (Latency.Shifted _ | Latency.Bimodal _) as l ->
      Format.kasprintf invalid_arg
        "Nemesis.to_json_string: latency %a has no CLI syntax — use \
         const/uniform/exp/lognormal/pareto"
        Latency.pp l

let latency_of_string s =
  let num x =
    match float_of_string_opt x with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "latency: bad number %S" x)
  in
  let ( let* ) = Result.bind in
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "latency: missing ':' in %S" s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let two () =
        match String.split_on_char ',' rest with
        | [ a; b ] ->
            let* a = num a in
            let* b = num b in
            Ok (a, b)
        | _ ->
            Error
              (Printf.sprintf "latency: %s needs two comma-separated \
                               parameters, got %S"
                 kind rest)
      in
      match kind with
      | "const" ->
          let* c = num rest in
          Ok (Latency.Constant c)
      | "uniform" ->
          let* lo, hi = two () in
          Ok (Latency.Uniform { lo; hi })
      | "exp" ->
          let* mean = num rest in
          Ok (Latency.Exponential { mean })
      | "lognormal" ->
          let* mu, sigma = two () in
          Ok (Latency.Lognormal { mu; sigma })
      | "pareto" ->
          let* scale, shape = two () in
          Ok (Latency.Pareto { scale; shape })
      | _ -> Error (Printf.sprintf "latency: unknown kind %S" kind))

let json_escape = Dsm_stats.Json.escape

let event_to_json (ev : Fault_plan.event) =
  let at e = fstr (Sim_time.to_float (Fault_plan.time e)) in
  match ev with
  | Fault_plan.Crash { proc; _ } ->
      Printf.sprintf {|{"kind":"crash","proc":%d,"at":%s}|} proc (at ev)
  | Fault_plan.Recover { proc; _ } ->
      Printf.sprintf {|{"kind":"recover","proc":%d,"at":%s}|} proc (at ev)
  | Fault_plan.Cut { groups; _ } ->
      let group g =
        "[" ^ String.concat "," (List.map string_of_int g) ^ "]"
      in
      Printf.sprintf {|{"kind":"cut","groups":[%s],"at":%s}|}
        (String.concat "," (List.map group groups))
        (at ev)
  | Fault_plan.Heal _ ->
      Printf.sprintf {|{"kind":"heal","at":%s}|} (at ev)
  | Fault_plan.Join { proc; _ } ->
      Printf.sprintf {|{"kind":"join","proc":%d,"at":%s}|} proc (at ev)
  | Fault_plan.Leave { proc; _ } ->
      Printf.sprintf {|{"kind":"leave","proc":%d,"at":%s}|} proc (at ev)
  | Fault_plan.Cut_oneway { src; dst; _ } ->
      Printf.sprintf {|{"kind":"cut-oneway","src":%d,"dst":%d,"at":%s}|}
        src dst (at ev)
  | Fault_plan.Heal_oneway { src; dst; _ } ->
      Printf.sprintf {|{"kind":"heal-oneway","src":%d,"dst":%d,"at":%s}|}
        src dst (at ev)
  | Fault_plan.Flap { a; b; period; until_; _ } ->
      Printf.sprintf
        {|{"kind":"flap","a":%d,"b":%d,"period":%s,"until":%s,"at":%s}|}
        a b (fstr period) (fstr until_) (at ev)
  | Fault_plan.Inflate { src; dst; factor; until_; _ } ->
      Printf.sprintf
        {|{"kind":"inflate","src":%d,"dst":%d,"factor":%s,"until":%s,"at":%s}|}
        src dst (fstr factor) (fstr until_) (at ev)

let to_json_string (s : schedule) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add {|{"schema":"%s",|} schema;
  add "\n";
  add {| "name":"%s","protocol":"%s",|} (json_escape s.name)
    (json_escape s.protocol);
  add "\n";
  add {| "universe":%d,"initial":%d,"vars":%d,"ops_per_process":%d,|}
    s.universe s.initial s.vars s.ops_per_process;
  add "\n";
  add {| "write_ratio":%s,"latency":"%s","seed":%d,|} (fstr s.write_ratio)
    (latency_to_string s.latency)
    s.seed;
  add "\n";
  (match s.faults with
  | Some f ->
      add {| "faults":{"drop":%s,"duplicate":%s,"corrupt":%s},|}
        (fstr f.Network.drop) (fstr f.duplicate) (fstr f.corrupt);
      add "\n"
  | None -> ());
  (match s.detector with
  | Some d ->
      add
        {| "detector":{"threshold":%s,"heartbeat_every":%s,"window":%d,"adaptive":%s},|}
        (fstr d.Failure_detector.threshold)
        (fstr d.heartbeat_every) d.window (fstr d.adaptive);
      add "\n"
  | None -> ());
  (match s.sessions with
  | Some (c : Session_tier.config) ->
      add
        {| "sessions":{"count":%d,"placement":"%s","ops_per_session":%d,"write_ratio":%s,"think_mean":%s,"rpc_timeout":%s,"backoff":%s,"backoff_cap":%s,"max_retries":%d,"handoff":%b,"seed":%d},|}
        c.Session_tier.count
        (Session_tier.placement_to_string c.placement)
        c.ops_per_session (fstr c.write_ratio) (fstr c.think_mean)
        (fstr c.rpc_timeout) (fstr c.backoff) (fstr c.backoff_cap)
        c.max_retries c.handoff c.seed;
      add "\n"
  | None -> ());
  add {| "events":[|};
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",";
      add "\n  %s" (event_to_json ev))
    s.plan;
  if s.plan <> [] then add "\n ";
  add "]}";
  add "\n";
  Buffer.contents b

(* minimal JSON reader — shared with [bench diff] and [dsm-sim report] *)
module Json = Dsm_stats.Json

let of_json_string text =
  let fail fmt = Printf.ksprintf (fun m -> raise (Json.Bad m)) fmt in
  let obj ~ctx = function
    | Json.Obj fields -> fields
    | _ -> fail "%s: expected an object" ctx
  in
  let get fields k = List.assoc_opt k fields in
  let str ~ctx fields k =
    match get fields k with
    | Some (Json.Str s) -> s
    | _ -> fail "%s: missing string field %S" ctx k
  in
  let num ~ctx fields k =
    match get fields k with
    | Some (Json.Num f) -> f
    | _ -> fail "%s: missing number field %S" ctx k
  in
  let int ~ctx fields k =
    let f = num ~ctx fields k in
    if Float.is_integer f then int_of_float f
    else fail "%s: field %S must be an integer" ctx k
  in
  let event_of_json j =
    let ctx = "event" in
    let fields = obj ~ctx j in
    let at = t (num ~ctx fields "at") in
    match str ~ctx fields "kind" with
    | "crash" -> Fault_plan.Crash { proc = int ~ctx fields "proc"; at }
    | "recover" -> Fault_plan.Recover { proc = int ~ctx fields "proc"; at }
    | "cut" ->
        let groups =
          match get fields "groups" with
          | Some (Json.Arr gs) ->
              List.map
                (function
                  | Json.Arr ids ->
                      List.map
                        (function
                          | Json.Num f when Float.is_integer f -> int_of_float f
                          | _ -> fail "cut: group members must be integers")
                        ids
                  | _ -> fail "cut: groups must be arrays")
                gs
          | _ -> fail "cut: missing array field \"groups\""
        in
        Fault_plan.Cut { groups; at }
    | "heal" -> Fault_plan.Heal { at }
    | "join" -> Fault_plan.Join { proc = int ~ctx fields "proc"; at }
    | "leave" -> Fault_plan.Leave { proc = int ~ctx fields "proc"; at }
    | "cut-oneway" ->
        Fault_plan.Cut_oneway
          { src = int ~ctx fields "src"; dst = int ~ctx fields "dst"; at }
    | "heal-oneway" ->
        Fault_plan.Heal_oneway
          { src = int ~ctx fields "src"; dst = int ~ctx fields "dst"; at }
    | "flap" ->
        Fault_plan.Flap
          {
            a = int ~ctx fields "a";
            b = int ~ctx fields "b";
            period = num ~ctx fields "period";
            until_ = num ~ctx fields "until";
            at;
          }
    | "inflate" ->
        Fault_plan.Inflate
          {
            src = int ~ctx fields "src";
            dst = int ~ctx fields "dst";
            factor = num ~ctx fields "factor";
            until_ = num ~ctx fields "until";
            at;
          }
    | k -> fail "event: unknown kind %S" k
  in
  try
    let fields = obj ~ctx:"plan" (Json.parse text) in
    let ctx = "plan" in
    let got_schema = str ~ctx fields "schema" in
    if got_schema <> schema then
      fail "unsupported schema %S (expected %S)" got_schema schema;
    let latency =
      match latency_of_string (str ~ctx fields "latency") with
      | Ok l -> l
      | Error msg -> fail "%s" msg
    in
    let faults =
      match get fields "faults" with
      | None | Some Json.Null -> None
      | Some j ->
          let f = obj ~ctx:"faults" j in
          Some
            {
              Network.drop = num ~ctx:"faults" f "drop";
              duplicate = num ~ctx:"faults" f "duplicate";
              corrupt = num ~ctx:"faults" f "corrupt";
            }
    in
    let detector =
      match get fields "detector" with
      | None | Some Json.Null -> None
      | Some j ->
          let d = obj ~ctx:"detector" j in
          Some
            (Failure_detector.config
               ~threshold:(num ~ctx:"detector" d "threshold")
               ~heartbeat_every:(num ~ctx:"detector" d "heartbeat_every")
               ~window:(int ~ctx:"detector" d "window")
               ~adaptive:(num ~ctx:"detector" d "adaptive")
               ())
    in
    let sessions =
      match get fields "sessions" with
      | None | Some Json.Null -> None
      | Some j ->
          let ctx = "sessions" in
          let c = obj ~ctx j in
          let placement =
            let name = str ~ctx c "placement" in
            match Session_tier.placement_of_string name with
            | Some p -> p
            | None -> fail "sessions: unknown placement %S" name
          in
          let handoff =
            match get c "handoff" with
            | Some (Json.Bool b) -> b
            | _ -> fail "sessions: missing boolean field \"handoff\""
          in
          Some
            {
              Session_tier.count = int ~ctx c "count";
              placement;
              ops_per_session = int ~ctx c "ops_per_session";
              write_ratio = num ~ctx c "write_ratio";
              think_mean = num ~ctx c "think_mean";
              rpc_timeout = num ~ctx c "rpc_timeout";
              backoff = num ~ctx c "backoff";
              backoff_cap = num ~ctx c "backoff_cap";
              max_retries = int ~ctx c "max_retries";
              handoff;
              seed = int ~ctx c "seed";
            }
    in
    let events =
      match get fields "events" with
      | Some (Json.Arr evs) -> List.map event_of_json evs
      | _ -> fail "plan: missing array field \"events\""
    in
    let s =
      {
        name = str ~ctx fields "name";
        protocol = str ~ctx fields "protocol";
        universe = int ~ctx fields "universe";
        initial = int ~ctx fields "initial";
        vars = int ~ctx fields "vars";
        ops_per_process = int ~ctx fields "ops_per_process";
        write_ratio = num ~ctx fields "write_ratio";
        latency;
        faults;
        detector;
        sessions;
        plan = Fault_plan.make events;
        seed = int ~ctx fields "seed";
      }
    in
    validate_schedule s;
    Ok s
  with
  | Json.Bad msg -> Error ("nemesis plan JSON: " ^ msg)
  | Invalid_argument msg -> Error ("nemesis plan JSON: " ^ msg)

(* ---------------------------------------------------------------- *)
(* Reporting                                                         *)
(* ---------------------------------------------------------------- *)

let pp_result ppf r =
  Format.fprintf ppf "%s [%s, seed %d]: %a — %s" r.sched.name
    r.sched.protocol r.sched.seed pp_verdict r.verdict r.detail

let pp_swarm_report ppf (s : swarm_report) =
  Format.fprintf ppf "@[<v>swarm: %d schedules, %d accepted@," s.total
    s.accepted_count;
  List.iter
    (fun (v, c) ->
      if c > 0 then Format.fprintf ppf "  %-18s %d@," (verdict_name v) c)
    s.counts;
  List.iter (fun r -> Format.fprintf ppf "  FAIL %a@," pp_result r)
    s.failures;
  Format.fprintf ppf "@]"

let pp_shrink_report ppf (r : shrink_report) =
  Format.fprintf ppf
    "shrink to %a: %d -> %d fault events in %d runs (schedule %s)"
    pp_verdict r.target r.events_before r.events_after r.attempts
    r.minimal.name
