(** Nemesis: unified adversarial fault campaigns.

    Every fault family the repo grew one PR at a time — crash/recover
    ({!Fault_campaign}), partitions, churn and emergent membership
    ({!Churn_campaign}), frame corruption, and the link-level
    primitives of {!Dsm_sim.Network} (asymmetric cuts, flapping,
    delay inflation) — composed into {e one} schedule and judged by
    {e one} verdict. The paper's §3.1 model has none of these
    failures; nemesis is the adversary that checks the implementation
    keeps the paper's guarantees (causal consistency, and Theorem 4's
    zero unnecessary delays for OptP) outside the model anyway.

    Three run shapes:

    - {b scenario corpus} ({!scenarios}): named, fixed-seed schedules
      with {e expected} verdicts — regression seeds distilled from the
      bug classes previous PRs fought (ghost dots from stale
      incarnations, refuted false suspicions, divergence after
      partition+churn races). A scenario fails when its verdict is not
      in its expected set.
    - {b swarm} ({!swarm}): randomized combined schedules drawn from a
      seed, each run and classified; acceptance is
      {!accepted} ([Clean] or [Refuted_suspicion] — a refuted false
      suspicion is the survivable false-positive path, not a bug).
    - {b shrink} ({!shrink}): when a schedule produces a bad verdict, a
      greedy delta-debugging pass minimizes the fault schedule while
      the verdict reproduces, and the survivor serializes to replayable
      JSON ({!to_json_string} / {!of_json_string}, schema
      [causal-dsm-nemesis-plan/v1]).

    The deliberately buggy {!Dsm_core.Canary} protocol is the
    self-test: a swarm that cannot catch its delivery-order violation
    is not testing anything. *)

(** {1 Verdicts} *)

type verdict =
  | Clean  (** checker clean, converged, no membership anomalies *)
  | Refuted_suspicion
      (** clean, but the detector falsely suspected a live slot and a
          later heartbeat re-admitted it — survivable by design *)
  | Degraded_session
      (** clean, but a session operation exhausted its retry budget and
          surfaced as degraded ([waiting_for] / in-doubt / unreachable)
          — the graceful-degradation contract, survivable by design *)
  | Unnecessary_delay
      (** a protocol claiming Theorem 4 optimality delayed a write the
          ground-truth causal order did not require *)
  | Ghost_leak
      (** a quarantine leak: a dot applied twice at one process, or
          observed under two values — stale-incarnation traffic got in *)
  | Session_anomaly
      (** the session tier broke a Terry guarantee on a re-attributed
          client stream, or a retried write applied twice — judged
          right below [Violation]: the replicas may agree while a
          migrating client still observed the inconsistency *)
  | Diverged
      (** live replicas disagree at the end, a write was lost, or a
          false suspicion left a live slot permanently ejected (never
          refuted, never re-admitted, and not scheduled to be gone) *)
  | Violation  (** causal-consistency safety or legality violation *)
  | Stuck
      (** the campaign itself raised or never converged — driver or
          harness failure, judged worst after [Violation] *)

val verdict_name : verdict -> string
(** Kebab-case: ["clean"], ["refuted-suspicion"], ["degraded-session"],
    ["unnecessary-delay"], ["ghost-leak"], ["session-anomaly"],
    ["diverged"], ["violation"], ["stuck"]. *)

val verdict_of_name : string -> verdict option
val pp_verdict : Format.formatter -> verdict -> unit

val accepted : verdict -> bool
(** Swarm acceptance: [Clean], [Refuted_suspicion] or
    [Degraded_session]. *)

val classify : optimal:bool -> Churn_campaign.outcome -> verdict
(** Precedence: [Violation] > [Session_anomaly] > [Ghost_leak] >
    [Diverged] > [Unnecessary_delay] > [Refuted_suspicion] >
    [Degraded_session] > [Clean].
    [~optimal] arms the [Unnecessary_delay] check (protocols that claim
    Theorem 4). [Stuck] is never produced here — {!run} assigns it when
    the campaign raises. *)

(** {1 Schedules} *)

type schedule = {
  name : string;
  protocol : string;  (** see {!protocol_names} *)
  universe : int;  (** slot universe ([Spec.n]) *)
  initial : int;  (** slots [0..initial-1] are members at time 0 *)
  vars : int;
  ops_per_process : int;
  write_ratio : float;
  latency : Dsm_sim.Latency.t;
      (** must be CLI-expressible (no [Shifted]/[Bimodal]) when the
          schedule is serialized to JSON *)
  faults : Dsm_sim.Network.faults option;
      (** probabilistic drop/duplicate/corrupt, on top of the plan *)
  detector : Failure_detector.config option;
      (** arms phi-accrual detection alongside the scripted plan *)
  sessions : Session_tier.config option;
      (** multiplexes a client-session tier over the replicas; its
          re-attributed guarantee audit feeds [Session_anomaly] /
          [Degraded_session] *)
  plan : Dsm_sim.Fault_plan.t;
  seed : int;  (** drives workload, channels and the campaign *)
}

val protocol_names : string list
(** [["optp"; "anbkh"; "optp-direct"; "canary"]]. *)

val protocol_by_name : string -> Dsm_core.Protocol.packed option

val optimal_protocol : string -> bool
(** Whether the named protocol claims Theorem 4 (OptP family; the
    canary inherits the claim so its violations cannot hide). *)

val validate_schedule : schedule -> unit
(** Parameter sanity plus {!Dsm_sim.Fault_plan.validate} over the
    universe. @raise Invalid_argument otherwise. *)

val horizon : schedule -> float
(** Nominal workload horizon ([ops_per_process] × mean think time);
    the scale fault times are drawn against. *)

(** {1 Running and judging} *)

type result = {
  sched : schedule;
  verdict : verdict;
  detail : string;  (** one-line evidence summary, or the [Stuck] exn *)
  outcome : Churn_campaign.outcome option;  (** [None] iff [Stuck] *)
}

val run : ?metrics:Dsm_obs.Metrics.t -> schedule -> result
(** Validates, resolves the protocol, and drives
    {!Churn_campaign.run} with [~mixed:true] (detector and scripted
    membership may coexist). Any exception out of the campaign becomes
    a [Stuck] verdict carrying the exception text; an invalid schedule
    raises instead. Deterministic: same schedule, same result. *)

(** {1 Scenario corpus} *)

type scenario = {
  sched_ : schedule;
  expected : verdict list;  (** acceptable verdicts for this scenario *)
  about : string;
}

val scenarios : scenario list
(** Fixed corpus, every schedule deterministic. Includes the canary
    scenario (expected [Violation]), the session-tier failover family
    ([session-kill-home], [session-partition-home],
    [session-migrate-storm]) and the dropped-handoff session canary
    (expected [Session_anomaly]) — keep both canaries
    expected-failing. *)

val find_scenario : string -> scenario option

(** {1 Swarm} *)

val random_schedule : ?protocol:string -> seed:int -> unit -> schedule
(** A randomized combined-fault schedule, a pure function of [seed]:
    universe 4–6 slots, optional fresh join, disjoint victim sets for
    crash-rejoin / graceful leave / crash-recover (one member always
    stays stable), sequential two-sided partitions, one-way cut
    episodes, flaps, delay-inflation spikes, ~30% probabilistic
    drop/duplicate/corrupt faults, ~30% an armed accrual detector,
    ~30% a client-session tier (handoff always on — the swarm hunts
    real bugs; the dropped-vector canary lives in the corpus).
    Default protocol ["optp"]. *)

type swarm_report = {
  total : int;
  accepted_count : int;
  counts : (verdict * int) list;  (** every verdict, fixed order *)
  failures : result list;  (** non-accepted results, chronological *)
}

val swarm :
  ?protocol:string ->
  ?on_result:(int -> result -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  swarm_report
(** Runs [count] schedules [random_schedule ~seed:(seed + i)] for
    [i = 0..count-1]. [on_result] observes each as it lands. *)

(** {1 Shrinking} *)

type shrink_report = {
  target : verdict;
  original : schedule;
  minimal : schedule;
  attempts : int;  (** campaign runs spent shrinking *)
  events_before : int;
  events_after : int;
}

val shrink :
  ?max_attempts:int -> schedule -> target:verdict -> shrink_report
(** Greedy delta debugging towards a minimal schedule still producing
    [target]: first tries disarming the detector and the probabilistic
    faults, then ddmin over fault {e episodes} (a crash and its
    recover/rejoin, a cut and its heal, a one-way cut and its heal are
    removed together; flaps, inflations, joins and leaves are atomic) —
    remove-half granularity halving down to single episodes, restarting
    after every success, revalidating every candidate. [max_attempts]
    (default 256) caps campaign runs. The input schedule need not
    currently produce [target]; the original is returned unshrunk if
    nothing reproduces. *)

(** {1 Replayable JSON (schema [causal-dsm-nemesis-plan/v1])} *)

val to_json_string : schedule -> string
(** Self-contained replayable form; 0-based process ids, latency in the
    CLI's [const:C | uniform:LO,HI | exp:MEAN | lognormal:MU,SIGMA |
    pareto:SCALE,SHAPE] syntax, floats printed exactly (round-trip).
    An armed session tier serializes as an optional ["sessions"] object
    (absent = none) — the schema stays [causal-dsm-nemesis-plan/v1];
    plans written before the session tier still replay.
    @raise Invalid_argument if [latency] has no CLI syntax. *)

val of_json_string : string -> (schedule, string) Stdlib.result
(** Inverse of {!to_json_string}; validates the decoded schedule. *)

(** {1 Reporting} *)

val pp_result : Format.formatter -> result -> unit
val pp_swarm_report : Format.formatter -> swarm_report -> unit
val pp_shrink_report : Format.formatter -> shrink_report -> unit
