module Protocol = Dsm_core.Protocol
module Network = Dsm_sim.Network
module Engine = Dsm_sim.Engine
module Metrics = Dsm_obs.Metrics

(* Pre-resolved instrument handles: the hot path never touches the
   registry. With a null registry every update is a dead branch. *)
type probes = {
  p_live : bool;
  p_applies : Metrics.counter;
  p_delayed : Metrics.counter;
  p_skips : Metrics.counter;
  p_reads : Metrics.counter;
  p_writes : Metrics.counter;
  p_merges : Metrics.counter;
  p_occupancy : Metrics.gauge;
}

let probes metrics =
  {
    p_live = Metrics.enabled metrics;
    p_applies = Metrics.counter metrics "proto_applies";
    p_delayed = Metrics.counter metrics "proto_delayed_applies";
    p_skips = Metrics.counter metrics "proto_skips";
    p_reads = Metrics.counter metrics "proto_reads";
    p_writes = Metrics.counter metrics "proto_writes";
    p_merges = Metrics.counter metrics "proto_wco_merges_on_read";
    p_occupancy = Metrics.gauge metrics "buffer_occupancy";
  }

module Make (P : Protocol.S) = struct
  module V = Dsm_vclock.Vector_clock

  type t = {
    me : int;
    proto : P.t;
    engine : Engine.t;
    network : P.msg Network.t;
    execution : Execution.t;
    probes : probes;
  }

  let now t = Engine.now t.engine

  let record t kind = Execution.record t.execution ~proc:t.me ~time:(now t) kind

  let process_effects t (eff : P.msg Protocol.effects) =
    (* a writing-semantics skip is the logical apply of the overwritten
       write "immediately before" its overwriter's apply: record skips
       first so event order reflects that *)
    List.iter (fun dot -> record t (Execution.Skip { dot })) eff.skipped;
    List.iter
      (fun (a : Protocol.apply_record) ->
        record t
          (Execution.Apply
             {
               dot = a.adot;
               var = a.avar;
               value = a.avalue;
               delayed = a.afrom_buffer;
             }))
      eff.applied;
    if t.probes.p_live then begin
      Metrics.add t.probes.p_skips (List.length eff.skipped);
      List.iter
        (fun (a : Protocol.apply_record) ->
          Metrics.incr t.probes.p_applies;
          if a.afrom_buffer then Metrics.incr t.probes.p_delayed)
        eff.applied
    end;
    List.iter
      (fun outbound ->
        let msg =
          match outbound with
          | Protocol.Broadcast m -> m
          | Protocol.Unicast { msg; _ } -> msg
        in
        List.iter
          (fun (dot, var, value) ->
            record t (Execution.Send { dot; var; value }))
          (P.msg_writes msg);
        match outbound with
        | Protocol.Broadcast m -> Network.broadcast t.network ~src:t.me m
        | Protocol.Unicast { dst; msg } ->
            Network.send t.network ~src:t.me ~dst msg)
      eff.to_send

  let on_delivery t ~src ~at:_ msg =
    let writes = P.msg_writes msg in
    List.iter
      (fun (dot, _, _) -> record t (Execution.Receipt { dot; src }))
      writes;
    let eff = P.receive t.proto ~src msg in
    (* A write-carrying message that produced no apply and no skip was
       either buffered or discarded as a duplicate; [waiting_for]
       distinguishes the two (and names the missing predecessor) —
       buffering leaves the delivery state untouched, so asking after
       the fact is still exact. *)
    (match writes with
    | [] -> ()
    | _ when eff.applied = [] && eff.skipped = [] -> (
        match P.waiting_for t.proto ~src msg with
        | Some waiting_for ->
            List.iter
              (fun (dot, _, _) ->
                record t (Execution.Blocked { dot; waiting_for }))
              writes
        | None -> ())
    | _ -> ());
    process_effects t eff;
    if t.probes.p_live then Metrics.set t.probes.p_occupancy (P.buffered t.proto)

  let create ~cfg ~me ~engine ~network ~execution ?(metrics = Metrics.null ())
      () =
    let t =
      {
        me;
        proto = P.create cfg ~me;
        engine;
        network;
        execution;
        probes = probes metrics;
      }
    in
    Network.set_handler network me (fun ~src ~at msg ->
        on_delivery t ~src ~at msg);
    t

  let me t = t.me
  let protocol t = t.proto

  let write t ~var ~value =
    let dot, eff = P.write t.proto ~var ~value in
    if t.probes.p_live then Metrics.incr t.probes.p_writes;
    process_effects t eff;
    dot

  let read t ~var =
    if not t.probes.p_live then begin
      let value, read_from = P.read t.proto ~var in
      record t (Execution.Return { var; value; read_from });
      (value, read_from)
    end
    else begin
      (* the interesting OptP counter: did this read grow Write_co —
         i.e. absorb a LastWriteOn vector — creating a new read-from
         ordering obligation? (ANBKH never counts here: its clock moves
         on deliveries instead — false causality.) *)
      let before = V.sum (P.local_clock t.proto) in
      let value, read_from = P.read t.proto ~var in
      let after = V.sum (P.local_clock t.proto) in
      Metrics.incr t.probes.p_reads;
      if after > before then Metrics.incr t.probes.p_merges;
      record t (Execution.Return { var; value; read_from });
      (value, read_from)
    end
end
