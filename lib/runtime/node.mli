(** A protocol instance bound to the simulator.

    [Node.Make (P)] wraps one per-process state machine of protocol [P]
    with everything a run needs: transmitting the protocol's outbound
    messages through the simulated {!Dsm_sim.Network}, and recording
    every [send]/[receipt]/[blocked]/[apply]/[skip]/[return] event into
    the shared {!Execution.t} with the engine's current timestamp.

    With a live [?metrics] registry the node also maintains the
    protocol-level instruments (applies, delayed applies, skips,
    reads/writes, [Write_co]-merges-on-read, buffer occupancy); all
    probes are pure observation — the event schedule is identical with
    and without them. *)

module Make (P : Dsm_core.Protocol.S) : sig
  type t

  val create :
    cfg:Dsm_core.Protocol.config ->
    me:int ->
    engine:Dsm_sim.Engine.t ->
    network:P.msg Dsm_sim.Network.t ->
    execution:Execution.t ->
    ?metrics:Dsm_obs.Metrics.t ->
    unit ->
    t
  (** Builds the node and installs its delivery handler on the
      network. *)

  val me : t -> int
  val protocol : t -> P.t

  val write : t -> var:int -> value:int -> Dsm_vclock.Dot.t
  (** Issue a write now: runs [P.write], transmits, records. *)

  val read : t -> var:int -> Dsm_memory.Operation.value * Dsm_vclock.Dot.t option
  (** Issue a read now: runs [P.read], records the [return] event. *)
end
