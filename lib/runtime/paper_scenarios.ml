module Dot = Dsm_vclock.Dot
module Operation = Dsm_memory.Operation
module Local_history = Dsm_memory.Local_history
module History = Dsm_memory.History

let n = 3
let m = 2

(* variables: x1 = 0, x2 = 1; values: a=0, b=1, c=2, d=3 *)
let x1 = 0
let x2 = 1
let va = 0
let vb = 1
let vc = 2
let vd = 3

let w1a = Dot.make ~replica:0 ~seq:1
let w1c = Dot.make ~replica:0 ~seq:2
let w2b = Dot.make ~replica:1 ~seq:1
let w3d = Dot.make ~replica:2 ~seq:1

type t = {
  label : string;
  ops : (float * Scripted_run.action) list;
  send_time : Dot.t -> float;
  arrival : dot:Dot.t -> dst:int -> float;
}

(* Issue times shared by all scenarios except where noted:
   p1 writes a at 0 and c at 2; p2 reads x1 at 5 (sees a only: c reaches
   p2 at 5.5) and writes b at 6. *)
let base_ops ~read3_at ~write_d_at =
  [
    (0., Scripted_run.Write { proc = 0; var = x1; value = va });
    (2., Scripted_run.Write { proc = 0; var = x1; value = vc });
    (5., Scripted_run.Read { proc = 1; var = x1 });
    (6., Scripted_run.Write { proc = 1; var = x2; value = vb });
    (read3_at, Scripted_run.Read { proc = 2; var = x2 });
    (write_d_at, Scripted_run.Write { proc = 2; var = x2; value = vd });
  ]

let base_send_time ~d_at dot =
  if Dot.equal dot w1a then 0.
  else if Dot.equal dot w1c then 2.
  else if Dot.equal dot w2b then 6.
  else if Dot.equal dot w3d then d_at
  else invalid_arg "Paper_scenarios: unknown write"

(* arrival table: (dot, dst) -> absolute time; p1 and p2 columns are the
   same everywhere, only p3's pattern differs between figures *)
let arrival_fn ~a3 ~b3 ~c3 ~d12 ~dot ~dst =
  let fail () =
    invalid_arg "Paper_scenarios: arrival for an unexpected (write, dst)"
  in
  if Dot.equal dot w1a then
    if dst = 1 then 1. else if dst = 2 then a3 else fail ()
  else if Dot.equal dot w1c then
    if dst = 1 then 5.5 else if dst = 2 then c3 else fail ()
  else if Dot.equal dot w2b then
    if dst = 0 then 9. else if dst = 2 then b3 else fail ()
  else if Dot.equal dot w3d then
    if dst = 0 || dst = 1 then d12 else fail ()
  else fail ()

let scenario ~label ~read3_at ~write_d_at ~a3 ~b3 ~c3 ~d12 =
  {
    label;
    ops = base_ops ~read3_at ~write_d_at;
    send_time = base_send_time ~d_at:write_d_at;
    arrival = (fun ~dot ~dst -> arrival_fn ~a3 ~b3 ~c3 ~d12 ~dot ~dst);
  }

let figure1_run1 =
  scenario ~label:"Figure 1, run (1): causal arrival order, no delay"
    ~read3_at:12. ~write_d_at:14. ~a3:4. ~b3:8. ~c3:13. ~d12:30.

let figure1_run2 =
  scenario
    ~label:"Figure 1, run (2): b overtakes a at p3, one necessary delay"
    ~read3_at:12. ~write_d_at:14. ~a3:10. ~b3:8. ~c3:25. ~d12:30.

let figure2 =
  scenario
    ~label:
      "Figure 2: a applied, c missing when b arrives at p3 (unnecessary \
       delay for a causal-delivery protocol)"
    ~read3_at:12. ~write_d_at:14. ~a3:4. ~b3:8. ~c3:11. ~d12:30.

let figure3 =
  scenario
    ~label:
      "Figure 3: ANBKH run; send(w1c) -> send(w2b) although b depends \
       only on a (false causality)"
    ~read3_at:26. ~write_d_at:27. ~a3:10. ~b3:8. ~c3:25. ~d12:35.

let figure6 =
  scenario
    ~label:"Figure 6: OptP run; b waits only for a and overtakes c at p3"
    ~read3_at:12. ~write_d_at:14. ~a3:10. ~b3:8. ~c3:25. ~d12:30.

let all = [ figure1_run1; figure1_run2; figure2; figure3; figure6 ]

let run p scenario =
  let delay ~src:_ ~dst ~dot =
    scenario.arrival ~dot ~dst -. scenario.send_time dot
  in
  Scripted_run.run p ~n ~m ~ops:scenario.ops ~delay ()

let h1_reference =
  let p1 = Local_history.create ~proc:0 () in
  let wa = Local_history.add_write p1 ~var:x1 ~value:va in
  let _wc = Local_history.add_write p1 ~var:x1 ~value:vc in
  let p2 = Local_history.create ~proc:1 () in
  let _ =
    Local_history.add_read p2 ~var:x1 ~value:(Operation.Val va)
      ~read_from:(Some wa.Operation.wdot)
  in
  let wb = Local_history.add_write p2 ~var:x2 ~value:vb in
  let p3 = Local_history.create ~proc:2 () in
  let _ =
    Local_history.add_read p3 ~var:x2 ~value:(Operation.Val vb)
      ~read_from:(Some wb.Operation.wdot)
  in
  let _ = Local_history.add_write p3 ~var:x2 ~value:vd in
  History.of_locals [ p1; p2; p3 ]

let h1_matches h =
  History.n_processes h = n
  && List.for_all
       (fun p -> History.local h p = History.local h1_reference p)
       [ 0; 1; 2 ]
