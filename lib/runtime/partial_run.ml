module Protocol = Dsm_core.Protocol
module Pp = Dsm_core.Opt_p_partial
module Replication = Dsm_core.Replication
module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Rng = Dsm_sim.Rng
module Spec = Dsm_workload.Spec

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  replication : Replication.t;
  messages_sent : int;
  engine_steps : int;
  end_time : float;
  buffer_high_watermarks : int array;
}

(* generic over the buffer instantiation so the differential suite can
   drive the indexed and the reference scanning variants identically *)
let run_with (module P : Pp.IMPL) ~replication ~spec ~latency ?(seed = 1)
    ?(max_steps = 10_000_000) ?(metrics = Dsm_obs.Metrics.null ())
    ?(wire = Dsm_obs.Wire.null ()) ?(recorder = Dsm_obs.Timeseries.null ())
    ?(scrape_every = 25.) ?(queue = Engine.Indexed) ?(arena = true)
    ?(batch = false) () =
  let n = spec.Spec.n and m = spec.Spec.m in
  if Replication.n replication <> n || Replication.m replication <> m then
    invalid_arg "Partial_run.run: replication map dimensions mismatch";
  let schedule = Dsm_workload.Generator.generate spec in
  let engine = Engine.create ~queue () in
  let rng = Rng.create seed in
  let network =
    Network.create ~engine ~rng ~n
      ~latency:(fun ~src:_ ~dst:_ -> latency)
      ~arena ~batch ~metrics ~wire ~measure:Pp.msg_frame
      ~sizer:(fun msg -> Dsm_obs.Wire.frame_bytes (Pp.msg_frame msg))
      ()
  in
  if Dsm_obs.Timeseries.enabled recorder then begin
    let horizon =
      Array.fold_left
        (fun acc ops ->
          List.fold_left (fun acc { Spec.at; _ } -> Float.max acc at) acc ops)
        0. schedule
    in
    if horizon >= scrape_every then
      Engine.schedule_every engine ~every:scrape_every
        ~until:(Dsm_sim.Sim_time.of_float horizon) (fun () ->
          Dsm_obs.Timeseries.scrape recorder
            ~now:(Dsm_sim.Sim_time.to_float (Engine.now engine)))
  end;
  let execution = Execution.create ~n ~m () in
  let protos = Array.init n (fun me -> P.create replication ~me) in
  let record proc kind =
    Execution.record execution ~proc ~time:(Engine.now engine) kind
  in
  let record_applies proc records =
    List.iter
      (fun (a : Protocol.apply_record) ->
        record proc
          (Execution.Apply
             {
               dot = a.adot;
               var = a.avar;
               value = a.avalue;
               delayed = a.afrom_buffer;
             }))
      records
  in
  Array.iteri
    (fun me _ ->
      Network.set_handler network me (fun ~src ~at:_ (msg : Pp.message) ->
          record me (Execution.Receipt { dot = msg.Pp.dot; src });
          record_applies me (P.receive protos.(me) ~src msg)))
    protos;
  (* fold each op's variable onto the issuing process's replicated set,
     preserving the workload's distributional shape *)
  let fold_var proc var =
    let mine = Array.of_list (Replication.vars_of replication ~proc) in
    mine.(var mod Array.length mine)
  in
  Array.iteri
    (fun proc ops ->
      let write_seq = ref 0 in
      List.iter
        (fun { Spec.at; op } ->
          Engine.schedule_at engine (Dsm_sim.Sim_time.of_float at)
            (fun () ->
              match op with
              | Spec.Do_write { var } ->
                  incr write_seq;
                  let var = fold_var proc var in
                  let value = Sim_run.write_value ~proc ~seq:!write_seq in
                  let _dot, msg, dests, local =
                    P.write protos.(proc) ~var ~value
                  in
                  record proc
                    (Execution.Send
                       { dot = msg.Pp.dot; var; value = msg.Pp.value });
                  record_applies proc [ local ];
                  List.iter
                    (fun dst -> Network.send network ~src:proc ~dst msg)
                    dests
              | Spec.Do_read { var } ->
                  let var = fold_var proc var in
                  let value, read_from = P.read protos.(proc) ~var in
                  record proc (Execution.Return { var; value; read_from })))
        ops)
    schedule;
  (match Engine.run ~max_steps engine with
  | Engine.Drained -> ()
  | Engine.Hit_step_limit ->
      failwith "Partial_run: did not quiesce (liveness bug?)"
  | Engine.Hit_time_limit -> assert false);
  {
    execution;
    history = Execution.to_history execution;
    replication;
    messages_sent = Network.messages_sent network;
    engine_steps = Engine.steps_executed engine;
    end_time = Dsm_sim.Sim_time.to_float (Engine.now engine);
    buffer_high_watermarks =
      Array.map (fun p -> P.buffer_high_watermark p) protos;
  }

let run = run_with (module Pp)
let run_scan = run_with (module Pp.Scan)

let check outcome =
  Checker.check
    ~replication:(fun ~proc ~var ->
      Replication.replicates outcome.replication ~proc ~var)
    outcome.execution
