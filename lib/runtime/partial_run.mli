(** Driver for partially replicated runs ({!Dsm_core.Opt_p_partial}).

    Differences from {!Sim_run}: operations are confined to each
    process's replicated locations (the workload's variable choices are
    folded onto them), writes are {e multicast} to the written
    location's replicas only, and the audit must be run with the
    checker's replication mode (the returned {!outcome} carries the
    predicate to pass). *)

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  replication : Dsm_core.Replication.t;
  messages_sent : int;
  engine_steps : int;
  end_time : float;
  buffer_high_watermarks : int array;
}

val run :
  replication:Dsm_core.Replication.t ->
  spec:Dsm_workload.Spec.t ->
  latency:Dsm_sim.Latency.t ->
  ?seed:int ->
  ?max_steps:int ->
  ?metrics:Dsm_obs.Metrics.t ->
  ?wire:Dsm_obs.Wire.t ->
  ?recorder:Dsm_obs.Timeseries.t ->
  ?scrape_every:float ->
  ?queue:Dsm_sim.Engine.queue_impl ->
  ?arena:bool ->
  ?batch:bool ->
  unit ->
  outcome
(** [spec.n] and [spec.m] must match the replication map's dimensions.
    [queue]/[arena]/[batch] select the hot-path machinery and
    [?metrics]/[?wire]/[?recorder]/[?scrape_every] the observability as
    in {!Sim_run.run}; here the accountant prices the whole m×n [know]
    matrix each write multicasts, so partial replication's metadata tax
    is directly visible.
    Each operation's variable is remapped into the issuing process's
    replicated set (preserving the workload's distribution shape).
    @raise Invalid_argument on dimension mismatch.
    @raise Failure on step-limit exhaustion. *)

val run_scan :
  replication:Dsm_core.Replication.t ->
  spec:Dsm_workload.Spec.t ->
  latency:Dsm_sim.Latency.t ->
  ?seed:int ->
  ?max_steps:int ->
  ?metrics:Dsm_obs.Metrics.t ->
  ?wire:Dsm_obs.Wire.t ->
  ?recorder:Dsm_obs.Timeseries.t ->
  ?scrape_every:float ->
  ?queue:Dsm_sim.Engine.queue_impl ->
  ?arena:bool ->
  ?batch:bool ->
  unit ->
  outcome
(** Same run over {!Dsm_core.Opt_p_partial.Scan}, the reference
    scanning-buffer instantiation — the differential suite holds it and
    {!run} to identical outcomes. *)

val check : outcome -> Checker.report
(** The replication-aware audit of the run. *)
