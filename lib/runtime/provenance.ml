module Dot = Dsm_vclock.Dot
module Span = Dsm_obs.Span
module Export = Dsm_obs.Export
module Sim_time = Dsm_sim.Sim_time

let spans exec =
  let c = Span.collector () in
  let sink = Span.sink c in
  List.iter
    (fun { Execution.proc; time; kind } ->
      let at = Sim_time.to_float time in
      match kind with
      | Execution.Apply { dot; var; value; delayed } ->
          (* the issuer's local apply is the birth of the write; any
             other process's apply closes that destination's phase *)
          if Dot.replica dot = proc then
            sink (Span.Issue { dot; proc; var; value; at })
          else sink (Span.Apply { dot; dst = proc; at; delayed })
      | Execution.Receipt { dot; src = _ } ->
          sink (Span.Receipt { dot; dst = proc; at })
      | Execution.Blocked { dot; waiting_for } ->
          sink (Span.Blocked { dot; dst = proc; waiting_for; at })
      | Execution.Skip { dot } -> sink (Span.Skip { dot; dst = proc; at })
      | Execution.Send _ | Execution.Return _ -> ())
    (Execution.events exec);
  c

(* ---- trace files ---------------------------------------------------- *)

type format = Jsonl | Chrome

let format_of_string s =
  match String.lowercase_ascii s with
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | _ -> None

let format_to_string = function Jsonl -> "jsonl" | Chrome -> "chrome"

let end_time exec =
  List.fold_left
    (fun acc (e : Execution.event) ->
      Float.max acc (Sim_time.to_float e.time))
    0. (Execution.events exec)

let write_trace fmt ~path exec =
  let sps = Span.spans (spans exec) in
  match fmt with
  | Jsonl -> Export.write_file path (fun b -> Export.jsonl b sps)
  | Chrome ->
      let n = Execution.n_processes exec in
      let t_end = end_time exec in
      Export.write_file path (fun b ->
          Export.chrome b ~n ~end_time:t_end sps)

(* ---- explain -------------------------------------------------------- *)

type delay_explanation = {
  eproc : int;
  edot : Dot.t;
  evar : int;
  eclass : Checker.delay_class;
  ewaiting_for : Dot.t option;
  eblocking : Dot.t list;
  eblocked_at : float option;
  eapplied_at : float option;
  ewait : float option;
  eagrees : bool;
}

type explanation = {
  rows : delay_explanation list;
  total : int;
  necessary : int;
  unnecessary : int;
  attributed : int;
  witnessed : int;
}

let explain exec (report : Checker.report) =
  let var_of = Hashtbl.create 64 in
  List.iter
    (fun (dot, var, _) -> Hashtbl.replace var_of dot var)
    (Execution.writes exec);
  (* first Blocked record per (proc, dot): when buffering began and
     which predecessor the protocol claimed to wait on *)
  let claimed = Hashtbl.create 64 in
  List.iter
    (fun (proc, dot, waiting_for, time) ->
      let key = (proc, dot) in
      if not (Hashtbl.mem claimed key) then
        Hashtbl.add claimed key (waiting_for, Sim_time.to_float time))
    (Execution.blocked_events exec);
  let rows =
    List.map
      (fun (d : Checker.delay) ->
        let claim = Hashtbl.find_opt claimed (d.dproc, d.ddot) in
        let ewaiting_for = Option.map fst claim in
        let eblocked_at = Option.map snd claim in
        let eapplied_at =
          Option.map Sim_time.to_float
            (Execution.apply_time exec ~proc:d.dproc ~dot:d.ddot)
        in
        let ewait =
          match (eblocked_at, eapplied_at) with
          | Some b, Some a -> Some (a -. b)
          | _ -> None
        in
        let eagrees =
          match ewaiting_for with
          | Some w -> List.exists (Dot.equal w) d.dblocking
          | None -> false
        in
        {
          eproc = d.dproc;
          edot = d.ddot;
          evar =
            (match Hashtbl.find_opt var_of d.ddot with
            | Some v -> v
            | None -> -1);
          eclass = d.dclass;
          ewaiting_for;
          eblocking = d.dblocking;
          eblocked_at;
          eapplied_at;
          ewait;
          eagrees;
        })
      report.Checker.delays
  in
  {
    rows;
    total = List.length rows;
    necessary = report.Checker.necessary_delays;
    unnecessary = report.Checker.unnecessary_delays;
    attributed =
      List.length (List.filter (fun r -> r.ewaiting_for <> None) rows);
    witnessed = List.length (List.filter (fun r -> r.eagrees) rows);
  }

let pp_dots ppf dots =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Dot.pp)
    dots

let pp_row ppf r =
  Format.fprintf ppf "%a" Dot.pp r.edot;
  if r.evar >= 0 then Format.fprintf ppf " on x%d" (r.evar + 1);
  Format.fprintf ppf " at p%d: " (r.eproc + 1);
  (match r.eclass with
  | Checker.Necessary -> Format.fprintf ppf "necessary delay"
  | Checker.Unnecessary ->
      Format.fprintf ppf "UNNECESSARY delay (false causality)");
  (match (r.ewaiting_for, r.eblocked_at) with
  | Some w, Some since ->
      Format.fprintf ppf " — buffered at t=%.1f waiting for %a" since
        Dot.pp w
  | Some w, None -> Format.fprintf ppf " — waiting for %a" Dot.pp w
  | None, _ -> Format.fprintf ppf " — no buffering record (unattributed)");
  (match r.eclass with
  | Checker.Necessary ->
      Format.fprintf ppf "; missing at receipt: %a" pp_dots r.eblocking
  | Checker.Unnecessary ->
      Format.fprintf ppf "; nothing causally missing");
  (match (r.eapplied_at, r.ewait) with
  | Some a, Some w -> Format.fprintf ppf "; applied at t=%.1f (+%.1f)" a w
  | Some a, None -> Format.fprintf ppf "; applied at t=%.1f" a
  | None, _ -> Format.fprintf ppf "; never applied");
  match r.ewaiting_for with
  | None -> ()
  | Some _ ->
      Format.fprintf ppf " %s"
        (if r.eagrees then "[witnessed]" else "[claim not causally required]")

let pp_explanation ppf e =
  Format.fprintf ppf "@[<v>";
  List.iter (fun r -> Format.fprintf ppf "%a@," pp_row r) e.rows;
  Format.fprintf ppf
    "delays: %d total, %d necessary, %d unnecessary; provenance: %d \
     attributed, %d witnessed@]"
    e.total e.necessary e.unnecessary e.attributed e.witnessed
