(** Delay provenance: from a recorded execution to causal trace spans
    and a per-delay explanation.

    The span view and the explanation are both {e derived} from the
    same {!Execution.t} the checker audits — nothing is measured twice,
    so the blocked slices in an exported trace match the checker's
    delay list by construction.

    The explanation joins two independent sources per delayed apply:

    - the {b protocol's own claim} — the [Blocked] event it recorded at
      buffering time, naming the predecessor dot its wakeup condition
      waits on;
    - the {b checker's ground truth} — the causal predecessors actually
      missing at receipt time, derived from [↦co] without trusting the
      protocol's clocks.

    When the two agree the delay is a witnessed necessary delay; a
    protocol claim outside the ground-truth set is {e false causality}
    made visible (ANBKH waits on its vector-clock entries whether or
    not [↦co] requires them). For OptP, Theorem 4 says every row is a
    necessary delay whose claimed dot is among the missing ones — the
    explanation is an executable witness of that statement. *)

val spans : Execution.t -> Dsm_obs.Span.collector
(** Replays the execution's events into a span collector: the issuer's
    local apply becomes the [Issue], remote receipts / blocked records /
    applies / skips become per-destination phases. *)

(** {1 Trace files} *)

type format = Jsonl | Chrome

val format_of_string : string -> format option
(** ["jsonl"] and ["chrome"] (case-insensitive). *)

val format_to_string : format -> string

val write_trace : format -> path:string -> Execution.t -> unit
(** Assembles {!spans} and writes the chosen rendering. The chrome
    variant uses the execution's process count and last event time (open
    blocked slices extend to the latter). *)

(** {1 Explain} *)

type delay_explanation = {
  eproc : int;  (** where the apply was delayed *)
  edot : Dsm_vclock.Dot.t;  (** the delayed write *)
  evar : int;  (** variable written, [-1] if unknown *)
  eclass : Checker.delay_class;
  ewaiting_for : Dsm_vclock.Dot.t option;
      (** the protocol's claim ([None]: no [Blocked] event — round-based
          protocols leave provenance unattributed) *)
  eblocking : Dsm_vclock.Dot.t list;  (** checker ground truth *)
  eblocked_at : float option;
  eapplied_at : float option;
  ewait : float option;  (** apply minus blocked, when both known *)
  eagrees : bool;
      (** the claim is among the ground-truth blockers (a necessary
          delay correctly attributed) *)
}

type explanation = {
  rows : delay_explanation list;  (** checker report order *)
  total : int;
  necessary : int;
  unnecessary : int;
  attributed : int;  (** rows with a protocol claim *)
  witnessed : int;  (** rows whose claim the checker confirms *)
}

val explain : Execution.t -> Checker.report -> explanation

val pp_explanation : Format.formatter -> explanation -> unit
(** One line per delay — the causal chain in words — plus a verdict
    footer. *)
