module Protocol = Dsm_core.Protocol
module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Reliable_channel = Dsm_sim.Reliable_channel
module Rng = Dsm_sim.Rng
module Spec = Dsm_workload.Spec

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  protocol_name : string;
  payloads_sent : int;
  frames_sent : int;
  frames_dropped : int;
  frames_duplicated : int;
  retransmissions : int;
  duplicates_discarded : int;
  engine_steps : int;
  end_time : float;
}

let run (module P : Protocol.S) ~spec ~latency ~faults
    ?(retransmit_after = 50.) ?(seed = 1) ?(max_steps = 20_000_000)
    ?(metrics = Dsm_obs.Metrics.null ()) ?(wire = Dsm_obs.Wire.null ())
    ?(recorder = Dsm_obs.Timeseries.null ()) ?(scrape_every = 25.)
    ?(queue = Engine.Indexed) ?(arena = true) ?(batch = false) () =
  let cfg = Protocol.config ~n:spec.Spec.n ~m:spec.Spec.m in
  let schedule = Dsm_workload.Generator.generate spec in
  let engine = Engine.create ~queue () in
  let rng = Rng.create seed in
  (* the accountant sees channel frames: data frames price the
     protocol's shape plus the channel envelope, retransmissions and
     acks appear under their own causes *)
  let measure = Reliable_channel.wire_frame P.msg_frame in
  let network =
    Network.create ~engine ~rng ~n:spec.Spec.n
      ~latency:(fun ~src:_ ~dst:_ -> latency)
      ~arena ~batch ~faults ~mangle:Reliable_channel.corrupt_frame ~metrics
      ~wire ~measure
      ~sizer:(fun f -> Dsm_obs.Wire.frame_bytes (measure f))
      ()
  in
  if Dsm_obs.Timeseries.enabled recorder then begin
    let horizon =
      Array.fold_left
        (fun acc ops ->
          List.fold_left (fun acc { Spec.at; _ } -> Float.max acc at) acc ops)
        0. schedule
    in
    if horizon >= scrape_every then
      Engine.schedule_every engine ~every:scrape_every
        ~until:(Dsm_sim.Sim_time.of_float horizon) (fun () ->
          Dsm_obs.Timeseries.scrape recorder
            ~now:(Dsm_sim.Sim_time.to_float (Engine.now engine)))
  end;
  let channel =
    Reliable_channel.create ~engine ~network ~retransmit_after ~metrics ()
  in
  let execution = Execution.create ~n:spec.Spec.n ~m:spec.Spec.m () in
  let protos = Array.init spec.Spec.n (fun me -> P.create cfg ~me) in
  let record proc kind =
    Execution.record execution ~proc ~time:(Engine.now engine) kind
  in
  let rec process proc (eff : P.msg Protocol.effects) =
    List.iter (fun dot -> record proc (Execution.Skip { dot })) eff.skipped;
    List.iter
      (fun (a : Protocol.apply_record) ->
        record proc
          (Execution.Apply
             {
               dot = a.adot;
               var = a.avar;
               value = a.avalue;
               delayed = a.afrom_buffer;
             }))
      eff.applied;
    List.iter
      (fun outbound ->
        let msg =
          match outbound with
          | Protocol.Broadcast m -> m
          | Protocol.Unicast { msg; _ } -> msg
        in
        List.iter
          (fun (dot, var, value) ->
            record proc (Execution.Send { dot; var; value }))
          (P.msg_writes msg);
        match outbound with
        | Protocol.Broadcast m ->
            Reliable_channel.broadcast channel ~src:proc m
        | Protocol.Unicast { dst; msg } ->
            Reliable_channel.send channel ~src:proc ~dst msg)
      eff.to_send
  and deliver dst ~src msg =
    let writes = P.msg_writes msg in
    List.iter
      (fun (dot, _, _) -> record dst (Execution.Receipt { dot; src }))
      writes;
    let eff = P.receive protos.(dst) ~src msg in
    (* same rule as {!Node.Make}: a carried write that neither applied
       nor skipped was buffered — name the predecessor it waits on *)
    (match writes with
    | [] -> ()
    | _ when eff.Protocol.applied = [] && eff.Protocol.skipped = [] -> (
        match P.waiting_for protos.(dst) ~src msg with
        | Some waiting_for ->
            List.iter
              (fun (dot, _, _) ->
                record dst (Execution.Blocked { dot; waiting_for }))
              writes
        | None -> ())
    | _ -> ());
    process dst eff
  in
  for dst = 0 to spec.Spec.n - 1 do
    Reliable_channel.set_handler channel dst (fun ~src ~at:_ msg ->
        deliver dst ~src msg)
  done;
  Array.iteri
    (fun proc ops ->
      let write_seq = ref 0 in
      List.iter
        (fun { Spec.at; op } ->
          Engine.schedule_at engine (Dsm_sim.Sim_time.of_float at)
            (fun () ->
              match op with
              | Spec.Do_write { var } ->
                  incr write_seq;
                  let value =
                    Sim_run.write_value ~proc ~seq:!write_seq
                  in
                  let _, eff = P.write protos.(proc) ~var ~value in
                  process proc eff
              | Spec.Do_read { var } ->
                  let value, read_from = P.read protos.(proc) ~var in
                  record proc (Execution.Return { var; value; read_from })))
        ops)
    schedule;
  (match Engine.run ~max_steps engine with
  | Engine.Drained -> ()
  | Engine.Hit_step_limit ->
      failwith
        (Printf.sprintf "Reliable_run: %s did not quiesce within %d events"
           P.name max_steps)
  | Engine.Hit_time_limit -> assert false);
  {
    execution;
    history = Execution.to_history execution;
    protocol_name = P.name;
    payloads_sent = Reliable_channel.payloads_sent channel;
    frames_sent = Network.messages_sent network;
    frames_dropped = Network.messages_dropped network;
    frames_duplicated = Network.messages_duplicated network;
    retransmissions = Reliable_channel.retransmissions channel;
    duplicates_discarded = Reliable_channel.duplicates_discarded channel;
    engine_steps = Engine.steps_executed engine;
    end_time = Dsm_sim.Sim_time.to_float (Engine.now engine);
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%s over lossy links: %d payloads, %d frames (%d dropped, %d \
     duplicated), %d retransmissions, %d duplicates discarded, \
     t_end=%.1f@]"
    o.protocol_name o.payloads_sent o.frames_sent o.frames_dropped
    o.frames_duplicated o.retransmissions o.duplicates_discarded o.end_time
