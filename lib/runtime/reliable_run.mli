(** Run a protocol over {e faulty} links healed by the reliable-channel
    layer.

    Same driver contract as {!Sim_run}, but the underlying network may
    drop and duplicate transmissions; exactly-once delivery is rebuilt
    by {!Dsm_sim.Reliable_channel} (sequence numbers, acks,
    retransmission, deduplication). This demonstrates the paper's §3.1
    channel assumption as an implemented substrate rather than an
    axiom, and gives the failure-injection tests a live target: a
    protocol that is checker-clean on {!Sim_run} must stay clean here
    for every loss/duplication rate below 1. *)

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  protocol_name : string;
  payloads_sent : int;  (** distinct protocol messages *)
  frames_sent : int;  (** wire frames incl. acks and retransmissions *)
  frames_dropped : int;
  frames_duplicated : int;
  retransmissions : int;
  duplicates_discarded : int;
  engine_steps : int;
  end_time : float;
}

val run :
  (module Dsm_core.Protocol.S) ->
  spec:Dsm_workload.Spec.t ->
  latency:Dsm_sim.Latency.t ->
  faults:Dsm_sim.Network.faults ->
  ?retransmit_after:float ->
  ?seed:int ->
  ?max_steps:int ->
  ?metrics:Dsm_obs.Metrics.t ->
  ?wire:Dsm_obs.Wire.t ->
  ?recorder:Dsm_obs.Timeseries.t ->
  ?scrape_every:float ->
  ?queue:Dsm_sim.Engine.queue_impl ->
  ?arena:bool ->
  ?batch:bool ->
  unit ->
  outcome
(** [?metrics] (default: the null registry) is threaded to the network
    and the reliable channel; probes are pure observation.
    [?wire]/[?recorder]/[?scrape_every] as in {!Sim_run.run} — here the
    accountant prices {e channel} frames ({!
    Dsm_sim.Reliable_channel.wire_frame}), so retransmissions and acks
    show up as wire cost.
    [queue]/[arena]/[batch] select the hot-path machinery as in
    {!Sim_run.run}.
    @raise Failure on step-limit exhaustion (default [20_000_000];
    lossy runs retransmit, so budgets are larger than {!Sim_run}'s). *)

val pp_outcome : Format.formatter -> outcome -> unit
