module Json = Dsm_stats.Json
module Lh = Dsm_stats.Log_histogram
module M = Dsm_obs.Metrics
module Spec = Dsm_workload.Spec

let schema = "causal-dsm-report/v1"

type t = {
  spec : Spec.t;
  net_seed : int;
  outcome : Sim_run.outcome;
  checker : Checker.report;
  explanation : Provenance.explanation;
  metrics : M.t;
  wire : Dsm_obs.Wire.t;
  recorder : Dsm_obs.Timeseries.t;
  blocked : Lh.t;
  delivery : M.quantile;
}

let blocked_histogram (e : Provenance.explanation) =
  let h = Lh.create () in
  List.iter
    (fun (r : Provenance.delay_explanation) ->
      match r.Provenance.ewait with Some w -> Lh.add h w | None -> ())
    e.Provenance.rows;
  h

let make ~spec ~net_seed ~outcome ~metrics ~wire ~recorder () =
  let checker = Checker.check outcome.Sim_run.execution in
  let explanation = Provenance.explain outcome.Sim_run.execution checker in
  {
    spec;
    net_seed;
    outcome;
    checker;
    explanation;
    metrics;
    wire;
    recorder;
    blocked = blocked_histogram explanation;
    (* register-or-merge: the same instrument the network recorded into *)
    delivery = M.quantile metrics "net_delivery_delay";
  }

(* ---- JSON -------------------------------------------------------- *)

let quantile_fields ~count ~sum ~max ~p50 ~p95 ~p99 =
  Json.Obj
    [
      ("count", Json.Num (float_of_int count));
      ("sum", Json.Num sum);
      ("max", Json.Num max);
      ("p50", Json.Num p50);
      ("p95", Json.Num p95);
      ("p99", Json.Num p99);
    ]

let delivery_json q =
  quantile_fields ~count:(M.quantile_count q) ~sum:(M.quantile_sum q)
    ~max:(M.quantile_max q) ~p50:(M.quantile_value q 0.5)
    ~p95:(M.quantile_value q 0.95) ~p99:(M.quantile_value q 0.99)

let blocked_json h =
  quantile_fields ~count:(Lh.count h) ~sum:(Lh.sum h) ~max:(Lh.max_value h)
    ~p50:(Lh.quantile h 0.5) ~p95:(Lh.quantile h 0.95)
    ~p99:(Lh.quantile h 0.99)

let run_json t =
  let o = t.outcome and s = t.spec in
  Json.Obj
    [
      ("protocol", Json.Str o.Sim_run.protocol_name);
      ("n", Json.Num (float_of_int s.Spec.n));
      ("m", Json.Num (float_of_int s.Spec.m));
      ("ops_per_process", Json.Num (float_of_int s.Spec.ops_per_process));
      ("write_ratio", Json.Num s.Spec.write_ratio);
      ("workload_seed", Json.Num (float_of_int s.Spec.seed));
      ("net_seed", Json.Num (float_of_int t.net_seed));
      ("messages_sent", Json.Num (float_of_int o.Sim_run.messages_sent));
      ( "messages_delivered",
        Json.Num (float_of_int o.Sim_run.messages_delivered) );
      ("engine_steps", Json.Num (float_of_int o.Sim_run.engine_steps));
      ("end_time", Json.Num o.Sim_run.end_time);
      ("skipped_writes", Json.Num (float_of_int o.Sim_run.skipped_writes));
    ]

let checker_json t =
  let c = t.checker and e = t.explanation in
  Json.Obj
    [
      ("clean", Json.Bool (Checker.is_clean c));
      ("total_applies", Json.Num (float_of_int c.Checker.total_applies));
      ("total_delays", Json.Num (float_of_int c.Checker.total_delays));
      ( "necessary_delays",
        Json.Num (float_of_int c.Checker.necessary_delays) );
      ( "unnecessary_delays",
        Json.Num (float_of_int c.Checker.unnecessary_delays) );
      ("violations", Json.Num (float_of_int (List.length c.Checker.violations)));
      ("lost_writes", Json.Num (float_of_int (List.length c.Checker.lost)));
      ("complete", Json.Bool c.Checker.complete);
      ("attributed", Json.Num (float_of_int e.Provenance.attributed));
      ("witnessed", Json.Num (float_of_int e.Provenance.witnessed));
    ]

let timeseries_json t =
  let r = t.recorder in
  if not (Dsm_obs.Timeseries.enabled r) then Json.Null
  else
    Json.Obj
      [
        ("scrapes", Json.Num (float_of_int (Dsm_obs.Timeseries.scrapes r)));
        ("capacity", Json.Num (float_of_int (Dsm_obs.Timeseries.capacity r)));
        ( "series",
          Json.Arr
            (List.map (fun n -> Json.Str n) (Dsm_obs.Timeseries.names r)) );
      ]

let metrics_json t =
  if not (M.enabled t.metrics) then Json.Null
  else
    (* [M.to_json] is a self-contained document; re-read it through the
       shared parser so the report embeds values, not a string blob *)
    match Json.parse_result (M.to_json t.metrics) with
    | Ok doc -> (
        match Json.member "metrics" doc with Some v -> v | None -> doc)
    | Error _ -> Json.Null

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("run", run_json t);
      ("checker", checker_json t);
      ( "quantiles",
        Json.Obj
          [
            ("delivery_delay", delivery_json t.delivery);
            ("blocked_duration", blocked_json t.blocked);
          ] );
      ( "wire",
        if Dsm_obs.Wire.enabled t.wire then Dsm_obs.Wire.to_json t.wire
        else Json.Null );
      ("timeseries", timeseries_json t);
      ("metrics", metrics_json t);
    ]

let to_string t = Json.to_string (to_json t)

(* ---- human rendering --------------------------------------------- *)

let pp_quantiles ppf t =
  let line name ~count ~max ~p50 ~p95 ~p99 =
    Format.fprintf ppf "  %-18s n=%-7d p50=%-10.4g p95=%-10.4g p99=%-10.4g max=%.4g@."
      name count p50 p95 p99 max
  in
  let q = t.delivery in
  line "delivery delay" ~count:(M.quantile_count q) ~max:(M.quantile_max q)
    ~p50:(M.quantile_value q 0.5) ~p95:(M.quantile_value q 0.95)
    ~p99:(M.quantile_value q 0.99);
  let h = t.blocked in
  line "blocked duration" ~count:(Lh.count h) ~max:(Lh.max_value h)
    ~p50:(Lh.quantile h 0.5) ~p95:(Lh.quantile h 0.95)
    ~p99:(Lh.quantile h 0.99)

let pp ppf t =
  Format.fprintf ppf "%a@." Sim_run.pp_outcome t.outcome;
  Format.fprintf ppf "%a@." Checker.pp_report t.checker;
  Format.fprintf ppf "latency quantiles (sim time):@.%a@." pp_quantiles t;
  if Dsm_obs.Wire.enabled t.wire then
    Format.fprintf ppf "%a@." Dsm_obs.Wire.pp_summary t.wire;
  if Dsm_obs.Timeseries.enabled t.recorder then
    Format.fprintf ppf
      "flight recorder: %d scrapes over %d series (ring capacity %d)@."
      (Dsm_obs.Timeseries.scrapes t.recorder)
      (Dsm_obs.Timeseries.series_count t.recorder)
      (Dsm_obs.Timeseries.capacity t.recorder);
  if M.enabled t.metrics then Format.fprintf ppf "%a" M.pp_summary t.metrics
