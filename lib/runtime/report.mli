(** Run report: one document joining everything the observability
    stack knows about a single {!Sim_run} — checker verdicts, wire-cost
    accounting, latency quantiles, flight-recorder coverage and the raw
    metrics registry.

    The JSON rendering carries [schema = "causal-dsm-report/v1"] so the
    [bench diff] comparator and external tooling can validate what they
    were handed. The human rendering reuses each layer's own summary
    ([Sim_run.pp_outcome], [Checker.pp_report], wire and metrics
    tables). *)

val schema : string
(** ["causal-dsm-report/v1"]. *)

type t = {
  spec : Dsm_workload.Spec.t;
  net_seed : int;
  outcome : Sim_run.outcome;
  checker : Checker.report;
  explanation : Provenance.explanation;
  metrics : Dsm_obs.Metrics.t;
  wire : Dsm_obs.Wire.t;
  recorder : Dsm_obs.Timeseries.t;
  blocked : Dsm_stats.Log_histogram.t;
      (** blocked-duration sketch over the provenance rows with both a
          blocked and an applied timestamp *)
  delivery : Dsm_obs.Metrics.quantile;
      (** the network's [net_delivery_delay] instrument *)
}

val make :
  spec:Dsm_workload.Spec.t ->
  net_seed:int ->
  outcome:Sim_run.outcome ->
  metrics:Dsm_obs.Metrics.t ->
  wire:Dsm_obs.Wire.t ->
  recorder:Dsm_obs.Timeseries.t ->
  unit ->
  t
(** Audits the outcome ({!Checker.check} + {!Provenance.explain}) and
    derives the quantile views. [metrics]/[wire]/[recorder] should be
    the instances the run was driven with; inert instances yield [null]
    sections rather than errors. *)

val blocked_histogram :
  Provenance.explanation -> Dsm_stats.Log_histogram.t

val to_json : t -> Dsm_stats.Json.t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
