module Protocol = Dsm_core.Protocol
module Engine = Dsm_sim.Engine

type action =
  | Write of { proc : int; var : int; value : int }
  | Read of { proc : int; var : int }

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  protocol_name : string;
  engine_steps : int;
}

let run (module P : Protocol.S) ~n ~m ~ops ~delay ?(control_delay = 1.0)
    ?(max_steps = 1_000_000) () =
  let cfg = Protocol.config ~n ~m in
  let engine = Engine.create () in
  let execution = Execution.create ~n ~m () in
  let protos = Array.init n (fun me -> P.create cfg ~me) in
  let record proc kind =
    Execution.record execution ~proc ~time:(Engine.now engine) kind
  in
  let rec process proc (eff : P.msg Protocol.effects) =
    (* skips logically precede the applies they enable; see Node *)
    List.iter (fun dot -> record proc (Execution.Skip { dot })) eff.skipped;
    List.iter
      (fun (a : Protocol.apply_record) ->
        record proc
          (Execution.Apply
             {
               dot = a.adot;
               var = a.avar;
               value = a.avalue;
               delayed = a.afrom_buffer;
             }))
      eff.applied;
    List.iter
      (fun outbound ->
        let msg, dsts =
          match outbound with
          | Protocol.Broadcast msg ->
              (msg, List.filter (fun d -> d <> proc) (List.init n Fun.id))
          | Protocol.Unicast { dst; msg } -> (msg, [ dst ])
        in
        let carried = P.msg_writes msg in
        List.iter
          (fun (dot, var, value) ->
            record proc (Execution.Send { dot; var; value }))
          carried;
        List.iter
          (fun dst ->
            let transit =
              match carried with
              | [] -> control_delay
              | (dot, _, _) :: _ -> delay ~src:proc ~dst ~dot
            in
            Engine.schedule_after engine transit (fun () ->
                deliver ~dst ~src:proc msg))
          dsts)
      eff.to_send
  and deliver ~dst ~src msg =
    let writes = P.msg_writes msg in
    List.iter
      (fun (dot, _, _) -> record dst (Execution.Receipt { dot; src }))
      writes;
    let eff = P.receive protos.(dst) ~src msg in
    (* same rule as {!Node.Make}: a carried write that neither applied
       nor skipped was buffered — name the predecessor it waits on *)
    (match writes with
    | [] -> ()
    | _ when eff.Protocol.applied = [] && eff.Protocol.skipped = [] -> (
        match P.waiting_for protos.(dst) ~src msg with
        | Some waiting_for ->
            List.iter
              (fun (dot, _, _) ->
                record dst (Execution.Blocked { dot; waiting_for }))
              writes
        | None -> ())
    | _ -> ());
    process dst eff
  in
  List.iter
    (fun (at, action) ->
      Engine.schedule_at engine (Dsm_sim.Sim_time.of_float at) (fun () ->
          match action with
          | Write { proc; var; value } ->
              let _dot, eff = P.write protos.(proc) ~var ~value in
              process proc eff
          | Read { proc; var } ->
              let value, read_from = P.read protos.(proc) ~var in
              record proc (Execution.Return { var; value; read_from })))
    ops;
  (match Engine.run ~max_steps engine with
  | Engine.Drained -> ()
  | Engine.Hit_step_limit ->
      failwith
        (Printf.sprintf "Scripted_run: %s did not quiesce within %d events"
           P.name max_steps)
  | Engine.Hit_time_limit -> assert false);
  {
    execution;
    history = Execution.to_history execution;
    protocol_name = P.name;
    engine_steps = Engine.steps_executed engine;
  }

let quick_history p ~n ~m ~ops ~delay =
  (run p ~n ~m ~ops ~delay ()).history
