module Dot = Dsm_vclock.Dot
module Operation = Dsm_memory.Operation
module History = Dsm_memory.History
module Session_guarantees = Dsm_memory.Session_guarantees
module Rng = Dsm_sim.Rng

type placement = Sticky | Random | Nearest

let placement_names = [ "sticky"; "random"; "nearest" ]

let placement_of_string = function
  | "sticky" -> Some Sticky
  | "random" -> Some Random
  | "nearest" -> Some Nearest
  | _ -> None

let placement_to_string = function
  | Sticky -> "sticky"
  | Random -> "random"
  | Nearest -> "nearest"

type config = {
  count : int;
  placement : placement;
  ops_per_session : int;
  write_ratio : float;
  think_mean : float;
  rpc_timeout : float;
  backoff : float;
  backoff_cap : float;
  max_retries : int;
  handoff : bool;
  seed : int;
}

let default_config ~count =
  {
    count;
    placement = Sticky;
    ops_per_session = 20;
    write_ratio = 0.5;
    think_mean = 10.;
    rpc_timeout = 150.;
    backoff = 5.;
    backoff_cap = 80.;
    max_retries = 10;
    handoff = true;
    seed = 1;
  }

let validate_config c =
  if c.count < 1 then invalid_arg "Session_tier: need at least one session";
  if c.ops_per_session < 1 then
    invalid_arg "Session_tier: need at least one op per session";
  if c.write_ratio < 0. || c.write_ratio > 1. then
    invalid_arg "Session_tier: write_ratio outside [0,1]";
  if c.think_mean <= 0. then invalid_arg "Session_tier: think_mean <= 0";
  if c.rpc_timeout <= 0. then invalid_arg "Session_tier: rpc_timeout <= 0";
  if c.backoff <= 0. || c.backoff_cap < c.backoff then
    invalid_arg "Session_tier: need 0 < backoff <= backoff_cap";
  if c.max_retries < 1 then invalid_arg "Session_tier: max_retries < 1"

(* op-id value encoding: disjoint from Sim_run.write_value's
   proc*1_000_000+seq range (procs are slot ids, far below 1000) *)
let value_base = 1_000_000_000
let ops_radix = 100_000

let op_value ~sid ~op =
  if op <= 0 || op >= ops_radix then
    invalid_arg "Session_tier.op_value: op outside [1, 100_000)";
  value_base + (sid * ops_radix) + op

let decode_value v =
  if v >= value_base then
    let r = v - value_base in
    Some (r / ops_radix, r mod ops_radix)
  else None

type op_kind = Op_write | Op_read

type outcome_kind =
  | Ok_served
  | Ok_dedup
  | Deg_blocked
  | Deg_in_doubt
  | Deg_unreachable

type op_span = {
  osid : int;
  oseq : int;
  okind : op_kind;
  ovar : int;
  oissued_at : float;
  mutable oattempts : int;
  mutable owaiting_for : Dot.t option;
  mutable oclaim_home : int;
  mutable oclaim_at : float;
  mutable odot : Dot.t option;
  mutable oserved_by : int;
  mutable oserved_at : float;
  mutable odone_at : float option;
  mutable ooutcome : outcome_kind option;
}

type migration = {
  msid : int;
  mat : float;
  mfrom : int;
  mto : int;
  mcarried : bool;
}

type session = {
  sid : int;
  mutable home : int option;
  mutable served_home : int option;
  dep : int array;
  mutable acked : Operation.t list;
  mutable reads_done : int;
  mutable op_seq : int;
}

let make_session ~sid ~universe =
  {
    sid;
    home = None;
    served_home = None;
    dep = Array.make universe 0;
    acked = [];
    reads_done = 0;
    op_seq = 0;
  }

let choose_home placement ~sid ~universe ~rng ~active ~current =
  match active with
  | [] -> None
  | active -> (
      match placement with
      | Random -> Some (List.nth active (Rng.int rng (List.length active)))
      | Sticky -> (
          match current with
          | Some h when List.mem h active -> Some h
          | _ ->
              (* failover: the cyclically next active slot after the old
                 home (or after the session's anchor slot when it never
                 had one), then stick to it *)
              let anchor =
                match current with
                | Some h -> h
                | None -> sid mod universe
              in
              Some
                (match List.filter (fun r -> r >= anchor) active with
                | r :: _ -> r
                | [] -> List.hd active))
      | Nearest ->
          (* static preference ring per session: distance measured
             cyclically from the session's anchor slot — fails over to
             the nearest active replica and fails back when a nearer
             one rejoins *)
          let anchor = sid mod universe in
          let dist r = (r - anchor + universe) mod universe in
          Some
            (List.fold_left
               (fun best r ->
                 match best with
                 | None -> Some r
                 | Some b -> if dist r < dist b then Some r else Some b)
               None active
            |> Option.get))

let backoff_delay cfg ~rng ~attempt =
  let raw = cfg.backoff *. (2. ** float_of_int (min attempt 16)) in
  Float.min cfg.backoff_cap raw *. (0.5 +. Rng.float rng)

type report = {
  cfg : config;
  streams : (int * Operation.t list) list;
  spans : op_span list;
  migrations : migration list;
  ops_done : int;
  writes_done : int;
  reads_done : int;
  retries : int;
  blocked_rejections : int;
  unavailable_rejections : int;
  dedup_hits : int;
  replies_lost : int;
  degraded : op_span list;
  duplicate_writes : int;
  violations : Session_guarantees.violation list;
  write_latencies : float list;
  read_latencies : float list;
}

let clean r = r.violations = [] && r.duplicate_writes = 0

(* ordering witness from the recorded execution: d1 is causally before
   d2 when d2's own issuer applied d1 before applying d2 — the causal
   past a replica-issued write inherits, which is exactly what the
   session-vector gate guarantees across a handoff.  One pass over the
   events builds a (proc, dot) -> apply-index table. *)
let apply_index execution =
  let tbl : (int * Dot.t, int) Hashtbl.t = Hashtbl.create 1024 in
  let next = Hashtbl.create 16 in
  List.iter
    (fun (ev : Execution.event) ->
      match ev.Execution.kind with
      | Execution.Apply { dot; _ } ->
          let i =
            match Hashtbl.find_opt next ev.Execution.proc with
            | Some i -> i
            | None -> 0
          in
          Hashtbl.replace next ev.Execution.proc (i + 1);
          if not (Hashtbl.mem tbl (ev.Execution.proc, dot)) then
            Hashtbl.add tbl (ev.Execution.proc, dot) i
      | _ -> ())
    (Execution.events execution);
  tbl

let audit ~execution ~history ?(spans = [])
    ?(home_crashed_after = fun ~home:_ ~t:_ -> false) ~streams () =
  let co = Dsm_memory.Causal_order.compute history in
  let idx = apply_index execution in
  let also_precedes d1 d2 =
    let issuer = Dot.replica d2 in
    match
      ( Hashtbl.find_opt idx (issuer, d1),
        Hashtbl.find_opt idx (issuer, d2) )
    with
    | Some i1, Some i2 -> i1 < i2
    | _ -> false
  in
  let value_violations =
    Session_guarantees.check_streams ~also_precedes co streams
  in
  (* Terry's original write-set RYW: the replica serving a session's
     read must already hold the session's own last write on that
     variable.  Value comparison cannot see the miss when the serving
     replica returns a *concurrent* write — the dominant anomaly of a
     dropped handoff — but the execution's apply record can.  Sound
     under the session-vector gate: a gated read executes only after
     the home applied every dot of the session vector, own writes
     included. *)
  let coverage = ref [] in
  let own_last : (int * int, Dot.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      (* spans are per-session in op order: op [n+1] is issued only
         after op [n] resolved *)
      match (sp.okind, sp.ooutcome) with
      | Op_write, Some (Ok_served | Ok_dedup) -> (
          match sp.odot with
          | Some dot -> Hashtbl.replace own_last (sp.osid, sp.ovar) dot
          | None -> ())
      | Op_read, Some Ok_served -> (
          match Hashtbl.find_opt own_last (sp.osid, sp.ovar) with
          | None -> ()
          | Some own ->
              let h = sp.oserved_by in
              let returned_own =
                match sp.odot with
                | Some src -> Dot.equal src own
                | None -> false
              in
              let applied_before =
                match Execution.apply_time execution ~proc:h ~dot:own with
                | Some t ->
                    Dsm_sim.Sim_time.to_float t <= sp.oserved_at +. 1e-6
                | None -> false
              in
              if
                h >= 0 && sp.oserved_at >= 0. && (not returned_own)
                && (not applied_before)
                && not (home_crashed_after ~home:h ~t:sp.oserved_at)
              then
                coverage :=
                  {
                    Session_guarantees.guarantee =
                      Session_guarantees.Read_your_writes;
                    proc = sp.osid;
                    culprit = sp.odot;
                    anchor = own;
                    detail =
                      Format.asprintf
                        "read of x%d served by p%d which had not applied \
                         own %a (write-set coverage)"
                        (sp.ovar + 1) (h + 1) Dot.pp own;
                  }
                  :: !coverage)
      | _ -> ())
    spans;
  value_violations @ List.rev !coverage

let duplicate_writes history =
  let seen : (int, Dot.t) Hashtbl.t = Hashtbl.create 64 in
  let dups = ref 0 in
  List.iter
    (fun (w : Operation.write) ->
      match decode_value w.Operation.wvalue with
      | None -> ()
      | Some _ -> (
          match Hashtbl.find_opt seen w.Operation.wvalue with
          | None -> Hashtbl.add seen w.Operation.wvalue w.Operation.wdot
          | Some dot ->
              if not (Dot.equal dot w.Operation.wdot) then incr dups))
    (History.writes history);
  !dups

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile xs p =
  match xs with
  | [] -> 0.
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let i =
        int_of_float (Float.round (p *. float_of_int (n - 1)))
      in
      a.(max 0 (min (n - 1) i))

let pp_outcome_kind ppf = function
  | Ok_served -> Format.pp_print_string ppf "served"
  | Ok_dedup -> Format.pp_print_string ppf "dedup-resolved"
  | Deg_blocked -> Format.pp_print_string ppf "degraded:blocked"
  | Deg_in_doubt -> Format.pp_print_string ppf "degraded:in-doubt"
  | Deg_unreachable -> Format.pp_print_string ppf "degraded:unreachable"

let pp_op_kind ppf = function
  | Op_write -> Format.pp_print_string ppf "write"
  | Op_read -> Format.pp_print_string ppf "read"

let pp_op_span ppf s =
  Format.fprintf ppf "s%d#%d %a(x%d)@%.1f attempts=%d %a%s%s" s.osid s.oseq
    pp_op_kind s.okind (s.ovar + 1) s.oissued_at s.oattempts
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "open")
       pp_outcome_kind)
    s.ooutcome
    (match s.odot with
    | Some d -> Format.asprintf " dot=%a" Dot.pp d
    | None -> "")
    (match s.owaiting_for with
    | Some d ->
        Format.asprintf " waiting_for=%a@p%d" Dot.pp d (s.oclaim_home + 1)
    | None -> "")

let pp_migration ppf m =
  Format.fprintf ppf "s%d p%d->p%d@%.1f%s" m.msid (m.mfrom + 1) (m.mto + 1)
    m.mat
    (if m.mcarried then "" else " [VECTOR DROPPED]")

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>session tier: %d sessions (%s%s), %d/%d ops served (%d writes / \
     %d reads), %d migrations, %d retries (%d blocked / %d unavailable), \
     %d dedup hits, %d replies lost, %d degraded, %d duplicate writes, %d \
     session-guarantee violations"
    r.cfg.count
    (placement_to_string r.cfg.placement)
    (if r.cfg.handoff then "" else ", handoff OFF")
    r.ops_done
    (r.cfg.count * r.cfg.ops_per_session)
    r.writes_done r.reads_done
    (List.length r.migrations)
    r.retries r.blocked_rejections r.unavailable_rejections r.dedup_hits
    r.replies_lost
    (List.length r.degraded)
    r.duplicate_writes
    (List.length r.violations);
  if r.write_latencies <> [] then
    Format.fprintf ppf "@,write latency: mean=%.1f p95=%.1f"
      (mean r.write_latencies)
      (percentile r.write_latencies 0.95);
  if r.read_latencies <> [] then
    Format.fprintf ppf "@,read latency: mean=%.1f p95=%.1f"
      (mean r.read_latencies)
      (percentile r.read_latencies 0.95);
  List.iter (fun m -> Format.fprintf ppf "@,%a" pp_migration m) r.migrations;
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_op_span s) r.degraded;
  List.iter
    (fun v ->
      Format.fprintf ppf "@,session %a"
        Session_guarantees.pp_violation v)
    r.violations;
  Format.fprintf ppf "@]"

(* explain: join every claimed blocker against the checker's ground
   truth.  A claim "waiting_for d at home h at time t" is honest when h
   really had not applied d by t. *)
let pp_explain ~execution ppf r =
  let claim_honest s =
    match s.owaiting_for with
    | None -> None
    | Some d -> (
        match
          Execution.apply_time execution ~proc:s.oclaim_home ~dot:d
        with
        | None -> Some true (* never applied there: genuinely missing *)
        | Some t ->
            Some (Dsm_sim.Sim_time.to_float t > s.oclaim_at))
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (sid, ops) ->
      let spans = List.filter (fun s -> s.osid = sid) r.spans in
      let migs = List.filter (fun m -> m.msid = sid) r.migrations in
      let claims = List.filter (fun s -> s.owaiting_for <> None) spans in
      let degraded = List.filter (fun s -> s.osid = sid) r.degraded in
      Format.fprintf ppf "session s%d: %d ops acked, %d migrations%s@," sid
        (List.length ops) (List.length migs)
        (if degraded = [] then "" else
           Printf.sprintf ", %d degraded" (List.length degraded));
      List.iter
        (fun m -> Format.fprintf ppf "  migrated %a@," pp_migration m)
        migs;
      List.iter
        (fun s ->
          match (s.owaiting_for, claim_honest s) with
          | Some d, Some honest ->
              Format.fprintf ppf
                "  #%d claimed waiting_for=%a at p%d@%.1f — %s@," s.oseq
                Dot.pp d (s.oclaim_home + 1) s.oclaim_at
                (if honest then "ground truth agrees (unapplied there)"
                 else "CLAIM FALSE: already applied there")
          | _ -> ())
        claims;
      (* a violation names the session and the migration edge that
         caused it: the last migration at or before the offending op *)
      List.iter
        (fun (v : Session_guarantees.violation) ->
          if v.Session_guarantees.proc = sid then begin
            Format.fprintf ppf "  VIOLATION %a@," Session_guarantees.pp_violation v;
            let offender_at =
              (* issue time of the span carrying the culprit/anchor *)
              List.fold_left
                (fun acc s ->
                  let dots =
                    Option.to_list s.odot
                    @ Option.to_list v.Session_guarantees.culprit
                  in
                  match (s.odot, acc) with
                  | Some d, None
                    when List.exists (Dot.equal d) dots ->
                      Some s.oissued_at
                  | _ -> acc)
                None spans
            in
            match
              List.fold_left
                (fun acc m ->
                  match offender_at with
                  | Some t when m.mat <= t -> Some m
                  | None -> Some m
                  | Some _ -> acc)
                None migs
            with
            | Some m ->
                Format.fprintf ppf "    caused across edge %a@," pp_migration m
            | None -> ()
          end)
        r.violations)
    r.streams;
  Format.fprintf ppf "@]"
