(** Session tier: lightweight client sessions multiplexed onto
    replicas, with crash-tolerant migration.

    The paper's processes are simultaneously clients and replicas;
    production causal stores put many client {e sessions} in front of
    [n] replicas. Each session carries a {e session vector} — a
    per-slot lower bound joined from the dots it has written and the
    dots its reads returned — so reads and writes can be routed to
    {e any} replica while preserving the four Terry session guarantees:

    - a replica {e serves} an operation only when its applied vector
      dominates the session vector (otherwise it rejects with the first
      [waiting_for] dot it is missing — the operation is never parked
      server-side, so retrying elsewhere cannot double-commit);
    - a served write joins its own dot into the vector (RYW, MW), a
      served read joins its source dot (MR, WFR);
    - migration is handoff of the session vector: the vector rides with
      every request, so failing over to a new home preserves exactly
      the causal frontier the session has observed. Dropping the vector
      on migration (the [handoff = false] {e canary}) is the bug class
      this tier exists to prevent, and the one the re-attributed
      checker must catch as an RYW violation.

    Failure handling, against the full churn/nemesis adversary:

    - {b retry with capped backoff}: rejected operations (home down,
      not in the view, or blocked on the frontier) retry after
      exponential backoff, re-routing per the placement policy;
    - {b at-most-once writes}: a write's value encodes its (session,
      op) identity. The only in-doubt window is a home that crashes
      after serving a write but before its reply drains; the client
      then {e probes} for the op id (served from the durable log —
      never re-executes), so a retried write can commit at most once;
    - {b graceful degradation}: an operation whose retry budget runs
      out surfaces with its last [waiting_for] claim instead of
      hanging — an unreachable causal frontier is an observable
      outcome, not a livelock.

    The checker side ({!audit}) re-attributes acknowledged operations
    to their sessions and runs {!Dsm_memory.Session_guarantees.check_streams}
    with an execution-derived ordering witness; {!duplicate_writes}
    independently audits at-most-once by scanning the history for two
    distinct dots carrying one op id. *)

module Dot := Dsm_vclock.Dot

(** {1 Placement policies} *)

type placement =
  | Sticky
      (** stay on one home; on failover move to the cyclically next
          active slot and stick there *)
  | Random  (** pick a uniformly random active replica for every attempt *)
  | Nearest
      (** each session has a static preference ring over slots; always
          use the nearest active one (fails over {e and} fails back) *)

val placement_names : string list
(** [["sticky"; "random"; "nearest"]]. *)

val placement_of_string : string -> placement option
val placement_to_string : placement -> string

type config = {
  count : int;  (** number of client sessions *)
  placement : placement;
  ops_per_session : int;
  write_ratio : float;
  think_mean : float;  (** mean think time between acknowledged ops *)
  rpc_timeout : float;
      (** client-side timeout on a write whose reply was lost *)
  backoff : float;  (** base retry backoff *)
  backoff_cap : float;
  max_retries : int;  (** per-operation retry budget *)
  handoff : bool;
      (** [false] = canary: drop the session vector on migration *)
  seed : int;
}

val default_config : count:int -> config
(** placement [Sticky], 20 ops/session, write ratio 0.5, think 10.,
    timeout 150., backoff 5. capped at 80., 10 retries, handoff on,
    seed 1. *)

val validate_config : config -> unit
(** @raise Invalid_argument on nonsensical parameters. *)

(** {1 Op-id value encoding}

    Session writes encode their identity in the written value, disjoint
    from {!Sim_run.write_value}'s replica-op range, so every layer
    (dedup probes, the duplicate audit) can recover (session, op) from
    any applied write. *)

val op_value : sid:int -> op:int -> int
val decode_value : int -> (int * int) option
(** [Some (sid, op)] iff the value is session-coded. *)

(** {1 Per-operation spans} *)

type op_kind = Op_write | Op_read

type outcome_kind =
  | Ok_served  (** executed and acknowledged first try or after retries *)
  | Ok_dedup
      (** resolved by an at-most-once probe: the original attempt had
          committed, the reply was lost, no re-execution happened *)
  | Deg_blocked
      (** degraded: retry budget exhausted while every candidate home
          rejected on the causal frontier; [owaiting_for] names the
          claim *)
  | Deg_in_doubt
      (** degraded: a write whose reply was lost could not be proven
          committed within the probe budget — surfaced, never reissued *)
  | Deg_unreachable
      (** degraded: no active home answered within the retry budget *)

type op_span = {
  osid : int;
  oseq : int;  (** 1-based op sequence within the session *)
  okind : op_kind;
  ovar : int;
  oissued_at : float;
  mutable oattempts : int;
  mutable owaiting_for : Dot.t option;  (** last blocked claim *)
  mutable oclaim_home : int;  (** home that made the claim, -1 if none *)
  mutable oclaim_at : float;
  mutable odot : Dot.t option;  (** committed dot / read source *)
  mutable oserved_by : int;  (** home that served it, -1 if degraded *)
  mutable oserved_at : float;
      (** server-side execution time of the last executed attempt,
          [-1.] while none executed (the ack lands a reply leg later,
          at [odone_at]) *)
  mutable odone_at : float option;
  mutable ooutcome : outcome_kind option;
}
(** The per-session span record of one client operation: issue, retries
    and claims, resolution. The observability layer's session metrics
    are aggregated from these. *)

type migration = {
  msid : int;
  mat : float;
  mfrom : int;
  mto : int;
  mcarried : bool;  (** the session vector was handed off *)
}
(** One migration edge: consecutive acknowledged ops of a session were
    served by different homes. *)

(** {1 Session state (driven by {!Churn_campaign})} *)

type session = {
  sid : int;
  mutable home : int option;  (** current target replica *)
  mutable served_home : int option;  (** home of the last served op *)
  dep : int array;  (** the session vector, one slot per universe slot *)
  mutable acked : Dsm_memory.Operation.t list;  (** newest first *)
  mutable reads_done : int;
  mutable op_seq : int;  (** ops issued so far *)
}

val make_session : sid:int -> universe:int -> session

val choose_home :
  placement ->
  sid:int ->
  universe:int ->
  rng:Dsm_sim.Rng.t ->
  active:int list ->
  current:int option ->
  int option
(** The placement policy's next target given the usable replicas
    [active] (sorted ascending). [None] iff [active] is empty. *)

val backoff_delay : config -> rng:Dsm_sim.Rng.t -> attempt:int -> float
(** Jittered exponential backoff, capped at [backoff_cap]. *)

(** {1 Report and audit} *)

type report = {
  cfg : config;
  streams : (int * Dsm_memory.Operation.t list) list;
      (** acknowledged ops re-attributed by session id, session order *)
  spans : op_span list;  (** issue order *)
  migrations : migration list;  (** chronological *)
  ops_done : int;
  writes_done : int;
  reads_done : int;
  retries : int;
  blocked_rejections : int;
  unavailable_rejections : int;
  dedup_hits : int;
  replies_lost : int;
  degraded : op_span list;  (** subset of [spans], issue order *)
  duplicate_writes : int;  (** at-most-once audit; 0 on every run *)
  violations : Dsm_memory.Session_guarantees.violation list;
      (** re-attributed session-guarantee audit ([proc] = session id) *)
  write_latencies : float list;  (** client-observed, acknowledged ops *)
  read_latencies : float list;
}

val clean : report -> bool
(** No session-guarantee violations and no duplicate applied writes.
    Degraded ops do {e not} make a report unclean — surfacing them is
    the graceful-degradation contract. *)

val audit :
  execution:Execution.t ->
  history:Dsm_memory.History.t ->
  ?spans:op_span list ->
  ?home_crashed_after:(home:int -> t:float -> bool) ->
  streams:(int * Dsm_memory.Operation.t list) list ->
  unit ->
  Dsm_memory.Session_guarantees.violation list
(** Ground-truth session-guarantee check over re-attributed streams:
    [↦co] from the history, extended — for the obligation checks only —
    with the execution-derived witness "the issuer of [d2] applied [d1]
    before applying [d2]", exactly the cross-replica program-order edge
    a handoff carries.

    When [?spans] is supplied, a second, independent RYW audit runs in
    Terry's original {e write-set} form: the replica serving a
    session's read must already have applied the session's own last
    write on that variable (value comparison cannot see this when the
    replica returns a {e concurrent} write — the dominant anomaly of a
    dropped handoff). Sound under the session-vector gate: a gated read
    is only ever served after the home applied the session's writes.
    [?home_crashed_after ~home ~t] excuses homes whose staged apply
    record was rolled back by a later crash (the execution log can no
    longer witness what the gate saw). *)

val duplicate_writes : Dsm_memory.History.t -> int
(** Distinct write dots sharing one encoded (session, op) identity. *)

val mean : float list -> float
val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,1]; 0. when empty. *)

(** {1 Reporting} *)

val pp_outcome_kind : Format.formatter -> outcome_kind -> unit
val pp_op_span : Format.formatter -> op_span -> unit
val pp_migration : Format.formatter -> migration -> unit
val pp_report : Format.formatter -> report -> unit

val pp_explain :
  execution:Execution.t -> Format.formatter -> report -> unit
(** Per-session explain rows: each session's migration edges and every
    degraded/blocked claim joined against the checker's ground truth —
    whether the claimed [waiting_for] dot really was unapplied at the
    claiming home at claim time — plus, for each session-guarantee
    violation, the migration edge nearest before the offending
    operation. *)
