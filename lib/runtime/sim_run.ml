module Protocol = Dsm_core.Protocol
module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Rng = Dsm_sim.Rng
module Spec = Dsm_workload.Spec

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  protocol_name : string;
  messages_sent : int;
  messages_delivered : int;
  engine_steps : int;
  end_time : float;
  buffer_high_watermarks : int array;
  total_buffered : int array;
  skipped_writes : int;
}

let write_value ~proc ~seq = (proc * 1_000_000) + seq

let run (module P : Protocol.S) ~spec ~latency ?latency_fn ?(fifo = false)
    ?(faults = Network.no_faults) ?(seed = 1) ?(max_steps = 10_000_000)
    ?(metrics = Dsm_obs.Metrics.null ()) ?(wire = Dsm_obs.Wire.null ())
    ?(recorder = Dsm_obs.Timeseries.null ()) ?(scrape_every = 25.)
    ?trace_capacity ?(queue = Engine.Indexed) ?(arena = true)
    ?(batch = false) () =
  let cfg = Protocol.config ~n:spec.Spec.n ~m:spec.Spec.m in
  let schedule = Dsm_workload.Generator.generate spec in
  let engine = Engine.create ~queue () in
  let rng = Rng.create seed in
  let latency_of =
    match latency_fn with
    | Some f -> f
    | None -> fun ~src:_ ~dst:_ -> latency
  in
  let network =
    Network.create ~engine ~rng ~n:spec.Spec.n ~latency:latency_of ~fifo
      ~arena ~batch ~faults ~metrics ~wire ~measure:P.msg_frame
      ~sizer:(fun m -> Dsm_obs.Wire.frame_bytes (P.msg_frame m))
      ()
  in
  (* flight recorder: periodic registry scrapes on the sim clock,
     bounded to the workload horizon so the tick stream cannot keep the
     queue alive past the last scheduled operation. Ticks are pure
     registry reads — no RNG draw, no protocol state — so the run's
     observable outcome is unchanged (pinned by the differential
     suite). *)
  if Dsm_obs.Timeseries.enabled recorder then begin
    let horizon =
      Array.fold_left
        (fun acc ops ->
          List.fold_left (fun acc { Spec.at; _ } -> Float.max acc at) acc ops)
        0. schedule
    in
    if horizon >= scrape_every then
      Engine.schedule_every engine ~every:scrape_every
        ~until:(Dsm_sim.Sim_time.of_float horizon) (fun () ->
          Dsm_obs.Timeseries.scrape recorder
            ~now:(Dsm_sim.Sim_time.to_float (Engine.now engine)))
  end;
  let execution =
    Execution.create ?capacity_limit:trace_capacity ~n:spec.Spec.n
      ~m:spec.Spec.m ()
  in
  let module N = Node.Make (P) in
  let nodes =
    Array.init spec.Spec.n (fun me ->
        N.create ~cfg ~me ~engine ~network ~execution ~metrics ())
  in
  (* schedule every operation at its issue time *)
  Array.iteri
    (fun proc ops ->
      let write_seq = ref 0 in
      List.iter
        (fun { Spec.at; op } ->
          match op with
          | Spec.Do_write { var } ->
              incr write_seq;
              let seq = !write_seq in
              Engine.schedule_at engine (Dsm_sim.Sim_time.of_float at)
                (fun () ->
                  ignore
                    (N.write nodes.(proc) ~var
                       ~value:(write_value ~proc ~seq)))
          | Spec.Do_read { var } ->
              Engine.schedule_at engine (Dsm_sim.Sim_time.of_float at)
                (fun () -> ignore (N.read nodes.(proc) ~var)))
        ops)
    schedule;
  (match Engine.run ~max_steps engine with
  | Engine.Drained -> ()
  | Engine.Hit_step_limit ->
      failwith
        (Printf.sprintf
           "Sim_run: %s did not quiesce within %d events (liveness bug?)"
           P.name max_steps)
  | Engine.Hit_time_limit -> assert false (* no [until] given *));
  (* end-of-run scrape of the counters protocols keep internally *)
  if Dsm_obs.Metrics.enabled metrics then begin
    let module M = Dsm_obs.Metrics in
    let sum f = Array.fold_left (fun acc n -> acc + f (N.protocol n)) 0 nodes in
    let max_of f =
      Array.fold_left (fun acc n -> max acc (f (N.protocol n))) 0 nodes
    in
    M.add (M.counter metrics "buffer_wakeup_scans")
      (sum P.buffer_wakeup_scans);
    M.add (M.counter metrics "buffer_total_buffered") (sum P.total_buffered);
    M.set (M.gauge metrics "buffer_high_watermark")
      (max_of P.buffer_high_watermark)
  end;
  {
    execution;
    history = Execution.to_history execution;
    protocol_name = P.name;
    messages_sent = Network.messages_sent network;
    messages_delivered = Network.messages_delivered network;
    engine_steps = Engine.steps_executed engine;
    end_time = Dsm_sim.Sim_time.to_float (Engine.now engine);
    buffer_high_watermarks =
      Array.map (fun n -> P.buffer_high_watermark (N.protocol n)) nodes;
    total_buffered =
      Array.map (fun n -> P.total_buffered (N.protocol n)) nodes;
    skipped_writes = Execution.skip_count execution;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%s: %d events, %d msgs sent / %d delivered, t_end=%.1f@,\
     applies=%d delays=%d skips=%d buffer-high=%a@]"
    o.protocol_name (Execution.event_count o.execution) o.messages_sent
    o.messages_delivered o.end_time
    (Execution.apply_count o.execution)
    (Execution.delay_count o.execution)
    o.skipped_writes
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list o.buffer_high_watermarks)
