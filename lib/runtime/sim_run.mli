(** Run a protocol over a random workload on the simulated network.

    This is the main experiment driver: it expands a workload spec into
    per-process schedules, creates one node per process, lets the
    discrete-event engine run to quiescence, and returns the recorded
    execution together with the reconstructed abstract history and
    summary statistics. Deterministic in [(spec.seed, seed)]. *)

type outcome = {
  execution : Execution.t;
  history : Dsm_memory.History.t;
  protocol_name : string;
  messages_sent : int;
  messages_delivered : int;
  engine_steps : int;
  end_time : float;  (** simulated time of the last event *)
  buffer_high_watermarks : int array;  (** per process *)
  total_buffered : int array;  (** per process, lifetime *)
  skipped_writes : int;  (** total [Skip] events — 0 for class-𝒫 members *)
}

val run :
  (module Dsm_core.Protocol.S) ->
  spec:Dsm_workload.Spec.t ->
  latency:Dsm_sim.Latency.t ->
  ?latency_fn:(src:int -> dst:int -> Dsm_sim.Latency.t) ->
  ?fifo:bool ->
  ?faults:Dsm_sim.Network.faults ->
  ?seed:int ->
  ?max_steps:int ->
  ?metrics:Dsm_obs.Metrics.t ->
  ?wire:Dsm_obs.Wire.t ->
  ?recorder:Dsm_obs.Timeseries.t ->
  ?scrape_every:float ->
  ?trace_capacity:int ->
  ?queue:Dsm_sim.Engine.queue_impl ->
  ?arena:bool ->
  ?batch:bool ->
  unit ->
  outcome
(** [latency] applies to every ordered pair unless [latency_fn]
    overrides it. [seed] (default 1) feeds the network's latency
    streams — the workload has its own seed in [spec]. [max_steps]
    (default [10_000_000]) bounds runaway protocols.

    [queue] (default {!Dsm_sim.Engine.Indexed}), [arena] (default
    [true]) and [batch] (default [false]) select the engine's event
    queue, the network's envelope arena and per-edge delivery batching
    — the hot-path machinery knobs, exposed for differential testing
    (every combination must produce the same outcome; [batch] may
    reorder same-instant deliveries across distinct edges).

    [metrics] (default: the null registry) receives the network and
    protocol instruments; probes are pure observation, so the run is
    byte-identical with and without a live registry. [trace_capacity]
    bounds the execution trace as a ring — only for live monitoring;
    the checker needs the full trace.

    [wire] (default: inert) receives per-frame byte-cost accounting via
    the protocol's [msg_frame]; [recorder] (default: inert) is scraped
    every [scrape_every] sim-time units (default 25.) up to the
    workload horizon. Both are pure observation — same outcome with
    either enabled, pinned by the differential suite.

    [faults] injects raw link failures with NO recovery layer — the
    run will normally lose writes and fail the checker; that is its
    purpose (negative testing). For failure injection {e with} the
    reliable-channel substrate, use {!Reliable_run}.
    @raise Failure if the engine hits the step bound (a liveness bug —
    class-𝒫 protocols must quiesce once all messages are delivered). *)

val write_value : proc:int -> seq:int -> int
(** The globally unique value the driver assigns to the [seq]-th write
    of [proc] (1-based). Exposed so tests can predict read values. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-paragraph run summary. *)
